//! Integration tests for the PR-3 LP engine work: warm-started re-solves, and the
//! Table-1 rows whose regressions this engine (plus the back-edge widening-delay fix
//! in `dca_invariants`) repaired.

use diffcost::benchmarks::all_benchmarks;
use diffcost::prelude::*;

fn benchmark(name: &str) -> diffcost::benchmarks::Benchmark {
    all_benchmarks().into_iter().find(|b| b.name == name).unwrap()
}

/// `SimpleSingle2` at its paper configuration (degree 2, baseline invariants): PR 2's
/// BENCH run recorded `failed` after 82 s because the baseline invariants lost the
/// second loop's `j ≤ n` / `j ≤ m` bounds (making the degree-2 LP genuinely
/// infeasible — the exact backend agreed) and the f64 phase 1 burned its budget
/// stalling before saying so. With the back-edge widening delay the invariants carry
/// both bounds and the pair solves tight, beating the paper's 197.
#[test]
fn simple_single2_is_tight_at_the_paper_configuration() {
    let benchmark = benchmark("SimpleSingle2");
    let result = benchmark.solve().expect("SimpleSingle2 must solve at degree 2, tier 0");
    assert_eq!(result.threshold_int(), 100);
}

/// `SequentialSingle`: invariants established by the first loop must be carried into
/// the second, sequentially composed loop — the row was loose (19900 vs 100) while
/// the upstream fixpoint churn widened away the second head's `j ≤ n`.
#[test]
fn sequential_single_is_tight_at_baseline_tier() {
    let benchmark = benchmark("SequentialSingle");
    let result = benchmark.solve().expect("SequentialSingle must solve");
    assert_eq!(result.threshold_int(), 100);
}

/// `Ex4` is the same story with two sequential loops plus a setup cost: loose at
/// 20001 before the widening fix, tight at 201 after.
#[test]
fn ex4_is_tight_at_baseline_tier() {
    let benchmark = benchmark("Ex4");
    let result = benchmark.solve().expect("Ex4 must solve");
    assert_eq!(result.threshold_int(), 201);
}

/// A warm-started re-solve must reproduce the cold solve's objective — and, landing
/// on the optimal basis, needs no phase-1 work at all.
#[test]
fn warm_started_resolve_matches_cold_solve() {
    let benchmark = benchmark("SimpleSingle");
    let new = benchmark.new_program();
    let old = benchmark.old_program();
    let solver = DiffCostSolver::new(benchmark.options());
    let (cold, basis) = solver.solve_with_warm_start(&new, &old, None);
    let cold = cold.expect("cold solve succeeds");
    let basis = basis.expect("an LP ran, so a basis is recorded");
    assert!(!basis.is_empty());
    let (warm, _) = solver.solve_with_warm_start(&new, &old, Some(&basis));
    let warm = warm.expect("warm solve succeeds");
    assert_eq!(warm.threshold_int(), cold.threshold_int());
    assert!(
        warm.stats.lp_iterations <= cold.stats.lp_iterations,
        "warm start must not pivot more than the cold solve ({} vs {})",
        warm.stats.lp_iterations,
        cold.stats.lp_iterations
    );
}

/// Differential fuzz for the float-first certified driver: on ~2100 small
/// deterministic pseudo-random LPs, `solve_certified` must agree with the pure exact
/// simplex on *status* and — exactly, as rationals — on the *objective*, and every
/// optimal answer must carry an exact-rational certificate. This is the enforcement
/// of the soundness contract: no verdict is ever issued from `f64` alone; the floats
/// only pick which basis the exact machinery examines first.
#[test]
fn certified_driver_matches_exact_simplex_on_random_lps() {
    use diffcost::lp::{ConstraintOp, LpProblem, LpStatus, VarKind};

    let mut seed = 0x6C62272E07BB0142u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let mut optimal = 0usize;
    let mut certified_repairs = 0usize;
    for case in 0..2100 {
        let num_vars = 1 + (next() % 5) as usize;
        let num_constraints = 1 + (next() % 6) as usize;
        let mut lp = LpProblem::new();
        let vars: Vec<_> = (0..num_vars)
            .map(|i| {
                let kind = if next() % 5 == 0 { VarKind::Free } else { VarKind::NonNegative };
                lp.add_var(format!("x{i}"), kind)
            })
            .collect();
        for _ in 0..num_constraints {
            let terms: Vec<_> = vars
                .iter()
                .filter_map(|&v| {
                    let coefficient = (next() % 7) as i64 - 3;
                    (coefficient != 0).then(|| (v, Rational::from_int(coefficient)))
                })
                .collect();
            if terms.is_empty() {
                continue;
            }
            let op = match next() % 3 {
                0 => ConstraintOp::Le,
                1 => ConstraintOp::Ge,
                _ => ConstraintOp::Eq,
            };
            // Mostly-zero right-hand sides: the degenerate regime the Handelman
            // encodings live in.
            let rhs = if next() % 3 == 0 { (next() % 5) as i64 } else { 0 };
            lp.add_constraint(terms, op, Rational::from_int(rhs));
        }
        lp.set_objective(
            vars.iter()
                .map(|&v| (v, Rational::from_int((next() % 7) as i64 - 3)))
                .collect(),
        );

        let certified = lp.solve_certified();
        let exact = lp.solve_exact();
        assert_eq!(
            certified.status, exact.status,
            "case {case}: certified and exact status diverged"
        );
        if certified.status == LpStatus::Optimal {
            optimal += 1;
            assert_eq!(
                certified.objective, exact.objective,
                "case {case}: certified and exact objective diverged (exactly)"
            );
            assert!(
                certified.info.certified,
                "case {case}: an accepted optimum must carry an exact certificate"
            );
            if certified.info.exact_iterations > 0 {
                certified_repairs += 1;
            }
        }
    }
    // The fuzz only means something if it exercises both the accept path and the
    // repair path; both arise naturally at these sizes.
    assert!(optimal > 400, "only {optimal} optimal instances — fuzz lost its teeth");
    assert!(
        certified_repairs > 0,
        "no case ever took the exact-repair path — the loop is untested"
    );
}

/// The solver surfaces presolve shrink and iteration counts in its statistics.
#[test]
fn solve_stats_carry_presolve_and_iteration_counts() {
    let benchmark = benchmark("SimpleSingle");
    let result = benchmark.solve().expect("SimpleSingle must solve");
    assert!(result.stats.lp_iterations > 0, "a non-trivial solve pivots at least once");
    // The coefficient-matching equalities of this encoding happen to present no
    // singleton/forcing rows, so presolve legitimately removes nothing here — but the
    // counters must stay within the raw system's size either way.
    assert!(result.stats.presolve_rows_removed <= result.stats.lp_constraints);
    assert!(result.stats.presolve_cols_removed <= result.stats.lp_variables * 2);
}
