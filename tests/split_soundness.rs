//! Interpreter-sampled soundness of loop-phase splitting: whenever the solver's
//! split path wins (`SolveStats::phases_split > 0`), the reported threshold must
//! survive `verify_threshold` — sampled concrete executions of the *original*
//! (unsplit) pair must never exhibit `cost_new − cost_old` above it. The split
//! system is a different program; the bound it proves is only meaningful for the
//! original semantics, so this is the test that would catch an unsound transform.
//!
//! The same check runs at every invariant tier: per-phase invariants are what make
//! splitting precise, and each tier shapes them differently.

use diffcost::benchmarks::table2::{table2_manifest, table2_options};
use diffcost::benchmarks::{all_benchmarks, Benchmark};
use diffcost::core::verify::{verify_threshold, VerifyConfig};
use diffcost::ir::{detect_phase_splits, GeneratedPair, MAX_BLOCK_STATEMENTS};
use diffcost::prelude::*;

/// Solves a pair at one tier and, when the split path produced the answer,
/// replays sampled runs of the original programs against the threshold.
fn check_split_soundness(
    name: &str,
    new: &AnalyzedProgram,
    old: &AnalyzedProgram,
    options: AnalysisOptions,
    tier: InvariantTier,
) -> bool {
    let result =
        match DiffCostSolver::new(options.with_invariant_tier(tier)).solve(new, old) {
            Ok(result) => result,
            // A tier may legitimately be too weak to prove the pair at all;
            // there is no split answer to check in that case.
            Err(_) => return false,
        };
    if result.stats.phases_split == 0 {
        return false;
    }
    let report = verify_threshold(new, old, result.threshold, &VerifyConfig::default());
    assert!(
        report.ok(),
        "{name} at {tier:?}: split threshold {} violated by {} of {} sampled runs",
        result.threshold,
        report.violations.len(),
        report.checked,
    );
    true
}

fn nested_single() -> Benchmark {
    all_benchmarks().into_iter().find(|b| b.name == "NestedSingle").unwrap()
}

/// The Table-1 row the splitting pass exists for: the split must actually fire
/// and the resulting threshold must be both tight (101) and sampled-sound.
#[test]
fn nested_single_split_is_tight_and_sampled_sound() {
    let benchmark = nested_single();
    let new = benchmark.new_program();
    let old = benchmark.old_program();
    let result = DiffCostSolver::new(benchmark.options()).solve(&new, &old).unwrap();
    assert!(result.stats.phases_split > 0, "split must fire on NestedSingle");
    assert_eq!(result.threshold_int(), 101, "split makes NestedSingle tight");
    let report = verify_threshold(&new, &old, result.threshold, &VerifyConfig::default());
    assert!(report.ok(), "{} sampled violations", report.violations.len());
}

/// Every split analysis is sampled-sound at every invariant tier, on the hand
/// benchmark and on generated phase-flip pairs (depth 1 keeps the higher-tier
/// solves fast). At least one (pair, tier) combination must actually exercise
/// the split path, so the test cannot rot into a vacuous pass.
#[test]
fn split_analyses_are_sampled_sound_at_all_tiers() {
    let manifest = table2_manifest();
    let flips: Vec<&GeneratedPair> = manifest
        .iter()
        .filter(|p| p.shape.phase_flip && p.shape.depth == 1)
        .step_by(3)
        .take(4)
        .collect();
    assert!(!flips.is_empty(), "the manifest carries phase-flip pairs");
    let mut split_checked = 0usize;
    for tier in InvariantTier::ALL {
        let benchmark = nested_single();
        if check_split_soundness(
            benchmark.name,
            &benchmark.new_program(),
            &benchmark.old_program(),
            benchmark.options(),
            tier,
        ) {
            split_checked += 1;
        }
        for pair in &flips {
            let new = AnalyzedProgram::from_source(&pair.source_new).unwrap();
            let old = AnalyzedProgram::from_source(&pair.source_old).unwrap();
            // The generator promises the flip guard lowers to a detectable
            // phase structure (and keeps its straight-line runs capped).
            assert!(
                !detect_phase_splits(&new.ts).is_empty(),
                "{}: no phase split detected in the revision",
                pair.name
            );
            assert!(pair.max_block_len <= MAX_BLOCK_STATEMENTS);
            if check_split_soundness(&pair.name, &new, &old, table2_options(pair), tier)
            {
                split_checked += 1;
            }
        }
    }
    assert!(split_checked > 0, "no analysis exercised the split path");
}
