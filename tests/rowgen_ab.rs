//! A/B equivalence check for lazy Handelman row generation: solving with the
//! separation loop enabled (the default) and disabled (`DCA_LP_NO_ROWGEN=1`, which
//! activates every product multiplier eagerly) must produce *bit-identical*
//! thresholds and identical certification status. Row generation is a pure
//! performance device — the final certificate is priced against the full product
//! set, so any divergence is a separation bug, not a tolerance issue.
//!
//! This lives in its own integration-test binary because the switch is a
//! process-wide environment variable; sharing a binary with other tests would race —
//! and the tests *in* this binary serialize on [`ENV_LOCK`] for the same reason
//! (same pattern as `tests/presolve_ab.rs`).

use std::sync::Mutex;

use diffcost::benchmarks::table2::{table2_manifest, table2_options};
use diffcost::benchmarks::{all_benchmarks, running_example, Benchmark};
use diffcost::prelude::*;

/// Guards every section that toggles `DCA_LP_NO_ROWGEN` (cargo runs the tests of
/// one binary on parallel threads by default).
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// The observable outcome the A/B must preserve: the threshold's exact bits, its
/// integer rounding, and whether the LP answer carried an exact certificate.
/// Failures compare by error kind.
#[derive(Debug, PartialEq)]
enum Outcome {
    Solved { threshold_bits: u64, threshold_int: i64, certified: bool },
    Failed(std::mem::Discriminant<AnalysisError>),
}

fn outcome(result: &Result<DiffCostResult, AnalysisError>) -> Outcome {
    match result {
        Ok(r) => Outcome::Solved {
            threshold_bits: r.threshold.to_bits(),
            threshold_int: r.threshold_int(),
            certified: r.stats.lp_certified,
        },
        Err(e) => Outcome::Failed(std::mem::discriminant(e)),
    }
}

/// Runs one closure with row generation on, then off, and demands identical
/// outcomes. The caller holds [`ENV_LOCK`].
fn assert_rowgen_invariant<F>(name: &str, solve: F)
where
    F: Fn() -> Result<DiffCostResult, AnalysisError>,
{
    let with_rowgen = outcome(&solve());
    std::env::set_var("DCA_LP_NO_ROWGEN", "1");
    let eager = outcome(&solve());
    std::env::remove_var("DCA_LP_NO_ROWGEN");
    assert_eq!(
        with_rowgen, eager,
        "{name}: row generation changed the verdict (lazy {with_rowgen:?} vs eager {eager:?})"
    );
}

fn check_benchmark(benchmark: &Benchmark) {
    // The Table-1 suite's per-attempt budget. Without it the *eager* `nested`
    // proof — deadline-truncated in every recorded benchmark run — pivots for
    // hours. Hitting the budget is part of the observable outcome being compared
    // (threshold + certified flag), exactly as `BENCH_table1.json` records it.
    let options =
        benchmark.options().with_time_budget(std::time::Duration::from_secs(240));
    assert_rowgen_invariant(benchmark.name, || {
        DiffCostSolver::new(options)
            .solve(&benchmark.new_program(), &benchmark.old_program())
    });
}

fn check_table2_pair(pair: &diffcost::ir::GeneratedPair) {
    let new = AnalyzedProgram::from_source(&pair.source_new).expect("generated source");
    let old = AnalyzedProgram::from_source(&pair.source_old).expect("generated source");
    assert_rowgen_invariant(&pair.name, || {
        DiffCostSolver::new(table2_options(pair)).solve(&new, &old)
    });
}

/// Fast smoke slice: a few Table-1 rows spanning zero / non-zero / infeasible-rung
/// verdicts plus a strided handful of generated pairs. Runs on every `cargo test`.
#[test]
fn rowgen_and_eager_agree_on_fast_pairs() {
    let _guard = ENV_LOCK.lock().unwrap();
    const SUBSET: [&str; 4] = ["SimpleSingle", "SimpleSingle2", "sum", "ddec modified"];
    for name in SUBSET {
        let benchmark = all_benchmarks().into_iter().find(|b| b.name == name).unwrap();
        check_benchmark(&benchmark);
    }
    let manifest = table2_manifest();
    for pair in manifest.iter().step_by(manifest.len() / 10).take(10) {
        check_table2_pair(pair);
    }
}

/// The full Table-1 A/B (all 19 paper rows + the running example). `nested` alone
/// runs for minutes eagerly, so this is opt-in: `cargo test -- --ignored`.
#[test]
#[ignore = "slow: eager nested solve takes minutes; run with -- --ignored"]
fn rowgen_and_eager_agree_on_all_table1_pairs() {
    let _guard = ENV_LOCK.lock().unwrap();
    let mut benchmarks = all_benchmarks();
    benchmarks.push(running_example());
    assert_eq!(benchmarks.len(), 20, "Table 1 is 19 rows plus the running example");
    for benchmark in &benchmarks {
        check_benchmark(benchmark);
    }
}

/// A 50-pair strided sample of the generated Table-2 corpus. Opt-in for the same
/// wall-clock reason: 100 solves of mid-size LPs.
#[test]
#[ignore = "slow: 50 pairs x 2 solves; run with -- --ignored"]
fn rowgen_and_eager_agree_on_table2_sample() {
    let _guard = ENV_LOCK.lock().unwrap();
    let manifest = table2_manifest();
    assert!(manifest.len() >= 50);
    for pair in manifest.iter().step_by(manifest.len() / 50).take(50) {
        check_table2_pair(pair);
    }
}
