//! Reproduction of the paper's running example (Fig. 1, Examples 2.2–2.3 and 4.4).
//!
//! The synthesis tests on the `join` pair are `#[ignore]`d: besides being the slowest
//! pair of the suite (LP solves around a minute in release), the synthesis currently
//! fails — the polyhedra-lite invariant generator does not recover invariants strong
//! enough for the Fig. 1 pair, so the LP is infeasible at `d = K = 2` where the paper
//! (using Sting/Aspic invariants) reports 10000. See EXPERIMENTS.md, "Known
//! limitations". The assertions below encode the *target* behavior so the gap stays
//! visible under `cargo test -- --ignored`.

use diffcost::benchmarks::running_example;
use diffcost::prelude::*;

#[test]
#[ignore = "known limitation: generated invariants too weak for the Fig. 1 pair (see EXPERIMENTS.md); also slow"]
fn join_threshold_is_ten_thousand() {
    let benchmark = running_example();
    let result = benchmark.solve().expect("the running example must be solvable");
    // Example 2.3: phi_new - chi_old = lenA * lenB <= 100 * 100.
    assert_eq!(result.threshold_int(), 10_000);
}

#[test]
#[ignore = "known limitation: generated invariants too weak for the Fig. 1 pair (see EXPERIMENTS.md); also slow"]
fn join_9999_is_not_a_threshold() {
    let benchmark = running_example();
    let old = benchmark.old_program();
    let new = benchmark.new_program();
    let solver = DiffCostSolver::new(benchmark.options());
    // Example 4.4: 9999 can be exceeded (at lenA = lenB = 100).
    let refutation = solver
        .refute_threshold(&new, &old, 9_999, &[])
        .expect("9999 must be refutable");
    let len_a = new.ts.pool().lookup("lenA").unwrap();
    let len_b = new.ts.pool().lookup("lenB").unwrap();
    assert_eq!(refutation.witness_input.get(&len_a), Some(&100));
    assert_eq!(refutation.witness_input.get(&len_b), Some(&100));
}

#[test]
fn join_concrete_costs_match_closed_forms() {
    use diffcost::ir::{FixedOracle, Interpreter};
    let benchmark = running_example();
    let old = benchmark.old_program();
    let new = benchmark.new_program();
    let interpreter = Interpreter::default();
    for (len_a, len_b) in [(1i64, 1i64), (7, 3), (100, 100)] {
        let mut vals = diffcost::ir::IntValuation::new();
        for v in old.ts.vars() {
            vals.insert(v, 0);
        }
        vals.insert(old.ts.pool().lookup("lenA").unwrap(), len_a);
        vals.insert(old.ts.pool().lookup("lenB").unwrap(), len_b);
        let old_run = interpreter.run(&old.ts, &vals, &mut FixedOracle(0));
        assert_eq!(old_run.cost, len_a * len_b);

        let mut vals = diffcost::ir::IntValuation::new();
        for v in new.ts.vars() {
            vals.insert(v, 0);
        }
        vals.insert(new.ts.pool().lookup("lenA").unwrap(), len_a);
        vals.insert(new.ts.pool().lookup("lenB").unwrap(), len_b);
        let new_run = interpreter.run(&new.ts, &vals, &mut FixedOracle(0));
        assert_eq!(new_run.cost, 2 * len_a * len_b);
        // The difference never exceeds the Fig. 1 threshold 10000.
        assert!(new_run.cost - old_run.cost <= 10_000);
    }
}
