//! Reproduction of the paper's running example (Fig. 1, Examples 2.2–2.3 and 4.4).
//!
//! These tests run the full synthesis on the `join` pair, which takes noticeably longer
//! than the rest of the suite; they are `#[ignore]`d by default and exercised by
//! `cargo test -- --ignored` or by the `table1` benchmark harness.

use diffcost::benchmarks::running_example;
use diffcost::prelude::*;

#[test]
#[ignore = "slow: full synthesis on the Fig. 1 pair"]
fn join_threshold_is_ten_thousand() {
    let benchmark = running_example();
    let result = benchmark.solve().expect("the running example must be solvable");
    // Example 2.3: phi_new - chi_old = lenA * lenB <= 100 * 100.
    assert_eq!(result.threshold_int(), 10_000);
}

#[test]
#[ignore = "slow: refutation on the Fig. 1 pair"]
fn join_9999_is_not_a_threshold() {
    let benchmark = running_example();
    let old = benchmark.old_program();
    let new = benchmark.new_program();
    let solver = DiffCostSolver::new(benchmark.options());
    // Example 4.4: 9999 can be exceeded (at lenA = lenB = 100).
    let refutation = solver
        .refute_threshold(&new, &old, 9_999, &[])
        .expect("9999 must be refutable");
    let len_a = new.ts.pool().lookup("lenA").unwrap();
    let len_b = new.ts.pool().lookup("lenB").unwrap();
    assert_eq!(refutation.witness_input.get(&len_a), Some(&100));
    assert_eq!(refutation.witness_input.get(&len_b), Some(&100));
}

#[test]
fn join_concrete_costs_match_closed_forms() {
    use diffcost::ir::{FixedOracle, Interpreter};
    let benchmark = running_example();
    let old = benchmark.old_program();
    let new = benchmark.new_program();
    let interpreter = Interpreter::default();
    for (len_a, len_b) in [(1i64, 1i64), (7, 3), (100, 100)] {
        let mut vals = diffcost::ir::IntValuation::new();
        for v in old.ts.vars() {
            vals.insert(v, 0);
        }
        vals.insert(old.ts.pool().lookup("lenA").unwrap(), len_a);
        vals.insert(old.ts.pool().lookup("lenB").unwrap(), len_b);
        let old_run = interpreter.run(&old.ts, &vals, &mut FixedOracle(0));
        assert_eq!(old_run.cost, len_a * len_b);

        let mut vals = diffcost::ir::IntValuation::new();
        for v in new.ts.vars() {
            vals.insert(v, 0);
        }
        vals.insert(new.ts.pool().lookup("lenA").unwrap(), len_a);
        vals.insert(new.ts.pool().lookup("lenB").unwrap(), len_b);
        let new_run = interpreter.run(&new.ts, &vals, &mut FixedOracle(0));
        assert_eq!(new_run.cost, 2 * len_a * len_b);
        // The difference never exceeds the Fig. 1 threshold 10000.
        assert!(new_run.cost - old_run.cost <= 10_000);
    }
}
