//! Reproduction of the paper's running example (Fig. 1, Examples 2.2–2.3 and 4.4).
//!
//! The synthesis tests on the `join` pair were `#[ignore]`d through PR 1: the
//! floating-point simplex stalled on the (heavily degenerate) degree-2 synthesis LP
//! and reported a spurious infeasibility, misdiagnosed at the time as "generated
//! invariants too weak" — `examples/certprobe.rs` proves with the exact backend that
//! the LP is feasible under the generated invariants. With the anti-degeneracy
//! perturbation and tableau refactorization in `dca_lp`, the pair now synthesizes the
//! paper's threshold 10000. These are the slowest tests of the suite (the LP has
//! ~440 rows and ~1500 variables; a solve takes minutes on one core).

use diffcost::benchmarks::running_example;
use diffcost::prelude::*;

#[test]
fn join_threshold_is_ten_thousand() {
    let benchmark = running_example();
    let result = benchmark.solve().expect("the running example must be solvable");
    // Example 2.3: phi_new - chi_old = lenA * lenB <= 100 * 100.
    assert_eq!(result.threshold_int(), 10_000);
}

#[test]
fn join_9999_is_not_a_threshold() {
    let benchmark = running_example();
    let old = benchmark.old_program();
    let new = benchmark.new_program();
    let solver = DiffCostSolver::new(benchmark.options());
    // Example 4.4: 9999 can be exceeded (at lenA = lenB = 100).
    let refutation = solver
        .refute_threshold(&new, &old, 9_999, &[])
        .expect("9999 must be refutable");
    let len_a = new.ts.pool().lookup("lenA").unwrap();
    let len_b = new.ts.pool().lookup("lenB").unwrap();
    assert_eq!(refutation.witness_input.get(&len_a), Some(&100));
    assert_eq!(refutation.witness_input.get(&len_b), Some(&100));
}

#[test]
fn join_concrete_costs_match_closed_forms() {
    use diffcost::ir::{FixedOracle, Interpreter};
    let benchmark = running_example();
    let old = benchmark.old_program();
    let new = benchmark.new_program();
    let interpreter = Interpreter::default();
    for (len_a, len_b) in [(1i64, 1i64), (7, 3), (100, 100)] {
        let mut vals = diffcost::ir::IntValuation::new();
        for v in old.ts.vars() {
            vals.insert(v, 0);
        }
        vals.insert(old.ts.pool().lookup("lenA").unwrap(), len_a);
        vals.insert(old.ts.pool().lookup("lenB").unwrap(), len_b);
        let old_run = interpreter.run(&old.ts, &vals, &mut FixedOracle(0));
        assert_eq!(old_run.cost, len_a * len_b);

        let mut vals = diffcost::ir::IntValuation::new();
        for v in new.ts.vars() {
            vals.insert(v, 0);
        }
        vals.insert(new.ts.pool().lookup("lenA").unwrap(), len_a);
        vals.insert(new.ts.pool().lookup("lenB").unwrap(), len_b);
        let new_run = interpreter.run(&new.ts, &vals, &mut FixedOracle(0));
        assert_eq!(new_run.cost, 2 * len_a * len_b);
        // The difference never exceeds the Fig. 1 threshold 10000.
        assert!(new_run.cost - old_run.cost <= 10_000);
    }
}
