//! End-to-end integration tests: source text → parser → lowering → invariants →
//! simultaneous PF/anti-PF synthesis → verified threshold.

use diffcost::core::verify::{verify_potential_on_runs, verify_threshold, VerifyConfig};
use diffcost::prelude::*;

fn program(source: &str) -> AnalyzedProgram {
    AnalyzedProgram::from_source(source).expect("program compiles")
}

const BASE: &str = r#"
    proc work(n, m) {
        assume(n >= 1 && n <= 50 && m >= 1 && m <= 50);
        i = 0;
        while (i < n) { tick(1); i = i + 1; }
    }
"#;

const WITH_EXTRA_LOOP: &str = r#"
    proc work(n, m) {
        assume(n >= 1 && n <= 50 && m >= 1 && m <= 50);
        i = 0;
        while (i < n) { tick(1); i = i + 1; }
        j = 0;
        while (j < m) { tick(1); j = j + 1; }
    }
"#;

#[test]
fn threshold_for_added_loop_is_tight_and_verified() {
    let old = program(BASE);
    let new = program(WITH_EXTRA_LOOP);
    let solver = DiffCostSolver::new(AnalysisOptions::default());
    let result = solver.solve(&new, &old).expect("threshold exists");
    // The added loop costs exactly m <= 50, so 50 is the tight threshold. The current
    // invariant generator loses the relational bound on the *second* sequential loop, so
    // the synthesized threshold can over-approximate (see EXPERIMENTS.md, "Known
    // limitations"); soundness — checked below against concrete runs — must still hold.
    assert!(result.threshold_int() >= 50, "unsound threshold {}", result.threshold);

    let config = VerifyConfig { samples: 10, ..VerifyConfig::default() };
    let report = verify_threshold(&new, &old, result.threshold, &config);
    assert!(report.ok(), "threshold violated on sampled runs: {:?}", report.violations);
    let report = verify_potential_on_runs(&result.potential_new, &new, false, &config);
    assert!(report.ok(), "potential conditions violated: {:?}", report.violations);
    let report = verify_potential_on_runs(&result.anti_potential_old, &old, true, &config);
    assert!(report.ok(), "anti-potential conditions violated: {:?}", report.violations);
}

#[test]
fn removing_cost_gives_nonpositive_threshold() {
    let old = program(WITH_EXTRA_LOOP);
    let new = program(BASE);
    let solver = DiffCostSolver::new(AnalysisOptions::default());
    let result = solver.solve(&new, &old).expect("threshold exists");
    // The new version only removes work, so the difference is at most -1 (m >= 1).
    assert!(result.threshold_int() <= 0, "threshold = {}", result.threshold);
}

#[test]
fn refutation_and_bound_agree_on_the_boundary() {
    // Doubling the per-iteration cost gives a difference of exactly n <= 50.
    let old = program(BASE);
    let new = program(
        r#"proc work(n, m) {
            assume(n >= 1 && n <= 50 && m >= 1 && m <= 50);
            i = 0;
            while (i < n) { tick(2); i = i + 1; }
        }"#,
    );
    let solver = DiffCostSolver::new(AnalysisOptions::default());
    // 49 is not a threshold (difference reaches 50 at n = 50), 50 is.
    assert!(solver.refute_threshold(&new, &old, 49, &[]).is_ok());
    assert!(solver.refute_threshold(&new, &old, 50, &[]).is_err());
}

#[test]
fn table1_simple_single_row_reproduces() {
    let benchmark = diffcost::benchmarks::all_benchmarks()
        .into_iter()
        .find(|b| b.name == "SimpleSingle")
        .unwrap();
    let result = benchmark.solve().expect("SimpleSingle solves");
    assert_eq!(result.threshold_int(), benchmark.tight);
}

#[test]
fn nondeterministic_branching_is_handled() {
    let old = program(
        r#"proc f(n) {
            assume(n >= 1 && n <= 30);
            i = 0;
            while (i < n) { tick(1); i = i + 1; }
        }"#,
    );
    let new = program(
        r#"proc f(n) {
            assume(n >= 1 && n <= 30);
            i = 0;
            while (i < n) {
                if (*) { tick(3); } else { tick(1); }
                i = i + 1;
            }
        }"#,
    );
    let solver = DiffCostSolver::new(AnalysisOptions::default());
    let result = solver.solve(&new, &old).expect("threshold exists");
    // Worst case: the expensive branch every iteration => extra 2 per iteration, n <= 30.
    assert_eq!(result.threshold_int(), 60);
    let config = VerifyConfig { samples: 8, ..VerifyConfig::default() };
    let report = verify_threshold(&new, &old, result.threshold, &config);
    assert!(report.ok(), "{:?}", report.violations);
}
