//! A/B check for loop-phase splitting: on pairs with *no detectable phase
//! structure*, solving with splitting enabled (the default) and disabled
//! (`DCA_NO_SPLIT=1`) must produce bit-identical outcomes — the solver promises
//! the split machinery is a strict no-op unless the detector fires. On pairs
//! where it does fire, the split answer may only ever *improve* (the solver
//! keeps the better of the two), and `DCA_NO_SPLIT=1` must verifiably disable
//! the pass (`SolveStats::phases_split == 0`).
//!
//! Own integration-test binary because the switch is a process-wide environment
//! variable; the tests serialize on [`ENV_LOCK`] (same pattern as
//! `tests/rowgen_ab.rs` / `tests/presolve_ab.rs`).

use std::sync::Mutex;

use diffcost::benchmarks::table2::{table2_manifest, table2_options};
use diffcost::benchmarks::{all_benchmarks, running_example, Benchmark};
use diffcost::ir::detect_phase_splits;
use diffcost::prelude::*;

/// Guards every section that toggles `DCA_NO_SPLIT`.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// The observable outcome: exact threshold bits, integer rounding, certification.
#[derive(Debug, PartialEq)]
enum Outcome {
    Solved { threshold_bits: u64, threshold_int: i64, certified: bool },
    Failed(std::mem::Discriminant<AnalysisError>),
}

fn outcome(result: &Result<DiffCostResult, AnalysisError>) -> Outcome {
    match result {
        Ok(r) => Outcome::Solved {
            threshold_bits: r.threshold.to_bits(),
            threshold_int: r.threshold_int(),
            certified: r.stats.lp_certified,
        },
        Err(e) => Outcome::Failed(std::mem::discriminant(e)),
    }
}

/// Solves one pair with splitting on and off and checks the contract. The
/// caller holds [`ENV_LOCK`]. Returns `true` when the split path fired.
fn assert_split_invariant<F>(name: &str, splittable: bool, solve: F) -> bool
where
    F: Fn() -> Result<DiffCostResult, AnalysisError>,
{
    let with_split = solve();
    std::env::set_var("DCA_NO_SPLIT", "1");
    let without_split = solve();
    std::env::remove_var("DCA_NO_SPLIT");
    if let Ok(r) = &without_split {
        assert_eq!(
            r.stats.phases_split, 0,
            "{name}: DCA_NO_SPLIT=1 must disable the pass"
        );
    }
    if !splittable {
        assert_eq!(
            outcome(&with_split),
            outcome(&without_split),
            "{name}: no split fires, yet the toggle changed the outcome"
        );
        return false;
    }
    // Split fired (or at least was attempted): keeping the better of two sound
    // answers can only lower the threshold.
    if let (Ok(ab), Ok(plain)) = (&with_split, &without_split) {
        assert!(
            ab.threshold <= plain.threshold,
            "{name}: split answer {} worse than unsplit {}",
            ab.threshold,
            plain.threshold,
        );
    }
    with_split.map(|r| r.stats.phases_split > 0).unwrap_or(false)
}

/// Whether the detector fires on either side of a pair — the solver applies the
/// pass to both programs, so either suffices to take the split path.
fn splittable(new: &AnalyzedProgram, old: &AnalyzedProgram) -> bool {
    !detect_phase_splits(&new.ts).is_empty() || !detect_phase_splits(&old.ts).is_empty()
}

fn check_benchmark(benchmark: &Benchmark) -> bool {
    let new = benchmark.new_program();
    let old = benchmark.old_program();
    let options =
        benchmark.options().with_time_budget(std::time::Duration::from_secs(240));
    assert_split_invariant(benchmark.name, splittable(&new, &old), || {
        DiffCostSolver::new(options).solve(&new, &old)
    })
}

fn check_table2_pair(pair: &diffcost::ir::GeneratedPair) -> bool {
    let new = AnalyzedProgram::from_source(&pair.source_new).expect("generated source");
    let old = AnalyzedProgram::from_source(&pair.source_old).expect("generated source");
    assert_split_invariant(&pair.name, splittable(&new, &old), || {
        DiffCostSolver::new(table2_options(pair)).solve(&new, &old)
    })
}

/// Fast slice: unsplittable Table-1 rows (bit-identity), `NestedSingle` (the row
/// the pass exists for), and a strided mix of generated pairs including the
/// phase-flip cells at the manifest tail.
#[test]
fn split_toggle_respects_the_ab_contract_on_fast_pairs() {
    let _guard = ENV_LOCK.lock().unwrap();
    const SUBSET: [&str; 4] = ["SimpleSingle", "SimpleSingle2", "sum", "NestedSingle"];
    let mut fired = 0usize;
    for name in SUBSET {
        let benchmark = all_benchmarks().into_iter().find(|b| b.name == name).unwrap();
        if check_benchmark(&benchmark) {
            fired += 1;
        }
    }
    let manifest = table2_manifest();
    for pair in manifest.iter().step_by(manifest.len() / 8).take(8) {
        check_table2_pair(pair);
    }
    // The manifest tail is the phase-flip block; depth-1 cells solve quickly.
    for pair in manifest.iter().filter(|p| p.shape.phase_flip && p.shape.depth == 1).take(3)
    {
        if check_table2_pair(pair) {
            fired += 1;
        }
    }
    assert!(fired > 0, "no pair exercised the split path");
}

/// The full Table-1 A/B. Opt-in: `nested` alone pivots for minutes, twice.
#[test]
#[ignore = "slow: solves every Table-1 row twice; run with -- --ignored"]
fn split_toggle_respects_the_ab_contract_on_all_table1_pairs() {
    let _guard = ENV_LOCK.lock().unwrap();
    let mut benchmarks = all_benchmarks();
    benchmarks.push(running_example());
    assert_eq!(benchmarks.len(), 20, "Table 1 is 19 rows plus the running example");
    let fired: usize = benchmarks.iter().map(|b| usize::from(check_benchmark(b))).sum();
    assert!(fired > 0, "NestedSingle must exercise the split path");
}

/// A strided 40-pair sample of the Table-2 corpus, phase-flip cells included.
#[test]
#[ignore = "slow: 40 pairs x 2 solves; run with -- --ignored"]
fn split_toggle_respects_the_ab_contract_on_table2_sample() {
    let _guard = ENV_LOCK.lock().unwrap();
    let manifest = table2_manifest();
    let mut fired = 0usize;
    for pair in manifest.iter().step_by(manifest.len() / 40).take(40) {
        if check_table2_pair(pair) {
            fired += 1;
        }
    }
    for pair in manifest.iter().filter(|p| p.shape.phase_flip).take(6) {
        if check_table2_pair(pair) {
            fired += 1;
        }
    }
    assert!(fired > 0, "the phase-flip cells must exercise the split path");
}
