//! A/B soundness check for the LP presolve layer: for a fixed subset of Table-1
//! synthesis LPs, solving with presolve enabled (the default) and disabled
//! (`DCA_LP_NO_PRESOLVE=1`) must agree on the feasibility verdict and on the optimal
//! threshold within the scalar tolerance.
//!
//! This lives in its own integration-test binary because the switch is a process-wide
//! environment variable; sharing a binary with other tests would race — and the two
//! tests *in* this binary serialize on [`ENV_LOCK`] for the same reason.

use std::sync::Mutex;

use diffcost::benchmarks::all_benchmarks;

/// Guards every section that toggles `DCA_LP_NO_PRESOLVE` (cargo runs the tests of
/// one binary on parallel threads by default).
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Small, fast rows covering the three outcomes presolve must preserve: a non-zero
/// tight threshold, a zero threshold on an equivalent pair, and a pair whose first
/// rung is infeasible under a deliberately under-sized template.
const SUBSET: [&str; 3] = ["SimpleSingle", "sum", "ddec modified"];

#[test]
fn presolved_and_unpresolved_solves_agree() {
    let _guard = ENV_LOCK.lock().unwrap();
    for name in SUBSET {
        let benchmark = all_benchmarks().into_iter().find(|b| b.name == name).unwrap();
        let with_presolve = benchmark.solve();
        std::env::set_var("DCA_LP_NO_PRESOLVE", "1");
        let without_presolve = benchmark.solve();
        std::env::remove_var("DCA_LP_NO_PRESOLVE");
        match (&with_presolve, &without_presolve) {
            (Ok(a), Ok(b)) => {
                assert!(
                    (a.threshold - b.threshold).abs() <= 1e-4 * (1.0 + a.threshold.abs()),
                    "{name}: thresholds diverged ({} with presolve, {} without)",
                    a.threshold,
                    b.threshold
                );
            }
            (Err(a), Err(b)) => {
                assert_eq!(
                    std::mem::discriminant(a),
                    std::mem::discriminant(b),
                    "{name}: error kinds diverged ({a:?} vs {b:?})"
                );
            }
            _ => panic!(
                "{name}: feasibility verdicts diverged ({:?} with presolve, {:?} without)",
                with_presolve.as_ref().map(|r| r.threshold),
                without_presolve.as_ref().map(|r| r.threshold)
            ),
        }
    }
}

/// An infeasible rung (degree 1 on a pair that needs a quadratic witness at this
/// tier) must stay infeasible with and without presolve.
#[test]
fn presolve_preserves_infeasibility_verdicts() {
    let _guard = ENV_LOCK.lock().unwrap();
    use diffcost::prelude::*;
    let old = AnalyzedProgram::from_source(
        "proc f(a, b) { assume(a >= 1 && b >= 1); i = 0; while (i < a) { j = 0; \
         while (j < b) { tick(1); j = j + 1; } i = i + 1; } }",
    )
    .unwrap();
    let new = AnalyzedProgram::from_source(
        "proc f(a, b) { assume(a >= 1 && b >= 1); i = 0; while (i < b) { j = 0; \
         while (j < a) { tick(1); j = j + 1; } i = i + 1; } }",
    )
    .unwrap();
    let solver = DiffCostSolver::new(AnalysisOptions::with_degree(1));
    let with_presolve = solver.solve(&new, &old);
    std::env::set_var("DCA_LP_NO_PRESOLVE", "1");
    let without_presolve = solver.solve(&new, &old);
    std::env::remove_var("DCA_LP_NO_PRESOLVE");
    assert!(matches!(with_presolve, Err(AnalysisError::NoThresholdFound)), "{with_presolve:?}");
    assert!(
        matches!(without_presolve, Err(AnalysisError::NoThresholdFound)),
        "{without_presolve:?}"
    );
}
