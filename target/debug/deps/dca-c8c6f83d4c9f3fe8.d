/root/repo/target/debug/deps/dca-c8c6f83d4c9f3fe8.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/libdca-c8c6f83d4c9f3fe8.rmeta: crates/cli/src/main.rs

crates/cli/src/main.rs:
