/root/repo/target/debug/deps/dca_poly-4ed963aa35349ac1.d: crates/poly/src/lib.rs crates/poly/src/linexpr.rs crates/poly/src/monomial.rs crates/poly/src/polynomial.rs crates/poly/src/template.rs crates/poly/src/vars.rs

/root/repo/target/debug/deps/dca_poly-4ed963aa35349ac1: crates/poly/src/lib.rs crates/poly/src/linexpr.rs crates/poly/src/monomial.rs crates/poly/src/polynomial.rs crates/poly/src/template.rs crates/poly/src/vars.rs

crates/poly/src/lib.rs:
crates/poly/src/linexpr.rs:
crates/poly/src/monomial.rs:
crates/poly/src/polynomial.rs:
crates/poly/src/template.rs:
crates/poly/src/vars.rs:
