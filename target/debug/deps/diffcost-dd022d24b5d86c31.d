/root/repo/target/debug/deps/diffcost-dd022d24b5d86c31.d: src/lib.rs

/root/repo/target/debug/deps/libdiffcost-dd022d24b5d86c31.rlib: src/lib.rs

/root/repo/target/debug/deps/libdiffcost-dd022d24b5d86c31.rmeta: src/lib.rs

src/lib.rs:
