/root/repo/target/debug/deps/dca_lp-66fc6652f569b702.d: crates/lp/src/lib.rs crates/lp/src/problem.rs crates/lp/src/scalar.rs crates/lp/src/simplex.rs

/root/repo/target/debug/deps/libdca_lp-66fc6652f569b702.rlib: crates/lp/src/lib.rs crates/lp/src/problem.rs crates/lp/src/scalar.rs crates/lp/src/simplex.rs

/root/repo/target/debug/deps/libdca_lp-66fc6652f569b702.rmeta: crates/lp/src/lib.rs crates/lp/src/problem.rs crates/lp/src/scalar.rs crates/lp/src/simplex.rs

crates/lp/src/lib.rs:
crates/lp/src/problem.rs:
crates/lp/src/scalar.rs:
crates/lp/src/simplex.rs:
