/root/repo/target/debug/deps/pipeline-c82db157deccaf6b.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-c82db157deccaf6b: tests/pipeline.rs

tests/pipeline.rs:
