/root/repo/target/debug/deps/dca_benchmarks-a42e8b0cdde1e795.d: crates/benchmarks/src/lib.rs crates/benchmarks/src/suite.rs

/root/repo/target/debug/deps/dca_benchmarks-a42e8b0cdde1e795: crates/benchmarks/src/lib.rs crates/benchmarks/src/suite.rs

crates/benchmarks/src/lib.rs:
crates/benchmarks/src/suite.rs:
