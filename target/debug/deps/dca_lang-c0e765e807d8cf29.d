/root/repo/target/debug/deps/dca_lang-c0e765e807d8cf29.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/lexer.rs crates/lang/src/lower.rs crates/lang/src/parser.rs

/root/repo/target/debug/deps/libdca_lang-c0e765e807d8cf29.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/lexer.rs crates/lang/src/lower.rs crates/lang/src/parser.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/lexer.rs:
crates/lang/src/lower.rs:
crates/lang/src/parser.rs:
