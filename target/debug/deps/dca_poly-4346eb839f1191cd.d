/root/repo/target/debug/deps/dca_poly-4346eb839f1191cd.d: crates/poly/src/lib.rs crates/poly/src/linexpr.rs crates/poly/src/monomial.rs crates/poly/src/polynomial.rs crates/poly/src/template.rs crates/poly/src/vars.rs

/root/repo/target/debug/deps/libdca_poly-4346eb839f1191cd.rlib: crates/poly/src/lib.rs crates/poly/src/linexpr.rs crates/poly/src/monomial.rs crates/poly/src/polynomial.rs crates/poly/src/template.rs crates/poly/src/vars.rs

/root/repo/target/debug/deps/libdca_poly-4346eb839f1191cd.rmeta: crates/poly/src/lib.rs crates/poly/src/linexpr.rs crates/poly/src/monomial.rs crates/poly/src/polynomial.rs crates/poly/src/template.rs crates/poly/src/vars.rs

crates/poly/src/lib.rs:
crates/poly/src/linexpr.rs:
crates/poly/src/monomial.rs:
crates/poly/src/polynomial.rs:
crates/poly/src/template.rs:
crates/poly/src/vars.rs:
