/root/repo/target/debug/deps/diffcost-85f945925411023f.d: src/lib.rs

/root/repo/target/debug/deps/libdiffcost-85f945925411023f.rlib: src/lib.rs

/root/repo/target/debug/deps/libdiffcost-85f945925411023f.rmeta: src/lib.rs

src/lib.rs:
