/root/repo/target/debug/deps/dca_benchmarks-73949e2ce2195ab3.d: crates/benchmarks/src/lib.rs crates/benchmarks/src/suite.rs

/root/repo/target/debug/deps/libdca_benchmarks-73949e2ce2195ab3.rlib: crates/benchmarks/src/lib.rs crates/benchmarks/src/suite.rs

/root/repo/target/debug/deps/libdca_benchmarks-73949e2ce2195ab3.rmeta: crates/benchmarks/src/lib.rs crates/benchmarks/src/suite.rs

crates/benchmarks/src/lib.rs:
crates/benchmarks/src/suite.rs:
