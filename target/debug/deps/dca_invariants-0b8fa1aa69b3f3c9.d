/root/repo/target/debug/deps/dca_invariants-0b8fa1aa69b3f3c9.d: crates/invariants/src/lib.rs crates/invariants/src/analysis.rs crates/invariants/src/polyhedron.rs

/root/repo/target/debug/deps/libdca_invariants-0b8fa1aa69b3f3c9.rmeta: crates/invariants/src/lib.rs crates/invariants/src/analysis.rs crates/invariants/src/polyhedron.rs

crates/invariants/src/lib.rs:
crates/invariants/src/analysis.rs:
crates/invariants/src/polyhedron.rs:
