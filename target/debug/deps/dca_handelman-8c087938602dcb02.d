/root/repo/target/debug/deps/dca_handelman-8c087938602dcb02.d: crates/handelman/src/lib.rs crates/handelman/src/encode.rs crates/handelman/src/factory.rs

/root/repo/target/debug/deps/dca_handelman-8c087938602dcb02: crates/handelman/src/lib.rs crates/handelman/src/encode.rs crates/handelman/src/factory.rs

crates/handelman/src/lib.rs:
crates/handelman/src/encode.rs:
crates/handelman/src/factory.rs:
