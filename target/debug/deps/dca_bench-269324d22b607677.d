/root/repo/target/debug/deps/dca_bench-269324d22b607677.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/dca_bench-269324d22b607677: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
