/root/repo/target/debug/deps/running_example-a2ddbf935ede05ec.d: tests/running_example.rs

/root/repo/target/debug/deps/running_example-a2ddbf935ede05ec: tests/running_example.rs

tests/running_example.rs:
