/root/repo/target/debug/deps/running_example-5e944505a18d18b8.d: tests/running_example.rs

/root/repo/target/debug/deps/librunning_example-5e944505a18d18b8.rmeta: tests/running_example.rs

tests/running_example.rs:
