/root/repo/target/debug/deps/table1-dfa8da5d4a56f8e3.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-dfa8da5d4a56f8e3: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
