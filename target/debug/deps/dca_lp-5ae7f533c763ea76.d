/root/repo/target/debug/deps/dca_lp-5ae7f533c763ea76.d: crates/lp/src/lib.rs crates/lp/src/problem.rs crates/lp/src/scalar.rs crates/lp/src/simplex.rs

/root/repo/target/debug/deps/libdca_lp-5ae7f533c763ea76.rmeta: crates/lp/src/lib.rs crates/lp/src/problem.rs crates/lp/src/scalar.rs crates/lp/src/simplex.rs

crates/lp/src/lib.rs:
crates/lp/src/problem.rs:
crates/lp/src/scalar.rs:
crates/lp/src/simplex.rs:
