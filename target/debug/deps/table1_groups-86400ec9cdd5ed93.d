/root/repo/target/debug/deps/table1_groups-86400ec9cdd5ed93.d: crates/bench/benches/table1_groups.rs

/root/repo/target/debug/deps/libtable1_groups-86400ec9cdd5ed93.rmeta: crates/bench/benches/table1_groups.rs

crates/bench/benches/table1_groups.rs:
