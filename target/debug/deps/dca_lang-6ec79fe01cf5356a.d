/root/repo/target/debug/deps/dca_lang-6ec79fe01cf5356a.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/lexer.rs crates/lang/src/lower.rs crates/lang/src/parser.rs

/root/repo/target/debug/deps/libdca_lang-6ec79fe01cf5356a.rlib: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/lexer.rs crates/lang/src/lower.rs crates/lang/src/parser.rs

/root/repo/target/debug/deps/libdca_lang-6ec79fe01cf5356a.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/lexer.rs crates/lang/src/lower.rs crates/lang/src/parser.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/lexer.rs:
crates/lang/src/lower.rs:
crates/lang/src/parser.rs:
