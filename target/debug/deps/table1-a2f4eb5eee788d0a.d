/root/repo/target/debug/deps/table1-a2f4eb5eee788d0a.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-a2f4eb5eee788d0a: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
