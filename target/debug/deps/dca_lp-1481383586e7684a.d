/root/repo/target/debug/deps/dca_lp-1481383586e7684a.d: crates/lp/src/lib.rs crates/lp/src/problem.rs crates/lp/src/scalar.rs crates/lp/src/simplex.rs

/root/repo/target/debug/deps/libdca_lp-1481383586e7684a.rmeta: crates/lp/src/lib.rs crates/lp/src/problem.rs crates/lp/src/scalar.rs crates/lp/src/simplex.rs

crates/lp/src/lib.rs:
crates/lp/src/problem.rs:
crates/lp/src/scalar.rs:
crates/lp/src/simplex.rs:
