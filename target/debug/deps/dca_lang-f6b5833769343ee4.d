/root/repo/target/debug/deps/dca_lang-f6b5833769343ee4.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/lexer.rs crates/lang/src/lower.rs crates/lang/src/parser.rs

/root/repo/target/debug/deps/libdca_lang-f6b5833769343ee4.rlib: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/lexer.rs crates/lang/src/lower.rs crates/lang/src/parser.rs

/root/repo/target/debug/deps/libdca_lang-f6b5833769343ee4.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/lexer.rs crates/lang/src/lower.rs crates/lang/src/parser.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/lexer.rs:
crates/lang/src/lower.rs:
crates/lang/src/parser.rs:
