/root/repo/target/debug/deps/table1_groups-7b844a07f53d1d99.d: crates/bench/benches/table1_groups.rs

/root/repo/target/debug/deps/table1_groups-7b844a07f53d1d99: crates/bench/benches/table1_groups.rs

crates/bench/benches/table1_groups.rs:
