/root/repo/target/debug/deps/dca_handelman-eef50bad34410fb7.d: crates/handelman/src/lib.rs crates/handelman/src/encode.rs crates/handelman/src/factory.rs

/root/repo/target/debug/deps/libdca_handelman-eef50bad34410fb7.rmeta: crates/handelman/src/lib.rs crates/handelman/src/encode.rs crates/handelman/src/factory.rs

crates/handelman/src/lib.rs:
crates/handelman/src/encode.rs:
crates/handelman/src/factory.rs:
