/root/repo/target/debug/deps/diffcost-77773bf2aacc3a5f.d: src/lib.rs

/root/repo/target/debug/deps/libdiffcost-77773bf2aacc3a5f.rmeta: src/lib.rs

src/lib.rs:
