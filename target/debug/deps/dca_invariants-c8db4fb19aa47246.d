/root/repo/target/debug/deps/dca_invariants-c8db4fb19aa47246.d: crates/invariants/src/lib.rs crates/invariants/src/analysis.rs crates/invariants/src/polyhedron.rs

/root/repo/target/debug/deps/dca_invariants-c8db4fb19aa47246: crates/invariants/src/lib.rs crates/invariants/src/analysis.rs crates/invariants/src/polyhedron.rs

crates/invariants/src/lib.rs:
crates/invariants/src/analysis.rs:
crates/invariants/src/polyhedron.rs:
