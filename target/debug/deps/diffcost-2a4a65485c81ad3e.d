/root/repo/target/debug/deps/diffcost-2a4a65485c81ad3e.d: src/lib.rs

/root/repo/target/debug/deps/diffcost-2a4a65485c81ad3e: src/lib.rs

src/lib.rs:
