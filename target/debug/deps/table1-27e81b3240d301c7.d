/root/repo/target/debug/deps/table1-27e81b3240d301c7.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-27e81b3240d301c7: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
