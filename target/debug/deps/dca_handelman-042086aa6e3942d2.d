/root/repo/target/debug/deps/dca_handelman-042086aa6e3942d2.d: crates/handelman/src/lib.rs crates/handelman/src/encode.rs crates/handelman/src/factory.rs

/root/repo/target/debug/deps/libdca_handelman-042086aa6e3942d2.rlib: crates/handelman/src/lib.rs crates/handelman/src/encode.rs crates/handelman/src/factory.rs

/root/repo/target/debug/deps/libdca_handelman-042086aa6e3942d2.rmeta: crates/handelman/src/lib.rs crates/handelman/src/encode.rs crates/handelman/src/factory.rs

crates/handelman/src/lib.rs:
crates/handelman/src/encode.rs:
crates/handelman/src/factory.rs:
