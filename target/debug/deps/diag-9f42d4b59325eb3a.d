/root/repo/target/debug/deps/diag-9f42d4b59325eb3a.d: crates/bench/src/bin/diag.rs

/root/repo/target/debug/deps/diag-9f42d4b59325eb3a: crates/bench/src/bin/diag.rs

crates/bench/src/bin/diag.rs:
