/root/repo/target/debug/deps/diffcost-8a5e750d8ebeff06.d: src/lib.rs

/root/repo/target/debug/deps/libdiffcost-8a5e750d8ebeff06.rmeta: src/lib.rs

src/lib.rs:
