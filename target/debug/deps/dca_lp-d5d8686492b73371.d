/root/repo/target/debug/deps/dca_lp-d5d8686492b73371.d: crates/lp/src/lib.rs crates/lp/src/problem.rs crates/lp/src/scalar.rs crates/lp/src/simplex.rs

/root/repo/target/debug/deps/libdca_lp-d5d8686492b73371.rlib: crates/lp/src/lib.rs crates/lp/src/problem.rs crates/lp/src/scalar.rs crates/lp/src/simplex.rs

/root/repo/target/debug/deps/libdca_lp-d5d8686492b73371.rmeta: crates/lp/src/lib.rs crates/lp/src/problem.rs crates/lp/src/scalar.rs crates/lp/src/simplex.rs

crates/lp/src/lib.rs:
crates/lp/src/problem.rs:
crates/lp/src/scalar.rs:
crates/lp/src/simplex.rs:
