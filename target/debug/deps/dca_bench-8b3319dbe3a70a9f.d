/root/repo/target/debug/deps/dca_bench-8b3319dbe3a70a9f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdca_bench-8b3319dbe3a70a9f.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdca_bench-8b3319dbe3a70a9f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
