/root/repo/target/debug/deps/dca_numeric-887db200065cb493.d: crates/numeric/src/lib.rs crates/numeric/src/bigint.rs crates/numeric/src/rational.rs

/root/repo/target/debug/deps/libdca_numeric-887db200065cb493.rmeta: crates/numeric/src/lib.rs crates/numeric/src/bigint.rs crates/numeric/src/rational.rs

crates/numeric/src/lib.rs:
crates/numeric/src/bigint.rs:
crates/numeric/src/rational.rs:
