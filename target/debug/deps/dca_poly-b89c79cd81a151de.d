/root/repo/target/debug/deps/dca_poly-b89c79cd81a151de.d: crates/poly/src/lib.rs crates/poly/src/linexpr.rs crates/poly/src/monomial.rs crates/poly/src/polynomial.rs crates/poly/src/template.rs crates/poly/src/vars.rs

/root/repo/target/debug/deps/libdca_poly-b89c79cd81a151de.rmeta: crates/poly/src/lib.rs crates/poly/src/linexpr.rs crates/poly/src/monomial.rs crates/poly/src/polynomial.rs crates/poly/src/template.rs crates/poly/src/vars.rs

crates/poly/src/lib.rs:
crates/poly/src/linexpr.rs:
crates/poly/src/monomial.rs:
crates/poly/src/polynomial.rs:
crates/poly/src/template.rs:
crates/poly/src/vars.rs:
