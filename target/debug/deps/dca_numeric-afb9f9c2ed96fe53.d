/root/repo/target/debug/deps/dca_numeric-afb9f9c2ed96fe53.d: crates/numeric/src/lib.rs crates/numeric/src/bigint.rs crates/numeric/src/rational.rs

/root/repo/target/debug/deps/dca_numeric-afb9f9c2ed96fe53: crates/numeric/src/lib.rs crates/numeric/src/bigint.rs crates/numeric/src/rational.rs

crates/numeric/src/lib.rs:
crates/numeric/src/bigint.rs:
crates/numeric/src/rational.rs:
