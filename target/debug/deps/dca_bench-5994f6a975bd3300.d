/root/repo/target/debug/deps/dca_bench-5994f6a975bd3300.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdca_bench-5994f6a975bd3300.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdca_bench-5994f6a975bd3300.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
