/root/repo/target/debug/deps/dca_bench-13a00a53c5b0cb4a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/dca_bench-13a00a53c5b0cb4a: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
