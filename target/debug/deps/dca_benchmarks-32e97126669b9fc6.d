/root/repo/target/debug/deps/dca_benchmarks-32e97126669b9fc6.d: crates/benchmarks/src/lib.rs crates/benchmarks/src/suite.rs

/root/repo/target/debug/deps/libdca_benchmarks-32e97126669b9fc6.rmeta: crates/benchmarks/src/lib.rs crates/benchmarks/src/suite.rs

crates/benchmarks/src/lib.rs:
crates/benchmarks/src/suite.rs:
