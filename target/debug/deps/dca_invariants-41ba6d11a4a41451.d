/root/repo/target/debug/deps/dca_invariants-41ba6d11a4a41451.d: crates/invariants/src/lib.rs crates/invariants/src/analysis.rs crates/invariants/src/polyhedron.rs

/root/repo/target/debug/deps/libdca_invariants-41ba6d11a4a41451.rlib: crates/invariants/src/lib.rs crates/invariants/src/analysis.rs crates/invariants/src/polyhedron.rs

/root/repo/target/debug/deps/libdca_invariants-41ba6d11a4a41451.rmeta: crates/invariants/src/lib.rs crates/invariants/src/analysis.rs crates/invariants/src/polyhedron.rs

crates/invariants/src/lib.rs:
crates/invariants/src/analysis.rs:
crates/invariants/src/polyhedron.rs:
