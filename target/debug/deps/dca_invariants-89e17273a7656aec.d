/root/repo/target/debug/deps/dca_invariants-89e17273a7656aec.d: crates/invariants/src/lib.rs crates/invariants/src/analysis.rs crates/invariants/src/polyhedron.rs

/root/repo/target/debug/deps/libdca_invariants-89e17273a7656aec.rmeta: crates/invariants/src/lib.rs crates/invariants/src/analysis.rs crates/invariants/src/polyhedron.rs

crates/invariants/src/lib.rs:
crates/invariants/src/analysis.rs:
crates/invariants/src/polyhedron.rs:
