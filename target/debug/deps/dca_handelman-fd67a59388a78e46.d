/root/repo/target/debug/deps/dca_handelman-fd67a59388a78e46.d: crates/handelman/src/lib.rs crates/handelman/src/encode.rs crates/handelman/src/factory.rs

/root/repo/target/debug/deps/libdca_handelman-fd67a59388a78e46.rmeta: crates/handelman/src/lib.rs crates/handelman/src/encode.rs crates/handelman/src/factory.rs

crates/handelman/src/lib.rs:
crates/handelman/src/encode.rs:
crates/handelman/src/factory.rs:
