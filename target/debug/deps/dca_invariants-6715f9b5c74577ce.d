/root/repo/target/debug/deps/dca_invariants-6715f9b5c74577ce.d: crates/invariants/src/lib.rs crates/invariants/src/analysis.rs crates/invariants/src/polyhedron.rs

/root/repo/target/debug/deps/libdca_invariants-6715f9b5c74577ce.rlib: crates/invariants/src/lib.rs crates/invariants/src/analysis.rs crates/invariants/src/polyhedron.rs

/root/repo/target/debug/deps/libdca_invariants-6715f9b5c74577ce.rmeta: crates/invariants/src/lib.rs crates/invariants/src/analysis.rs crates/invariants/src/polyhedron.rs

crates/invariants/src/lib.rs:
crates/invariants/src/analysis.rs:
crates/invariants/src/polyhedron.rs:
