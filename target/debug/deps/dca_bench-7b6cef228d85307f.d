/root/repo/target/debug/deps/dca_bench-7b6cef228d85307f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdca_bench-7b6cef228d85307f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
