/root/repo/target/debug/deps/dca_numeric-a320fbb7ae147b05.d: crates/numeric/src/lib.rs crates/numeric/src/bigint.rs crates/numeric/src/rational.rs

/root/repo/target/debug/deps/libdca_numeric-a320fbb7ae147b05.rlib: crates/numeric/src/lib.rs crates/numeric/src/bigint.rs crates/numeric/src/rational.rs

/root/repo/target/debug/deps/libdca_numeric-a320fbb7ae147b05.rmeta: crates/numeric/src/lib.rs crates/numeric/src/bigint.rs crates/numeric/src/rational.rs

crates/numeric/src/lib.rs:
crates/numeric/src/bigint.rs:
crates/numeric/src/rational.rs:
