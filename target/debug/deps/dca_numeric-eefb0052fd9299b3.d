/root/repo/target/debug/deps/dca_numeric-eefb0052fd9299b3.d: crates/numeric/src/lib.rs crates/numeric/src/bigint.rs crates/numeric/src/rational.rs

/root/repo/target/debug/deps/libdca_numeric-eefb0052fd9299b3.rmeta: crates/numeric/src/lib.rs crates/numeric/src/bigint.rs crates/numeric/src/rational.rs

crates/numeric/src/lib.rs:
crates/numeric/src/bigint.rs:
crates/numeric/src/rational.rs:
