/root/repo/target/debug/deps/dca_benchmarks-28ee33e5f6f43a3c.d: crates/benchmarks/src/lib.rs crates/benchmarks/src/suite.rs

/root/repo/target/debug/deps/libdca_benchmarks-28ee33e5f6f43a3c.rlib: crates/benchmarks/src/lib.rs crates/benchmarks/src/suite.rs

/root/repo/target/debug/deps/libdca_benchmarks-28ee33e5f6f43a3c.rmeta: crates/benchmarks/src/lib.rs crates/benchmarks/src/suite.rs

crates/benchmarks/src/lib.rs:
crates/benchmarks/src/suite.rs:
