/root/repo/target/debug/deps/dca_benchmarks-7d964116e7101a85.d: crates/benchmarks/src/lib.rs crates/benchmarks/src/suite.rs

/root/repo/target/debug/deps/libdca_benchmarks-7d964116e7101a85.rmeta: crates/benchmarks/src/lib.rs crates/benchmarks/src/suite.rs

crates/benchmarks/src/lib.rs:
crates/benchmarks/src/suite.rs:
