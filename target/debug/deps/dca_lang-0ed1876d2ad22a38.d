/root/repo/target/debug/deps/dca_lang-0ed1876d2ad22a38.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/lexer.rs crates/lang/src/lower.rs crates/lang/src/parser.rs

/root/repo/target/debug/deps/libdca_lang-0ed1876d2ad22a38.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/lexer.rs crates/lang/src/lower.rs crates/lang/src/parser.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/lexer.rs:
crates/lang/src/lower.rs:
crates/lang/src/parser.rs:
