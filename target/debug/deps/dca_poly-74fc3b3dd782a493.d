/root/repo/target/debug/deps/dca_poly-74fc3b3dd782a493.d: crates/poly/src/lib.rs crates/poly/src/linexpr.rs crates/poly/src/monomial.rs crates/poly/src/polynomial.rs crates/poly/src/template.rs crates/poly/src/vars.rs

/root/repo/target/debug/deps/dca_poly-74fc3b3dd782a493: crates/poly/src/lib.rs crates/poly/src/linexpr.rs crates/poly/src/monomial.rs crates/poly/src/polynomial.rs crates/poly/src/template.rs crates/poly/src/vars.rs

crates/poly/src/lib.rs:
crates/poly/src/linexpr.rs:
crates/poly/src/monomial.rs:
crates/poly/src/polynomial.rs:
crates/poly/src/template.rs:
crates/poly/src/vars.rs:
