/root/repo/target/debug/deps/diag-60d5541c6579b208.d: crates/bench/src/bin/diag.rs

/root/repo/target/debug/deps/diag-60d5541c6579b208: crates/bench/src/bin/diag.rs

crates/bench/src/bin/diag.rs:
