/root/repo/target/debug/deps/dca_benchmarks-1699ed4141b53952.d: crates/benchmarks/src/lib.rs crates/benchmarks/src/suite.rs

/root/repo/target/debug/deps/dca_benchmarks-1699ed4141b53952: crates/benchmarks/src/lib.rs crates/benchmarks/src/suite.rs

crates/benchmarks/src/lib.rs:
crates/benchmarks/src/suite.rs:
