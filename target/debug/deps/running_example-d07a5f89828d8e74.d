/root/repo/target/debug/deps/running_example-d07a5f89828d8e74.d: tests/running_example.rs

/root/repo/target/debug/deps/running_example-d07a5f89828d8e74: tests/running_example.rs

tests/running_example.rs:
