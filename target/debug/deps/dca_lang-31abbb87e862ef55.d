/root/repo/target/debug/deps/dca_lang-31abbb87e862ef55.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/lexer.rs crates/lang/src/lower.rs crates/lang/src/parser.rs

/root/repo/target/debug/deps/dca_lang-31abbb87e862ef55: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/lexer.rs crates/lang/src/lower.rs crates/lang/src/parser.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/lexer.rs:
crates/lang/src/lower.rs:
crates/lang/src/parser.rs:
