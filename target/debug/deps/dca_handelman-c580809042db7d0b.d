/root/repo/target/debug/deps/dca_handelman-c580809042db7d0b.d: crates/handelman/src/lib.rs crates/handelman/src/encode.rs crates/handelman/src/factory.rs

/root/repo/target/debug/deps/libdca_handelman-c580809042db7d0b.rlib: crates/handelman/src/lib.rs crates/handelman/src/encode.rs crates/handelman/src/factory.rs

/root/repo/target/debug/deps/libdca_handelman-c580809042db7d0b.rmeta: crates/handelman/src/lib.rs crates/handelman/src/encode.rs crates/handelman/src/factory.rs

crates/handelman/src/lib.rs:
crates/handelman/src/encode.rs:
crates/handelman/src/factory.rs:
