/root/repo/target/debug/deps/pipeline-5b1a16dfa7022aeb.d: tests/pipeline.rs

/root/repo/target/debug/deps/libpipeline-5b1a16dfa7022aeb.rmeta: tests/pipeline.rs

tests/pipeline.rs:
