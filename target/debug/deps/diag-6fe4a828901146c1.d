/root/repo/target/debug/deps/diag-6fe4a828901146c1.d: crates/bench/src/bin/diag.rs

/root/repo/target/debug/deps/diag-6fe4a828901146c1: crates/bench/src/bin/diag.rs

crates/bench/src/bin/diag.rs:
