/root/repo/target/debug/deps/dca_ir-8546d1bcd00e6cc4.d: crates/ir/src/lib.rs crates/ir/src/explore.rs crates/ir/src/interp.rs crates/ir/src/rng.rs crates/ir/src/state.rs crates/ir/src/system.rs

/root/repo/target/debug/deps/libdca_ir-8546d1bcd00e6cc4.rlib: crates/ir/src/lib.rs crates/ir/src/explore.rs crates/ir/src/interp.rs crates/ir/src/rng.rs crates/ir/src/state.rs crates/ir/src/system.rs

/root/repo/target/debug/deps/libdca_ir-8546d1bcd00e6cc4.rmeta: crates/ir/src/lib.rs crates/ir/src/explore.rs crates/ir/src/interp.rs crates/ir/src/rng.rs crates/ir/src/state.rs crates/ir/src/system.rs

crates/ir/src/lib.rs:
crates/ir/src/explore.rs:
crates/ir/src/interp.rs:
crates/ir/src/rng.rs:
crates/ir/src/state.rs:
crates/ir/src/system.rs:
