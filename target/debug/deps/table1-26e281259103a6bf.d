/root/repo/target/debug/deps/table1-26e281259103a6bf.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-26e281259103a6bf.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
