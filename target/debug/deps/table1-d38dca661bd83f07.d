/root/repo/target/debug/deps/table1-d38dca661bd83f07.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-d38dca661bd83f07.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
