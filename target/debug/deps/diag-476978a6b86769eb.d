/root/repo/target/debug/deps/diag-476978a6b86769eb.d: crates/bench/src/bin/diag.rs

/root/repo/target/debug/deps/libdiag-476978a6b86769eb.rmeta: crates/bench/src/bin/diag.rs

crates/bench/src/bin/diag.rs:
