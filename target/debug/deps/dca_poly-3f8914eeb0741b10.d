/root/repo/target/debug/deps/dca_poly-3f8914eeb0741b10.d: crates/poly/src/lib.rs crates/poly/src/linexpr.rs crates/poly/src/monomial.rs crates/poly/src/polynomial.rs crates/poly/src/template.rs crates/poly/src/vars.rs

/root/repo/target/debug/deps/libdca_poly-3f8914eeb0741b10.rlib: crates/poly/src/lib.rs crates/poly/src/linexpr.rs crates/poly/src/monomial.rs crates/poly/src/polynomial.rs crates/poly/src/template.rs crates/poly/src/vars.rs

/root/repo/target/debug/deps/libdca_poly-3f8914eeb0741b10.rmeta: crates/poly/src/lib.rs crates/poly/src/linexpr.rs crates/poly/src/monomial.rs crates/poly/src/polynomial.rs crates/poly/src/template.rs crates/poly/src/vars.rs

crates/poly/src/lib.rs:
crates/poly/src/linexpr.rs:
crates/poly/src/monomial.rs:
crates/poly/src/polynomial.rs:
crates/poly/src/template.rs:
crates/poly/src/vars.rs:
