/root/repo/target/debug/deps/dca-6c5e20eb49d15b9a.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/libdca-6c5e20eb49d15b9a.rmeta: crates/cli/src/main.rs

crates/cli/src/main.rs:
