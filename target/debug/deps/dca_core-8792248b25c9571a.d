/root/repo/target/debug/deps/dca_core-8792248b25c9571a.d: crates/core/src/lib.rs crates/core/src/batch.rs crates/core/src/constraints.rs crates/core/src/escalate.rs crates/core/src/options.rs crates/core/src/potential.rs crates/core/src/program.rs crates/core/src/solver.rs crates/core/src/verify.rs

/root/repo/target/debug/deps/libdca_core-8792248b25c9571a.rlib: crates/core/src/lib.rs crates/core/src/batch.rs crates/core/src/constraints.rs crates/core/src/escalate.rs crates/core/src/options.rs crates/core/src/potential.rs crates/core/src/program.rs crates/core/src/solver.rs crates/core/src/verify.rs

/root/repo/target/debug/deps/libdca_core-8792248b25c9571a.rmeta: crates/core/src/lib.rs crates/core/src/batch.rs crates/core/src/constraints.rs crates/core/src/escalate.rs crates/core/src/options.rs crates/core/src/potential.rs crates/core/src/program.rs crates/core/src/solver.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/batch.rs:
crates/core/src/constraints.rs:
crates/core/src/escalate.rs:
crates/core/src/options.rs:
crates/core/src/potential.rs:
crates/core/src/program.rs:
crates/core/src/solver.rs:
crates/core/src/verify.rs:
