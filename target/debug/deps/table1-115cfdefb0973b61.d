/root/repo/target/debug/deps/table1-115cfdefb0973b61.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-115cfdefb0973b61: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
