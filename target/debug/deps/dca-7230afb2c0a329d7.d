/root/repo/target/debug/deps/dca-7230afb2c0a329d7.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/dca-7230afb2c0a329d7: crates/cli/src/main.rs

crates/cli/src/main.rs:
