/root/repo/target/debug/deps/dca_invariants-93f751850d0769ae.d: crates/invariants/src/lib.rs crates/invariants/src/analysis.rs crates/invariants/src/polyhedron.rs

/root/repo/target/debug/deps/dca_invariants-93f751850d0769ae: crates/invariants/src/lib.rs crates/invariants/src/analysis.rs crates/invariants/src/polyhedron.rs

crates/invariants/src/lib.rs:
crates/invariants/src/analysis.rs:
crates/invariants/src/polyhedron.rs:
