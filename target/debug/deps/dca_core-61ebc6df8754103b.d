/root/repo/target/debug/deps/dca_core-61ebc6df8754103b.d: crates/core/src/lib.rs crates/core/src/batch.rs crates/core/src/constraints.rs crates/core/src/escalate.rs crates/core/src/options.rs crates/core/src/potential.rs crates/core/src/program.rs crates/core/src/solver.rs crates/core/src/verify.rs

/root/repo/target/debug/deps/libdca_core-61ebc6df8754103b.rmeta: crates/core/src/lib.rs crates/core/src/batch.rs crates/core/src/constraints.rs crates/core/src/escalate.rs crates/core/src/options.rs crates/core/src/potential.rs crates/core/src/program.rs crates/core/src/solver.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/batch.rs:
crates/core/src/constraints.rs:
crates/core/src/escalate.rs:
crates/core/src/options.rs:
crates/core/src/potential.rs:
crates/core/src/program.rs:
crates/core/src/solver.rs:
crates/core/src/verify.rs:
