/root/repo/target/debug/deps/dca-4eff81e8fb623aee.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/dca-4eff81e8fb623aee: crates/cli/src/main.rs

crates/cli/src/main.rs:
