/root/repo/target/debug/deps/dca_ir-1f3a370c8becd3c9.d: crates/ir/src/lib.rs crates/ir/src/explore.rs crates/ir/src/interp.rs crates/ir/src/rng.rs crates/ir/src/state.rs crates/ir/src/system.rs

/root/repo/target/debug/deps/dca_ir-1f3a370c8becd3c9: crates/ir/src/lib.rs crates/ir/src/explore.rs crates/ir/src/interp.rs crates/ir/src/rng.rs crates/ir/src/state.rs crates/ir/src/system.rs

crates/ir/src/lib.rs:
crates/ir/src/explore.rs:
crates/ir/src/interp.rs:
crates/ir/src/rng.rs:
crates/ir/src/state.rs:
crates/ir/src/system.rs:
