/root/repo/target/debug/deps/pipeline-abc18e421971f8a1.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-abc18e421971f8a1: tests/pipeline.rs

tests/pipeline.rs:
