/root/repo/target/debug/deps/dca_invariants-bdeedfb16b94a9eb.d: crates/invariants/src/lib.rs crates/invariants/src/analysis.rs crates/invariants/src/polyhedron.rs

/root/repo/target/debug/deps/libdca_invariants-bdeedfb16b94a9eb.rlib: crates/invariants/src/lib.rs crates/invariants/src/analysis.rs crates/invariants/src/polyhedron.rs

/root/repo/target/debug/deps/libdca_invariants-bdeedfb16b94a9eb.rmeta: crates/invariants/src/lib.rs crates/invariants/src/analysis.rs crates/invariants/src/polyhedron.rs

crates/invariants/src/lib.rs:
crates/invariants/src/analysis.rs:
crates/invariants/src/polyhedron.rs:
