/root/repo/target/debug/deps/diag-6dbfd7f70d9337a4.d: crates/bench/src/bin/diag.rs

/root/repo/target/debug/deps/libdiag-6dbfd7f70d9337a4.rmeta: crates/bench/src/bin/diag.rs

crates/bench/src/bin/diag.rs:
