/root/repo/target/debug/deps/dca_lp-626b5669f5b7de3a.d: crates/lp/src/lib.rs crates/lp/src/problem.rs crates/lp/src/scalar.rs crates/lp/src/simplex.rs

/root/repo/target/debug/deps/dca_lp-626b5669f5b7de3a: crates/lp/src/lib.rs crates/lp/src/problem.rs crates/lp/src/scalar.rs crates/lp/src/simplex.rs

crates/lp/src/lib.rs:
crates/lp/src/problem.rs:
crates/lp/src/scalar.rs:
crates/lp/src/simplex.rs:
