/root/repo/target/debug/deps/dca_handelman-34c4d3860796606c.d: crates/handelman/src/lib.rs crates/handelman/src/encode.rs crates/handelman/src/factory.rs

/root/repo/target/debug/deps/dca_handelman-34c4d3860796606c: crates/handelman/src/lib.rs crates/handelman/src/encode.rs crates/handelman/src/factory.rs

crates/handelman/src/lib.rs:
crates/handelman/src/encode.rs:
crates/handelman/src/factory.rs:
