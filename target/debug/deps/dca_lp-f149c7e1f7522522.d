/root/repo/target/debug/deps/dca_lp-f149c7e1f7522522.d: crates/lp/src/lib.rs crates/lp/src/problem.rs crates/lp/src/scalar.rs crates/lp/src/simplex.rs

/root/repo/target/debug/deps/dca_lp-f149c7e1f7522522: crates/lp/src/lib.rs crates/lp/src/problem.rs crates/lp/src/scalar.rs crates/lp/src/simplex.rs

crates/lp/src/lib.rs:
crates/lp/src/problem.rs:
crates/lp/src/scalar.rs:
crates/lp/src/simplex.rs:
