/root/repo/target/debug/deps/table1_groups-ff218e1670f51bf3.d: crates/bench/benches/table1_groups.rs

/root/repo/target/debug/deps/table1_groups-ff218e1670f51bf3: crates/bench/benches/table1_groups.rs

crates/bench/benches/table1_groups.rs:
