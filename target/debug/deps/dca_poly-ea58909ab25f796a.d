/root/repo/target/debug/deps/dca_poly-ea58909ab25f796a.d: crates/poly/src/lib.rs crates/poly/src/linexpr.rs crates/poly/src/monomial.rs crates/poly/src/polynomial.rs crates/poly/src/template.rs crates/poly/src/vars.rs

/root/repo/target/debug/deps/libdca_poly-ea58909ab25f796a.rmeta: crates/poly/src/lib.rs crates/poly/src/linexpr.rs crates/poly/src/monomial.rs crates/poly/src/polynomial.rs crates/poly/src/template.rs crates/poly/src/vars.rs

crates/poly/src/lib.rs:
crates/poly/src/linexpr.rs:
crates/poly/src/monomial.rs:
crates/poly/src/polynomial.rs:
crates/poly/src/template.rs:
crates/poly/src/vars.rs:
