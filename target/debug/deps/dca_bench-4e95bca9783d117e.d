/root/repo/target/debug/deps/dca_bench-4e95bca9783d117e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdca_bench-4e95bca9783d117e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
