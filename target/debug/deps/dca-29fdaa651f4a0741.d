/root/repo/target/debug/deps/dca-29fdaa651f4a0741.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/dca-29fdaa651f4a0741: crates/cli/src/main.rs

crates/cli/src/main.rs:
