/root/repo/target/debug/deps/dca_numeric-737815a458bf729c.d: crates/numeric/src/lib.rs crates/numeric/src/bigint.rs crates/numeric/src/rational.rs

/root/repo/target/debug/deps/dca_numeric-737815a458bf729c: crates/numeric/src/lib.rs crates/numeric/src/bigint.rs crates/numeric/src/rational.rs

crates/numeric/src/lib.rs:
crates/numeric/src/bigint.rs:
crates/numeric/src/rational.rs:
