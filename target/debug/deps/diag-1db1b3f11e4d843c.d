/root/repo/target/debug/deps/diag-1db1b3f11e4d843c.d: crates/bench/src/bin/diag.rs

/root/repo/target/debug/deps/diag-1db1b3f11e4d843c: crates/bench/src/bin/diag.rs

crates/bench/src/bin/diag.rs:
