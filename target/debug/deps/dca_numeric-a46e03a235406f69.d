/root/repo/target/debug/deps/dca_numeric-a46e03a235406f69.d: crates/numeric/src/lib.rs crates/numeric/src/bigint.rs crates/numeric/src/rational.rs

/root/repo/target/debug/deps/libdca_numeric-a46e03a235406f69.rlib: crates/numeric/src/lib.rs crates/numeric/src/bigint.rs crates/numeric/src/rational.rs

/root/repo/target/debug/deps/libdca_numeric-a46e03a235406f69.rmeta: crates/numeric/src/lib.rs crates/numeric/src/bigint.rs crates/numeric/src/rational.rs

crates/numeric/src/lib.rs:
crates/numeric/src/bigint.rs:
crates/numeric/src/rational.rs:
