/root/repo/target/debug/deps/dca_core-b1e85871166ee7f0.d: crates/core/src/lib.rs crates/core/src/batch.rs crates/core/src/constraints.rs crates/core/src/escalate.rs crates/core/src/options.rs crates/core/src/potential.rs crates/core/src/program.rs crates/core/src/solver.rs crates/core/src/verify.rs

/root/repo/target/debug/deps/dca_core-b1e85871166ee7f0: crates/core/src/lib.rs crates/core/src/batch.rs crates/core/src/constraints.rs crates/core/src/escalate.rs crates/core/src/options.rs crates/core/src/potential.rs crates/core/src/program.rs crates/core/src/solver.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/batch.rs:
crates/core/src/constraints.rs:
crates/core/src/escalate.rs:
crates/core/src/options.rs:
crates/core/src/potential.rs:
crates/core/src/program.rs:
crates/core/src/solver.rs:
crates/core/src/verify.rs:
