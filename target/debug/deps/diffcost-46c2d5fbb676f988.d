/root/repo/target/debug/deps/diffcost-46c2d5fbb676f988.d: src/lib.rs

/root/repo/target/debug/deps/diffcost-46c2d5fbb676f988: src/lib.rs

src/lib.rs:
