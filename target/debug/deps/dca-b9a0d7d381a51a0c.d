/root/repo/target/debug/deps/dca-b9a0d7d381a51a0c.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/dca-b9a0d7d381a51a0c: crates/cli/src/main.rs

crates/cli/src/main.rs:
