/root/repo/target/debug/libdca_numeric.rlib: /root/repo/crates/numeric/src/bigint.rs /root/repo/crates/numeric/src/lib.rs /root/repo/crates/numeric/src/rational.rs
