/root/repo/target/debug/examples/regression_gate-3fc0b7025962dd20.d: examples/regression_gate.rs

/root/repo/target/debug/examples/regression_gate-3fc0b7025962dd20: examples/regression_gate.rs

examples/regression_gate.rs:
