/root/repo/target/debug/examples/quickstart-0c37960beba8e436.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0c37960beba8e436: examples/quickstart.rs

examples/quickstart.rs:
