/root/repo/target/debug/examples/equivalent_rewrite-8f4a2da8b7543bb8.d: examples/equivalent_rewrite.rs

/root/repo/target/debug/examples/libequivalent_rewrite-8f4a2da8b7543bb8.rmeta: examples/equivalent_rewrite.rs

examples/equivalent_rewrite.rs:
