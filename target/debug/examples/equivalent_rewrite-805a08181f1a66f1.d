/root/repo/target/debug/examples/equivalent_rewrite-805a08181f1a66f1.d: examples/equivalent_rewrite.rs

/root/repo/target/debug/examples/equivalent_rewrite-805a08181f1a66f1: examples/equivalent_rewrite.rs

examples/equivalent_rewrite.rs:
