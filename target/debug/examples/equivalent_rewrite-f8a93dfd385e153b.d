/root/repo/target/debug/examples/equivalent_rewrite-f8a93dfd385e153b.d: examples/equivalent_rewrite.rs

/root/repo/target/debug/examples/equivalent_rewrite-f8a93dfd385e153b: examples/equivalent_rewrite.rs

examples/equivalent_rewrite.rs:
