/root/repo/target/debug/examples/quickstart-00d2b31402899e2a.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-00d2b31402899e2a.rmeta: examples/quickstart.rs

examples/quickstart.rs:
