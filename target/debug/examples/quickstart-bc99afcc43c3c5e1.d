/root/repo/target/debug/examples/quickstart-bc99afcc43c3c5e1.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-bc99afcc43c3c5e1: examples/quickstart.rs

examples/quickstart.rs:
