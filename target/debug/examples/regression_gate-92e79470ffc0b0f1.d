/root/repo/target/debug/examples/regression_gate-92e79470ffc0b0f1.d: examples/regression_gate.rs

/root/repo/target/debug/examples/libregression_gate-92e79470ffc0b0f1.rmeta: examples/regression_gate.rs

examples/regression_gate.rs:
