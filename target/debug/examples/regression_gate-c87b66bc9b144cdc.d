/root/repo/target/debug/examples/regression_gate-c87b66bc9b144cdc.d: examples/regression_gate.rs

/root/repo/target/debug/examples/regression_gate-c87b66bc9b144cdc: examples/regression_gate.rs

examples/regression_gate.rs:
