(function() {
    const implementors = Object.fromEntries([["dca_numeric",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.SubAssign.html\" title=\"trait core::ops::arith::SubAssign\">SubAssign</a> for <a class=\"struct\" href=\"dca_numeric/struct.Rational.html\" title=\"struct dca_numeric::Rational\">Rational</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.SubAssign.html\" title=\"trait core::ops::arith::SubAssign\">SubAssign</a>&lt;&amp;<a class=\"struct\" href=\"dca_numeric/struct.BigInt.html\" title=\"struct dca_numeric::BigInt\">BigInt</a>&gt; for <a class=\"struct\" href=\"dca_numeric/struct.BigInt.html\" title=\"struct dca_numeric::BigInt\">BigInt</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.SubAssign.html\" title=\"trait core::ops::arith::SubAssign\">SubAssign</a>&lt;&amp;<a class=\"struct\" href=\"dca_numeric/struct.Rational.html\" title=\"struct dca_numeric::Rational\">Rational</a>&gt; for <a class=\"struct\" href=\"dca_numeric/struct.Rational.html\" title=\"struct dca_numeric::Rational\">Rational</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[1109]}