/root/repo/target/release/deps/dca_bench-4e510f35bc3d63ea.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/dca_bench-4e510f35bc3d63ea: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
