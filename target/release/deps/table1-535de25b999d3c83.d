/root/repo/target/release/deps/table1-535de25b999d3c83.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-535de25b999d3c83: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
