/root/repo/target/release/deps/dca-6c7787aab4caadc3.d: crates/cli/src/main.rs

/root/repo/target/release/deps/dca-6c7787aab4caadc3: crates/cli/src/main.rs

crates/cli/src/main.rs:
