/root/repo/target/release/deps/table1_groups-a3fac777bc8c041b.d: crates/bench/benches/table1_groups.rs

/root/repo/target/release/deps/table1_groups-a3fac777bc8c041b: crates/bench/benches/table1_groups.rs

crates/bench/benches/table1_groups.rs:
