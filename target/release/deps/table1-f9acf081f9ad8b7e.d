/root/repo/target/release/deps/table1-f9acf081f9ad8b7e.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-f9acf081f9ad8b7e: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
