/root/repo/target/release/deps/dca_lp-09cf4463280b4aec.d: crates/lp/src/lib.rs crates/lp/src/problem.rs crates/lp/src/scalar.rs crates/lp/src/simplex.rs

/root/repo/target/release/deps/libdca_lp-09cf4463280b4aec.rlib: crates/lp/src/lib.rs crates/lp/src/problem.rs crates/lp/src/scalar.rs crates/lp/src/simplex.rs

/root/repo/target/release/deps/libdca_lp-09cf4463280b4aec.rmeta: crates/lp/src/lib.rs crates/lp/src/problem.rs crates/lp/src/scalar.rs crates/lp/src/simplex.rs

crates/lp/src/lib.rs:
crates/lp/src/problem.rs:
crates/lp/src/scalar.rs:
crates/lp/src/simplex.rs:
