/root/repo/target/release/deps/dca_handelman-141e35dc22ac9d6c.d: crates/handelman/src/lib.rs crates/handelman/src/encode.rs crates/handelman/src/factory.rs

/root/repo/target/release/deps/libdca_handelman-141e35dc22ac9d6c.rlib: crates/handelman/src/lib.rs crates/handelman/src/encode.rs crates/handelman/src/factory.rs

/root/repo/target/release/deps/libdca_handelman-141e35dc22ac9d6c.rmeta: crates/handelman/src/lib.rs crates/handelman/src/encode.rs crates/handelman/src/factory.rs

crates/handelman/src/lib.rs:
crates/handelman/src/encode.rs:
crates/handelman/src/factory.rs:
