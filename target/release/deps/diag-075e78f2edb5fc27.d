/root/repo/target/release/deps/diag-075e78f2edb5fc27.d: crates/bench/src/bin/diag.rs

/root/repo/target/release/deps/diag-075e78f2edb5fc27: crates/bench/src/bin/diag.rs

crates/bench/src/bin/diag.rs:
