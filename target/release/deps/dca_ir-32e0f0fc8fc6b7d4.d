/root/repo/target/release/deps/dca_ir-32e0f0fc8fc6b7d4.d: crates/ir/src/lib.rs crates/ir/src/explore.rs crates/ir/src/interp.rs crates/ir/src/rng.rs crates/ir/src/state.rs crates/ir/src/system.rs

/root/repo/target/release/deps/libdca_ir-32e0f0fc8fc6b7d4.rlib: crates/ir/src/lib.rs crates/ir/src/explore.rs crates/ir/src/interp.rs crates/ir/src/rng.rs crates/ir/src/state.rs crates/ir/src/system.rs

/root/repo/target/release/deps/libdca_ir-32e0f0fc8fc6b7d4.rmeta: crates/ir/src/lib.rs crates/ir/src/explore.rs crates/ir/src/interp.rs crates/ir/src/rng.rs crates/ir/src/state.rs crates/ir/src/system.rs

crates/ir/src/lib.rs:
crates/ir/src/explore.rs:
crates/ir/src/interp.rs:
crates/ir/src/rng.rs:
crates/ir/src/state.rs:
crates/ir/src/system.rs:
