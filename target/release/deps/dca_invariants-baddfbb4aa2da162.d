/root/repo/target/release/deps/dca_invariants-baddfbb4aa2da162.d: crates/invariants/src/lib.rs crates/invariants/src/analysis.rs crates/invariants/src/polyhedron.rs

/root/repo/target/release/deps/libdca_invariants-baddfbb4aa2da162.rlib: crates/invariants/src/lib.rs crates/invariants/src/analysis.rs crates/invariants/src/polyhedron.rs

/root/repo/target/release/deps/libdca_invariants-baddfbb4aa2da162.rmeta: crates/invariants/src/lib.rs crates/invariants/src/analysis.rs crates/invariants/src/polyhedron.rs

crates/invariants/src/lib.rs:
crates/invariants/src/analysis.rs:
crates/invariants/src/polyhedron.rs:
