/root/repo/target/release/deps/dca_core-05a93fea04868bc3.d: crates/core/src/lib.rs crates/core/src/batch.rs crates/core/src/constraints.rs crates/core/src/escalate.rs crates/core/src/options.rs crates/core/src/potential.rs crates/core/src/program.rs crates/core/src/solver.rs crates/core/src/verify.rs

/root/repo/target/release/deps/libdca_core-05a93fea04868bc3.rlib: crates/core/src/lib.rs crates/core/src/batch.rs crates/core/src/constraints.rs crates/core/src/escalate.rs crates/core/src/options.rs crates/core/src/potential.rs crates/core/src/program.rs crates/core/src/solver.rs crates/core/src/verify.rs

/root/repo/target/release/deps/libdca_core-05a93fea04868bc3.rmeta: crates/core/src/lib.rs crates/core/src/batch.rs crates/core/src/constraints.rs crates/core/src/escalate.rs crates/core/src/options.rs crates/core/src/potential.rs crates/core/src/program.rs crates/core/src/solver.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/batch.rs:
crates/core/src/constraints.rs:
crates/core/src/escalate.rs:
crates/core/src/options.rs:
crates/core/src/potential.rs:
crates/core/src/program.rs:
crates/core/src/solver.rs:
crates/core/src/verify.rs:
