/root/repo/target/release/deps/diag-e9ac1475e7d349e7.d: crates/bench/src/bin/diag.rs

/root/repo/target/release/deps/diag-e9ac1475e7d349e7: crates/bench/src/bin/diag.rs

crates/bench/src/bin/diag.rs:
