/root/repo/target/release/deps/dca_numeric-806561f4c6b6708e.d: crates/numeric/src/lib.rs crates/numeric/src/bigint.rs crates/numeric/src/rational.rs

/root/repo/target/release/deps/libdca_numeric-806561f4c6b6708e.rlib: crates/numeric/src/lib.rs crates/numeric/src/bigint.rs crates/numeric/src/rational.rs

/root/repo/target/release/deps/libdca_numeric-806561f4c6b6708e.rmeta: crates/numeric/src/lib.rs crates/numeric/src/bigint.rs crates/numeric/src/rational.rs

crates/numeric/src/lib.rs:
crates/numeric/src/bigint.rs:
crates/numeric/src/rational.rs:
