/root/repo/target/release/deps/dca_poly-bb77d2405a1a2994.d: crates/poly/src/lib.rs crates/poly/src/linexpr.rs crates/poly/src/monomial.rs crates/poly/src/polynomial.rs crates/poly/src/template.rs crates/poly/src/vars.rs

/root/repo/target/release/deps/libdca_poly-bb77d2405a1a2994.rlib: crates/poly/src/lib.rs crates/poly/src/linexpr.rs crates/poly/src/monomial.rs crates/poly/src/polynomial.rs crates/poly/src/template.rs crates/poly/src/vars.rs

/root/repo/target/release/deps/libdca_poly-bb77d2405a1a2994.rmeta: crates/poly/src/lib.rs crates/poly/src/linexpr.rs crates/poly/src/monomial.rs crates/poly/src/polynomial.rs crates/poly/src/template.rs crates/poly/src/vars.rs

crates/poly/src/lib.rs:
crates/poly/src/linexpr.rs:
crates/poly/src/monomial.rs:
crates/poly/src/polynomial.rs:
crates/poly/src/template.rs:
crates/poly/src/vars.rs:
