/root/repo/target/release/deps/dca_bench-e13b88b390b1f8ec.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdca_bench-e13b88b390b1f8ec.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdca_bench-e13b88b390b1f8ec.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
