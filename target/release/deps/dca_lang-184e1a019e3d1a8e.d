/root/repo/target/release/deps/dca_lang-184e1a019e3d1a8e.d: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/lexer.rs crates/lang/src/lower.rs crates/lang/src/parser.rs

/root/repo/target/release/deps/libdca_lang-184e1a019e3d1a8e.rlib: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/lexer.rs crates/lang/src/lower.rs crates/lang/src/parser.rs

/root/repo/target/release/deps/libdca_lang-184e1a019e3d1a8e.rmeta: crates/lang/src/lib.rs crates/lang/src/ast.rs crates/lang/src/lexer.rs crates/lang/src/lower.rs crates/lang/src/parser.rs

crates/lang/src/lib.rs:
crates/lang/src/ast.rs:
crates/lang/src/lexer.rs:
crates/lang/src/lower.rs:
crates/lang/src/parser.rs:
