/root/repo/target/release/deps/diffcost-d26f773bf9ecbbc6.d: src/lib.rs

/root/repo/target/release/deps/libdiffcost-d26f773bf9ecbbc6.rlib: src/lib.rs

/root/repo/target/release/deps/libdiffcost-d26f773bf9ecbbc6.rmeta: src/lib.rs

src/lib.rs:
