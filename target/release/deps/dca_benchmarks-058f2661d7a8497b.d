/root/repo/target/release/deps/dca_benchmarks-058f2661d7a8497b.d: crates/benchmarks/src/lib.rs crates/benchmarks/src/suite.rs

/root/repo/target/release/deps/libdca_benchmarks-058f2661d7a8497b.rlib: crates/benchmarks/src/lib.rs crates/benchmarks/src/suite.rs

/root/repo/target/release/deps/libdca_benchmarks-058f2661d7a8497b.rmeta: crates/benchmarks/src/lib.rs crates/benchmarks/src/suite.rs

crates/benchmarks/src/lib.rs:
crates/benchmarks/src/suite.rs:
