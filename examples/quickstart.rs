//! Quickstart: the paper's running example (Fig. 1).
//!
//! Two versions of `join` iterate over a pair of collections; the revision interchanges
//! the loops and doubles the per-pair operator cost. The analysis proves that the new
//! version costs at most `lenA * lenB <= 10000` more than the old one.
//!
//! Run with: `cargo run --release --example quickstart`

use diffcost::benchmarks::running_example;
use diffcost::prelude::*;

fn main() {
    let benchmark = running_example();
    println!("== old version ==\n{}", benchmark.source_old.trim());
    println!("\n== new version ==\n{}", benchmark.source_new.trim());

    let old = AnalyzedProgram::from_source(benchmark.source_old).expect("old version compiles");
    let new = AnalyzedProgram::from_source(benchmark.source_new).expect("new version compiles");

    println!("\nlowered old version:\n{}", old.ts.render());

    let solver = DiffCostSolver::new(AnalysisOptions::default());
    match solver.solve(&new, &old) {
        Ok(result) => {
            println!("differential threshold t = {:.2}", result.threshold);
            println!("integer threshold        = {}", result.threshold_int());
            println!("LP size: {} variables, {} constraints, solved in {:?}",
                result.stats.lp_variables, result.stats.lp_constraints, result.stats.duration);
            // If the phase-split analysis won, the witnesses are keyed over the
            // split systems carried in the result rather than the inputs.
            let (ts_new, ts_old) = match result.split_systems.as_deref() {
                Some((split_new, split_old)) => (split_new, split_old),
                None => (&new.ts, &old.ts),
            };
            println!("\npotential function for the new version:\n{}",
                result.potential_new.render(ts_new));
            println!("anti-potential function for the old version:\n{}",
                result.anti_potential_old.render(ts_old));
        }
        Err(error) => println!("analysis failed: {error}"),
    }
}
