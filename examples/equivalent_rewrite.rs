//! Proving that a refactoring does not change resource usage.
//!
//! The second benchmark class of the paper consists of semantically equivalent program
//! pairs (from the semantic-differencing literature). Here we prove both directions —
//! `cost_new − cost_old ≤ 0` and `cost_old − cost_new ≤ 0` — which together show the
//! rewrite is cost-neutral on every input. We also demonstrate the symbolic-bound mode
//! and the single-program precision analysis of Section 7.
//!
//! Run with: `cargo run --release --example equivalent_rewrite`

use diffcost::poly::Polynomial;
use diffcost::prelude::*;

const COUNT_UP: &str = r#"
    proc total(n) {
        assume(n >= 1 && n <= 100);
        i = 0;
        while (i < n) { tick(1); i = i + 1; }
    }
"#;

const COUNT_DOWN: &str = r#"
    proc total(n) {
        assume(n >= 1 && n <= 100);
        i = n;
        while (i > 0) { tick(1); i = i - 1; }
    }
"#;

fn main() {
    let up = AnalyzedProgram::from_source(COUNT_UP).expect("count-up compiles");
    let down = AnalyzedProgram::from_source(COUNT_DOWN).expect("count-down compiles");
    let solver = DiffCostSolver::new(AnalysisOptions::default());

    let forward = solver.solve(&down, &up).expect("forward direction solves");
    let backward = solver.solve(&up, &down).expect("backward direction solves");
    println!("cost(count_down) - cost(count_up) <= {}", forward.threshold_int());
    println!("cost(count_up) - cost(count_down) <= {}", backward.threshold_int());
    if forward.threshold_int() <= 0 && backward.threshold_int() <= 0 {
        println!("=> the rewrite is cost-neutral on every input");
    }

    // Symbolic bound: the difference is bounded by the polynomial 0 (over the inputs).
    let zero = Polynomial::zero();
    match solver.prove_symbolic_bound(&down, &up, &zero) {
        Ok(_) => println!("symbolic bound 0 proved: cost never increases"),
        Err(error) => println!("symbolic bound 0 not provable: {error}"),
    }

    // Section 7: single-program precision — upper and lower bounds on cost(count_up)
    // whose gap is at most the reported precision.
    let precision = solver.precision(&up).expect("precision analysis solves");
    println!(
        "single-program bounds for count_up have precision gap <= {:.2}",
        precision.precision
    );
    println!("upper bound at entry:\n{}", precision.upper.render(&up.ts));
}
