//! Code-review regression gate: fail a (mock) review when a revision can increase cost by
//! more than an allowed budget.
//!
//! This is the motivating scenario of the paper's introduction: a revision to a procedure
//! is analyzed at review time and a warning is raised if the worst-case extra cost
//! exceeds a budget chosen by the team.
//!
//! Run with: `cargo run --release --example regression_gate`

use diffcost::prelude::*;

const BEFORE: &str = r#"
    proc process(batch) {
        assume(batch >= 1 && batch <= 100);
        i = 0;
        while (i < batch) {
            tick(1);
            i = i + 1;
        }
    }
"#;

/// The revision adds a retry pass over the batch for items that (non-deterministically)
/// fail validation.
const AFTER: &str = r#"
    proc process(batch) {
        assume(batch >= 1 && batch <= 100);
        i = 0;
        while (i < batch) {
            tick(1);
            if (*) { tick(1); }
            i = i + 1;
        }
    }
"#;

fn main() {
    let budget: i64 = 50;
    let old = AnalyzedProgram::from_source(BEFORE).expect("old version compiles");
    let new = AnalyzedProgram::from_source(AFTER).expect("new version compiles");
    let solver = DiffCostSolver::new(AnalysisOptions::default());

    match solver.solve(&new, &old) {
        Ok(result) => {
            println!("worst-case extra cost of the revision: {}", result.threshold_int());
            if result.threshold_int() > budget {
                println!("REGRESSION: exceeds the review budget of {budget} cost units");
                // Theorem 4.3: prove that the budget is really exceeded on some input,
                // not just that our upper bound is loose.
                match solver.refute_threshold(&new, &old, budget, &[]) {
                    Ok(refutation) => {
                        let name_of = |v| new.ts.pool().name(v).to_string();
                        let witness: Vec<String> = refutation
                            .witness_input
                            .iter()
                            .map(|(&v, &x)| format!("{} = {}", name_of(v), x))
                            .collect();
                        println!("witness input exceeding the budget: {}", witness.join(", "));
                    }
                    Err(_) => println!("(the budget may still be met; the bound is not tight)"),
                }
            } else {
                println!("OK: within the review budget of {budget} cost units");
            }
        }
        Err(error) => println!("analysis failed: {error}"),
    }
}
