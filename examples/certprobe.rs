//! Developer diagnostic: checks block-by-block (with the exact LP backend) whether the
//! degree-2 synthesis LP of the Fig. 1 `join` pair admits the hand-derived certificate
//!
//! ```text
//! phi_new(l)  = 2*lenA*(lenB - i) - 2j-ish per location,   chi_old symmetric,
//! t = 10000
//! ```
//!
//! Each Handelman implication block only shares the *template* unknowns with the rest of
//! the LP; once those are fixed to the hand values, every block becomes an independent
//! small feasibility LP over its own non-negative multipliers. If every block reports
//! `feasible`, the full synthesis LP is feasible and any `Infeasible` answer from the
//! floating-point backend is spurious.

use std::collections::BTreeMap;

use diffcost::core::{collect_program_constraints, ConstraintSet, ProgramTemplates, TemplateRole};
use diffcost::handelman::{encode_nonnegativity, ConstraintSense, UnknownFactory, UnknownKind};
use diffcost::lp::{ConstraintOp, LpProblem, LpStatus, VarKind};
use diffcost::numeric::Rational;
use diffcost::poly::{Monomial, TemplatePolynomial, UnknownId};
use diffcost::prelude::*;

fn main() {
    let benchmark = diffcost::benchmarks::running_example();
    let old = AnalyzedProgram::from_source(benchmark.source_old).unwrap();
    let new = AnalyzedProgram::from_source(benchmark.source_new).unwrap();

    let mut factory = UnknownFactory::new();
    let threshold = factory.fresh("t", UnknownKind::Free);
    let templates_new =
        ProgramTemplates::allocate(&new.ts, 2, false, &mut factory, "phi_new");
    let templates_old =
        ProgramTemplates::allocate(&old.ts, 2, false, &mut factory, "chi_old");
    let mut set = ConstraintSet::new();
    collect_program_constraints(
        &new.ts, &new.invariants, &templates_new, TemplateRole::Potential, 2, &mut factory,
        &mut set,
    );
    collect_program_constraints(
        &old.ts, &old.invariants, &templates_old, TemplateRole::AntiPotential, 2,
        &mut factory, &mut set,
    );
    // Differential constraint over theta0 (identical variable names: identity mapping).
    let phi0 = templates_new.at(new.ts.initial()).clone();
    let chi0 = templates_old.at(old.ts.initial()).clone();
    let mut theta0 = new.ts.theta0().to_vec();
    for c in old.ts.theta0() {
        if !theta0.contains(c) {
            theta0.push(c.clone());
        }
    }
    let poly = &(&TemplatePolynomial::from_unknown(threshold) - &phi0) + &chi0;
    let encoding = encode_nonnegativity(&theta0, &poly, 2, &mut factory, "differential");
    set.extend(encoding.constraints);

    // ----- hand-crafted template assignment ---------------------------------------------
    let mut assignment: BTreeMap<UnknownId, Rational> = BTreeMap::new();
    assignment.insert(threshold, Rational::from_int(10_000));

    // phi_new: coefficients per (location-name, monomial) over vars i, j, lenA, lenB.
    // chi_old: the same shapes with the outer bound lenA <-> lenB swapped and halved.
    let fill = |ts: &diffcost::ir::TransitionSystem,
                templates: &ProgramTemplates,
                scale: i64,
                assignment: &mut BTreeMap<UnknownId, Rational>| {
        let i = ts.pool().lookup("i").unwrap();
        let j = ts.pool().lookup("j").unwrap();
        let len_a = ts.pool().lookup("lenA").unwrap();
        let len_b = ts.pool().lookup("lenB").unwrap();
        // The *new* program iterates lenB outer / lenA inner; the old one the opposite.
        // Expressed uniformly: outer bound O, inner bound N (per-iteration inner count).
        let (_outer, inner) = if scale == 2 { (len_b, len_a) } else { (len_a, len_b) };
        let ab = Monomial::var(len_a).mul(&Monomial::var(len_b));
        for loc in ts.locations() {
            let name = ts.location_name(loc).to_string();
            // coefficients: map monomial -> value
            let mut coeffs: BTreeMap<Monomial, i64> = BTreeMap::new();
            let m_inner_i = Monomial::var(inner).mul(&Monomial::var(i));
            match name.as_str() {
                "l0_entry" => {
                    coeffs.insert(ab.clone(), scale);
                }
                // inner*(outer - i) = lenA*lenB - inner*i
                "l1_step" | "l2_while_head" | "l3_body" | "l9_step" => {
                    coeffs.insert(ab.clone(), scale);
                    coeffs.insert(m_inner_i.clone(), -scale);
                }
                // inner*(outer - i) - j
                "l4_step" | "l5_while_head" | "l6_body" | "l7_step" => {
                    coeffs.insert(ab.clone(), scale);
                    coeffs.insert(m_inner_i.clone(), -scale);
                    coeffs.insert(Monomial::var(j), -scale);
                }
                // inner*(outer - i - 1)
                "l8_while_exit" => {
                    coeffs.insert(ab.clone(), scale);
                    coeffs.insert(m_inner_i.clone(), -scale);
                    coeffs.insert(Monomial::var(inner), -scale);
                }
                "l10_while_exit" | "l_out" => {}
                other => panic!("unexpected location {other}"),
            }
            for (mono, form) in templates.at(loc).iter() {
                let unknowns = form.unknowns();
                assert_eq!(unknowns.len(), 1);
                let value = coeffs.get(mono).copied().unwrap_or(0);
                assignment.insert(unknowns[0], Rational::from_int(value));
            }
        }
    };
    fill(&new.ts, &templates_new, 2, &mut assignment);
    fill(&old.ts, &templates_old, 1, &mut assignment);

    // ----- per-block exact feasibility --------------------------------------------------
    let mut blocks: BTreeMap<String, Vec<&diffcost::handelman::UnknownConstraint>> =
        BTreeMap::new();
    for constraint in set.constraints() {
        let key = constraint
            .origin
            .split(": coeff")
            .next()
            .unwrap_or(&constraint.origin)
            .to_string();
        blocks.entry(key).or_default().push(constraint);
    }
    let mut all_feasible = true;
    for (block, constraints) in &blocks {
        let mut lp = LpProblem::new();
        let mut vars: BTreeMap<UnknownId, diffcost::lp::LpVar> = BTreeMap::new();
        for constraint in constraints {
            let mut terms = Vec::new();
            let mut constant = constraint.form.constant_term().clone();
            for (u, c) in constraint.form.iter() {
                match assignment.get(u) {
                    Some(value) => constant = &constant + &(c * value),
                    None => {
                        let var = *vars.entry(*u).or_insert_with(|| {
                            let kind = match factory.kind(*u) {
                                UnknownKind::Free => VarKind::Free,
                                UnknownKind::NonNegative => VarKind::NonNegative,
                            };
                            lp.add_var(factory.name(*u), kind)
                        });
                        terms.push((var, c.clone()));
                    }
                }
            }
            let op = match constraint.sense {
                ConstraintSense::Eq => ConstraintOp::Eq,
                ConstraintSense::Ge => ConstraintOp::Ge,
            };
            lp.add_constraint(terms, op, -constant);
        }
        let solution = lp.solve_exact();
        let ok = solution.status == LpStatus::Optimal;
        all_feasible &= ok;
        println!(
            "{:<60} {} ({} rows, {} multipliers)",
            block,
            if ok { "feasible" } else { "INFEASIBLE" },
            constraints.len(),
            lp.num_vars(),
        );
    }
    println!(
        "\n==> hand certificate {} the degree-2 join LP",
        if all_feasible { "PROVES FEASIBILITY of" } else { "does not satisfy" }
    );
}
