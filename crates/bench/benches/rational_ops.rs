//! Micro-benchmark for `dca_numeric::Rational` at Handelman-typical magnitudes.
//!
//! The exact LP path spends nearly all of its time in rational add/mul/div/cmp with
//! *small* operands: Handelman coefficient-matching rows carry integer coefficients in
//! the hundreds, and pivot chains mostly keep numerators/denominators within a few
//! machine words. This bench pins the cost of that operation mix so the i128
//! small-value fast path has a recorded before/after number (see EXPERIMENTS.md).
//!
//! Usage: `cargo bench -p dca-bench --bench rational_ops`

use std::hint::black_box;
use std::time::{Duration, Instant};

use dca_numeric::{BigInt, Rational};

/// Runs `f` repeatedly for roughly `budget` and reports the per-iteration median.
fn bench<F: FnMut()>(name: &str, budget: Duration, mut f: F) {
    f(); // warm-up
    let mut samples = Vec::new();
    let start = Instant::now();
    while start.elapsed() < budget || samples.len() < 5 {
        let t = Instant::now();
        f();
        samples.push(t.elapsed());
        if samples.len() >= 50 {
            break;
        }
    }
    samples.sort();
    println!(
        "{name:<44} median {:>12.3?}  min {:>12.3?}  ({} samples)",
        samples[samples.len() / 2],
        samples[0],
        samples.len()
    );
}

/// Deterministic pool of Handelman-typical rationals: integer coefficients in the
/// hundreds, plus fractions from equilibration-style divisions (denominators to ~3600).
fn sample_pool() -> Vec<Rational> {
    let mut pool = Vec::new();
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..512 {
        let num = (next() % 2001) as i64 - 1000;
        let den = 1 + (next() % 3600) as i64;
        pool.push(Rational::new(num, den));
    }
    // A few exact integers (the most common Handelman coefficient shape).
    for v in [0i64, 1, -1, 2, 100, -100, 10000] {
        pool.push(Rational::from_int(v));
    }
    pool
}

fn main() {
    let filter: Option<String> = std::env::args().skip(1).find(|a| !a.starts_with("--"));
    let wants = |name: &str| filter.as_deref().is_none_or(|f| name.contains(f));
    let pool = sample_pool();

    if wants("add_mul_mix") {
        // The simplex inner loop: sparse dot products `Σ aᵢ·bᵢ` with realistic row
        // supports (~16 non-zeros); the accumulator resets per row like FTRAN does.
        bench("rational/add_mul_mix", Duration::from_secs(3), || {
            let mut out = Rational::zero();
            for row in pool.chunks(16) {
                let mut acc = Rational::zero();
                for pair in row.windows(2) {
                    acc = &acc + &(&pair[0] * &pair[1]);
                }
                out = if acc < out { acc } else { out };
            }
            black_box(out);
        });
    }

    if wants("pivot_update") {
        // The eta/tableau update: x := x - theta * d, element-wise.
        bench("rational/pivot_update", Duration::from_secs(3), || {
            let theta = Rational::new(7, 3);
            let mut xs: Vec<Rational> = pool.clone();
            for (x, d) in xs.iter_mut().zip(pool.iter().rev()) {
                *x = &*x - &(&theta * d);
            }
            black_box(xs);
        });
    }

    if wants("div_chain") {
        // Ratio tests and pivot normalization: short division chains (the ratio
        // `x_B[row] / d[row]` is computed fresh per row, not accumulated).
        bench("rational/div_chain", Duration::from_secs(3), || {
            let mut out = Rational::zero();
            for row in pool.chunks(8) {
                let mut acc = Rational::one();
                for v in row {
                    if !v.is_zero() {
                        acc = &(&acc + v) / v;
                    }
                }
                out = &out + &acc;
            }
            black_box(out);
        });
    }

    if wants("cmp_sort") {
        // Ordering comparisons (ratio-test minima, constraint dedup).
        bench("rational/cmp_sort", Duration::from_secs(3), || {
            let mut xs: Vec<Rational> = pool.clone();
            xs.sort();
            black_box(xs);
        });
    }

    if wants("eta_chain") {
        // The exact backend's eta-update/refactorization trade-off (see
        // `dca_lp`'s `should_refactorize`): every pivot appends one product-form
        // eta, and every subsequent FTRAN/BTRAN pays for the whole chain — so the
        // policy question is when rebuilding a short fresh factorization beats
        // dragging the update debris along. This pins both sides: one FTRAN
        // through a base factorization plus a 64-eta update chain vs through the
        // rebuilt base alone. The solver's real
        // structures are crate-private; this is the same product-form arithmetic
        // (x[p] /= v, then x[r] -= a·x[p] per off-diagonal) over the same
        // operand distribution.
        let m = 96usize;
        let mut state = 0xD1B54A32D192ED03u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut make_eta = |pivot: usize| {
            let pivot_value = Rational::new(1 + (next() % 40) as i64, 1 + (next() % 7) as i64);
            let others: Vec<(usize, Rational)> = (0..6)
                .map(|_| {
                    let row = (next() as usize) % m;
                    let value =
                        Rational::new((next() % 201) as i64 - 100, 1 + (next() % 12) as i64);
                    (row, value)
                })
                .filter(|(row, _)| *row != pivot)
                .collect();
            (pivot, pivot_value, others)
        };
        let base: Vec<_> = (0..m).map(&mut make_eta).collect();
        let updates: Vec<_> = (0..64).map(|i| make_eta(i % m)).collect();
        let b: Vec<Rational> =
            (0..m).map(|i| Rational::new(i as i64 - 40, 1 + i as i64 % 5)).collect();
        type Eta = (usize, Rational, Vec<(usize, Rational)>);
        let ftran = |etas: &[&[Eta]], x: &mut Vec<Rational>| {
            for chain in etas {
                for (pivot, pivot_value, others) in *chain {
                    x[*pivot] = &x[*pivot] / pivot_value;
                    for (row, value) in others {
                        x[*row] = &x[*row] - &(value * &x[*pivot]);
                    }
                }
            }
        };
        bench("lu/ftran_base_plus_64_eta_updates", Duration::from_secs(3), || {
            let mut x = b.clone();
            ftran(&[&base, &updates], &mut x);
            black_box(x);
        });
        bench("lu/ftran_rebuilt_base_only", Duration::from_secs(3), || {
            let mut x = b.clone();
            ftran(&[&base], &mut x);
            black_box(x);
        });
    }

    if wants("gcd_normalize") {
        // Construction-time normalization of raw fractions (gcd-heavy).
        bench("rational/gcd_normalize", Duration::from_secs(3), || {
            let mut acc = BigInt::zero();
            for (i, v) in pool.iter().enumerate() {
                let r = Rational::new((i as i64 + 2) * 840, (i as i64 + 3) * 252);
                let numerator = (&r + v).numerator().clone();
                acc = &acc + &numerator;
            }
            black_box(acc);
        });
    }
}
