//! Benchmark harness support: runs the full pipeline on Table-1 benchmarks — serially
//! or through the parallel batch engine — and formats the resulting rows.

use std::time::{Duration, Instant};

use dca_benchmarks::{Benchmark, SuiteConfig};
use dca_core::batch::{BatchReport, PairOutcome};
use dca_core::{DiffCostSolver, InvariantTier};

/// One reproduced row of Table 1.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Benchmark name.
    pub name: String,
    /// Group label (source of the benchmark).
    pub group: String,
    /// Tight threshold (documented, by construction of the reconstruction).
    pub tight: i64,
    /// Threshold the paper's tool computed (`None` = ✗ in the paper).
    pub paper_computed: Option<f64>,
    /// Threshold computed by this implementation (`None` = failure, the ✗ case).
    pub computed: Option<f64>,
    /// Computed threshold rounded down to an integer (sound for integer costs).
    pub computed_int: Option<i64>,
    /// Template degree that produced the result (the chosen degree under escalation).
    pub degree: u32,
    /// Invariant tier that produced the result (the chosen tier under escalation).
    pub tier: InvariantTier,
    /// Wall-clock time of the full pipeline (parsing, invariants, LP) in seconds.
    pub seconds: f64,
    /// CPU time (user + system) the solve's thread charged to this row in seconds
    /// (falls back to wall time where the per-thread clock is unavailable). The
    /// time-regression gates compare this instead of `seconds`: CPU time does not
    /// inflate when a run shares the machine with other load.
    pub cpu_seconds: f64,
    /// Size of the synthesized LP (variables, constraints).
    pub lp_size: (usize, usize),
    /// Simplex iterations of the successful solve (0 on failure).
    pub lp_iterations: usize,
    /// Pivots performed by the `f64` phase of the float-first driver.
    pub lp_float_iterations: usize,
    /// Pivots performed by the exact rational simplex (repair + fallback).
    pub lp_exact_iterations: usize,
    /// `true` when the solve's LP hit its deadline mid-phase-2 and the threshold is
    /// an anytime (sound but possibly loose) bound rather than a proven optimum.
    pub lp_truncated: bool,
    /// `true` when the LP answer carries an exact-rational certificate.
    pub lp_certified: bool,
    /// Seconds the LP spent in presolve / f64 pivoting / exact certification / exact
    /// repair (the float-first driver's phase split; all 0.0 on failure).
    pub phase_seconds: (f64, f64, f64, f64),
    /// Rows and columns the LP presolve removed (0 on failure).
    pub presolve_removed: (usize, usize),
    /// Handelman product multipliers eligible for lazy generation (0 when the
    /// encoding has no degree-≥-2 products or row generation is disabled).
    pub products_total: usize,
    /// Lazy product multipliers actually activated by separation (≤ `products_total`).
    pub products_generated: usize,
    /// Separation rounds of the row-generation loop (0 = plain eager solve).
    pub separation_rounds: usize,
    /// Exact simplex pivots absorbed as incremental eta updates of the LU factors.
    pub lu_updates: usize,
    /// Full Markowitz refactorizations performed mid-run by the exact simplex.
    pub lu_refactorizations: usize,
    /// Transitions dropped by the exact infeasible-premise pruner during encoding.
    pub transitions_pruned: usize,
    /// Loop-phase splits applied to the winning solve (0 = unsplit system won or
    /// no phase structure was detected).
    pub phases_split: usize,
    /// Degradation-ladder outcome label: `"certified"`, `"truncated"` or `"aborted"`
    /// (see `dca_core::SolveOutcome`).
    pub outcome: String,
    /// The pipeline phase an aborted solve failed in, when known (`None` for
    /// certified/truncated rows and for failures with no phase attribution).
    pub aborted_phase: Option<String>,
    /// Upper − lower bound gap of a truncated-anytime solve, when the dual side
    /// produced an exact lower bound (`None` otherwise).
    pub gap: Option<f64>,
}

impl TableRow {
    /// `true` if the computed integer threshold equals the tight one.
    pub fn is_tight(&self) -> bool {
        self.computed_int == Some(self.tight)
    }

    /// Builds a row from a batch-engine outcome and the matching benchmark definition.
    pub fn from_outcome(benchmark: &Benchmark, outcome: &PairOutcome) -> TableRow {
        let result = outcome.result.as_ref().ok();
        let ladder = outcome.outcome();
        TableRow {
            name: outcome.name.clone(),
            group: benchmark.group.to_string(),
            tight: benchmark.tight,
            paper_computed: benchmark.paper_computed,
            computed: result.map(|r| r.threshold),
            computed_int: result.map(|r| r.threshold_int()),
            degree: outcome.degree,
            tier: outcome.tier,
            seconds: outcome.duration.as_secs_f64(),
            cpu_seconds: outcome.cpu_duration.as_secs_f64(),
            lp_size: outcome
                .stats()
                .map(|s| (s.lp_variables, s.lp_constraints))
                .unwrap_or((0, 0)),
            lp_iterations: outcome.stats().map(|s| s.lp_iterations).unwrap_or(0),
            lp_float_iterations: outcome.stats().map(|s| s.lp_float_iterations).unwrap_or(0),
            lp_exact_iterations: outcome.stats().map(|s| s.lp_exact_iterations).unwrap_or(0),
            lp_truncated: outcome.stats().map(|s| s.lp_truncated).unwrap_or(false),
            lp_certified: outcome.stats().map(|s| s.lp_certified).unwrap_or(false),
            phase_seconds: outcome
                .stats()
                .map(|s| {
                    (
                        s.lp_presolve_time.as_secs_f64(),
                        s.lp_float_time.as_secs_f64(),
                        s.lp_certify_time.as_secs_f64(),
                        s.lp_repair_time.as_secs_f64(),
                    )
                })
                .unwrap_or((0.0, 0.0, 0.0, 0.0)),
            presolve_removed: outcome
                .stats()
                .map(|s| (s.presolve_rows_removed, s.presolve_cols_removed))
                .unwrap_or((0, 0)),
            products_total: outcome.stats().map(|s| s.lp_products_total).unwrap_or(0),
            products_generated: outcome
                .stats()
                .map(|s| s.lp_products_generated)
                .unwrap_or(0),
            separation_rounds: outcome
                .stats()
                .map(|s| s.lp_separation_rounds)
                .unwrap_or(0),
            lu_updates: outcome.stats().map(|s| s.lp_lu_updates).unwrap_or(0),
            lu_refactorizations: outcome
                .stats()
                .map(|s| s.lp_lu_refactorizations)
                .unwrap_or(0),
            transitions_pruned: outcome
                .stats()
                .map(|s| s.transitions_pruned)
                .unwrap_or(0),
            phases_split: outcome.stats().map(|s| s.phases_split).unwrap_or(0),
            outcome: ladder.label().to_string(),
            aborted_phase: ladder.aborted_phase().map(|p| p.as_str().to_string()),
            gap: ladder.gap(),
        }
    }
}

/// Runs the full differential cost analysis pipeline on one benchmark, serially.
pub fn run_benchmark(benchmark: &Benchmark) -> TableRow {
    let start = Instant::now();
    let cpu_start = dca_core::batch::thread_cpu_time();
    let old = benchmark.old_program();
    let new = benchmark.new_program();
    let options = benchmark.options();
    let solver = DiffCostSolver::new(options);
    let outcome = solver.solve(&new, &old);
    let seconds = start.elapsed().as_secs_f64();
    let cpu_seconds = match (cpu_start, dca_core::batch::thread_cpu_time()) {
        (Some(before), Some(after)) => after.saturating_sub(before).as_secs_f64(),
        _ => seconds,
    };
    match outcome {
        Ok(result) => {
            let ladder = result.outcome();
            TableRow {
            name: benchmark.name.to_string(),
            group: benchmark.group.to_string(),
            tight: benchmark.tight,
            paper_computed: benchmark.paper_computed,
            computed: Some(result.threshold),
            computed_int: Some(result.threshold_int()),
            degree: benchmark.degree,
            tier: options.invariant_tier,
            seconds,
            cpu_seconds,
            lp_size: (result.stats.lp_variables, result.stats.lp_constraints),
            lp_iterations: result.stats.lp_iterations,
            lp_float_iterations: result.stats.lp_float_iterations,
            lp_exact_iterations: result.stats.lp_exact_iterations,
            lp_truncated: result.stats.lp_truncated,
            lp_certified: result.stats.lp_certified,
            phase_seconds: (
                result.stats.lp_presolve_time.as_secs_f64(),
                result.stats.lp_float_time.as_secs_f64(),
                result.stats.lp_certify_time.as_secs_f64(),
                result.stats.lp_repair_time.as_secs_f64(),
            ),
            presolve_removed: (
                result.stats.presolve_rows_removed,
                result.stats.presolve_cols_removed,
            ),
            products_total: result.stats.lp_products_total,
            products_generated: result.stats.lp_products_generated,
            separation_rounds: result.stats.lp_separation_rounds,
            lu_updates: result.stats.lp_lu_updates,
            lu_refactorizations: result.stats.lp_lu_refactorizations,
            transitions_pruned: result.stats.transitions_pruned,
            phases_split: result.stats.phases_split,
            outcome: ladder.label().to_string(),
            aborted_phase: ladder.aborted_phase().map(|p| p.as_str().to_string()),
            gap: ladder.gap(),
            }
        }
        Err(error) => TableRow {
            name: benchmark.name.to_string(),
            group: benchmark.group.to_string(),
            tight: benchmark.tight,
            paper_computed: benchmark.paper_computed,
            computed: None,
            computed_int: None,
            degree: benchmark.degree,
            tier: options.invariant_tier,
            seconds,
            cpu_seconds,
            lp_size: (0, 0),
            lp_iterations: 0,
            lp_float_iterations: 0,
            lp_exact_iterations: 0,
            lp_truncated: false,
            lp_certified: false,
            phase_seconds: (0.0, 0.0, 0.0, 0.0),
            presolve_removed: (0, 0),
            products_total: 0,
            products_generated: 0,
            separation_rounds: 0,
            lu_updates: 0,
            lu_refactorizations: 0,
            transitions_pruned: 0,
            phases_split: 0,
            outcome: "aborted".to_string(),
            aborted_phase: error.phase().map(|p| p.as_str().to_string()),
            gap: None,
        },
    }
}

/// The result of a parallel suite run, ready for formatting.
#[derive(Debug, Clone)]
pub struct SuiteRun {
    /// One row per benchmark (Table-1 order, running example last).
    pub rows: Vec<TableRow>,
    /// Wall-clock time of the whole suite.
    pub wall_clock: Duration,
    /// Sum of per-pair times (the serial cost the parallel run amortized).
    pub cpu_time: Duration,
    /// Effective number of worker threads.
    pub jobs: usize,
}

/// Runs the full 19-pair suite (+ running example) through the parallel batch engine.
pub fn run_suite(config: &SuiteConfig) -> SuiteRun {
    run_suite_filtered(config, &[])
}

/// Like [`run_suite`], restricted to benchmarks whose name contains one of the given
/// substrings (an empty list selects everything).
pub fn run_suite_filtered(config: &SuiteConfig, filters: &[String]) -> SuiteRun {
    let mut benchmarks = dca_benchmarks::all_benchmarks();
    benchmarks.push(dca_benchmarks::running_example());
    benchmarks.retain(|b| dca_benchmarks::matches_filters(b.name, filters));
    let report: BatchReport = dca_benchmarks::run_suite_filtered(config, filters);
    let rows = benchmarks
        .iter()
        .zip(&report.outcomes)
        .map(|(benchmark, outcome)| {
            // The benchmark list and the batch jobs are built independently; a silent
            // zip misalignment would attribute one benchmark's threshold to another's
            // row, so the pairing is checked by name.
            assert_eq!(
                benchmark.name, outcome.name,
                "suite rows and batch outcomes diverged"
            );
            TableRow::from_outcome(benchmark, outcome)
        })
        .collect();
    SuiteRun {
        rows,
        wall_clock: report.wall_clock,
        cpu_time: report.cpu_time(),
        jobs: report.jobs,
    }
}

/// Formats a list of rows as the Table-1 style text table.
pub fn format_table(rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "benchmark            | tight    | paper    | computed  | int     | d | t | tight? | time (s)\n",
    );
    out.push_str(
        "---------------------+----------+----------+-----------+---------+---+---+--------+---------\n",
    );
    for row in rows {
        let paper = row
            .paper_computed
            .map(|v| format!("{v:.2}"))
            .unwrap_or_else(|| "x".to_string());
        let computed = row
            .computed
            .map(|v| format!("{v:.2}"))
            .unwrap_or_else(|| "x".to_string());
        let computed_int = row
            .computed_int
            .map(|v| v.to_string())
            .unwrap_or_else(|| "x".to_string());
        out.push_str(&format!(
            "{:<21}| {:<9}| {:<9}| {:<10}| {:<8}| {} | {} | {:<7}| {:.2}\n",
            row.name,
            row.tight,
            paper,
            computed,
            computed_int,
            row.degree,
            row.tier.index(),
            if row.is_tight() { "yes" } else { "no" },
            row.seconds
        ));
    }
    out
}

/// Renders a suite run as a machine-readable JSON document (no external dependencies,
/// so the encoder is hand-rolled; the schema is stable for cross-PR tracking).
///
/// Top level: `{"wall_clock_s", "cpu_time_s", "jobs", "tight", "total", "rows": [...]}`;
/// each row carries the benchmark name, the documented tight threshold, the computed
/// threshold (`null` on failure), the degree/tier that produced it, its status
/// (`"tight" | "loose" | "failed"`) and the wall time in seconds.
/// JSON string escaping shared by [`format_json`] and [`format_history_line`].
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

pub fn format_json(run: &SuiteRun) -> String {
    fn opt_f64(v: Option<f64>) -> String {
        v.map(|v| format!("{v:.4}")).unwrap_or_else(|| "null".to_string())
    }
    fn opt_i64(v: Option<i64>) -> String {
        v.map(|v| v.to_string()).unwrap_or_else(|| "null".to_string())
    }
    let rows: Vec<String> = run
        .rows
        .iter()
        .map(|row| {
            let status = if row.is_tight() {
                "tight"
            } else if row.computed.is_some() {
                "loose"
            } else {
                "failed"
            };
            format!(
                concat!(
                    "    {{\"name\": \"{}\", \"group\": \"{}\", \"tight\": {}, ",
                    "\"paper\": {}, \"computed\": {}, \"computed_int\": {}, ",
                    "\"degree\": {}, \"tier\": {}, \"status\": \"{}\", ",
                    "\"seconds\": {:.2}, \"cpu_seconds\": {:.2}, ",
                    "\"lp_variables\": {}, \"lp_constraints\": {}, ",
                    "\"lp_iterations\": {}, \"lp_float_pivots\": {}, \"lp_exact_pivots\": {}, ",
                    "\"lp_truncated\": {}, \"lp_certified\": {}, ",
                    "\"presolve_s\": {:.3}, \"float_s\": {:.3}, ",
                    "\"certify_s\": {:.3}, \"repair_s\": {:.3}, ",
                    "\"presolve_rows_removed\": {}, \"presolve_cols_removed\": {}, ",
                    "\"products_total\": {}, \"products_generated\": {}, ",
                    "\"separation_rounds\": {}, \"lu_updates\": {}, ",
                    "\"lu_refactorizations\": {}, ",
                    "\"transitions_pruned\": {}, \"phases_split\": {}, ",
                    "\"outcome\": \"{}\", \"aborted_phase\": {}, \"gap\": {}}}"
                ),
                escape(&row.name),
                escape(&row.group),
                row.tight,
                opt_f64(row.paper_computed),
                opt_f64(row.computed),
                opt_i64(row.computed_int),
                row.degree,
                row.tier.index(),
                status,
                row.seconds,
                row.cpu_seconds,
                row.lp_size.0,
                row.lp_size.1,
                row.lp_iterations,
                row.lp_float_iterations,
                row.lp_exact_iterations,
                row.lp_truncated,
                row.lp_certified,
                row.phase_seconds.0,
                row.phase_seconds.1,
                row.phase_seconds.2,
                row.phase_seconds.3,
                row.presolve_removed.0,
                row.presolve_removed.1,
                row.products_total,
                row.products_generated,
                row.separation_rounds,
                row.lu_updates,
                row.lu_refactorizations,
                row.transitions_pruned,
                row.phases_split,
                escape(&row.outcome),
                row.aborted_phase
                    .as_ref()
                    .map(|p| format!("\"{}\"", escape(p)))
                    .unwrap_or_else(|| "null".to_string()),
                opt_f64(row.gap),
            )
        })
        .collect();
    format!(
        "{{\n  \"wall_clock_s\": {:.2},\n  \"cpu_time_s\": {:.2},\n  \"jobs\": {},\n  \
         \"tight\": {},\n  \"total\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        run.wall_clock.as_secs_f64(),
        run.cpu_time.as_secs_f64(),
        run.jobs,
        run.rows.iter().filter(|r| r.is_tight()).count(),
        run.rows.len(),
        rows.join(",\n"),
    )
}

/// Formats one `BENCH_history.jsonl` line for a suite run: date, commit, tightness,
/// wall-clock and per-row seconds, all on a single line so the file diffs cleanly and
/// `grep`/`jq` can consume it without a JSON-array parser.
pub fn format_history_line(run: &SuiteRun, date: &str, commit: &str) -> String {
    format_history_line_tagged(run, date, commit, "table1")
}

/// Like [`format_history_line`], with an explicit suite tag so Table-1 and Table-2
/// runs share one `BENCH_history.jsonl` without ambiguity.
pub fn format_history_line_tagged(
    run: &SuiteRun,
    date: &str,
    commit: &str,
    suite: &str,
) -> String {
    let rows: Vec<String> = run
        .rows
        .iter()
        .map(|row| format!("\"{}\": {:.2}", escape(&row.name), row.seconds))
        .collect();
    let cpu_rows: Vec<String> = run
        .rows
        .iter()
        .map(|row| format!("\"{}\": {:.2}", escape(&row.name), row.cpu_seconds))
        .collect();
    format!(
        "{{\"date\": \"{}\", \"commit\": \"{}\", \"suite\": \"{}\", \"jobs\": {}, \
         \"tight\": {}, \"total\": {}, \
         \"certified\": {}, \"truncated\": {}, \"aborted\": {}, \
         \"transitions_pruned\": {}, \"phases_split\": {}, \
         \"wall_clock_s\": {:.2}, \"cpu_time_s\": {:.2}, \"row_seconds\": {{{}}}, \
         \"row_cpu_seconds\": {{{}}}}}",
        escape(date),
        escape(commit),
        escape(suite),
        run.jobs,
        run.rows.iter().filter(|r| r.is_tight()).count(),
        run.rows.len(),
        run.rows.iter().filter(|r| r.outcome == "certified").count(),
        run.rows.iter().filter(|r| r.outcome == "truncated").count(),
        run.rows.iter().filter(|r| r.outcome == "aborted").count(),
        run.rows.iter().map(|r| r.transitions_pruned).sum::<usize>(),
        run.rows.iter().map(|r| r.phases_split).sum::<usize>(),
        run.wall_clock.as_secs_f64(),
        run.cpu_time.as_secs_f64(),
        rows.join(", "),
        cpu_rows.join(", "),
    )
}

/// The shared per-row time-regression gate of the smoke and table2 bins: a row
/// regresses when it runs more than `factor` times its committed baseline AND slower
/// than an absolute floor (sub-second rows drown in machine noise at any ratio).
///
/// Rows with *no* baseline entry are skipped — a freshly introduced benchmark must
/// not fail CI before its first baseline is committed; the gate degrades gracefully
/// and reports how many rows it actually covered via the second tuple element.
pub fn time_regressions(
    rows: &[(String, f64)],
    baseline: &[(String, f64)],
    factor: f64,
    floor_seconds: f64,
) -> (Vec<String>, usize) {
    let mut regressions = Vec::new();
    let mut covered = 0usize;
    for (name, seconds) in rows {
        let Some((_, baseline_seconds)) = baseline.iter().find(|(n, _)| n == name) else {
            continue;
        };
        covered += 1;
        let limit = (baseline_seconds * factor).max(floor_seconds);
        if *seconds > limit {
            regressions.push(format!(
                "{name}: time regression — {seconds:.2}s vs {baseline_seconds:.2}s \
                 baseline (>{factor}x)"
            ));
        }
    }
    (regressions, covered)
}

/// Today's date as `YYYY-MM-DD` from the system clock (no external time crates:
/// Howard Hinnant's civil-from-days algorithm over the Unix epoch).
pub fn today_utc() -> String {
    let seconds = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (seconds / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let year = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { year + 1 } else { year };
    format!("{year:04}-{month:02}-{day:02}")
}

/// The current `git` commit (short hash), or `"unknown"` outside a repository.
pub fn current_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Extracts `(name, seconds)` pairs from a `BENCH_table1.json` document (the
/// hand-rolled schema written by [`format_json`]; no external JSON parser needed —
/// the smoke bench uses this to gate per-row time regressions against the committed
/// baseline).
pub fn parse_baseline_seconds(json: &str) -> Vec<(String, f64)> {
    parse_baseline_field(json, "seconds")
}

/// Like [`parse_baseline_seconds`], for the per-row `"cpu_seconds"` key. Returns an
/// empty list on baselines committed before the key existed — callers fall back to
/// the wall-clock baseline in that case.
pub fn parse_baseline_cpu_seconds(json: &str) -> Vec<(String, f64)> {
    parse_baseline_field(json, "cpu_seconds")
}

/// Extracts per-row `(name, value)` pairs for one numeric `key` from the hand-rolled
/// BENCH json schema. The key is matched with its leading quote (`"key": `), so
/// `"seconds"` never accidentally matches inside `"cpu_seconds"`.
fn parse_baseline_field(json: &str, key: &str) -> Vec<(String, f64)> {
    let needle = format!("\"{key}\": ");
    let mut out = Vec::new();
    for chunk in json.split("{\"name\": \"").skip(1) {
        let Some(name_end) = chunk.find('"') else { continue };
        let name = chunk[..name_end].to_string();
        let Some(position) = chunk.find(&needle) else { continue };
        let rest = &chunk[position + needle.len()..];
        let number: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(value) = number.parse::<f64>() {
            out.push((name, value));
        }
    }
    out
}

// ----- Table 2 (generated corpus) ---------------------------------------------------

/// One row of the Table-2 generated corpus: the solver-side fields of a [`TableRow`]
/// plus the harness verdicts of the generated pair.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Solver-side fields (`group` carries the shape tag; `tight` the
    /// by-construction bound).
    pub table: TableRow,
    /// The generator seed of the pair.
    pub seed: u64,
    /// Interpreter-sampled soundness: `Some(true)` = no sampled run violated the
    /// reported bound; `None` = not checked (failed solves have no bound to check).
    pub sound: Option<bool>,
    /// Cross-backend/presolve agreement: `Some(true)` = certified, exact and
    /// no-presolve solves all produced the same verdict; `None` = not run.
    pub agree: Option<bool>,
    /// Transitions pruned as vacuous (infeasible premise) during encoding.
    pub pruned: usize,
}

/// Builds the solver-side [`TableRow`] for a generated pair from its batch outcome.
pub fn table2_row(
    pair: &dca_benchmarks::table2::Pair,
    outcome: &PairOutcome,
) -> TableRow {
    let result = outcome.result.as_ref().ok();
    let ladder = outcome.outcome();
    TableRow {
        name: outcome.name.clone(),
        group: pair.shape.tag(),
        tight: pair.tight,
        paper_computed: None,
        computed: result.map(|r| r.threshold),
        computed_int: result.map(|r| r.threshold_int()),
        degree: outcome.degree,
        tier: outcome.tier,
        seconds: outcome.duration.as_secs_f64(),
        cpu_seconds: outcome.cpu_duration.as_secs_f64(),
        lp_size: outcome
            .stats()
            .map(|s| (s.lp_variables, s.lp_constraints))
            .unwrap_or((0, 0)),
        lp_iterations: outcome.stats().map(|s| s.lp_iterations).unwrap_or(0),
        lp_float_iterations: outcome.stats().map(|s| s.lp_float_iterations).unwrap_or(0),
        lp_exact_iterations: outcome.stats().map(|s| s.lp_exact_iterations).unwrap_or(0),
        lp_truncated: outcome.stats().map(|s| s.lp_truncated).unwrap_or(false),
        lp_certified: outcome.stats().map(|s| s.lp_certified).unwrap_or(false),
        phase_seconds: outcome
            .stats()
            .map(|s| {
                (
                    s.lp_presolve_time.as_secs_f64(),
                    s.lp_float_time.as_secs_f64(),
                    s.lp_certify_time.as_secs_f64(),
                    s.lp_repair_time.as_secs_f64(),
                )
            })
            .unwrap_or((0.0, 0.0, 0.0, 0.0)),
        presolve_removed: outcome
            .stats()
            .map(|s| (s.presolve_rows_removed, s.presolve_cols_removed))
            .unwrap_or((0, 0)),
        products_total: outcome.stats().map(|s| s.lp_products_total).unwrap_or(0),
        products_generated: outcome
            .stats()
            .map(|s| s.lp_products_generated)
            .unwrap_or(0),
        separation_rounds: outcome
            .stats()
            .map(|s| s.lp_separation_rounds)
            .unwrap_or(0),
        lu_updates: outcome.stats().map(|s| s.lp_lu_updates).unwrap_or(0),
        lu_refactorizations: outcome
            .stats()
            .map(|s| s.lp_lu_refactorizations)
            .unwrap_or(0),
        transitions_pruned: outcome
            .stats()
            .map(|s| s.transitions_pruned)
            .unwrap_or(0),
        phases_split: outcome.stats().map(|s| s.phases_split).unwrap_or(0),
        outcome: ladder.label().to_string(),
        aborted_phase: ladder.aborted_phase().map(|p| p.as_str().to_string()),
        gap: ladder.gap(),
    }
}

/// Renders a Table-2 run as JSON (same hand-rolled style and `"name"`/`"seconds"` row
/// keys as [`format_json`], so [`parse_baseline_seconds`] and the shared
/// [`time_regressions`] gate consume it unchanged). The top level carries the
/// tight/loose/failed breakdown and the harness verdict counts the acceptance
/// criteria are stated in.
pub fn format_table2_json(
    rows: &[Table2Row],
    wall_clock: Duration,
    cpu_time: Duration,
    jobs: usize,
) -> String {
    fn opt_f64(v: Option<f64>) -> String {
        v.map(|v| format!("{v:.4}")).unwrap_or_else(|| "null".to_string())
    }
    fn opt_bool(v: Option<bool>) -> String {
        v.map(|v| v.to_string()).unwrap_or_else(|| "null".to_string())
    }
    let tight = rows.iter().filter(|r| r.table.is_tight()).count();
    let loose = rows
        .iter()
        .filter(|r| !r.table.is_tight() && r.table.computed.is_some())
        .count();
    let failed = rows.iter().filter(|r| r.table.computed.is_none()).count();
    let sound = rows.iter().filter(|r| r.sound == Some(true)).count();
    let agree = rows.iter().filter(|r| r.agree == Some(true)).count();
    let certified = rows.iter().filter(|r| r.table.lp_certified).count();
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            let status = if r.table.is_tight() {
                "tight"
            } else if r.table.computed.is_some() {
                "loose"
            } else {
                "failed"
            };
            format!(
                concat!(
                    "    {{\"name\": \"{}\", \"shape\": \"{}\", \"seed\": {}, ",
                    "\"tight\": {}, \"computed\": {}, \"computed_int\": {}, ",
                    "\"degree\": {}, \"tier\": {}, \"status\": \"{}\", ",
                    "\"sound\": {}, \"agree\": {}, ",
                    "\"seconds\": {:.2}, \"cpu_seconds\": {:.2}, ",
                    "\"lp_variables\": {}, \"lp_constraints\": {}, ",
                    "\"lp_certified\": {}, \"lp_truncated\": {}, ",
                    "\"transitions_pruned\": {}, \"phases_split\": {}, ",
                    "\"outcome\": \"{}\", \"aborted_phase\": {}, \"gap\": {}}}"
                ),
                escape(&r.table.name),
                escape(&r.table.group),
                r.seed,
                r.table.tight,
                opt_f64(r.table.computed),
                r.table
                    .computed_int
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "null".to_string()),
                r.table.degree,
                r.table.tier.index(),
                status,
                opt_bool(r.sound),
                opt_bool(r.agree),
                r.table.seconds,
                r.table.cpu_seconds,
                r.table.lp_size.0,
                r.table.lp_size.1,
                r.table.lp_certified,
                r.table.lp_truncated,
                r.pruned,
                r.table.phases_split,
                escape(&r.table.outcome),
                r.table
                    .aborted_phase
                    .as_ref()
                    .map(|p| format!("\"{}\"", escape(p)))
                    .unwrap_or_else(|| "null".to_string()),
                opt_f64(r.table.gap),
            )
        })
        .collect();
    format!(
        "{{\n  \"wall_clock_s\": {:.2},\n  \"cpu_time_s\": {:.2},\n  \"jobs\": {},\n  \
         \"total\": {},\n  \
         \"tight\": {},\n  \"loose\": {},\n  \"failed\": {},\n  \"sound\": {},\n  \
         \"agree\": {},\n  \"lp_certified\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        wall_clock.as_secs_f64(),
        cpu_time.as_secs_f64(),
        jobs,
        rows.len(),
        tight,
        loose,
        failed,
        sound,
        agree,
        certified,
        body.join(",\n"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_line_and_baseline_roundtrip() {
        let row = TableRow {
            name: "Example".into(),
            group: "g".into(),
            tight: 100,
            paper_computed: Some(100.0),
            computed: Some(100.0),
            computed_int: Some(100),
            degree: 2,
            tier: InvariantTier::Baseline,
            seconds: 1.5,
            cpu_seconds: 1.4,
            lp_size: (10, 20),
            lp_iterations: 42,
            lp_float_iterations: 40,
            lp_exact_iterations: 2,
            lp_truncated: false,
            lp_certified: true,
            phase_seconds: (0.01, 1.2, 0.1, 0.2),
            presolve_removed: (3, 7),
            products_total: 12,
            products_generated: 5,
            separation_rounds: 2,
            lu_updates: 40,
            lu_refactorizations: 1,
            transitions_pruned: 3,
            phases_split: 1,
            outcome: "certified".into(),
            aborted_phase: None,
            gap: None,
        };
        let run = SuiteRun {
            rows: vec![row],
            wall_clock: Duration::from_secs_f64(1.6),
            cpu_time: Duration::from_secs_f64(1.6),
            jobs: 1,
        };
        let line = format_history_line(&run, "2026-07-29", "abc1234");
        assert!(line.contains("\"date\": \"2026-07-29\""));
        assert!(line.contains("\"commit\": \"abc1234\""));
        assert!(line.contains("\"cpu_time_s\": 1.60"), "history line reports cpu time");
        assert!(line.contains("\"Example\": 1.50"));
        assert!(line.contains("\"row_cpu_seconds\": {\"Example\": 1.40}"));
        assert!(!line.contains('\n'), "one line per run");
        // The committed BENCH json parses back into per-row baselines, and the wall
        // and CPU keys never cross-match.
        let json = format_json(&run);
        let baseline = parse_baseline_seconds(&json);
        assert_eq!(baseline, vec![("Example".to_string(), 1.5)]);
        let cpu_baseline = parse_baseline_cpu_seconds(&json);
        assert_eq!(cpu_baseline, vec![("Example".to_string(), 1.4)]);
        // A pre-cpu_seconds baseline parses as empty, triggering the wall fallback.
        assert!(parse_baseline_cpu_seconds("{\"name\": \"X\", \"seconds\": 1.0}").is_empty());
    }

    #[test]
    fn time_gate_degrades_gracefully_without_a_baseline_row() {
        let rows = vec![
            ("old_row".to_string(), 10.0),    // 10x its baseline: a regression
            ("steady".to_string(), 1.2),      // within 2x: fine
            ("brand_new".to_string(), 99.0),  // no baseline: must NOT fail the gate
        ];
        let baseline = vec![("old_row".to_string(), 1.0), ("steady".to_string(), 1.0)];
        let (regressions, covered) = time_regressions(&rows, &baseline, 2.0, 1.0);
        assert_eq!(covered, 2, "only rows with a baseline are gated");
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].starts_with("old_row:"), "{regressions:?}");
        assert!(
            !regressions.iter().any(|r| r.contains("brand_new")),
            "a new row without a baseline must not fail CI on first introduction"
        );
        // Fully empty baseline (file missing / first ever run): nothing regresses.
        let (regressions, covered) = time_regressions(&rows, &[], 2.0, 1.0);
        assert!(regressions.is_empty());
        assert_eq!(covered, 0);
        // The floor suppresses sub-second noise even past the factor.
        let fast = vec![("fast".to_string(), 0.9)];
        let fast_baseline = vec![("fast".to_string(), 0.1)];
        let (regressions, _) = time_regressions(&fast, &fast_baseline, 2.0, 1.0);
        assert!(regressions.is_empty(), "sub-floor rows never regress");
    }

    #[test]
    fn table2_json_roundtrips_through_the_baseline_parser() {
        let pair = dca_benchmarks::table2::table2_manifest().into_iter().next().unwrap();
        let table = TableRow {
            name: pair.name.clone(),
            group: pair.shape.tag(),
            tight: pair.tight,
            paper_computed: None,
            computed: Some(pair.tight as f64),
            computed_int: Some(pair.tight),
            degree: pair.degree,
            tier: InvariantTier::Baseline,
            seconds: 0.25,
            cpu_seconds: 0.2,
            lp_size: (5, 9),
            lp_iterations: 3,
            lp_float_iterations: 3,
            lp_exact_iterations: 0,
            lp_truncated: false,
            lp_certified: true,
            phase_seconds: (0.0, 0.1, 0.1, 0.0),
            presolve_removed: (1, 1),
            products_total: 0,
            products_generated: 0,
            separation_rounds: 0,
            lu_updates: 0,
            lu_refactorizations: 0,
            transitions_pruned: 2,
            phases_split: 1,
            outcome: "certified".into(),
            aborted_phase: None,
            gap: None,
        };
        let rows = vec![Table2Row {
            table,
            seed: pair.seed,
            sound: Some(true),
            agree: Some(true),
            pruned: 2,
        }];
        let json = format_table2_json(
            &rows,
            Duration::from_secs_f64(0.3),
            Duration::from_secs_f64(0.25),
            1,
        );
        assert!(json.contains("\"cpu_time_s\": 0.25"), "table2 json reports cpu time");
        assert!(json.contains("\"tight\": 1,"), "breakdown counts present");
        assert!(json.contains("\"sound\": 1,"));
        assert!(json.contains("\"agree\": 1,"));
        assert!(json.contains("\"transitions_pruned\": 2"));
        let baseline = parse_baseline_seconds(&json);
        assert_eq!(baseline, vec![(pair.name.clone(), 0.25)]);
        // The tagged history line distinguishes the suites.
        let run = SuiteRun {
            rows: vec![rows[0].table.clone()],
            wall_clock: Duration::from_secs_f64(0.3),
            cpu_time: Duration::from_secs_f64(0.3),
            jobs: 1,
        };
        let line = format_history_line_tagged(&run, "2026-08-08", "abc", "table2");
        assert!(line.contains("\"suite\": \"table2\""));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn civil_date_is_sane() {
        let date = today_utc();
        assert_eq!(date.len(), 10);
        assert!(date[..4].parse::<u32>().unwrap() >= 2024);
    }

    #[test]
    fn formats_rows() {
        let row = TableRow {
            name: "Example".into(),
            group: "g".into(),
            tight: 100,
            paper_computed: Some(100.0),
            computed: Some(100.0),
            computed_int: Some(100),
            degree: 2,
            tier: InvariantTier::Baseline,
            seconds: 1.5,
            cpu_seconds: 1.4,
            lp_size: (10, 20),
            lp_iterations: 42,
            lp_float_iterations: 40,
            lp_exact_iterations: 2,
            lp_truncated: false,
            lp_certified: true,
            phase_seconds: (0.01, 1.2, 0.1, 0.2),
            presolve_removed: (3, 7),
            products_total: 12,
            products_generated: 5,
            separation_rounds: 2,
            lu_updates: 40,
            lu_refactorizations: 1,
            transitions_pruned: 3,
            phases_split: 1,
            outcome: "certified".into(),
            aborted_phase: None,
            gap: None,
        };
        assert!(row.is_tight());
        let table = format_table(std::slice::from_ref(&row));
        assert!(table.contains("Example"));
        assert!(table.contains("yes"));
        let failed = TableRow {
            name: "Failed".into(),
            group: "g".into(),
            tight: 1,
            paper_computed: None,
            computed: None,
            computed_int: None,
            degree: 3,
            tier: InvariantTier::Hull,
            seconds: 0.1,
            cpu_seconds: 0.1,
            lp_size: (0, 0),
            lp_iterations: 0,
            lp_float_iterations: 0,
            lp_exact_iterations: 0,
            lp_truncated: false,
            lp_certified: false,
            phase_seconds: (0.0, 0.0, 0.0, 0.0),
            presolve_removed: (0, 0),
            products_total: 0,
            products_generated: 0,
            separation_rounds: 0,
            lu_updates: 0,
            lu_refactorizations: 0,
            transitions_pruned: 0,
            phases_split: 0,
            outcome: "aborted".into(),
            aborted_phase: None,
            gap: None,
        };
        assert!(!failed.is_tight());
        assert!(format_table(std::slice::from_ref(&failed)).contains('x'));

        // The JSON rendering carries the same information, machine-readably.
        let run = SuiteRun {
            rows: vec![row, failed],
            wall_clock: Duration::from_secs_f64(1.6),
            cpu_time: Duration::from_secs_f64(1.6),
            jobs: 1,
        };
        let json = format_json(&run);
        assert!(json.contains("\"name\": \"Example\""));
        assert!(json.contains("\"status\": \"tight\""));
        assert!(json.contains("\"status\": \"failed\""));
        assert!(json.contains("\"tier\": 1"));
        assert!(json.contains("\"tight\": 1,"));
        assert!(json.contains("\"products_total\": 12"));
        assert!(json.contains("\"products_generated\": 5"));
        assert!(json.contains("\"separation_rounds\": 2"));
        assert!(json.contains("\"lu_updates\": 40"));
        assert!(json.contains("\"lu_refactorizations\": 1"));
        assert!(json.contains("\"outcome\": \"certified\""));
        assert!(json.contains("\"outcome\": \"aborted\""));
        assert!(json.contains("\"aborted_phase\": null"));
        assert!(json.contains("\"gap\": null"));
        let line = format_history_line(&run, "2026-08-09", "abc1234");
        assert!(line.contains("\"certified\": 1"));
        assert!(line.contains("\"truncated\": 0"));
        assert!(line.contains("\"aborted\": 1"));
    }

    #[test]
    fn row_from_batch_outcome() {
        use dca_core::batch::{run_batch, BatchConfig, BatchJob};
        let benchmark = dca_benchmarks::all_benchmarks()
            .into_iter()
            .find(|b| b.name == "SimpleSingle")
            .unwrap();
        let jobs = vec![BatchJob::from_sources(
            benchmark.name,
            benchmark.source_new,
            benchmark.source_old,
        )
        .with_options(benchmark.options())];
        let report = run_batch(&jobs, &BatchConfig::with_jobs(1));
        let row = TableRow::from_outcome(&benchmark, &report.outcomes[0]);
        assert_eq!(row.name, "SimpleSingle");
        assert_eq!(row.computed_int, Some(100));
        assert!(row.is_tight());
        assert!(row.lp_size.0 > 0);
    }
}
