//! Benchmark harness support: runs the full pipeline on Table-1 benchmarks and formats
//! the resulting rows.

use std::time::Instant;

use dca_benchmarks::Benchmark;
use dca_core::{AnalysisError, DiffCostSolver};

/// One reproduced row of Table 1.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Benchmark name.
    pub name: String,
    /// Group label (source of the benchmark).
    pub group: String,
    /// Tight threshold (documented, by construction of the reconstruction).
    pub tight: i64,
    /// Threshold the paper's tool computed (`None` = ✗ in the paper).
    pub paper_computed: Option<f64>,
    /// Threshold computed by this implementation (`None` = failure, the ✗ case).
    pub computed: Option<f64>,
    /// Computed threshold rounded down to an integer (sound for integer costs).
    pub computed_int: Option<i64>,
    /// Wall-clock time of the full pipeline (parsing, invariants, LP) in seconds.
    pub seconds: f64,
    /// Size of the synthesized LP (variables, constraints).
    pub lp_size: (usize, usize),
}

impl TableRow {
    /// `true` if the computed integer threshold equals the tight one.
    pub fn is_tight(&self) -> bool {
        self.computed_int == Some(self.tight)
    }
}

/// Runs the full differential cost analysis pipeline on one benchmark.
pub fn run_benchmark(benchmark: &Benchmark) -> TableRow {
    let start = Instant::now();
    let old = benchmark.old_program();
    let new = benchmark.new_program();
    let solver = DiffCostSolver::new(benchmark.options());
    let outcome = solver.solve(&new, &old);
    let seconds = start.elapsed().as_secs_f64();
    match outcome {
        Ok(result) => TableRow {
            name: benchmark.name.to_string(),
            group: benchmark.group.to_string(),
            tight: benchmark.tight,
            paper_computed: benchmark.paper_computed,
            computed: Some(result.threshold),
            computed_int: Some(result.threshold_int()),
            seconds,
            lp_size: (result.stats.lp_variables, result.stats.lp_constraints),
        },
        Err(AnalysisError::NoThresholdFound) | Err(_) => TableRow {
            name: benchmark.name.to_string(),
            group: benchmark.group.to_string(),
            tight: benchmark.tight,
            paper_computed: benchmark.paper_computed,
            computed: None,
            computed_int: None,
            seconds,
            lp_size: (0, 0),
        },
    }
}

/// Formats a list of rows as the Table-1 style text table.
pub fn format_table(rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "benchmark            | tight    | paper    | computed  | int     | tight? | time (s)\n",
    );
    out.push_str(
        "---------------------+----------+----------+-----------+---------+--------+---------\n",
    );
    for row in rows {
        let paper = row
            .paper_computed
            .map(|v| format!("{v:.2}"))
            .unwrap_or_else(|| "x".to_string());
        let computed = row
            .computed
            .map(|v| format!("{v:.2}"))
            .unwrap_or_else(|| "x".to_string());
        let computed_int = row
            .computed_int
            .map(|v| v.to_string())
            .unwrap_or_else(|| "x".to_string());
        out.push_str(&format!(
            "{:<21}| {:<9}| {:<9}| {:<10}| {:<8}| {:<7}| {:.2}\n",
            row.name,
            row.tight,
            paper,
            computed,
            computed_int,
            if row.is_tight() { "yes" } else { "no" },
            row.seconds
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_rows() {
        let row = TableRow {
            name: "Example".into(),
            group: "g".into(),
            tight: 100,
            paper_computed: Some(100.0),
            computed: Some(100.0),
            computed_int: Some(100),
            seconds: 1.5,
            lp_size: (10, 20),
        };
        assert!(row.is_tight());
        let table = format_table(&[row]);
        assert!(table.contains("Example"));
        assert!(table.contains("yes"));
        let failed = TableRow {
            name: "Failed".into(),
            group: "g".into(),
            tight: 1,
            paper_computed: None,
            computed: None,
            computed_int: None,
            seconds: 0.1,
            lp_size: (0, 0),
        };
        assert!(!failed.is_tight());
        assert!(format_table(&[failed]).contains('x'));
    }
}
