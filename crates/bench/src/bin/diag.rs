//! Pipeline stage timing diagnostics (developer tool).

use std::time::Instant;

use dca_benchmarks::{all_benchmarks, running_example};
use dca_core::DiffCostSolver;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "SimpleSingle".to_string());
    let benchmark = all_benchmarks()
        .into_iter()
        .chain([running_example()])
        .find(|b| b.name == name)
        .expect("unknown benchmark");
    let t0 = Instant::now();
    let old = benchmark.old_program();
    eprintln!("old invariants: {:.2}s, {} locations", t0.elapsed().as_secs_f64(), old.ts.num_locations());
    let t1 = Instant::now();
    let new = benchmark.new_program();
    eprintln!("new invariants: {:.2}s, {} locations", t1.elapsed().as_secs_f64(), new.ts.num_locations());
    for loc in new.ts.locations() {
        let n = new.invariants.constraints_at(loc).len();
        eprintln!("  invariant size at {}: {}", new.ts.location_name(loc), n);
    }
    let t2 = Instant::now();
    let solver = DiffCostSolver::new(benchmark.options());
    let result = solver.solve(&new, &old);
    eprintln!("solve: {:.2}s -> {:?}", t2.elapsed().as_secs_f64(), result.map(|r| (r.threshold, r.stats.lp_variables, r.stats.lp_constraints)).map_err(|e| e.to_string()));
}
