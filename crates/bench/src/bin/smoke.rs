//! Fast Table-1 smoke bench for CI: runs a ≤60 s subset of the suite at the paper
//! configuration and fails on any *status* regression (tight rows must stay tight)
//! or on a >2x per-row *time* regression against the committed `BENCH_table1.json`
//! baseline.
//!
//! The subset (SimpleSingle, SimpleSingle2, Dis2, sum, ddec, ddec modified) covers a
//! non-zero tight threshold, the once-regressed sequential-loop shape, a two-counter
//! loop, and the equivalent-rewrite zero-threshold pairs — the shapes whose statuses
//! have historically regressed. A `SimpleSingle2`-style regression (recorded as
//! `failed` in `BENCH_table1.json` by an earlier PR while every test stayed green)
//! is caught here, in CI, instead of in the benchmark JSON.
//!
//! Usage: `cargo run --release -p dca-bench --bin smoke`
//! Exit code 0 = all subset rows tight; 1 = regression (details on stderr).
//!
//! Under `DCA_FAULT=<phase>:<kind>` the bin switches to *fault-injection mode*: the
//! injected fault must degrade exactly one row to a machine-distinguishable
//! non-certified outcome (`aborted` in the injected phase for `panic`; `truncated`
//! or `aborted` for `deadline`, with any reported bound still sound), while every
//! other row stays tight and certified — proving one faulty pair cannot take down
//! or silently corrupt the rest of the batch.

use std::process::exit;
use std::time::Duration;

use dca_bench::{
    format_table, parse_baseline_cpu_seconds, parse_baseline_seconds, run_suite_filtered,
    time_regressions,
};
use dca_benchmarks::SuiteConfig;
use dca_core::InvariantTier;

/// The subset, by exact name. Every one of these rows is expected `tight`.
const SUBSET: [&str; 6] =
    ["SimpleSingle", "SimpleSingle2", "Dis2", "sum", "ddec", "ddec modified"];

fn main() {
    let config = SuiteConfig {
        jobs: 1,
        escalate: false,
        // Generous per-attempt ceiling; the whole subset solves in seconds. A row
        // that needs anywhere near this long is itself a (performance) regression.
        time_budget: Some(Duration::from_secs(60)),
        invariant_tier: InvariantTier::Baseline,
    };
    let filters: Vec<String> = SUBSET.iter().map(|s| s.to_string()).collect();
    let run = run_suite_filtered(&config, &filters);
    println!("{}", format_table(&run.rows));
    println!(
        "smoke subset: {} rows in {:.2}s",
        run.rows.len(),
        run.wall_clock.as_secs_f64()
    );

    if let Ok(spec) = std::env::var("DCA_FAULT") {
        fault_mode(&run.rows, &spec);
        return;
    }

    // Per-row time baseline from the committed benchmark record. A row is a time
    // regression when it runs > 2x its baseline AND slower than an absolute floor
    // (sub-second rows drown in machine noise at a 2x threshold). The gate compares
    // *CPU* seconds, which ignore sibling load and queue wait; baselines committed
    // before the cpu_seconds key existed fall back to the wall-clock entries.
    const TIME_REGRESSION_FACTOR: f64 = 2.0;
    const TIME_FLOOR_SECONDS: f64 = 0.5;
    let baseline: Vec<(String, f64)> = match std::fs::read_to_string("BENCH_table1.json") {
        Ok(json) => {
            let cpu = parse_baseline_cpu_seconds(&json);
            if cpu.is_empty() { parse_baseline_seconds(&json) } else { cpu }
        }
        Err(error) => {
            // Say so loudly: a silently-skipped gate that still prints success is
            // exactly the failure mode this check exists to prevent.
            eprintln!(
                "warning: BENCH_table1.json not readable ({error}); the >{}x time-regression \
                 gate is DISABLED for this run (run from the repository root?)",
                TIME_REGRESSION_FACTOR
            );
            Vec::new()
        }
    };

    let mut regressions = Vec::new();
    let mut timed_rows = Vec::new();
    for name in SUBSET {
        match run.rows.iter().find(|row| row.name == name) {
            // Every subset row was certified-tight at its baseline commit, so a row
            // that degrades down the ladder (truncated/aborted) is a regression even
            // when its anytime bound happens to equal the tight threshold.
            Some(row) if row.is_tight() && row.outcome == "certified" => {
                timed_rows.push((row.name.clone(), row.cpu_seconds));
            }
            Some(row) => regressions.push(format!(
                "{name}: expected certified-tight ({}), computed {:?} ({})",
                row.tight, row.computed_int, row.outcome
            )),
            None => regressions.push(format!("{name}: missing from the suite")),
        }
    }
    // Shared gate: rows without a committed baseline entry are skipped, so a freshly
    // added subset member cannot fail CI before its baseline lands.
    let (time_regs, _) = time_regressions(
        &timed_rows,
        &baseline,
        TIME_REGRESSION_FACTOR,
        TIME_FLOOR_SECONDS,
    );
    regressions.extend(time_regs);
    if !regressions.is_empty() {
        eprintln!("smoke bench FAILED:");
        for regression in &regressions {
            eprintln!("  {regression}");
        }
        exit(1);
    }
    if baseline.is_empty() {
        println!(
            "smoke bench OK: all {} subset rows tight (time gate skipped: no baseline)",
            SUBSET.len()
        );
    } else {
        println!(
            "smoke bench OK: all {} subset rows tight, within {}x of their time baselines",
            SUBSET.len(),
            TIME_REGRESSION_FACTOR
        );
    }
}

/// The `DCA_FAULT` expectations: one degraded row with the right ladder outcome, all
/// siblings untouched. Exits non-zero with details on any violation.
fn fault_mode(rows: &[dca_bench::TableRow], spec: &str) {
    let mut parts = spec.split(':');
    let phase = parts.next().unwrap_or_default();
    let kind = parts.next().unwrap_or_default();
    let mut failures = Vec::new();
    let degraded: Vec<&dca_bench::TableRow> =
        rows.iter().filter(|row| row.outcome != "certified").collect();
    match degraded.as_slice() {
        [row] => match kind {
            "panic" => {
                if row.outcome != "aborted" {
                    failures
                        .push(format!("{}: expected aborted, got {}", row.name, row.outcome));
                }
                if row.aborted_phase.as_deref() != Some(phase) {
                    failures.push(format!(
                        "{}: expected abort in phase {phase}, got {:?}",
                        row.name, row.aborted_phase
                    ));
                }
            }
            "deadline" => {
                if row.outcome != "truncated" && row.outcome != "aborted" {
                    failures.push(format!(
                        "{}: expected truncated or aborted, got {}",
                        row.name, row.outcome
                    ));
                }
                // A truncated row may still carry a bound — it must stay sound
                // (an over-approximation of the tight threshold).
                if let Some(computed) = row.computed_int {
                    if computed < row.tight {
                        failures.push(format!(
                            "{}: unsound bound under fault — computed {computed} < tight {}",
                            row.name, row.tight
                        ));
                    }
                }
            }
            _ => failures.push(format!("unsupported DCA_FAULT kind {kind:?} in fault mode")),
        },
        [] => failures.push(format!(
            "DCA_FAULT={spec} injected nothing: every row still certified"
        )),
        many => failures.push(format!(
            "DCA_FAULT={spec} degraded {} rows (expected exactly 1): {:?}",
            many.len(),
            many.iter().map(|r| r.name.as_str()).collect::<Vec<_>>()
        )),
    }
    // Containment: every non-degraded row must be exactly as good as a fault-free run.
    for row in rows.iter().filter(|row| row.outcome == "certified") {
        if !row.is_tight() {
            failures.push(format!(
                "{}: lost tightness under an unrelated fault — computed {:?}, tight {}",
                row.name, row.computed_int, row.tight
            ));
        }
    }
    if !failures.is_empty() {
        eprintln!("fault-injection smoke FAILED (DCA_FAULT={spec}):");
        for failure in &failures {
            eprintln!("  {failure}");
        }
        exit(1);
    }
    println!(
        "fault-injection smoke OK: {spec} degraded exactly one row, all {} siblings \
         stayed certified-tight",
        rows.len() - 1
    );
}
