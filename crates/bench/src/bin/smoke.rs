//! Fast Table-1 smoke bench for CI: runs a ≤60 s subset of the suite at the paper
//! configuration and fails on any *status* regression (tight rows must stay tight).
//!
//! The subset (SimpleSingle, SimpleSingle2, Dis2, sum, ddec, ddec modified) covers a
//! non-zero tight threshold, the once-regressed sequential-loop shape, a two-counter
//! loop, and the equivalent-rewrite zero-threshold pairs — the shapes whose statuses
//! have historically regressed. A `SimpleSingle2`-style regression (recorded as
//! `failed` in `BENCH_table1.json` by an earlier PR while every test stayed green)
//! is caught here, in CI, instead of in the benchmark JSON.
//!
//! Usage: `cargo run --release -p dca-bench --bin smoke`
//! Exit code 0 = all subset rows tight; 1 = regression (details on stderr).

use std::process::exit;
use std::time::Duration;

use dca_bench::{format_table, run_suite_filtered};
use dca_benchmarks::SuiteConfig;
use dca_core::InvariantTier;

/// The subset, by exact name. Every one of these rows is expected `tight`.
const SUBSET: [&str; 6] =
    ["SimpleSingle", "SimpleSingle2", "Dis2", "sum", "ddec", "ddec modified"];

fn main() {
    let config = SuiteConfig {
        jobs: 1,
        escalate: false,
        // Generous per-attempt ceiling; the whole subset solves in seconds. A row
        // that needs anywhere near this long is itself a (performance) regression.
        time_budget: Some(Duration::from_secs(60)),
        invariant_tier: InvariantTier::Baseline,
    };
    let filters: Vec<String> = SUBSET.iter().map(|s| s.to_string()).collect();
    let run = run_suite_filtered(&config, &filters);
    println!("{}", format_table(&run.rows));
    println!(
        "smoke subset: {} rows in {:.2}s",
        run.rows.len(),
        run.wall_clock.as_secs_f64()
    );

    let mut regressions = Vec::new();
    for name in SUBSET {
        match run.rows.iter().find(|row| row.name == name) {
            Some(row) if row.is_tight() => {}
            Some(row) => regressions.push(format!(
                "{name}: expected tight ({}), computed {:?}",
                row.tight, row.computed_int
            )),
            None => regressions.push(format!("{name}: missing from the suite")),
        }
    }
    if !regressions.is_empty() {
        eprintln!("smoke bench FAILED:");
        for regression in &regressions {
            eprintln!("  {regression}");
        }
        exit(1);
    }
    println!("smoke bench OK: all {} subset rows tight", SUBSET.len());
}
