//! Table-2 generated-corpus bench: solves the seeded generator corpus, runs the
//! differential soundness harness over every solved pair, and gates regressions
//! against the committed `BENCH_table2.json` baseline.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p dca-bench --bin table2 -- \
//!     [--smoke] [--jobs N] [--timeout SECS] [--limit N] [--samples N] \
//!     [--no-differential] [--json [PATH]] [name ...]
//! ```
//!
//! `--smoke` restricts the corpus to the small deterministic CI subset (cheap
//! depth-1/2 single-phase shapes, one per class; ≤60 s on a 1-CPU box including the
//! harness). The full corpus (≥200 pairs) is the default and is what the committed
//! `BENCH_table2.json` records. Every solved pair is (a) interpreter-sampled to check
//! the reported bound is never violated on concrete runs, and (b) unless
//! `--no-differential`, re-solved under the exact backend and with LP presolve
//! disabled, asserting verdict agreement (`--timeout` also bounds those re-solves, so
//! a timeout there surfaces as a loud disagreement rather than a silent pass).
//!
//! Exit code 0 requires: every pair solved, 100% sampled-sound, 100% differential
//! agreement (when run), ≥90% of pairs proven tight *and* lp-certified, and no
//! >2x per-row time regression against the committed baseline (rows without a
//! > baseline entry are skipped — new pairs never fail CI on first introduction).

use std::process::exit;
use std::time::Duration;

use dca_bench::{
    current_commit, format_history_line_tagged, format_table, format_table2_json,
    parse_baseline_cpu_seconds, parse_baseline_seconds, table2_row, time_regressions,
    today_utc, SuiteRun, Table2Row,
};
use dca_benchmarks::table2::{
    check_sampled_soundness, differential_verdicts, run_table2, table2_manifest, table2_smoke,
};

const TIME_REGRESSION_FACTOR: f64 = 2.0;
const TIME_FLOOR_SECONDS: f64 = 1.0;
/// Minimum fraction of pairs that must be proven tight and certified (acceptance
/// criterion of the generated corpus: every bound is tight by construction).
const TIGHT_FRACTION: f64 = 0.9;

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    let position = args.iter().position(|a| a == flag)?;
    let Some(value) = args.get(position + 1) else {
        eprintln!("error: {flag} requires a value");
        exit(2);
    };
    match value.parse() {
        Ok(parsed) => Some(parsed),
        Err(_) => {
            eprintln!("error: invalid {flag} {value}");
            exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let jobs: usize = parse_flag(&args, "--jobs").unwrap_or(0);
    let time_budget = parse_flag::<u64>(&args, "--timeout").map(Duration::from_secs);
    let limit: Option<usize> = parse_flag(&args, "--limit");
    let samples: usize = parse_flag(&args, "--samples").unwrap_or(6);
    let differential = !args.iter().any(|a| a == "--no-differential");
    let json_takes_value =
        |pos: usize| args.get(pos + 1).is_some_and(|next| next.ends_with(".json"));
    let json_path: Option<String> = args.iter().position(|a| a == "--json").map(|pos| {
        if json_takes_value(pos) {
            args[pos + 1].clone()
        } else {
            "BENCH_table2.json".to_string()
        }
    });
    let filters: Vec<String> = {
        let mut skip_next = false;
        args.iter()
            .enumerate()
            .filter(|(pos, a)| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if ["--jobs", "--timeout", "--limit", "--samples"].contains(&a.as_str()) {
                    skip_next = true;
                    return false;
                }
                if *a == "--json" {
                    skip_next = json_takes_value(*pos);
                    return false;
                }
                !a.starts_with("--")
            })
            .map(|(_, a)| a.clone())
            .collect()
    };

    let mut pairs = if smoke { table2_smoke() } else { table2_manifest() };
    if !filters.is_empty() {
        pairs.retain(|p| filters.iter().any(|f| p.name.contains(f.as_str())));
    }
    if let Some(limit) = limit {
        pairs.truncate(limit);
    }
    if pairs.is_empty() {
        eprintln!("error: no pairs selected");
        exit(2);
    }
    eprintln!(
        "table2: {} generated pairs ({}){}",
        pairs.len(),
        if smoke { "smoke subset" } else { "full corpus" },
        if differential { ", with differential harness" } else { "" },
    );

    let report = run_table2(&pairs, jobs, time_budget);
    let mut failures = Vec::new();
    let mut rows: Vec<Table2Row> = Vec::new();
    for (pair, outcome) in pairs.iter().zip(&report.outcomes) {
        assert_eq!(pair.name, outcome.name, "manifest and batch outcomes diverged");
        let table = table2_row(pair, outcome);
        let pruned =
            outcome.stats().map(|s| s.transitions_pruned).unwrap_or(0);
        let sound = match &outcome.result {
            Ok(result) => {
                // The interpreter-sampled check: the observed cost difference
                // under-approximates the true supremum, so any violation is real.
                match check_sampled_soundness(pair, result.threshold, outcome.tier, samples) {
                    Ok(()) => Some(true),
                    Err(violations) => {
                        for v in violations.iter().take(3) {
                            failures.push(format!("{}: UNSOUND — {v}", pair.name));
                        }
                        Some(false)
                    }
                }
            }
            Err(error) => {
                failures.push(format!("{}: solve failed — {error}", pair.name));
                None
            }
        };
        let agree = if differential && outcome.result.is_ok() {
            let verdict = differential_verdicts(pair, time_budget);
            for d in &verdict.disagreements {
                failures.push(format!("DIFFERENTIAL — {d}"));
            }
            Some(verdict.agree())
        } else {
            None
        };
        rows.push(Table2Row { table, seed: pair.seed, sound, agree, pruned });
    }

    let table_rows: Vec<_> = rows.iter().map(|r| r.table.clone()).collect();
    println!("{}", format_table(&table_rows));
    let tight = rows.iter().filter(|r| r.table.is_tight()).count();
    let certified_tight = rows
        .iter()
        .filter(|r| r.table.is_tight() && r.table.lp_certified)
        .count();
    let sound = rows.iter().filter(|r| r.sound == Some(true)).count();
    let agree = rows.iter().filter(|r| r.agree == Some(true)).count();
    println!(
        "table2: {} pairs — {} tight ({} certified), {} sampled-sound, {} agree — {:.2}s wall",
        rows.len(),
        tight,
        certified_tight,
        sound,
        agree,
        report.wall_clock.as_secs_f64(),
    );

    // The committed-baseline time gate (shared with smoke): per-row >2x with a 1 s
    // floor; rows without a baseline entry are skipped gracefully. Compared in CPU
    // seconds (load-immune), with a wall-clock fallback for pre-cpu_seconds
    // baselines.
    let baseline = match std::fs::read_to_string("BENCH_table2.json") {
        Ok(json) => {
            let cpu = parse_baseline_cpu_seconds(&json);
            if cpu.is_empty() { parse_baseline_seconds(&json) } else { cpu }
        }
        Err(error) => {
            eprintln!(
                "warning: BENCH_table2.json not readable ({error}); the \
                 >{TIME_REGRESSION_FACTOR}x time-regression gate is DISABLED for this run"
            );
            Vec::new()
        }
    };
    let timed: Vec<(String, f64)> =
        rows.iter().map(|r| (r.table.name.clone(), r.table.cpu_seconds)).collect();
    let (time_regs, covered) =
        time_regressions(&timed, &baseline, TIME_REGRESSION_FACTOR, TIME_FLOOR_SECONDS);
    failures.extend(time_regs);
    let fraction = certified_tight as f64 / rows.len() as f64;
    if fraction < TIGHT_FRACTION {
        failures.push(format!(
            "only {certified_tight}/{} pairs are tight and certified \
             ({:.0}% < {:.0}% required)",
            rows.len(),
            fraction * 100.0,
            TIGHT_FRACTION * 100.0
        ));
    }

    if let Some(path) = &json_path {
        std::fs::write(
            path,
            format_table2_json(&rows, report.wall_clock, report.cpu_time(), report.jobs),
        )
            .unwrap_or_else(|e| {
                eprintln!("error: cannot write {path}: {e}");
                exit(2);
            });
        eprintln!("wrote {path}");
        // The history trajectory only records full unfiltered corpus runs, so the
        // per-row series stays comparable across commits.
        if !smoke && filters.is_empty() && limit.is_none() {
            let run = SuiteRun {
                rows: table_rows,
                wall_clock: report.wall_clock,
                cpu_time: report.cpu_time(),
                jobs: report.jobs,
            };
            let line =
                format_history_line_tagged(&run, &today_utc(), &current_commit(), "table2");
            use std::io::Write;
            match std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open("BENCH_history.jsonl")
            {
                Ok(mut file) => {
                    let _ = writeln!(file, "{line}");
                    eprintln!("appended BENCH_history.jsonl");
                }
                Err(error) => eprintln!("warning: cannot append BENCH_history.jsonl: {error}"),
            }
        }
    }

    if !failures.is_empty() {
        eprintln!("table2 FAILED ({} problems):", failures.len());
        for failure in &failures {
            eprintln!("  {failure}");
        }
        exit(1);
    }
    println!(
        "table2 OK: {}/{} tight+certified, all sampled-sound{}, {} rows time-gated",
        certified_tight,
        rows.len(),
        if differential { ", all backends agree" } else { "" },
        covered,
    );
}
