//! Regenerates Table 1 of the paper: tightness of differential thresholds on the 19
//! benchmark pairs (plus the Fig. 1 running example).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p dca-bench --bin table1 [benchmark-name ...]
//! ```
//!
//! With no arguments every benchmark (including the running example) is analyzed; with
//! arguments only the named benchmarks run.

use dca_bench::{format_table, run_benchmark};
use dca_benchmarks::{all_benchmarks, running_example};

fn main() {
    let filters: Vec<String> = std::env::args().skip(1).collect();
    let mut benchmarks = all_benchmarks();
    benchmarks.push(running_example());
    let selected: Vec<_> = benchmarks
        .into_iter()
        .filter(|b| filters.is_empty() || filters.iter().any(|f| b.name.contains(f.as_str())))
        .collect();

    let mut rows = Vec::new();
    for benchmark in &selected {
        eprintln!("analyzing {} ({})...", benchmark.name, benchmark.group);
        let row = run_benchmark(benchmark);
        eprintln!(
            "  -> computed {:?} (tight {}), {:.2}s, LP {}x{}",
            row.computed, row.tight, row.seconds, row.lp_size.0, row.lp_size.1
        );
        rows.push(row);
    }
    println!("\nTable 1: tightness of differential thresholds ({} benchmarks)\n", rows.len());
    println!("{}", format_table(&rows));
    let tight = rows.iter().filter(|r| r.is_tight()).count();
    println!("tight thresholds: {}/{}", tight, rows.len());
}
