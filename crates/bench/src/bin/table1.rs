//! Regenerates Table 1 of the paper: tightness of differential thresholds on the 19
//! benchmark pairs (plus the Fig. 1 running example), via the parallel batch engine.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p dca-bench --bin table1 [--jobs N] [--escalate] [--timeout SECS] [name ...]
//! ```
//!
//! With no name filters every benchmark (including the running example) is analyzed.
//! `--jobs N` sets the worker-thread count (default: one per CPU); `--escalate` ignores
//! the per-benchmark paper degrees and lets the engine discover the degree (1 → 2 → 3);
//! `--timeout SECS` bounds each solve attempt so pathological LPs report `x` instead of
//! stalling the table.

use std::process::exit;

use dca_bench::{format_table, run_suite_filtered};
use dca_benchmarks::SuiteConfig;

/// Parses the value following `flag`, exiting with a clear message when the flag is
/// present but malformed or missing its value (silently falling back to a default
/// would e.g. disable a mistyped `--timeout` and stall the run for minutes).
fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    let position = args.iter().position(|a| a == flag)?;
    let Some(value) = args.get(position + 1) else {
        eprintln!("error: {flag} requires a value");
        exit(2);
    };
    match value.parse() {
        Ok(parsed) => Some(parsed),
        Err(_) => {
            eprintln!("error: invalid {flag} {value}");
            exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs: usize = parse_flag(&args, "--jobs").unwrap_or(0);
    let escalate = args.iter().any(|a| a == "--escalate");
    let time_budget =
        parse_flag::<u64>(&args, "--timeout").map(std::time::Duration::from_secs);
    let filters: Vec<String> = {
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if a.as_str() == "--jobs" || a.as_str() == "--timeout" {
                    skip_next = true;
                    return false;
                }
                !a.starts_with("--")
            })
            .cloned()
            .collect()
    };

    let run = run_suite_filtered(&SuiteConfig { jobs, escalate, time_budget }, &filters);

    println!(
        "\nTable 1: tightness of differential thresholds ({} benchmarks, {} worker threads{})\n",
        run.rows.len(),
        run.jobs,
        if escalate { ", degree escalation" } else { "" }
    );
    println!("{}", format_table(&run.rows));
    let tight = run.rows.iter().filter(|r| r.is_tight()).count();
    println!("tight thresholds: {}/{}", tight, run.rows.len());
    println!(
        "wall-clock {:.2}s, cpu {:.2}s (speedup {:.2}x over serial)",
        run.wall_clock.as_secs_f64(),
        run.cpu_time.as_secs_f64(),
        run.cpu_time.as_secs_f64() / run.wall_clock.as_secs_f64().max(1e-9),
    );
}
