//! Regenerates Table 1 of the paper: tightness of differential thresholds on the 19
//! benchmark pairs (plus the Fig. 1 running example), via the parallel batch engine.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p dca-bench --bin table1 \
//!     [--jobs N] [--escalate] [--timeout SECS] [--invariant-tier T] [--json [PATH]] [name ...]
//! ```
//!
//! With no name filters every benchmark (including the running example) is analyzed.
//! `--jobs N` sets the worker-thread count (default: one per CPU); `--escalate` ignores
//! the per-benchmark paper degrees and lets the escalation ladder discover the rung
//! (invariant tiers first, then degrees 1 → 2 → 3); `--invariant-tier T` analyzes at
//! invariant tier `T` (0 = baseline, 1 = hull, 2 = relational); `--timeout SECS` bounds
//! each solve attempt so pathological LPs report `x` instead of stalling the table;
//! `--json [PATH]` additionally writes the machine-readable run record (default
//! `BENCH_table1.json`) so the performance trajectory is tracked across PRs.

use std::process::exit;

use dca_bench::{
    current_commit, format_history_line, format_json, format_table, run_suite_filtered,
    today_utc,
};
use dca_benchmarks::SuiteConfig;
use dca_core::InvariantTier;

/// Parses the value following `flag`, exiting with a clear message when the flag is
/// present but malformed or missing its value (silently falling back to a default
/// would e.g. disable a mistyped `--timeout` and stall the run for minutes).
fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    let position = args.iter().position(|a| a == flag)?;
    let Some(value) = args.get(position + 1) else {
        eprintln!("error: {flag} requires a value");
        exit(2);
    };
    match value.parse() {
        Ok(parsed) => Some(parsed),
        Err(_) => {
            eprintln!("error: invalid {flag} {value}");
            exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs: usize = parse_flag(&args, "--jobs").unwrap_or(0);
    let escalate = args.iter().any(|a| a == "--escalate");
    let time_budget =
        parse_flag::<u64>(&args, "--timeout").map(std::time::Duration::from_secs);
    let invariant_tier = match parse_flag::<u32>(&args, "--invariant-tier") {
        None => InvariantTier::Baseline,
        Some(index) => InvariantTier::from_index(index).unwrap_or_else(|| {
            eprintln!("error: invalid --invariant-tier {index} (expected 0, 1 or 2)");
            exit(2);
        }),
    };
    // `--json` takes an optional path, consumed only when the next argument ends in
    // `.json` (benchmark-name filters never do, so the grammar stays unambiguous).
    let json_takes_value = |pos: usize| {
        args.get(pos + 1).is_some_and(|next| next.ends_with(".json"))
    };
    let json_path: Option<String> = args.iter().position(|a| a == "--json").map(|pos| {
        if json_takes_value(pos) {
            args[pos + 1].clone()
        } else {
            "BENCH_table1.json".to_string()
        }
    });
    let filters: Vec<String> = {
        let mut skip_next = false;
        args.iter()
            .enumerate()
            .filter(|(pos, a)| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if ["--jobs", "--timeout", "--invariant-tier"].contains(&a.as_str()) {
                    skip_next = true;
                    return false;
                }
                if a.as_str() == "--json" {
                    skip_next = json_takes_value(*pos);
                    return false;
                }
                !a.starts_with("--")
            })
            .map(|(_, a)| a.clone())
            .collect()
    };

    let run = run_suite_filtered(
        &SuiteConfig { jobs, escalate, time_budget, invariant_tier },
        &filters,
    );
    if run.rows.is_empty() && !filters.is_empty() {
        // A silently empty run is almost always a mistyped filter (or a `--json` path
        // that does not end in `.json` and fell through to the filters).
        eprintln!(
            "error: no benchmark matches the filter(s) {filters:?}; run without filters \
             to see all names"
        );
        exit(2);
    }

    println!(
        "\nTable 1: tightness of differential thresholds ({} benchmarks, {} worker threads{}, tier {})\n",
        run.rows.len(),
        run.jobs,
        if escalate { ", escalation ladder" } else { "" },
        invariant_tier,
    );
    println!("{}", format_table(&run.rows));
    let tight = run.rows.iter().filter(|r| r.is_tight()).count();
    println!("tight thresholds: {}/{}", tight, run.rows.len());
    println!(
        "wall-clock {:.2}s, cpu {:.2}s (speedup {:.2}x over serial)",
        run.wall_clock.as_secs_f64(),
        run.cpu_time.as_secs_f64(),
        run.cpu_time.as_secs_f64() / run.wall_clock.as_secs_f64().max(1e-9),
    );
    if let Some(path) = json_path {
        match std::fs::write(&path, format_json(&run)) {
            Ok(()) => println!("wrote {path}"),
            Err(error) => {
                eprintln!("error: cannot write {path}: {error}");
                exit(1);
            }
        }
        // Bench trajectory: append one summary line per `--json` run so performance
        // is tracked *across* PRs, not just overwritten by them. Only full-suite
        // runs are recorded — filtered runs would make the per-row series ragged.
        if filters.is_empty() {
            let history_path = "BENCH_history.jsonl";
            let line = format_history_line(&run, &today_utc(), &current_commit());
            use std::io::Write;
            let appended = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(history_path)
                .and_then(|mut file| writeln!(file, "{line}"));
            match appended {
                Ok(()) => println!("appended {history_path}"),
                Err(error) => eprintln!("warning: cannot append {history_path}: {error}"),
            }
        }
    }
}
