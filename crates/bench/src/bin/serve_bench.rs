//! Serve-mode benchmark: cold-solve vs warm-hit latency through the daemon engine.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p dca-bench --bin serve_bench [--json]
//! ```
//!
//! Runs a subset of the Table-1 pairs twice through one in-process
//! [`dca_serve::Engine`] — a cold query, then an exact repeat — and reports both
//! latencies per pair. Gates on the tentpole promise: every repeat must be a
//! pivot-free cache hit at least 10x faster than its cold solve (sub-millisecond
//! hits pass outright — at that scale the ratio only measures timer noise).
//! `--json` appends a `"suite": "serve"` line to `BENCH_history.jsonl` so the
//! cold/warm trajectory is tracked across PRs alongside the table runs.

use std::process::exit;
use std::time::Instant;

use dca_bench::{current_commit, today_utc};
use dca_serve::protocol::{AnalyzeRequest, Frame, Request, ResultFrame};
use dca_serve::Engine;

/// The benchmarked subset: small-to-mid Table-1 pairs across groups, so the cold
/// column spans the latency range without making this CI-blocking bin slow.
const SUBSET: [&str; 5] = ["join", "Dis1", "SimpleSingle2", "SequentialSingle", "sum"];

fn query(engine: &Engine, id: &str, bench: &dca_benchmarks::Benchmark) -> (ResultFrame, f64) {
    let mut request = AnalyzeRequest::new(id, bench.source_new, bench.source_old);
    request.degree = Some(bench.degree);
    let started = Instant::now();
    let frames = engine.handle_collect(&Request::Analyze(request));
    let seconds = started.elapsed().as_secs_f64();
    match frames.as_slice() {
        [Frame::Result(result)] => (result.clone(), seconds),
        other => {
            eprintln!("error: {id}: expected a result frame, got {other:?}");
            exit(1);
        }
    }
}

fn main() {
    let json = std::env::args().skip(1).any(|a| a == "--json");
    let mut benchmarks = dca_benchmarks::all_benchmarks();
    benchmarks.push(dca_benchmarks::running_example());
    let subset: Vec<_> = SUBSET
        .iter()
        .map(|name| {
            benchmarks.iter().find(|b| b.name == *name).unwrap_or_else(|| {
                eprintln!("error: no benchmark named {name:?}");
                exit(2);
            })
        })
        .collect();

    let engine = Engine::new();
    println!(
        "{:<17} | {:>9} | {:>9} | {:>8} | outcome",
        "pair", "cold (ms)", "hit (ms)", "speedup"
    );
    println!("{:-<17}-+-{:->9}-+-{:->9}-+-{:->8}-+--------", "", "", "", "");
    let mut rows = Vec::new();
    let mut failed = false;
    for bench in &subset {
        let (cold, cold_s) = query(&engine, &format!("{}-cold", bench.name), bench);
        let (hit, hit_s) = query(&engine, &format!("{}-hit", bench.name), bench);
        let ok = cold.outcome == "certified"
            && hit.cache == "hit"
            && hit.lp_iterations == 0
            && (hit_s < 1e-3 || cold_s >= 10.0 * hit_s);
        failed |= !ok;
        println!(
            "{:<17} | {:>9.2} | {:>9.3} | {:>7.0}x | {}{}",
            bench.name,
            cold_s * 1e3,
            hit_s * 1e3,
            cold_s / hit_s.max(1e-9),
            cold.outcome,
            if ok { "" } else { "  <-- FAILED GATE" },
        );
        rows.push((bench.name, cold_s, hit_s));
    }

    if json {
        let cold: Vec<String> =
            rows.iter().map(|(n, c, _)| format!("\"{n}\": {c:.4}")).collect();
        let hit: Vec<String> =
            rows.iter().map(|(n, _, h)| format!("\"{n}\": {h:.6}")).collect();
        let line = format!(
            "{{\"suite\": \"serve\", \"date\": \"{}\", \"commit\": \"{}\", \
             \"pairs\": {}, \"cold_s\": {{{}}}, \"hit_s\": {{{}}}}}",
            today_utc(),
            current_commit(),
            rows.len(),
            cold.join(", "),
            hit.join(", "),
        );
        use std::io::Write;
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open("BENCH_history.jsonl")
            .and_then(|mut file| writeln!(file, "{line}"));
        match appended {
            Ok(()) => println!("appended BENCH_history.jsonl"),
            Err(error) => eprintln!("warning: cannot append BENCH_history.jsonl: {error}"),
        }
    }

    if failed {
        eprintln!(
            "error: a repeat query missed the cache, pivoted, or was < 10x faster than cold"
        );
        exit(1);
    }
    println!("serve bench OK: every repeat was a pivot-free hit >= 10x faster than cold");
}
