//! A convex-polyhedra-lite abstract domain: conjunctions of affine inequalities.

use dca_lp::{ConstraintOp, LpProblem, LpStatus, VarKind};
use dca_numeric::Rational;
use dca_poly::{LinExpr, VarId};

/// A conjunction of affine inequalities `expr ≥ 0`, or the empty (unreachable) element.
///
/// The element `Top` is represented by an empty constraint list. Emptiness and entailment
/// are decided with the exact LP backend over the rationals, so the domain operations are
/// precise with respect to the constraint representation (the only deliberate precision
/// losses are the weak join, widening, and the cap on Fourier–Motzkin growth).
#[derive(Debug, Clone, PartialEq)]
pub struct Polyhedron {
    /// `None` encodes bottom (unreachable); `Some(cs)` encodes the conjunction of `cs`.
    constraints: Option<Vec<LinExpr>>,
}

/// Maximum number of constraints kept after any operation. Excess constraints are dropped
/// (a sound over-approximation).
const MAX_CONSTRAINTS: usize = 64;

/// Cap on the candidate directions explored by [`Polyhedron::hull_join`] (each direction
/// costs two small LP solves).
const MAX_JOIN_DIRECTIONS: usize = 96;

/// The octagon directions `±x ± y` are only enumerated when the polyhedra mention at
/// most this many variables (the pair count grows quadratically).
const MAX_OCTAGON_VARS: usize = 8;

/// Denominator of the coarse grid the hull join snaps its LP-computed constants to.
/// Snapping makes the join idempotent (no epsilon ratcheting across fixpoint rounds)
/// while staying far above the f64 solver tolerance.
const SNAP_DENOMINATOR: i64 = 256;

impl Polyhedron {
    /// The universe (no constraints).
    pub fn top() -> Polyhedron {
        Polyhedron { constraints: Some(Vec::new()) }
    }

    /// The empty polyhedron (unreachable).
    pub fn bottom() -> Polyhedron {
        Polyhedron { constraints: None }
    }

    /// Builds a polyhedron from a conjunction of `expr ≥ 0` constraints.
    pub fn from_constraints(constraints: impl IntoIterator<Item = LinExpr>) -> Polyhedron {
        let mut p = Polyhedron::top();
        for c in constraints {
            p.add_constraint(c);
        }
        p
    }

    /// Returns `true` if this is the bottom element.
    pub fn is_bottom(&self) -> bool {
        self.constraints.is_none()
    }

    /// The constraints of the polyhedron (empty slice for top, `None` for bottom).
    pub fn constraints(&self) -> Option<&[LinExpr]> {
        self.constraints.as_deref()
    }

    /// The constraints as a vector, treating bottom as an explicitly false constraint
    /// `-1 ≥ 0` so that downstream consumers remain sound.
    pub fn constraints_or_false(&self) -> Vec<LinExpr> {
        match &self.constraints {
            Some(cs) => cs.clone(),
            None => vec![LinExpr::from_int(-1)],
        }
    }

    /// Conjoins one more constraint `expr ≥ 0`.
    pub fn add_constraint(&mut self, expr: LinExpr) {
        if let Some(cs) = &mut self.constraints {
            if expr.is_constant() {
                if expr.constant_term().is_negative() {
                    self.constraints = None;
                }
                return;
            }
            let normalized = expr.normalize();
            // Cheap syntactic subsumption: among constraints with identical coefficient
            // vectors, only the one with the smallest constant (the strongest) matters.
            for existing in cs.iter_mut() {
                if same_coefficients(existing, &normalized) {
                    if normalized.constant_term() < existing.constant_term() {
                        *existing = normalized;
                    }
                    return;
                }
            }
            cs.push(normalized);
            if cs.len() > MAX_CONSTRAINTS {
                cs.truncate(MAX_CONSTRAINTS);
            }
        }
    }

    /// Conjoins several constraints.
    pub fn add_constraints(&mut self, exprs: &[LinExpr]) {
        for e in exprs {
            self.add_constraint(e.clone());
        }
    }

    /// Decides emptiness with an exact LP feasibility check and collapses to bottom if
    /// the constraints are unsatisfiable (over the rationals).
    pub fn normalize_emptiness(&mut self) {
        if let Some(cs) = &self.constraints {
            if !cs.is_empty() && !Self::feasible(cs) {
                self.constraints = None;
            }
        }
    }

    /// Decides emptiness **in exact rational arithmetic**: returns `true` only
    /// when the exact simplex proves the conjunction infeasible over ℚ.
    ///
    /// This is the entry point for the infeasible-transition pruning pass: a
    /// premise `I(source) ∧ guard` that is contradictory can be dropped before
    /// the Handelman encoding ever sees it (contradictory premise products
    /// poison the f64 simplex with degraded reinversions). Pruning is only
    /// sound in one direction, so anything short of a definite exact
    /// `Infeasible` — including an f64 infeasibility verdict, which can be a
    /// numerical artifact — answers `false` and keeps the transition.
    pub fn definitely_empty_exact(&self) -> bool {
        match &self.constraints {
            None => true,
            Some(cs) if cs.is_empty() => false,
            Some(cs) => {
                let (lp, _) = Self::build_lp(cs, None);
                // Float prescreen: if f64 finds the premise feasible, keep the
                // transition without paying an exact solve — keeping is always
                // sound, and feasible premises are the overwhelmingly common
                // case. Only an f64 infeasibility *suspicion* (which may be a
                // numerical artifact) escalates to the exact simplex, whose
                // verdict alone may prune.
                if lp.solve_f64().status != LpStatus::Infeasible {
                    return false;
                }
                lp.solve_exact().status == LpStatus::Infeasible
            }
        }
    }

    /// Returns `true` if the conjunction is satisfiable over the rationals.
    ///
    /// Only a definite `Infeasible` answer may collapse a polyhedron to bottom:
    /// treating a non-converged f64 solve (iteration limit, timeout, or the
    /// post-solve feasibility downgrade) as "empty" would mark reachable states
    /// unreachable and make the synthesized thresholds unsound.
    fn feasible(constraints: &[LinExpr]) -> bool {
        let (lp, _) = Self::build_lp(constraints, None);
        lp.solve_f64().status != LpStatus::Infeasible
    }

    /// Returns `true` if every point of the polyhedron satisfies `expr ≥ 0`.
    ///
    /// Decided by minimizing `expr` over the polyhedron: the implication holds iff the
    /// minimum is non-negative (or the polyhedron is empty / the LP is infeasible).
    pub fn entails(&self, expr: &LinExpr) -> bool {
        let Some(cs) = &self.constraints else {
            return true;
        };
        if expr.is_constant() {
            return !expr.constant_term().is_negative();
        }
        let (mut lp, var_of) = Self::build_lp(cs, Some(expr));
        let objective: Vec<_> = expr
            .iter()
            .map(|(v, c)| (var_of(*v), c.clone()))
            .collect();
        lp.set_objective(objective);
        let solution = lp.solve_f64();
        match solution.status {
            LpStatus::Optimal => {
                let min = solution.objective.unwrap_or(0.0) + expr.constant_term().to_f64();
                min >= -1e-6
            }
            LpStatus::Infeasible => true,
            // Unbounded below means some point violates expr >= 0; a non-converged
            // solve must conservatively answer "not entailed".
            LpStatus::Unbounded | LpStatus::IterationLimit | LpStatus::TimedOut => false,
        }
    }

    /// Returns `true` if `self` is contained in `other` (every constraint of `other` is
    /// entailed by `self`).
    pub fn entails_all(&self, other: &Polyhedron) -> bool {
        match &other.constraints {
            None => self.is_bottom(),
            Some(cs) => cs.iter().all(|c| self.entails(c)),
        }
    }

    /// Sound join: keeps the constraints of each operand that are entailed by the other.
    ///
    /// This is weaker than the convex hull but sound (the result contains both operands)
    /// and cheap. Bottom is the identity.
    pub fn join(&self, other: &Polyhedron) -> Polyhedron {
        match (&self.constraints, &other.constraints) {
            (None, _) => other.clone(),
            (_, None) => self.clone(),
            (Some(a), Some(b)) => {
                let mut kept: Vec<LinExpr> = Vec::new();
                for c in a {
                    if other.entails(c) {
                        kept.push(c.clone());
                    }
                }
                for c in b {
                    if self.entails(c) && !kept.contains(c) {
                        kept.push(c.clone());
                    }
                }
                Polyhedron { constraints: Some(kept) }
            }
        }
    }

    /// Precise join: the best over-approximation of the union expressible in a finite
    /// set of candidate directions (a constraint-based convex-hull-lite).
    ///
    /// For every direction `d` drawn from the constraints of *both* operands, plus the
    /// interval (`±x`) and octagon (`±x ± y`) directions over the mentioned variables,
    /// the result keeps `d·x ≥ m` where `m` is the least value of `d·x` over either
    /// operand (computed by LP and conservatively snapped down to a coarse rational).
    /// Unlike [`Polyhedron::join`] — which can only *keep or drop* whole operand
    /// constraints — this join *relaxes constants*, so facts like `x ≥ 0 ∧ x ≤ 5` vs
    /// `x ≥ 3 ∧ x ≤ 10` combine to `0 ≤ x ≤ 10`, and relational facts like `x = y`
    /// shared by both operands survive even when neither operand states them as an
    /// explicit constraint (the octagon directions recover them).
    ///
    /// The result always contains both operands, so it is a sound upper bound; every
    /// kept constraint is additionally double-checked by [`Polyhedron::entails`] against
    /// both operands before it is admitted.
    pub fn hull_join(&self, other: &Polyhedron) -> Polyhedron {
        let (Some(a), Some(b)) = (&self.constraints, &other.constraints) else {
            // Bottom is the identity of any join.
            return match (&self.constraints, &other.constraints) {
                (None, _) => other.clone(),
                _ => self.clone(),
            };
        };
        // Candidate directions: coefficient vectors of both operands' constraints...
        let mut directions: Vec<LinExpr> = Vec::new();
        let mut push_direction = |candidate: LinExpr| {
            if candidate.is_constant() {
                return;
            }
            let mut normalized = candidate.normalize();
            normalized.set_constant(dca_numeric::Rational::zero());
            if !directions.contains(&normalized) && directions.len() < MAX_JOIN_DIRECTIONS {
                directions.push(normalized);
            }
        };
        for constraint in a.iter().chain(b.iter()) {
            push_direction(constraint.clone());
        }
        // ...plus interval and octagon directions over the mentioned variables.
        let mut vars: Vec<VarId> = a.iter().chain(b.iter()).flat_map(LinExpr::vars).collect();
        vars.sort();
        vars.dedup();
        if vars.len() <= MAX_OCTAGON_VARS {
            for (index, &x) in vars.iter().enumerate() {
                push_direction(LinExpr::var(x));
                push_direction(-LinExpr::var(x));
                for &y in &vars[index + 1..] {
                    push_direction(LinExpr::var(x) - LinExpr::var(y));
                    push_direction(LinExpr::var(y) - LinExpr::var(x));
                    push_direction(LinExpr::var(x) + LinExpr::var(y));
                    push_direction(-(LinExpr::var(x) + LinExpr::var(y)));
                }
            }
        }

        let mut kept: Vec<LinExpr> = Vec::new();
        for direction in &directions {
            let Some(min_a) = self.minimize(direction) else { continue };
            let Some(min_b) = other.minimize(direction) else { continue };
            let low = min_a.min(min_b);
            // Snap the f64 minimum down to a coarse rational. Snapping (rather than
            // subtracting an epsilon) keeps the operation idempotent — re-joining the
            // result with either operand reproduces the same constant, so fixpoint
            // iteration does not ratchet constants downward forever.
            let mut constant =
                Rational::new(-(low * SNAP_DENOMINATOR as f64).round() as i64, SNAP_DENOMINATOR);
            // `d·x ≥ m` is the constraint `d + (−m) ≥ 0`; rounding may land a hair
            // above the true minimum, in which case the entailment check fails and the
            // constant is relaxed one grid step at a time.
            for _ in 0..4 {
                let mut candidate = direction.clone();
                candidate.set_constant(constant.clone());
                if self.entails(&candidate) && other.entails(&candidate) {
                    kept.push(candidate.normalize());
                    break;
                }
                constant = &constant + &Rational::new(1, SNAP_DENOMINATOR);
            }
        }
        let mut result = Polyhedron { constraints: Some(Vec::new()) };
        for constraint in kept {
            result.add_constraint(constraint);
        }
        result
    }

    /// Least value of `direction · x` over the polyhedron (the constant term of
    /// `direction` is ignored). `None` for bottom, unbounded, or a non-converged solve.
    fn minimize(&self, direction: &LinExpr) -> Option<f64> {
        let cs = self.constraints.as_ref()?;
        let (mut lp, var_of) = Self::build_lp(cs, Some(direction));
        let objective: Vec<_> = direction
            .iter()
            .map(|(v, c)| (var_of(*v), c.clone()))
            .collect();
        lp.set_objective(objective);
        let solution = lp.solve_f64();
        match solution.status {
            LpStatus::Optimal => solution.objective,
            _ => None,
        }
    }

    /// Meet (conjunction): intersects the two polyhedra and normalizes emptiness.
    pub fn meet(&self, other: &Polyhedron) -> Polyhedron {
        let (Some(_), Some(b)) = (&self.constraints, &other.constraints) else {
            return Polyhedron::bottom();
        };
        let mut result = self.clone();
        result.add_constraints(b);
        result.normalize_emptiness();
        result
    }

    /// Standard widening: keeps only the constraints of `self` that still hold in `next`.
    pub fn widen(&self, next: &Polyhedron) -> Polyhedron {
        match (&self.constraints, &next.constraints) {
            (None, _) => next.clone(),
            (_, None) => self.clone(),
            (Some(a), Some(_)) => {
                let kept: Vec<LinExpr> =
                    a.iter().filter(|c| next.entails(c)).cloned().collect();
                Polyhedron { constraints: Some(kept) }
            }
        }
    }

    /// Widening with thresholds: like [`Polyhedron::widen`], but additionally keeps
    /// every threshold constraint entailed by *both* arguments.
    ///
    /// Plain widening drops any bound that moved between iterates — including bounds
    /// the loop guard itself guarantees (e.g. `i ≤ n` while iterating `i` up to `n`).
    /// Supplying the guard and Θ0 inequalities as thresholds lets the widening land on
    /// those stable bounds instead of discarding them. Termination is preserved: the
    /// kept set always comes from the finite pool "constraints of `self` ∪ thresholds",
    /// and as iterates grow, the entailed subset only shrinks.
    pub fn widen_with_thresholds(
        &self,
        next: &Polyhedron,
        thresholds: &[LinExpr],
    ) -> Polyhedron {
        let mut widened = self.widen(next);
        if widened.is_bottom() {
            return widened;
        }
        for threshold in thresholds {
            if self.entails(threshold) && next.entails(threshold) {
                widened.add_constraint(threshold.clone());
            }
        }
        widened
    }

    /// Removes all knowledge about a variable (projection by Fourier–Motzkin elimination).
    pub fn project_out(&self, var: VarId) -> Polyhedron {
        let Some(cs) = &self.constraints else {
            return Polyhedron::bottom();
        };
        let mut unrelated = Vec::new();
        let mut lower = Vec::new(); // coefficient of var > 0: gives lower bounds on var
        let mut upper = Vec::new(); // coefficient of var < 0: gives upper bounds on var
        for c in cs {
            let coeff = c.coeff(var);
            if coeff.is_zero() {
                unrelated.push(c.clone());
            } else if coeff.is_positive() {
                lower.push(c.clone());
            } else {
                upper.push(c.clone());
            }
        }
        // Combine each lower bound with each upper bound to eliminate `var`.
        let mut combined = unrelated;
        for lo in &lower {
            for up in &upper {
                let a = lo.coeff(var);
                let b = up.coeff(var).abs();
                // b*lo + a*up has coefficient a*b - a*b = 0 on var.
                let merged = &lo.scale(&b) + &up.scale(&a);
                debug_assert!(merged.coeff(var).is_zero());
                if merged.is_constant() {
                    if merged.constant_term().is_negative() {
                        return Polyhedron::bottom();
                    }
                } else {
                    combined.push(merged.normalize());
                }
                if combined.len() > MAX_CONSTRAINTS {
                    break;
                }
            }
        }
        combined.truncate(MAX_CONSTRAINTS);
        Polyhedron::from_constraints(combined)
    }

    /// Strongest post-condition of the simultaneous affine assignment
    /// `vars' = exprs(vars)`; non-affine or non-deterministic updates are passed as
    /// `None` and result in the variable being havocked.
    ///
    /// Variables not listed keep their value.
    pub fn assign_simultaneous(
        &self,
        updates: &[(VarId, Option<LinExpr>)],
        fresh_base: u32,
    ) -> Polyhedron {
        let Some(_) = &self.constraints else {
            return Polyhedron::bottom();
        };
        if updates.is_empty() {
            return self.clone();
        }
        // Primed variable ids live beyond every id used by the system.
        let primed: Vec<(VarId, VarId)> = updates
            .iter()
            .enumerate()
            .map(|(k, &(v, _))| (v, VarId(fresh_base + k as u32)))
            .collect();

        let mut extended = self.clone();
        // Add x_primed = expr(x) for deterministic affine updates.
        for (&(_var, ref update), &(_, primed_var)) in updates.iter().zip(&primed) {
            if let Some(expr) = update {
                let defining = &LinExpr::var(primed_var) - expr;
                extended.add_constraint(defining.clone());
                extended.add_constraint(-defining);
            }
        }
        // Project out the *old* values of all updated variables.
        let mut projected = extended;
        for &(var, _) in updates {
            projected = projected.project_out(var);
        }
        // Rename primed variables back to the original names.
        let renamed: Vec<LinExpr> = match projected.constraints {
            None => return Polyhedron::bottom(),
            Some(cs) => cs
                .into_iter()
                .map(|c| {
                    let mut out = LinExpr::constant(c.constant_term().clone());
                    for (v, coeff) in c.iter() {
                        let target = primed
                            .iter()
                            .find(|&&(_, p)| p == *v)
                            .map(|&(o, _)| o)
                            .unwrap_or(*v);
                        let existing = out.coeff(target);
                        out.set_coeff(target, &existing + coeff);
                    }
                    out
                })
                .collect(),
        };
        let mut result = Polyhedron::from_constraints(renamed);
        // Havoc shows up as "no constraint", which the renaming already guarantees, but
        // an explicit emptiness check keeps bottom canonical.
        result.normalize_emptiness();
        result
    }

    /// Removes constraints that are entailed by the remaining ones (cheap cleanup pass).
    pub fn reduce(&self) -> Polyhedron {
        let Some(cs) = &self.constraints else {
            return Polyhedron::bottom();
        };
        let mut kept: Vec<LinExpr> = cs.clone();
        let mut index = 0;
        while index < kept.len() {
            let candidate = kept[index].clone();
            let mut rest: Vec<LinExpr> = kept.clone();
            rest.remove(index);
            let rest_poly = Polyhedron { constraints: Some(rest.clone()) };
            if rest_poly.entails(&candidate) {
                kept = rest;
            } else {
                index += 1;
            }
        }
        Polyhedron { constraints: Some(kept) }
    }

    /// Builds the LP "all constraints hold" over the variables mentioned, mapping each
    /// program variable to a free LP variable. Returns the problem and the mapping.
    fn build_lp(
        constraints: &[LinExpr],
        extra: Option<&LinExpr>,
    ) -> (LpProblem, impl Fn(VarId) -> dca_lp::LpVar) {
        let mut vars: Vec<VarId> = constraints.iter().flat_map(LinExpr::vars).collect();
        if let Some(e) = extra {
            vars.extend(e.vars());
        }
        vars.sort();
        vars.dedup();
        let mut lp = LpProblem::new();
        let lp_vars: Vec<dca_lp::LpVar> = vars
            .iter()
            .map(|v| lp.add_var(format!("x{}", v.0), VarKind::Free))
            .collect();
        let mapping: std::collections::HashMap<VarId, dca_lp::LpVar> =
            vars.iter().copied().zip(lp_vars.iter().copied()).collect();
        for c in constraints {
            let terms: Vec<_> = c.iter().map(|(v, coef)| (mapping[v], coef.clone())).collect();
            lp.add_constraint(terms, ConstraintOp::Ge, -c.constant_term().clone());
        }
        let map_clone = mapping.clone();
        (lp, move |v: VarId| map_clone[&v])
    }

    /// Renders the polyhedron with variable names from a pool.
    pub fn render(&self, pool: &dca_poly::VarPool) -> String {
        match &self.constraints {
            None => "false".to_string(),
            Some(cs) if cs.is_empty() => "true".to_string(),
            Some(cs) => cs
                .iter()
                .map(|c| format!("{} >= 0", c.to_string(pool)))
                .collect::<Vec<_>>()
                .join(" /\\ "),
        }
    }
}

impl Default for Polyhedron {
    fn default() -> Self {
        Polyhedron::top()
    }
}

/// Returns `true` if two normalized affine expressions have identical coefficient vectors
/// (and therefore only differ in their constant term).
fn same_coefficients(a: &LinExpr, b: &LinExpr) -> bool {
    a.vars() == b.vars() && a.vars().iter().all(|&v| a.coeff(v) == b.coeff(v))
}

/// Convenience: the interval `lo ≤ v ≤ hi` as two `expr ≥ 0` constraints.
///
/// ```
/// use dca_invariants::{interval, Polyhedron};
/// use dca_poly::{LinExpr, VarId};
/// let p = Polyhedron::from_constraints(interval(VarId(0), 1, 100));
/// assert!(p.entails(&LinExpr::var(VarId(0))));
/// ```
pub fn interval(v: VarId, lo: i64, hi: i64) -> Vec<LinExpr> {
    vec![
        LinExpr::var(v) - LinExpr::from_int(lo),
        LinExpr::from_int(hi) - LinExpr::var(v),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca_poly::VarPool;

    fn setup() -> (VarPool, VarId, VarId) {
        let mut pool = VarPool::new();
        let x = pool.intern("x");
        let y = pool.intern("y");
        (pool, x, y)
    }

    #[test]
    fn entailment_basic() {
        let (_, x, _) = setup();
        // {1 <= x <= 10} entails x >= 0 and 20 - x >= 0, but not x - 5 >= 0.
        let p = Polyhedron::from_constraints(interval(x, 1, 10));
        assert!(p.entails(&LinExpr::var(x)));
        assert!(p.entails(&(LinExpr::from_int(20) - LinExpr::var(x))));
        assert!(!p.entails(&(LinExpr::var(x) - LinExpr::from_int(5))));
    }

    #[test]
    fn entailment_relational() {
        let (_, x, y) = setup();
        // {x >= y, y >= 3} entails x >= 3 and x >= 0.
        let p = Polyhedron::from_constraints(vec![
            LinExpr::var(x) - LinExpr::var(y),
            LinExpr::var(y) - LinExpr::from_int(3),
        ]);
        assert!(p.entails(&(LinExpr::var(x) - LinExpr::from_int(3))));
        assert!(p.entails(&LinExpr::var(x)));
        assert!(!p.entails(&(LinExpr::var(y) - LinExpr::var(x))));
    }

    #[test]
    fn bottom_detection() {
        let (_, x, _) = setup();
        let mut p = Polyhedron::from_constraints(vec![
            LinExpr::var(x) - LinExpr::from_int(5),
            LinExpr::from_int(3) - LinExpr::var(x),
        ]);
        assert!(!p.is_bottom());
        p.normalize_emptiness();
        assert!(p.is_bottom());
        assert!(p.entails(&LinExpr::from_int(-1)));
        assert_eq!(p.constraints_or_false().len(), 1);
    }

    #[test]
    fn join_keeps_common_facts() {
        let (_, x, _) = setup();
        let a = Polyhedron::from_constraints(interval(x, 0, 5));
        let b = Polyhedron::from_constraints(interval(x, 3, 10));
        let j = a.join(&b);
        // The join must contain both operands: x in [0, 10].
        assert!(j.entails(&LinExpr::var(x)));
        assert!(j.entails(&(LinExpr::from_int(10) - LinExpr::var(x))));
        // And must not claim anything stronger than the union allows.
        assert!(!j.entails(&(LinExpr::var(x) - LinExpr::from_int(3))));
        // Join with bottom is identity.
        assert_eq!(a.join(&Polyhedron::bottom()), a);
        assert_eq!(Polyhedron::bottom().join(&b), b);
    }

    /// For every operand pair, the hull join must entail every constraint the weak
    /// entailment-filter join keeps — i.e. it is at least as precise — while still
    /// containing both operands.
    #[test]
    fn hull_join_at_least_as_precise_as_weak_join() {
        let (_, x, y) = setup();
        let cases: Vec<(Polyhedron, Polyhedron)> = vec![
            (
                Polyhedron::from_constraints(interval(x, 0, 5)),
                Polyhedron::from_constraints(interval(x, 3, 10)),
            ),
            (
                Polyhedron::from_constraints(
                    interval(x, 0, 4).into_iter().chain(interval(y, 1, 2)),
                ),
                Polyhedron::from_constraints(
                    interval(x, 2, 9).into_iter().chain(interval(y, 0, 7)),
                ),
            ),
            (
                Polyhedron::from_constraints(vec![
                    LinExpr::var(x) - LinExpr::var(y),
                    LinExpr::var(y) - LinExpr::from_int(3),
                ]),
                Polyhedron::from_constraints(vec![
                    LinExpr::var(x) - LinExpr::from_int(7),
                    LinExpr::var(y) - LinExpr::from_int(1),
                ]),
            ),
        ];
        for (a, b) in cases {
            let weak = a.join(&b);
            let hull = a.hull_join(&b);
            // As precise: every weak-join constraint is entailed by the hull join.
            for constraint in weak.constraints().unwrap() {
                assert!(
                    hull.entails(constraint),
                    "hull join lost a weak-join fact: {constraint:?}"
                );
            }
            // Still sound: the hull join contains both operands.
            for constraint in hull.constraints().unwrap() {
                assert!(a.entails(constraint) && b.entails(constraint));
            }
        }
    }

    /// The octagon directions recover relational facts neither operand states as an
    /// explicit constraint — the canonical weak-join loss.
    #[test]
    fn hull_join_recovers_lockstep_relation() {
        let (_, x, y) = setup();
        // A: {x = 0, y = 0},  B: {x = 1, y = 1}.
        let point = |v: i64| {
            Polyhedron::from_constraints(
                interval(x, v, v).into_iter().chain(interval(y, v, v)),
            )
        };
        let (a, b) = (point(0), point(1));
        let x_minus_y = LinExpr::var(x) - LinExpr::var(y);
        // The weak join cannot express x = y (no operand constraint mentions x - y)...
        let weak = a.join(&b);
        assert!(!weak.entails(&x_minus_y) || !weak.entails(&-x_minus_y.clone()));
        // ...the hull join derives it, along with the interval hull.
        let hull = a.hull_join(&b);
        assert!(hull.entails(&x_minus_y));
        assert!(hull.entails(&(-x_minus_y)));
        assert!(hull.entails(&LinExpr::var(x)));
        assert!(hull.entails(&(LinExpr::from_int(1) - LinExpr::var(x))));
    }

    /// Joining the hull result with an operand again must not move the constants
    /// (idempotence on the snap grid): fixpoint iteration relies on this to terminate.
    #[test]
    fn hull_join_is_stable_under_rejoin() {
        let (_, x, y) = setup();
        let a = Polyhedron::from_constraints(
            interval(x, 0, 5).into_iter().chain(interval(y, 0, 0)),
        );
        let b = Polyhedron::from_constraints(
            interval(x, 3, 10).into_iter().chain(interval(y, 1, 1)),
        );
        let once = a.hull_join(&b);
        let twice = once.hull_join(&b);
        assert!(once.entails_all(&twice) && twice.entails_all(&once));
    }

    #[test]
    fn meet_intersects_and_detects_emptiness() {
        let (_, x, _) = setup();
        let a = Polyhedron::from_constraints(interval(x, 0, 5));
        let b = Polyhedron::from_constraints(interval(x, 3, 10));
        let m = a.meet(&b);
        assert!(m.entails(&(LinExpr::var(x) - LinExpr::from_int(3))));
        assert!(m.entails(&(LinExpr::from_int(5) - LinExpr::var(x))));
        let disjoint = Polyhedron::from_constraints(interval(x, 8, 10));
        assert!(a.meet(&disjoint).is_bottom());
        assert!(a.meet(&Polyhedron::bottom()).is_bottom());
        assert!(Polyhedron::bottom().meet(&a).is_bottom());
    }

    /// The guard-derived bound survives threshold widening but not plain widening.
    #[test]
    fn threshold_widening_retains_guard_bounds() {
        let (_, x, _) = setup();
        let previous = Polyhedron::from_constraints(interval(x, 0, 1));
        let next = Polyhedron::from_constraints(interval(x, 0, 2));
        let guard_bound = LinExpr::from_int(10) - LinExpr::var(x); // x <= 10, from a guard
        let plain = previous.widen(&next);
        assert!(!plain.entails(&guard_bound), "plain widening must lose the bound");
        let with_thresholds =
            previous.widen_with_thresholds(&next, std::slice::from_ref(&guard_bound));
        assert!(with_thresholds.entails(&guard_bound));
        assert!(with_thresholds.entails(&LinExpr::var(x))); // stable bound kept as before
        // A threshold not implied by both sides is not smuggled in.
        let too_strong = LinExpr::from_int(1) - LinExpr::var(x); // x <= 1 fails in `next`
        let widened =
            previous.widen_with_thresholds(&next, std::slice::from_ref(&too_strong));
        assert!(!widened.entails(&too_strong));
    }

    #[test]
    fn widen_drops_unstable_bounds() {
        let (_, x, _) = setup();
        let a = Polyhedron::from_constraints(interval(x, 0, 5));
        let b = Polyhedron::from_constraints(interval(x, 0, 9));
        let w = a.widen(&b);
        // The lower bound is stable, the upper bound is not.
        assert!(w.entails(&LinExpr::var(x)));
        assert!(!w.entails(&(LinExpr::from_int(1000) - LinExpr::var(x))));
    }

    #[test]
    fn projection_eliminates_variable() {
        let (_, x, y) = setup();
        // {x >= 0, y >= x, 10 >= y} |- project out y => x >= 0, 10 >= x
        let p = Polyhedron::from_constraints(vec![
            LinExpr::var(x),
            LinExpr::var(y) - LinExpr::var(x),
            LinExpr::from_int(10) - LinExpr::var(y),
        ]);
        let q = p.project_out(y);
        assert!(q.entails(&LinExpr::var(x)));
        assert!(q.entails(&(LinExpr::from_int(10) - LinExpr::var(x))));
        // No constraint on y must remain.
        for c in q.constraints().unwrap() {
            assert!(c.coeff(y).is_zero());
        }
    }

    #[test]
    fn assignment_increments_variable() {
        let (_, x, _) = setup();
        // {0 <= x <= 5} after x := x + 1 gives {1 <= x <= 6}.
        let p = Polyhedron::from_constraints(interval(x, 0, 5));
        let q = p.assign_simultaneous(
            &[(x, Some(LinExpr::var(x) + LinExpr::from_int(1)))],
            100,
        );
        assert!(q.entails(&(LinExpr::var(x) - LinExpr::from_int(1))));
        assert!(q.entails(&(LinExpr::from_int(6) - LinExpr::var(x))));
        assert!(!q.entails(&(LinExpr::from_int(5) - LinExpr::var(x))));
    }

    #[test]
    fn assignment_swap_is_precise() {
        let (_, x, y) = setup();
        // {x = 1, y = 2} after (x, y) := (y, x) gives {x = 2, y = 1}.
        let p = Polyhedron::from_constraints(vec![
            LinExpr::var(x) - LinExpr::from_int(1),
            LinExpr::from_int(1) - LinExpr::var(x),
            LinExpr::var(y) - LinExpr::from_int(2),
            LinExpr::from_int(2) - LinExpr::var(y),
        ]);
        let q = p.assign_simultaneous(
            &[(x, Some(LinExpr::var(y))), (y, Some(LinExpr::var(x)))],
            100,
        );
        assert!(q.entails(&(LinExpr::var(x) - LinExpr::from_int(2))));
        assert!(q.entails(&(LinExpr::from_int(2) - LinExpr::var(x))));
        assert!(q.entails(&(LinExpr::var(y) - LinExpr::from_int(1))));
        assert!(q.entails(&(LinExpr::from_int(1) - LinExpr::var(y))));
    }

    #[test]
    fn havoc_forgets_variable() {
        let (_, x, _) = setup();
        let p = Polyhedron::from_constraints(interval(x, 0, 5));
        let q = p.assign_simultaneous(&[(x, None)], 100);
        assert!(!q.entails(&LinExpr::var(x)));
        assert!(!q.entails(&(LinExpr::from_int(5) - LinExpr::var(x))));
    }

    #[test]
    fn reduce_removes_redundant() {
        let (_, x, _) = setup();
        let p = Polyhedron::from_constraints(vec![
            LinExpr::var(x),
            LinExpr::var(x) + LinExpr::from_int(5), // implied by x >= 0
            LinExpr::from_int(10) - LinExpr::var(x),
        ]);
        let r = p.reduce();
        assert_eq!(r.constraints().unwrap().len(), 2);
        assert!(r.entails(&(LinExpr::var(x) + LinExpr::from_int(5))));
    }

    #[test]
    fn render_readable() {
        let (pool, x, _) = setup();
        let p = Polyhedron::from_constraints(vec![LinExpr::var(x)]);
        assert_eq!(p.render(&pool), "x >= 0");
        assert_eq!(Polyhedron::top().render(&pool), "true");
        assert_eq!(Polyhedron::bottom().render(&pool), "false");
    }
}
