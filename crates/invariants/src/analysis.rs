//! Forward abstract-interpretation fixpoint over a transition system.

use std::collections::{BTreeMap, VecDeque};

use dca_ir::{LocId, TransitionSystem, Update};
use dca_poly::{LinExpr, VarId};

use crate::polyhedron::Polyhedron;

/// A map from program locations to affine invariants.
#[derive(Debug, Clone)]
pub struct InvariantMap {
    invariants: BTreeMap<LocId, Polyhedron>,
}

impl InvariantMap {
    /// The invariant at a location (`bottom` for locations never seen).
    pub fn at(&self, loc: LocId) -> Polyhedron {
        self.invariants.get(&loc).cloned().unwrap_or_else(Polyhedron::bottom)
    }

    /// The invariant at a location as a list of `expr ≥ 0` conjuncts
    /// (an explicitly false constraint for unreachable locations).
    pub fn constraints_at(&self, loc: LocId) -> Vec<LinExpr> {
        self.at(loc).constraints_or_false()
    }

    /// Returns `true` if the invariant at `loc` entails `expr ≥ 0`.
    pub fn entails(&self, loc: LocId, expr: &LinExpr) -> bool {
        self.at(loc).entails(expr)
    }

    /// Conjoins extra constraints onto the invariant at a location.
    ///
    /// This mirrors the manual invariant strengthening the paper applies to the
    /// `*`-marked benchmarks: the added facts are trusted, not re-verified.
    pub fn strengthen(&mut self, loc: LocId, extra: &[LinExpr]) {
        let mut p = self.at(loc);
        p.add_constraints(extra);
        self.invariants.insert(loc, p);
    }

    /// Iterates over `(location, invariant)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&LocId, &Polyhedron)> {
        self.invariants.iter()
    }

    /// Renders the whole map for debugging.
    pub fn render(&self, ts: &TransitionSystem) -> String {
        let mut out = String::new();
        for (loc, poly) in &self.invariants {
            out.push_str(&format!(
                "  {}: {}\n",
                ts.location_name(*loc),
                poly.render(ts.pool())
            ));
        }
        out
    }
}

/// The forward invariant-generation analysis.
#[derive(Debug, Clone)]
pub struct InvariantAnalysis {
    /// Number of times a location is re-visited with a growing abstract value before
    /// widening kicks in.
    pub widening_delay: usize,
    /// Hard cap on the number of worklist iterations (safety net).
    pub max_iterations: usize,
    /// If `true`, all knowledge about the `cost` variable is dropped. Potential-function
    /// synthesis never needs invariants about `cost`, and tracking it only slows down
    /// convergence (the accumulated cost rarely admits affine bounds).
    pub ignore_cost: bool,
}

impl Default for InvariantAnalysis {
    fn default() -> Self {
        InvariantAnalysis { widening_delay: 2, max_iterations: 2000, ignore_cost: true }
    }
}

impl InvariantAnalysis {
    /// Runs the analysis and returns the invariant map.
    ///
    /// The result is a sound over-approximation of the reachable states of `ts`: for
    /// every reachable state `(ℓ, x)` the valuation `x` satisfies the invariant at `ℓ`.
    pub fn analyze(&self, ts: &TransitionSystem) -> InvariantMap {
        let fresh_base = ts.pool().len() as u32 + 16;
        let mut invariants: BTreeMap<LocId, Polyhedron> = BTreeMap::new();
        let mut visit_counts: BTreeMap<LocId, usize> = BTreeMap::new();
        for loc in ts.locations() {
            invariants.insert(loc, Polyhedron::bottom());
        }
        let mut initial = Polyhedron::from_constraints(ts.theta0().iter().cloned());
        if self.ignore_cost {
            initial = initial.project_out(ts.cost_var());
        }
        initial.normalize_emptiness();
        invariants.insert(ts.initial(), initial);

        let mut worklist: VecDeque<LocId> = VecDeque::new();
        worklist.push_back(ts.initial());
        let mut iterations = 0usize;

        while let Some(loc) = worklist.pop_front() {
            iterations += 1;
            if iterations > self.max_iterations {
                break;
            }
            let current = invariants[&loc].clone();
            if current.is_bottom() {
                continue;
            }
            for transition in ts.outgoing(loc) {
                if transition.source == ts.terminal() && transition.target == ts.terminal() {
                    continue; // terminal self-loop carries no information
                }
                let post = self.post(ts, &current, transition, fresh_base);
                if post.is_bottom() {
                    continue;
                }
                let target = transition.target;
                let existing = invariants[&target].clone();
                if post.entails_all(&existing) && !existing.is_bottom() {
                    continue; // no new information
                }
                let count = visit_counts.entry(target).or_insert(0);
                *count += 1;
                let joined = existing.join(&post);
                let updated = if *count > self.widening_delay {
                    existing.widen(&joined)
                } else {
                    joined
                };
                let mut updated = updated;
                updated.normalize_emptiness();
                if updated != existing {
                    invariants.insert(target, updated);
                    if !worklist.contains(&target) {
                        worklist.push_back(target);
                    }
                }
            }
        }
        // Final cleanup: drop LP-redundant constraints at locations whose invariant grew
        // large. This keeps the Handelman product sets (and therefore the synthesis LP)
        // small downstream.
        for polyhedron in invariants.values_mut() {
            if polyhedron.constraints().map_or(false, |cs| cs.len() > 12) {
                *polyhedron = polyhedron.reduce();
            }
        }
        InvariantMap { invariants }
    }

    /// Abstract post-condition of one transition.
    fn post(
        &self,
        ts: &TransitionSystem,
        pre: &Polyhedron,
        transition: &dca_ir::Transition,
        fresh_base: u32,
    ) -> Polyhedron {
        let mut guarded = pre.clone();
        guarded.add_constraints(&transition.guard);
        guarded.normalize_emptiness();
        if guarded.is_bottom() {
            return Polyhedron::bottom();
        }
        // Build the simultaneous update: affine deterministic updates keep their
        // expression, everything else (non-affine or non-deterministic) is a havoc.
        let updates: Vec<(VarId, Option<LinExpr>)> = transition
            .updates
            .iter()
            .filter(|(v, _)| !(self.ignore_cost && **v == ts.cost_var()))
            .map(|(&v, update)| match update {
                Update::Assign(p) => (v, LinExpr::try_from_polynomial(p)),
                Update::Nondet => (v, None),
            })
            .collect();
        guarded.assign_simultaneous(&updates, fresh_base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca_ir::TsBuilder;
    use dca_poly::Polynomial;

    /// Nested loop mirroring the running example's `join` (old version):
    /// for i in 0..lenA { for j in 0..lenB { cost += 1 } }
    fn nested_join() -> TransitionSystem {
        let mut b = TsBuilder::new();
        b.name("join_old");
        let i = b.var("i");
        let j = b.var("j");
        let len_a = b.var("lenA");
        let len_b = b.var("lenB");
        let l0 = b.location("l0");
        let l1 = b.location("l1");
        let l2 = b.location("l2");
        let out = b.terminal();
        b.set_initial(l0);
        b.add_theta0(LinExpr::var(len_a) - LinExpr::from_int(1));
        b.add_theta0(LinExpr::from_int(100) - LinExpr::var(len_a));
        b.add_theta0(LinExpr::var(len_b) - LinExpr::from_int(1));
        b.add_theta0(LinExpr::from_int(100) - LinExpr::var(len_b));
        // l0 -> l1: i := 0
        b.transition(l0, l1)
            .update(i, Update::assign(Polynomial::zero()))
            .finish();
        // l1 -> l2: guard i < lenA, j := 0
        b.transition(l1, l2)
            .guard(LinExpr::var(len_a) - LinExpr::var(i) - LinExpr::from_int(1))
            .update(j, Update::assign(Polynomial::zero()))
            .finish();
        // l2 -> l2: guard j < lenB, j++, cost++
        b.transition(l2, l2)
            .guard(LinExpr::var(len_b) - LinExpr::var(j) - LinExpr::from_int(1))
            .update(j, Update::assign(Polynomial::var(j) + Polynomial::from_int(1)))
            .tick(1)
            .finish();
        // l2 -> l1: guard j >= lenB, i++
        b.transition(l2, l1)
            .guard(LinExpr::var(j) - LinExpr::var(len_b))
            .update(i, Update::assign(Polynomial::var(i) + Polynomial::from_int(1)))
            .finish();
        // l1 -> out: guard i >= lenA
        b.transition(l1, out)
            .guard(LinExpr::var(i) - LinExpr::var(len_a))
            .finish();
        b.build().unwrap()
    }

    #[test]
    fn loop_head_invariants_are_sound_and_useful() {
        let ts = nested_join();
        let invariants = InvariantAnalysis::default().analyze(&ts);
        let i = ts.pool().lookup("i").unwrap();
        let j = ts.pool().lookup("j").unwrap();
        let len_a = ts.pool().lookup("lenA").unwrap();
        let len_b = ts.pool().lookup("lenB").unwrap();
        let l1 = LocId(1);
        let l2 = LocId(2);
        // Outer loop head: 0 <= i <= lenA and the input bounds.
        assert!(invariants.entails(l1, &LinExpr::var(i)), "{}", invariants.render(&ts));
        assert!(invariants.entails(l1, &(LinExpr::var(len_a) - LinExpr::var(i))));
        assert!(invariants.entails(l1, &(LinExpr::var(len_a) - LinExpr::from_int(1))));
        assert!(invariants.entails(l1, &(LinExpr::from_int(100) - LinExpr::var(len_a))));
        // Inner loop head: additionally 0 <= j <= lenB and i < lenA.
        assert!(invariants.entails(l2, &LinExpr::var(j)));
        assert!(invariants.entails(l2, &(LinExpr::var(len_b) - LinExpr::var(j))));
        assert!(invariants.entails(
            l2,
            &(LinExpr::var(len_a) - LinExpr::var(i) - LinExpr::from_int(1))
        ));
    }

    #[test]
    fn invariants_hold_on_sampled_executions() {
        use dca_ir::{FixedOracle, Interpreter};
        let ts = nested_join();
        let invariants = InvariantAnalysis::default().analyze(&ts);
        // Replay a run and check every visited state against its location invariant.
        // (The interpreter does not expose the trace directly, so re-simulate by stepping
        // through increasing step budgets.)
        let mut initial = dca_ir::IntValuation::new();
        for (name, value) in [("i", 0i64), ("j", 0), ("lenA", 4), ("lenB", 3), ("cost", 0)] {
            initial.insert(ts.pool().lookup(name).unwrap(), value);
        }
        for steps in 0..60 {
            let result = Interpreter::new(steps).run(&ts, &initial, &mut FixedOracle(0));
            let state = result.final_state;
            let invariant = invariants.at(state.loc);
            for constraint in invariant.constraints_or_false() {
                let value = constraint.eval(
                    &state
                        .vals
                        .iter()
                        .map(|(&v, &x)| (v, dca_numeric::Rational::from_int(x)))
                        .collect(),
                );
                assert!(
                    !value.is_negative(),
                    "invariant violated at {} after {} steps",
                    ts.location_name(state.loc),
                    steps
                );
            }
        }
    }

    #[test]
    fn unreachable_location_stays_bottom() {
        let mut b = TsBuilder::new();
        let x = b.var("x");
        let start = b.location("start");
        let dead = b.location("dead");
        let out = b.terminal();
        b.set_initial(start);
        b.add_theta0(LinExpr::var(x));
        b.transition(start, out).finish();
        // dead -> out exists so the system is well formed, but dead is never entered.
        b.transition(dead, out).finish();
        let ts = b.build().unwrap();
        let invariants = InvariantAnalysis::default().analyze(&ts);
        assert!(invariants.at(LocId(1)).is_bottom());
        // Its constraint list is the explicit false constraint.
        assert_eq!(invariants.constraints_at(LocId(1)).len(), 1);
    }

    #[test]
    fn strengthening_adds_facts() {
        let ts = nested_join();
        let mut invariants = InvariantAnalysis::default().analyze(&ts);
        let i = ts.pool().lookup("i").unwrap();
        let extra = LinExpr::from_int(1000) - LinExpr::var(i);
        let l1 = LocId(1);
        assert!(invariants.entails(l1, &extra)); // already implied by i <= lenA <= 100
        let unusual = LinExpr::from_int(2) - LinExpr::var(i);
        assert!(!invariants.entails(l1, &unusual));
        invariants.strengthen(l1, &[unusual.clone()]);
        assert!(invariants.entails(l1, &unusual));
    }

    #[test]
    fn terminal_location_is_reached() {
        let ts = nested_join();
        let invariants = InvariantAnalysis::default().analyze(&ts);
        assert!(!invariants.at(ts.terminal()).is_bottom());
    }
}
