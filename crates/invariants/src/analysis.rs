//! Forward abstract-interpretation fixpoint over a transition system.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use dca_ir::{LocId, LoopNest, TransitionSystem, Update};
use dca_poly::{LinExpr, VarId};

use crate::polyhedron::Polyhedron;

/// Precision tier of the invariant engine.
///
/// The tiers trade analysis time for invariant strength; the solver's escalation ladder
/// (`dca_core::escalate`) climbs them *before* resorting to a more expensive template
/// degree. Each tier is a strict superset of the previous one's machinery:
///
/// | tier | join | widening | extras |
/// |------|------|----------|--------|
/// | `Baseline` | entailment filter | plain | — |
/// | `Hull` | constraint-based hull (interval + octagon directions) | with thresholds harvested from guards and Θ0 | one descending narrowing round |
/// | `Relational` | as `Hull` | as `Hull` | two narrowing rounds |
///
/// At every tier, widening fires only on deliveries along back edges (computed by
/// [`dca_ir::LoopNest`]), so straight-line and join locations — including the entry of
/// a loop that is sequentially composed after another loop — propagate their values
/// exactly and post-loop facts survive into downstream loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum InvariantTier {
    /// The fast fixed-precision engine: weak entailment-filter join, plain widening.
    #[default]
    Baseline,
    /// Hull-lite join plus widening-with-thresholds and a narrowing pass.
    Hull,
    /// Loop-nest-aware: widening restricted to loop headers, deeper narrowing.
    Relational,
}

impl InvariantTier {
    /// All tiers, weakest first.
    pub const ALL: [InvariantTier; 3] =
        [InvariantTier::Baseline, InvariantTier::Hull, InvariantTier::Relational];

    /// Numeric index of the tier (0 = baseline).
    pub fn index(self) -> u32 {
        match self {
            InvariantTier::Baseline => 0,
            InvariantTier::Hull => 1,
            InvariantTier::Relational => 2,
        }
    }

    /// The tier with the given index, if it exists.
    pub fn from_index(index: u32) -> Option<InvariantTier> {
        InvariantTier::ALL.get(index as usize).copied()
    }

    /// The next-stronger tier, if any.
    pub fn next(self) -> Option<InvariantTier> {
        InvariantTier::from_index(self.index() + 1)
    }
}

impl fmt::Display for InvariantTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            InvariantTier::Baseline => "baseline",
            InvariantTier::Hull => "hull",
            InvariantTier::Relational => "relational",
        };
        write!(f, "{name}")
    }
}

/// A map from program locations to affine invariants.
#[derive(Debug, Clone)]
pub struct InvariantMap {
    invariants: BTreeMap<LocId, Polyhedron>,
}

impl InvariantMap {
    /// The invariant at a location (`bottom` for locations never seen).
    pub fn at(&self, loc: LocId) -> Polyhedron {
        self.invariants.get(&loc).cloned().unwrap_or_else(Polyhedron::bottom)
    }

    /// The invariant at a location as a list of `expr ≥ 0` conjuncts
    /// (an explicitly false constraint for unreachable locations).
    pub fn constraints_at(&self, loc: LocId) -> Vec<LinExpr> {
        self.at(loc).constraints_or_false()
    }

    /// Returns `true` if the invariant at `loc` entails `expr ≥ 0`.
    pub fn entails(&self, loc: LocId, expr: &LinExpr) -> bool {
        self.at(loc).entails(expr)
    }

    /// Conjoins extra constraints onto the invariant at a location.
    ///
    /// This mirrors the manual invariant strengthening the paper applies to the
    /// `*`-marked benchmarks: the added facts are trusted, not re-verified.
    pub fn strengthen(&mut self, loc: LocId, extra: &[LinExpr]) {
        let mut p = self.at(loc);
        p.add_constraints(extra);
        self.invariants.insert(loc, p);
    }

    /// Iterates over `(location, invariant)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&LocId, &Polyhedron)> {
        self.invariants.iter()
    }

    /// Renders the whole map for debugging.
    pub fn render(&self, ts: &TransitionSystem) -> String {
        let mut out = String::new();
        for (loc, poly) in &self.invariants {
            out.push_str(&format!(
                "  {}: {}\n",
                ts.location_name(*loc),
                poly.render(ts.pool())
            ));
        }
        out
    }
}

/// The forward invariant-generation analysis.
#[derive(Debug, Clone)]
pub struct InvariantAnalysis {
    /// Number of times a location is re-visited with a growing abstract value before
    /// widening kicks in.
    pub widening_delay: usize,
    /// Hard cap on the number of worklist iterations (safety net).
    pub max_iterations: usize,
    /// If `true`, all knowledge about the `cost` variable is dropped. Potential-function
    /// synthesis never needs invariants about `cost`, and tracking it only slows down
    /// convergence (the accumulated cost rarely admits affine bounds).
    pub ignore_cost: bool,
    /// Precision tier (see [`InvariantTier`]).
    pub tier: InvariantTier,
}

impl Default for InvariantAnalysis {
    fn default() -> Self {
        InvariantAnalysis {
            widening_delay: 2,
            max_iterations: 2000,
            ignore_cost: true,
            tier: InvariantTier::Baseline,
        }
    }
}

impl InvariantAnalysis {
    /// The default analysis at the given precision tier.
    ///
    /// ```
    /// use dca_invariants::{InvariantAnalysis, InvariantTier};
    /// let analysis = InvariantAnalysis::at_tier(InvariantTier::Hull);
    /// assert_eq!(analysis.tier, InvariantTier::Hull);
    /// ```
    pub fn at_tier(tier: InvariantTier) -> InvariantAnalysis {
        InvariantAnalysis { tier, ..InvariantAnalysis::default() }
    }

    /// Runs the analysis and returns the invariant map.
    ///
    /// The result is a sound over-approximation of the reachable states of `ts`: for
    /// every reachable state `(ℓ, x)` the valuation `x` satisfies the invariant at `ℓ`.
    pub fn analyze(&self, ts: &TransitionSystem) -> InvariantMap {
        let fresh_base = ts.pool().len() as u32 + 16;
        let mut invariants = self.ascend(ts, fresh_base);
        if self.tier >= InvariantTier::Hull {
            let rounds = if self.tier >= InvariantTier::Relational { 2 } else { 1 };
            self.narrow(ts, &mut invariants, fresh_base, rounds);
        }
        // Final cleanup: drop LP-redundant constraints at locations whose invariant grew
        // large. This keeps the Handelman product sets (and therefore the synthesis LP)
        // small downstream. The tiered engines always reduce — their joins and
        // narrowing meets accumulate more constraints, and a minimal representation
        // both shrinks the downstream LP and speeds up further entailment checks.
        let reduce_above = if self.tier == InvariantTier::Baseline { 12 } else { 0 };
        for polyhedron in invariants.values_mut() {
            if polyhedron.constraints().is_some_and(|cs| cs.len() > reduce_above) {
                *polyhedron = polyhedron.reduce();
            }
        }
        InvariantMap { invariants }
    }

    /// The ascending (widening) fixpoint phase.
    fn ascend(&self, ts: &TransitionSystem, fresh_base: u32) -> BTreeMap<LocId, Polyhedron> {
        // Widening fires only on deliveries along *back edges* (at every tier).
        // Termination is preserved — an infinite ascending chain must propagate around a
        // cycle, every cycle closes with a back edge, and that edge's delivery counter
        // eventually exceeds the delay. Counting *all* deliveries (as earlier revisions
        // did) made a loop that merely sits downstream of another loop widen while the
        // upstream fixpoint was still churning, before its own back edge had delivered a
        // single iterate: the sequential composition `while(..){..}; while(..){..}`
        // then lost the second loop's `j ≤ n` bound, which is why the `SequentialSingle`
        // and `Ex4` rows of Table 1 went loose at the lower tiers.
        let back_edges: BTreeSet<usize> = LoopNest::analyze(ts)
            .back_edges()
            .iter()
            .map(|edge| edge.transition)
            .collect();
        let thresholds = if self.tier >= InvariantTier::Hull {
            self.harvest_thresholds(ts)
        } else {
            Vec::new()
        };

        let mut invariants: BTreeMap<LocId, Polyhedron> = BTreeMap::new();
        let mut visit_counts: BTreeMap<LocId, usize> = BTreeMap::new();
        for loc in ts.locations() {
            invariants.insert(loc, Polyhedron::bottom());
        }
        let mut initial = Polyhedron::from_constraints(ts.theta0().iter().cloned());
        if self.ignore_cost {
            initial = initial.project_out(ts.cost_var());
        }
        initial.normalize_emptiness();
        invariants.insert(ts.initial(), initial);

        let mut worklist: VecDeque<LocId> = VecDeque::new();
        worklist.push_back(ts.initial());
        let mut iterations = 0usize;

        while let Some(loc) = worklist.pop_front() {
            iterations += 1;
            if iterations > self.max_iterations {
                // Bailing out mid-ascent would keep *under*-approximated facts at
                // locations whose pending updates were never applied — unsound. The
                // only sound cheap answer is to give up on precision entirely.
                for polyhedron in invariants.values_mut() {
                    *polyhedron = Polyhedron::top();
                }
                break;
            }
            let current = invariants[&loc].clone();
            if current.is_bottom() {
                continue;
            }
            for (index, transition) in
                ts.transitions().iter().enumerate().filter(|(_, t)| t.source == loc)
            {
                if transition.source == ts.terminal() && transition.target == ts.terminal() {
                    continue; // terminal self-loop carries no information
                }
                let post = self.post(ts, &current, transition, fresh_base);
                if post.is_bottom() {
                    continue;
                }
                let target = transition.target;
                let existing = invariants[&target].clone();
                if post.entails_all(&existing) && !existing.is_bottom() {
                    continue; // no new information
                }
                let may_widen = back_edges.contains(&index);
                let count = visit_counts.entry(target).or_insert(0);
                if may_widen {
                    // Only growing deliveries around the loop itself count toward the
                    // delay; churn arriving through the entry edge keeps the exact join.
                    *count += 1;
                }
                let joined = self.join(&existing, &post);
                let mut updated = if may_widen && *count > self.widening_delay {
                    if self.tier >= InvariantTier::Hull {
                        existing.widen_with_thresholds(&joined, &thresholds)
                    } else {
                        existing.widen(&joined)
                    }
                } else {
                    joined
                };
                updated.normalize_emptiness();
                // Stability must be *semantic*: the hull join re-derives its constraint
                // list from scratch (different order, snapped constants), so a
                // syntactic comparison would see perpetual change, overrun the
                // widening delay, and widen away bounds that are in fact stable.
                let unchanged = updated == existing
                    || (self.tier >= InvariantTier::Hull
                        && updated.entails_all(&existing)
                        && existing.entails_all(&updated));
                if !unchanged {
                    invariants.insert(target, updated);
                    if !worklist.contains(&target) {
                        worklist.push_back(target);
                    }
                }
            }
        }
        invariants
    }

    /// The tier's join operator.
    fn join(&self, a: &Polyhedron, b: &Polyhedron) -> Polyhedron {
        if self.tier >= InvariantTier::Hull {
            a.hull_join(b)
        } else {
            a.join(b)
        }
    }

    /// Widening thresholds: every transition-guard conjunct and every Θ0 inequality
    /// (minus anything mentioning `cost` when it is ignored). These are exactly the
    /// bounds a loop maintains while iterating — the facts plain widening loses.
    fn harvest_thresholds(&self, ts: &TransitionSystem) -> Vec<LinExpr> {
        let cost = ts.cost_var();
        let mut thresholds: Vec<LinExpr> = Vec::new();
        let mut push = |expr: &LinExpr| {
            let normalized = expr.normalize();
            if normalized.is_constant() {
                return;
            }
            if !thresholds.contains(&normalized) {
                thresholds.push(normalized);
            }
        };
        for expr in ts.theta0() {
            if !self.ignore_cost || expr.coeff(cost).is_zero() {
                push(expr);
            }
        }
        for transition in ts.transitions() {
            for guard in &transition.guard {
                if !self.ignore_cost || guard.coeff(cost).is_zero() {
                    push(guard);
                    // The one-unit relaxation of the guard: a counter bounded by
                    // `g ≥ 0` *inside* the loop typically satisfies only `g + 1 ≥ 0`
                    // back at the loop head (after its increment), and that is the
                    // bound the widening must land on.
                    push(&(guard + &LinExpr::from_int(1)));
                }
            }
        }
        thresholds
    }

    /// Descending (narrowing) phase: re-evaluates every location as "initial states (at
    /// `ℓ0`) joined with the posts of all incoming transitions" and intersects with the
    /// ascending result. Sound because each side over-approximates the reachable states
    /// at the location; bounded rounds keep it cheap.
    fn narrow(
        &self,
        ts: &TransitionSystem,
        invariants: &mut BTreeMap<LocId, Polyhedron>,
        fresh_base: u32,
        rounds: usize,
    ) {
        let mut initial = Polyhedron::from_constraints(ts.theta0().iter().cloned());
        if self.ignore_cost {
            initial = initial.project_out(ts.cost_var());
        }
        initial.normalize_emptiness();
        for _ in 0..rounds {
            let mut changed = false;
            for loc in ts.locations() {
                let mut incoming = if loc == ts.initial() {
                    initial.clone()
                } else {
                    Polyhedron::bottom()
                };
                for transition in ts.transitions() {
                    if transition.target != loc
                        || (transition.source == ts.terminal()
                            && transition.target == ts.terminal())
                    {
                        continue;
                    }
                    let post =
                        self.post(ts, &invariants[&transition.source], transition, fresh_base);
                    incoming = self.join(&incoming, &post);
                }
                let refined = invariants[&loc].meet(&incoming).reduce();
                if refined != invariants[&loc] {
                    invariants.insert(loc, refined);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Abstract post-condition of one transition.
    fn post(
        &self,
        ts: &TransitionSystem,
        pre: &Polyhedron,
        transition: &dca_ir::Transition,
        fresh_base: u32,
    ) -> Polyhedron {
        let mut guarded = pre.clone();
        guarded.add_constraints(&transition.guard);
        guarded.normalize_emptiness();
        if guarded.is_bottom() {
            return Polyhedron::bottom();
        }
        // Build the simultaneous update: affine deterministic updates keep their
        // expression, everything else (non-affine or non-deterministic) is a havoc.
        let updates: Vec<(VarId, Option<LinExpr>)> = transition
            .updates
            .iter()
            .filter(|(v, _)| !(self.ignore_cost && **v == ts.cost_var()))
            .map(|(&v, update)| match update {
                Update::Assign(p) => (v, LinExpr::try_from_polynomial(p)),
                Update::Nondet => (v, None),
            })
            .collect();
        guarded.assign_simultaneous(&updates, fresh_base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca_ir::TsBuilder;
    use dca_poly::Polynomial;

    /// Nested loop mirroring the running example's `join` (old version):
    /// for i in 0..lenA { for j in 0..lenB { cost += 1 } }
    fn nested_join() -> TransitionSystem {
        let mut b = TsBuilder::new();
        b.name("join_old");
        let i = b.var("i");
        let j = b.var("j");
        let len_a = b.var("lenA");
        let len_b = b.var("lenB");
        let l0 = b.location("l0");
        let l1 = b.location("l1");
        let l2 = b.location("l2");
        let out = b.terminal();
        b.set_initial(l0);
        b.add_theta0(LinExpr::var(len_a) - LinExpr::from_int(1));
        b.add_theta0(LinExpr::from_int(100) - LinExpr::var(len_a));
        b.add_theta0(LinExpr::var(len_b) - LinExpr::from_int(1));
        b.add_theta0(LinExpr::from_int(100) - LinExpr::var(len_b));
        // l0 -> l1: i := 0
        b.transition(l0, l1)
            .update(i, Update::assign(Polynomial::zero()))
            .finish();
        // l1 -> l2: guard i < lenA, j := 0
        b.transition(l1, l2)
            .guard(LinExpr::var(len_a) - LinExpr::var(i) - LinExpr::from_int(1))
            .update(j, Update::assign(Polynomial::zero()))
            .finish();
        // l2 -> l2: guard j < lenB, j++, cost++
        b.transition(l2, l2)
            .guard(LinExpr::var(len_b) - LinExpr::var(j) - LinExpr::from_int(1))
            .update(j, Update::assign(Polynomial::var(j) + Polynomial::from_int(1)))
            .tick(1)
            .finish();
        // l2 -> l1: guard j >= lenB, i++
        b.transition(l2, l1)
            .guard(LinExpr::var(j) - LinExpr::var(len_b))
            .update(i, Update::assign(Polynomial::var(i) + Polynomial::from_int(1)))
            .finish();
        // l1 -> out: guard i >= lenA
        b.transition(l1, out)
            .guard(LinExpr::var(i) - LinExpr::var(len_a))
            .finish();
        b.build().unwrap()
    }

    #[test]
    fn loop_head_invariants_are_sound_and_useful() {
        let ts = nested_join();
        let invariants = InvariantAnalysis::default().analyze(&ts);
        let i = ts.pool().lookup("i").unwrap();
        let j = ts.pool().lookup("j").unwrap();
        let len_a = ts.pool().lookup("lenA").unwrap();
        let len_b = ts.pool().lookup("lenB").unwrap();
        let l1 = LocId(1);
        let l2 = LocId(2);
        // Outer loop head: 0 <= i <= lenA and the input bounds.
        assert!(invariants.entails(l1, &LinExpr::var(i)), "{}", invariants.render(&ts));
        assert!(invariants.entails(l1, &(LinExpr::var(len_a) - LinExpr::var(i))));
        assert!(invariants.entails(l1, &(LinExpr::var(len_a) - LinExpr::from_int(1))));
        assert!(invariants.entails(l1, &(LinExpr::from_int(100) - LinExpr::var(len_a))));
        // Inner loop head: additionally 0 <= j <= lenB and i < lenA.
        assert!(invariants.entails(l2, &LinExpr::var(j)));
        assert!(invariants.entails(l2, &(LinExpr::var(len_b) - LinExpr::var(j))));
        assert!(invariants.entails(
            l2,
            &(LinExpr::var(len_a) - LinExpr::var(i) - LinExpr::from_int(1))
        ));
    }

    /// Soundness at every tier: invariants (including the narrowed ones) must hold on
    /// every state an actual execution visits.
    #[test]
    fn invariants_hold_on_sampled_executions() {
        use dca_ir::{FixedOracle, Interpreter};
        let ts = nested_join();
        for tier in InvariantTier::ALL {
            let invariants = InvariantAnalysis::at_tier(tier).analyze(&ts);
            // Replay a run and check every visited state against its location
            // invariant. (The interpreter does not expose the trace directly, so
            // re-simulate by stepping through increasing step budgets.)
            for (len_a, len_b) in [(4i64, 3i64), (1, 1), (2, 5)] {
                let mut initial = dca_ir::IntValuation::new();
                for (name, value) in
                    [("i", 0i64), ("j", 0), ("lenA", len_a), ("lenB", len_b), ("cost", 0)]
                {
                    initial.insert(ts.pool().lookup(name).unwrap(), value);
                }
                for steps in 0..60 {
                    let result =
                        Interpreter::new(steps).run(&ts, &initial, &mut FixedOracle(0));
                    let state = result.final_state;
                    let invariant = invariants.at(state.loc);
                    for constraint in invariant.constraints_or_false() {
                        let value = constraint.eval(
                            &state
                                .vals
                                .iter()
                                .map(|(&v, &x)| (v, dca_numeric::Rational::from_int(x)))
                                .collect(),
                        );
                        assert!(
                            !value.is_negative(),
                            "tier {tier}: invariant violated at {} after {} steps \
                             (lenA={len_a}, lenB={len_b})",
                            ts.location_name(state.loc),
                            steps
                        );
                    }
                }
            }
        }
    }

    /// The tiers form a precision ladder on the nested-join system: everything the
    /// baseline proves at the loop heads, the hull tier proves too.
    #[test]
    fn hull_tier_is_at_least_as_precise_at_loop_heads() {
        let ts = nested_join();
        let baseline = InvariantAnalysis::default().analyze(&ts);
        let hull = InvariantAnalysis::at_tier(InvariantTier::Hull).analyze(&ts);
        for loc in [LocId(1), LocId(2)] {
            for constraint in baseline.at(loc).constraints_or_false() {
                assert!(
                    hull.entails(loc, &constraint),
                    "hull tier lost {constraint:?} at {}",
                    ts.location_name(loc)
                );
            }
        }
    }

    #[test]
    fn tier_enum_roundtrips() {
        for tier in InvariantTier::ALL {
            assert_eq!(InvariantTier::from_index(tier.index()), Some(tier));
        }
        assert_eq!(InvariantTier::from_index(3), None);
        assert_eq!(InvariantTier::Baseline.next(), Some(InvariantTier::Hull));
        assert_eq!(InvariantTier::Hull.next(), Some(InvariantTier::Relational));
        assert_eq!(InvariantTier::Relational.next(), None);
        assert_eq!(InvariantTier::Relational.to_string(), "relational");
        assert!(InvariantTier::Baseline < InvariantTier::Hull);
        assert_eq!(InvariantTier::default(), InvariantTier::Baseline);
    }

    /// Two sequential loops: `while (i < n) i++` then `while (j < n) j++`.
    /// Regression test for the back-edge widening delay: the upstream loop's fixpoint
    /// churn must not burn the downstream loop's widening delay, or the second head
    /// loses its `j ≤ n` bound (which made the `SequentialSingle` and `Ex4` Table-1
    /// rows loose at the lower tiers).
    fn sequential_loops() -> TransitionSystem {
        let mut b = TsBuilder::new();
        b.name("sequential");
        let i = b.var("i");
        let j = b.var("j");
        let n = b.var("n");
        let head1 = b.location("head1");
        let mid = b.location("mid");
        let head2 = b.location("head2");
        let out = b.terminal();
        b.set_initial(head1);
        b.add_theta0(LinExpr::var(n) - LinExpr::from_int(1));
        b.add_theta0(LinExpr::from_int(100) - LinExpr::var(n));
        // head1 self-loop: guard i < n, i++ (with a tick so the cost var exists).
        b.transition(head1, head1)
            .guard(LinExpr::var(n) - LinExpr::var(i) - LinExpr::from_int(1))
            .update(i, Update::assign(Polynomial::var(i) + Polynomial::from_int(1)))
            .tick(1)
            .finish();
        // head1 -> mid: guard i >= n; mid -> head2: j := 0.
        b.transition(head1, mid).guard(LinExpr::var(i) - LinExpr::var(n)).finish();
        b.transition(mid, head2)
            .update(j, Update::assign(Polynomial::zero()))
            .finish();
        // head2 self-loop: guard j < n, j++.
        b.transition(head2, head2)
            .guard(LinExpr::var(n) - LinExpr::var(j) - LinExpr::from_int(1))
            .update(j, Update::assign(Polynomial::var(j) + Polynomial::from_int(1)))
            .tick(1)
            .finish();
        b.transition(head2, out).guard(LinExpr::var(j) - LinExpr::var(n)).finish();
        b.build().unwrap()
    }

    #[test]
    fn second_sequential_loop_keeps_its_bounds_at_every_tier() {
        let ts = sequential_loops();
        let j = ts.pool().lookup("j").unwrap();
        let n = ts.pool().lookup("n").unwrap();
        let head2 = LocId(2);
        for tier in InvariantTier::ALL {
            let invariants = InvariantAnalysis::at_tier(tier).analyze(&ts);
            assert!(
                invariants.entails(head2, &LinExpr::var(j)),
                "tier {tier}: lost j >= 0 at the second loop head:\n{}",
                invariants.render(&ts)
            );
            assert!(
                invariants.entails(head2, &(LinExpr::var(n) - LinExpr::var(j))),
                "tier {tier}: lost j <= n at the second loop head:\n{}",
                invariants.render(&ts)
            );
        }
    }

    #[test]
    fn unreachable_location_stays_bottom() {
        let mut b = TsBuilder::new();
        let x = b.var("x");
        let start = b.location("start");
        let dead = b.location("dead");
        let out = b.terminal();
        b.set_initial(start);
        b.add_theta0(LinExpr::var(x));
        b.transition(start, out).finish();
        // dead -> out exists so the system is well formed, but dead is never entered.
        b.transition(dead, out).finish();
        let ts = b.build().unwrap();
        let invariants = InvariantAnalysis::default().analyze(&ts);
        assert!(invariants.at(LocId(1)).is_bottom());
        // Its constraint list is the explicit false constraint.
        assert_eq!(invariants.constraints_at(LocId(1)).len(), 1);
    }

    #[test]
    fn strengthening_adds_facts() {
        let ts = nested_join();
        let mut invariants = InvariantAnalysis::default().analyze(&ts);
        let i = ts.pool().lookup("i").unwrap();
        let extra = LinExpr::from_int(1000) - LinExpr::var(i);
        let l1 = LocId(1);
        assert!(invariants.entails(l1, &extra)); // already implied by i <= lenA <= 100
        let unusual = LinExpr::from_int(2) - LinExpr::var(i);
        assert!(!invariants.entails(l1, &unusual));
        invariants.strengthen(l1, std::slice::from_ref(&unusual));
        assert!(invariants.entails(l1, &unusual));
    }

    #[test]
    fn terminal_location_is_reached() {
        let ts = nested_join();
        let invariants = InvariantAnalysis::default().analyze(&ts);
        assert!(!invariants.at(ts.terminal()).is_bottom());
    }
}
