//! Affine invariant generation for transition systems.
//!
//! The synthesis algorithm (Section 5 of the paper) assumes that every location comes
//! with an *affine invariant*: a conjunction of affine inequalities over-approximating
//! the reachable states at that location. The paper obtains these from the off-the-shelf
//! tools Aspic and Sting; this crate provides the equivalent substrate:
//!
//! * [`Polyhedron`] — a conjunction of affine inequalities with LP-backed emptiness and
//!   entailment checks, Fourier–Motzkin projection, a sound (weak) join, a
//!   constraint-based convex-hull-lite join, and widening with and without thresholds;
//! * [`InvariantAnalysis`] — a forward abstract-interpretation fixpoint over a
//!   [`TransitionSystem`](dca_ir::TransitionSystem) producing an [`InvariantMap`];
//! * [`InvariantTier`] — the precision ladder of the engine. `Baseline` mirrors the
//!   original fixed-precision analysis; `Hull` upgrades the join to the hull-lite
//!   (with interval and octagon directions), widens with thresholds harvested from
//!   transition guards and Θ0, and runs a descending narrowing pass; `Relational`
//!   additionally restricts widening to the loop headers reported by
//!   [`dca_ir::LoopNest`], so relational facts between inner and outer loop counters
//!   survive propagation. The solver's escalation ladder climbs these tiers before
//!   escalating the (much more expensive) template degree;
//! * support for merging user-supplied invariants, mirroring the paper's manual
//!   strengthening of the `*`-marked benchmarks.
//!
//! The produced invariants are *sound over-approximations*: every reachable state
//! satisfies them. Soundness of the differential-cost result only depends on this
//! property (Theorem 5.1), not on their precision — the tiers trade analysis time for
//! the *strength* of the facts available to the Handelman certificates.
//!
//! # Example
//!
//! ```
//! use dca_invariants::InvariantAnalysis;
//! use dca_ir::{TsBuilder, Update};
//! use dca_poly::{LinExpr, Polynomial};
//!
//! // while (i < n) { i++; cost++ } with 1 <= n <= 100, i = 0 initially.
//! let mut b = TsBuilder::new();
//! let i = b.var("i");
//! let n = b.var("n");
//! let head = b.location("head");
//! let out = b.terminal();
//! b.set_initial(head);
//! b.add_theta0(LinExpr::var(n) - LinExpr::from_int(1));
//! b.add_theta0(LinExpr::from_int(100) - LinExpr::var(n));
//! b.add_theta0_eq(LinExpr::var(i));
//! b.transition(head, head)
//!     .guard(LinExpr::var(n) - LinExpr::var(i) - LinExpr::from_int(1))
//!     .update(i, Update::assign(Polynomial::var(i) + Polynomial::from_int(1)))
//!     .tick(1)
//!     .finish();
//! b.transition(head, out).guard(LinExpr::var(i) - LinExpr::var(n)).finish();
//! let ts = b.build().unwrap();
//!
//! let invariants = InvariantAnalysis::default().analyze(&ts);
//! // The loop-head invariant entails i >= 0.
//! assert!(invariants.entails(head, &LinExpr::var(i)));
//! ```

#![deny(missing_docs)]

mod analysis;
mod polyhedron;

pub use analysis::{InvariantAnalysis, InvariantMap, InvariantTier};
pub use polyhedron::{interval, Polyhedron};
