//! The Table-2 generated corpus: a seeded manifest of program pairs with
//! known-by-construction bounds, plus the differential soundness harness.
//!
//! Table 1 validates the reproduction on twenty hand pairs; Table 2 is the workload:
//! ≥200 pairs emitted by [`dca_ir::generate_pair`] across the full shape grid
//! (nesting depth 1–3 × sequential phases × dependent bounds × disjunctive guards ×
//! straight-line padding, in delta-injection and equivalent-rewrite flavours). The
//! manifest is *code*: [`TABLE2_SEED`] plus the generator reproduce every source
//! byte-for-byte, so nothing but this module and the committed seed needs versioning.
//!
//! The harness side checks each solved pair two ways:
//!
//! * [`check_sampled_soundness`]: replays sampled concrete executions through the
//!   reference interpreter/explorer and checks the reported threshold is never
//!   violated (the observed `CostSup_new − CostInf_old` under-approximates the true
//!   supremum, so any violation it finds is real);
//! * [`differential_verdicts`]: re-solves under the exact backend and with LP presolve
//!   disabled, asserting all three configurations agree on the verdict and (for
//!   certified-vs-exact) on the threshold itself.

use std::time::Duration;

use dca_core::batch::{run_batch, BatchConfig, BatchJob, BatchReport};
use dca_core::verify::{verify_threshold, VerifyConfig};
use dca_core::{AnalysisOptions, AnalyzedProgram, DiffCostSolver, InvariantTier, LpBackend};
use dca_ir::{generate_pair, GeneratedPair, PairKind, ShapeParams};

// Re-exported so harness crates can consume the corpus without a direct `dca_ir`
// dependency.
pub use dca_ir::{
    GeneratedPair as Pair, PairKind as Kind, ShapeParams as Shape, MAX_BLOCK_STATEMENTS,
};

/// The committed corpus seed. Changing it (or the generator, or the RNG stream)
/// regenerates a different corpus — the seed-stability golden tests in `dca_ir` exist
/// to make that impossible to do silently.
pub const TABLE2_SEED: u64 = 0x7AB1E2;

/// Delta-injection repetitions per shape-grid cell, by depth: deeper nests cost an
/// order of magnitude more solver time (bigger LPs, and the exact backend of the
/// differential harness re-solves each one), so the corpus weights the cheap depths.
fn delta_reps(depth: u32) -> u64 {
    match depth {
        1 => 6,
        2 => 4,
        _ => 2,
    }
}

/// Equivalent-rewrite repetitions per (depth, phases, padding) cell.
const EQUIV_REPS: u64 = 2;

/// Phase-flip repetitions per (depth, phases, padding) cell.
const FLIP_REPS: u64 = 3;

/// The full Table-2 manifest, in deterministic grid order.
///
/// Grid: depth 1–3 × phases 1–2 × dependent × disjunctive × padding, 6/4/2 seeds per
/// cell by depth (96 + 64 + 32 = 192 delta pairs), plus depth 1–3 × phases 1–2 ×
/// padding equivalent rewrites, 2 seeds per cell (24 pairs), plus depth 1–2 ×
/// phases 1–2 × padding phase-flip deltas, 3 seeds per cell (24 pairs) — 240 pairs
/// total.
pub fn table2_manifest() -> Vec<GeneratedPair> {
    let mut pairs = Vec::new();
    let mut index = 0u64;
    for depth in 1..=3u32 {
        for phases in 1..=2u32 {
            for dependent in [false, true] {
                for disjunctive in [false, true] {
                    for padding in [false, true] {
                        let shape = ShapeParams {
                            depth,
                            phases,
                            dependent,
                            disjunctive,
                            padding,
                            phase_flip: false,
                            kind: PairKind::Delta,
                        };
                        for _ in 0..delta_reps(depth) {
                            pairs.push(generate_pair(TABLE2_SEED ^ (index * 0x9E37), &shape));
                            index += 1;
                        }
                    }
                }
            }
        }
    }
    for depth in 1..=3u32 {
        for phases in 1..=2u32 {
            for padding in [false, true] {
                let shape = ShapeParams {
                    depth,
                    phases,
                    dependent: false,
                    disjunctive: false,
                    padding,
                    phase_flip: false,
                    kind: PairKind::Equivalent,
                };
                for _ in 0..EQUIV_REPS {
                    pairs.push(generate_pair(TABLE2_SEED ^ (index * 0x9E37), &shape));
                    index += 1;
                }
            }
        }
    }
    // Phase-flip delta pairs, appended after the original 216-pair grid so every
    // pre-existing pair keeps its seed (the golden sources depend on `index`).
    // The flip interacts with depth and padding but not with the dependent /
    // disjunctive injections, so those axes stay off to contain solver time.
    for depth in 1..=2u32 {
        for phases in 1..=2u32 {
            for padding in [false, true] {
                let shape = ShapeParams {
                    depth,
                    phases,
                    dependent: false,
                    disjunctive: false,
                    padding,
                    phase_flip: true,
                    kind: PairKind::Delta,
                };
                for _ in 0..FLIP_REPS {
                    pairs.push(generate_pair(TABLE2_SEED ^ (index * 0x9E37), &shape));
                    index += 1;
                }
            }
        }
    }
    pairs
}

/// A small deterministic subset for the blocking CI smoke step (≤60 s on a 1-CPU
/// box including the full differential harness): cheap depth-1/depth-2 shapes, one
/// pair per exercised class.
pub fn table2_smoke() -> Vec<GeneratedPair> {
    let manifest = table2_manifest();
    // One representative per distinct (depth ≤ 2) shape tag, favouring the first
    // (lowest-seed) pair of each cell; capped to keep the step well under a minute.
    let mut seen = std::collections::BTreeSet::new();
    let mut subset: Vec<GeneratedPair> = Vec::new();
    for pair in manifest {
        if pair.shape.depth > 2 || pair.shape.phases > 1 {
            continue;
        }
        if seen.insert(pair.shape.tag()) {
            subset.push(pair);
        }
    }
    subset
}

/// Analysis options for a generated pair: the generator knows the exact degree its
/// cost polynomials need, so no degree escalation is required.
pub fn table2_options(pair: &GeneratedPair) -> AnalysisOptions {
    AnalysisOptions::with_degree(pair.degree)
}

/// Batch jobs for a set of generated pairs (solved at the generator-declared degree,
/// baseline invariant tier, certified backend).
pub fn table2_jobs(pairs: &[GeneratedPair]) -> Vec<BatchJob> {
    pairs
        .iter()
        .map(|pair| {
            BatchJob::from_sources(
                pair.name.clone(),
                pair.source_new.clone(),
                pair.source_old.clone(),
            )
            .with_options(table2_options(pair))
        })
        .collect()
}

/// Runs a set of generated pairs through the batch engine.
pub fn run_table2(pairs: &[GeneratedPair], jobs: usize, budget: Option<Duration>) -> BatchReport {
    let mut config = BatchConfig::with_jobs(jobs);
    if let Some(budget) = budget {
        config = config.with_time_budget(budget);
    }
    run_batch(&table2_jobs(pairs), &config)
}

/// Interpreter-sampled soundness check of a reported threshold for one pair.
///
/// Replays sampled runs (including the input-box corners, where generated thresholds
/// bind) and returns the violations found — always empty for a sound threshold, since
/// sampling under-approximates the true cost difference. `samples` trades confidence
/// against wall-clock; the corners alone already witness the tight bound.
pub fn check_sampled_soundness(
    pair: &GeneratedPair,
    threshold: f64,
    tier: InvariantTier,
    samples: usize,
) -> Result<(), Vec<String>> {
    let new = AnalyzedProgram::from_source_at_tier(&pair.source_new, tier)
        .expect("generated source must compile");
    let old = AnalyzedProgram::from_source_at_tier(&pair.source_old, tier)
        .expect("generated source must compile");
    let config = VerifyConfig { samples, seed: pair.seed ^ 0x5EED, ..VerifyConfig::default() };
    let report = verify_threshold(&new, &old, threshold, &config);
    if report.ok() {
        Ok(())
    } else {
        Err(report.violations)
    }
}

/// Cross-backend / presolve-toggle verdicts for one pair.
#[derive(Debug, Clone)]
pub struct DifferentialVerdict {
    /// Threshold from the certified (default) backend, `None` on failure.
    pub certified: Option<f64>,
    /// Threshold from the exact rational backend, `None` on failure.
    pub exact: Option<f64>,
    /// Threshold from the certified backend with LP presolve disabled.
    pub no_presolve: Option<f64>,
    /// Human-readable disagreements (empty = all configurations agree).
    pub disagreements: Vec<String>,
}

impl DifferentialVerdict {
    /// `true` when every configuration produced the same verdict and threshold.
    pub fn agree(&self) -> bool {
        self.disagreements.is_empty()
    }
}

/// Solves one pair under `certified` vs `exact` backends and with presolve on/off,
/// and cross-checks the verdicts.
///
/// Both the certified and the exact backend prove exact rational optima, so their
/// integer thresholds must match *exactly*; presolve only rewrites the LP, so the
/// no-presolve solve must match too. Any disagreement is a soundness or completeness
/// bug in one of the configurations.
///
/// Note: presolve is toggled through the process-global `DCA_LP_NO_PRESOLVE`
/// environment variable, so this function must not race with concurrent solves —
/// callers run it from a single thread (the bins) or behind a lock (tests).
pub fn differential_verdicts(pair: &GeneratedPair, budget: Option<Duration>) -> DifferentialVerdict {
    let base = table2_options(pair);
    let with_budget = |mut options: AnalysisOptions| {
        options.time_budget = budget;
        options
    };
    let new = AnalyzedProgram::from_source(&pair.source_new).expect("generated source");
    let old = AnalyzedProgram::from_source(&pair.source_old).expect("generated source");
    let solve = |options: AnalysisOptions| {
        DiffCostSolver::new(options).solve(&new, &old).ok().map(|r| r.threshold_int())
    };

    let certified = solve(with_budget(base));
    let exact = solve(with_budget(AnalysisOptions { backend: LpBackend::Exact, ..base }));
    let no_presolve = {
        // SAFETY: single-threaded by contract (see doc comment) — the env var is
        // process-global and read by every LP solve.
        std::env::set_var("DCA_LP_NO_PRESOLVE", "1");
        let result = solve(with_budget(base));
        std::env::remove_var("DCA_LP_NO_PRESOLVE");
        result
    };

    let mut disagreements = Vec::new();
    if certified != exact {
        disagreements.push(format!(
            "{}: certified backend computed {certified:?} but exact backend computed {exact:?}",
            pair.name
        ));
    }
    if certified != no_presolve {
        disagreements.push(format!(
            "{}: presolve-on computed {certified:?} but presolve-off computed {no_presolve:?}",
            pair.name
        ));
    }
    DifferentialVerdict {
        certified: certified.map(|t| t as f64),
        exact: exact.map(|t| t as f64),
        no_presolve: no_presolve.map(|t| t as f64),
        disagreements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_is_large_deterministic_and_unique() {
        let a = table2_manifest();
        let b = table2_manifest();
        assert!(a.len() >= 200, "the corpus must hold at least 200 pairs, got {}", a.len());
        assert_eq!(a.len(), b.len());
        let mut names: Vec<&str> = a.iter().map(|p| p.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), a.len(), "pair names must be unique (they key the gate)");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source_old, y.source_old);
            assert_eq!(x.source_new, y.source_new);
            assert_eq!(x.tight, y.tight);
        }
    }

    #[test]
    fn manifest_covers_the_whole_shape_grid() {
        let manifest = table2_manifest();
        for depth in 1..=3u32 {
            assert!(manifest.iter().any(|p| p.shape.depth == depth));
        }
        assert!(manifest.iter().any(|p| p.shape.phases == 2));
        assert!(manifest.iter().any(|p| p.shape.dependent));
        assert!(manifest.iter().any(|p| p.shape.disjunctive));
        assert!(manifest.iter().any(|p| p.shape.padding));
        assert!(manifest.iter().any(|p| p.shape.phase_flip));
        assert!(manifest.iter().any(|p| p.shape.kind == PairKind::Equivalent));
        assert!(manifest.iter().all(|p| p.max_block_len <= dca_ir::MAX_BLOCK_STATEMENTS));
    }

    #[test]
    fn smoke_subset_is_small_and_cheap() {
        let subset = table2_smoke();
        assert!(!subset.is_empty());
        assert!(subset.len() <= 24, "smoke must stay bounded, got {}", subset.len());
        assert!(subset.iter().all(|p| p.shape.depth <= 2 && p.shape.phases == 1));
        // The phase-flip cells must be represented: the smoke step is what gates
        // the split pass on every push.
        assert!(subset.iter().any(|p| p.shape.phase_flip));
    }

    #[test]
    fn generated_sources_compile() {
        // Every distinct shape tag compiles through the full front end (parser,
        // lowering, invariants). One representative per tag keeps this fast.
        let mut seen = std::collections::BTreeSet::new();
        for pair in table2_manifest() {
            if !seen.insert(pair.shape.tag()) {
                continue;
            }
            AnalyzedProgram::from_source(&pair.source_old)
                .unwrap_or_else(|e| panic!("{}: old does not compile: {e}", pair.name));
            AnalyzedProgram::from_source(&pair.source_new)
                .unwrap_or_else(|e| panic!("{}: new does not compile: {e}", pair.name));
        }
    }

    #[test]
    fn exhaustive_oracle_confirms_tight_on_small_pairs() {
        // The generator's bound claim is checked against ground truth: exhaustive
        // exploration of the smallest depth-1 pairs over their full input box must
        // attain exactly `tight` at the corner and never exceed it.
        use dca_ir::{enumerate_box, CostExplorer};
        let explorer = CostExplorer::default();
        let mut checked = 0;
        for pair in table2_manifest() {
            if pair.shape.depth != 1 || pair.shape.phases != 1 || pair.bound_n > 6 {
                continue;
            }
            let new = AnalyzedProgram::from_source(&pair.source_new).unwrap();
            let old = AnalyzedProgram::from_source(&pair.source_old).unwrap();
            let box_new = dca_core::verify::input_box(&new);
            let mut worst = i64::MIN;
            for input in enumerate_box(&box_new) {
                let mut vals = input.clone();
                vals.insert(new.ts.cost_var(), 0);
                let new_bounds = explorer.explore(&new.ts, &vals);
                let old_vals =
                    dca_core::verify::transfer_valuation(&vals, &new.ts, &old.ts);
                let old_bounds = explorer.explore(&old.ts, &old_vals);
                assert!(!new_bounds.truncated && !old_bounds.truncated);
                worst = worst.max(new_bounds.max - old_bounds.min);
            }
            assert_eq!(
                worst, pair.tight,
                "{}: exhaustive worst-case difference disagrees with the generator oracle",
                pair.name
            );
            checked += 1;
            if checked >= 6 {
                break;
            }
        }
        assert!(checked >= 3, "the manifest must contain small depth-1 pairs");
    }
}
