//! The benchmark suite of the paper's evaluation (Table 1) plus the running example.
//!
//! The paper evaluates on 19 program pairs drawn from the cost-analysis literature
//! (Gulwani et al. \[23\], Gulwani & Zuleger \[25\]) and from the semantic-differencing
//! literature (Partush & Yahav \[40, 41\]), plus the `join` running example of Fig. 1. The
//! original C sources are not distributed with the paper, so each pair here is a
//! *reconstruction* following the recipe of Section 6:
//!
//! * first class ("non-zero tight threshold"): the old version incurs cost 1 per loop
//!   iteration; the new version additionally incurs cost in a nested loop or branch;
//! * second class ("zero tight threshold"): semantically equivalent pairs whose syntactic
//!   shape differs;
//! * every uninitialized input is assumed to lie in `[1, 100]`.
//!
//! Each [`Benchmark`] records the tight threshold by construction, the value the paper's
//! tool reported (`paper_computed`, `None` for the ✗ rows), and any reconstruction notes.
//! `EXPERIMENTS.md` at the repository root compares these numbers against the values this
//! implementation reproduces.

mod suite;
pub mod table2;

pub use suite::{all_benchmarks, running_example, Benchmark, BenchmarkGroup};

use dca_core::batch::{run_batch, BatchConfig, BatchJob, BatchReport};
use dca_core::{
    AnalysisError, AnalysisOptions, AnalyzedProgram, DiffCostResult, DiffCostSolver,
    InvariantTier,
};

/// Configuration for [`run_suite_parallel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuiteConfig {
    /// Number of worker threads (`0` = one per available CPU).
    pub jobs: usize,
    /// `true` replaces the per-benchmark paper degrees by the automatic escalation
    /// ladder (invariant tiers first, then degrees `1 → 2 → 3`), as if neither the
    /// right degree nor the required invariant strength were known.
    pub escalate: bool,
    /// Per-attempt wall-clock budget (`None` = unlimited); pairs whose LP exceeds it
    /// report [`dca_core::AnalysisError::Timeout`] instead of stalling the suite.
    pub time_budget: Option<std::time::Duration>,
    /// Invariant precision tier every pair is analyzed at (the escalation ladder, when
    /// enabled, starts climbing from this tier).
    pub invariant_tier: InvariantTier,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            jobs: 0,
            escalate: false,
            time_budget: None,
            invariant_tier: InvariantTier::Baseline,
        }
    }
}

/// The whole evaluation as batch jobs: all 19 Table-1 pairs plus the running example,
/// each at the degree the paper used for it (`d = K = 2`, `nested` at 3).
pub fn suite_jobs() -> Vec<BatchJob> {
    let mut benchmarks = all_benchmarks();
    benchmarks.push(running_example());
    benchmarks
        .into_iter()
        .map(|b| {
            BatchJob::from_sources(b.name, b.source_new, b.source_old).with_options(b.options())
        })
        .collect()
}

/// Translates a [`SuiteConfig`] into the batch engine's configuration.
fn batch_config(config: &SuiteConfig) -> BatchConfig {
    let mut batch_config = BatchConfig::with_jobs(config.jobs);
    if config.escalate {
        batch_config = batch_config.escalating();
    }
    if let Some(budget) = config.time_budget {
        batch_config = batch_config.with_time_budget(budget);
    }
    batch_config
}

/// `true` if a benchmark name passes the (possibly empty) substring filter list.
pub fn matches_filters(name: &str, filters: &[String]) -> bool {
    filters.is_empty() || filters.iter().any(|f| name.contains(f.as_str()))
}

/// Runs the full evaluation (19 Table-1 pairs + running example) through the parallel
/// batch engine and returns the per-pair outcomes in table order.
///
/// Sources are compiled inside the workers, so parsing, invariant generation and LP
/// synthesis all parallelize; with `jobs = N` the suite wall-clock drops roughly by the
/// worker count (see `EXPERIMENTS.md` for measured numbers).
pub fn run_suite_parallel(config: &SuiteConfig) -> BatchReport {
    run_suite_filtered(config, &[])
}

/// Like [`run_suite_parallel`], restricted to benchmarks whose name contains one of the
/// given substrings (an empty list selects everything).
pub fn run_suite_filtered(config: &SuiteConfig, filters: &[String]) -> BatchReport {
    let jobs: Vec<BatchJob> = suite_jobs()
        .into_iter()
        .filter(|job| matches_filters(&job.name, filters))
        .map(|job| {
            let options = job.options.with_invariant_tier(config.invariant_tier);
            job.with_options(options)
        })
        .collect();
    run_batch(&jobs, &batch_config(config))
}

impl Benchmark {
    /// The analyzed old program version.
    pub fn old_program(&self) -> AnalyzedProgram {
        AnalyzedProgram::from_source(self.source_old)
            .unwrap_or_else(|e| panic!("benchmark {} old version: {e}", self.name))
    }

    /// The analyzed new program version.
    pub fn new_program(&self) -> AnalyzedProgram {
        AnalyzedProgram::from_source(self.source_new)
            .unwrap_or_else(|e| panic!("benchmark {} new version: {e}", self.name))
    }

    /// The analysis options the paper used for this benchmark (`d = K = 2`, except
    /// `nested` which needs `d = K = 3`).
    pub fn options(&self) -> AnalysisOptions {
        AnalysisOptions::with_degree(self.degree)
    }

    /// Runs the differential cost analysis on this benchmark.
    pub fn solve(&self) -> Result<DiffCostResult, AnalysisError> {
        let solver = DiffCostSolver::new(self.options());
        solver.solve(&self.new_program(), &self.old_program())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_nineteen_table_rows_plus_running_example() {
        let benchmarks = all_benchmarks();
        assert_eq!(benchmarks.len(), 19);
        assert_eq!(
            benchmarks
                .iter()
                .filter(|b| b.group == BenchmarkGroup::Gulwani09)
                .count(),
            10
        );
        assert_eq!(
            benchmarks
                .iter()
                .filter(|b| b.group == BenchmarkGroup::Gulwani10)
                .count(),
            5
        );
        assert_eq!(
            benchmarks
                .iter()
                .filter(|b| b.group == BenchmarkGroup::PartushYahav)
                .count(),
            4
        );
        assert_eq!(running_example().name, "join");
    }

    #[test]
    fn all_sources_parse_and_lower() {
        for benchmark in all_benchmarks().iter().chain([running_example()].iter()) {
            let old = benchmark.old_program();
            let new = benchmark.new_program();
            assert!(old.ts.num_locations() >= 2, "{}", benchmark.name);
            assert!(new.ts.num_locations() >= 2, "{}", benchmark.name);
        }
    }

    #[test]
    fn tight_thresholds_match_table_one() {
        let by_name: std::collections::BTreeMap<&str, i64> = all_benchmarks()
            .iter()
            .map(|b| (b.name, b.tight))
            .collect();
        // Spot-check the Table 1 "Tight" column.
        assert_eq!(by_name["Dis1"], 100);
        assert_eq!(by_name["NestedMultipleDep"], 9900);
        assert_eq!(by_name["NestedSingle"], 101);
        assert_eq!(by_name["SimpleMultipleDep"], 10000);
        assert_eq!(by_name["Ex4"], 201);
        assert_eq!(by_name["Ex7"], 1);
        assert_eq!(by_name["ddec"], 0);
        assert_eq!(by_name["sum"], 0);
    }

    /// The concrete semantics of each reconstruction must actually attain the documented
    /// tight threshold (and never exceed it). Verified with the exhaustive explorer on
    /// down-scaled inputs where the worst case scales linearly with the input bound.
    #[test]
    fn reconstructions_respect_their_tight_threshold_on_samples() {
        use dca_core::verify::{verify_threshold, VerifyConfig};
        let config = VerifyConfig { samples: 8, ..VerifyConfig::default() };
        for benchmark in all_benchmarks() {
            // Skip the cubic benchmark here (exhaustive exploration is too slow); it is
            // covered by the integration tests.
            if benchmark.name == "nested" {
                continue;
            }
            let report = verify_threshold(
                &benchmark.new_program(),
                &benchmark.old_program(),
                benchmark.tight as f64,
                &config,
            );
            assert!(
                report.ok(),
                "benchmark {} exceeds its documented tight threshold: {:?}",
                benchmark.name,
                report.violations
            );
        }
    }

    // The full running-example synthesis passes since the LP-degeneracy fixes (see
    // EXPERIMENTS.md) and is exercised un-ignored by `tests/running_example.rs` and
    // the `table1` harness; this duplicate stays under `--ignored` purely because the
    // solve takes minutes and would double the cost of the default suite.
    #[test]
    #[ignore = "slow: duplicate of tests/running_example.rs::join_threshold_is_ten_thousand"]
    fn running_example_solves_to_ten_thousand() {
        let benchmark = running_example();
        let result = benchmark.solve().expect("the running example must be solvable");
        assert_eq!(result.threshold_int(), 10_000);
    }

    #[test]
    fn suite_jobs_cover_the_whole_evaluation() {
        let jobs = suite_jobs();
        assert_eq!(jobs.len(), 20, "19 Table-1 pairs plus the running example");
        assert_eq!(jobs.last().unwrap().name, "join");
        let nested = jobs.iter().find(|j| j.name == "nested").unwrap();
        assert_eq!(nested.options.degree, 3);
        assert!(jobs.iter().filter(|j| j.name != "nested").all(|j| j.options.degree == 2));
    }

    #[test]
    fn small_suite_subset_is_deterministic_across_worker_counts() {
        use dca_core::batch::{run_batch, BatchConfig};
        // Three fast rows keep this a unit test; the full parallel suite is covered by
        // the ignored test below and by the `table1` harness.
        let jobs: Vec<_> = suite_jobs()
            .into_iter()
            .filter(|j| ["SimpleSingle", "sum", "ddec modified"].contains(&j.name.as_str()))
            .collect();
        assert_eq!(jobs.len(), 3);
        let serial = run_batch(&jobs, &BatchConfig::with_jobs(1));
        let parallel = run_batch(&jobs, &BatchConfig::with_jobs(3));
        let ints = |report: &dca_core::BatchReport| {
            report
                .outcomes
                .iter()
                .map(|o| o.result.as_ref().ok().map(|r| r.threshold_int()))
                .collect::<Vec<_>>()
        };
        assert_eq!(ints(&serial), vec![Some(100), Some(0), Some(0)]);
        assert_eq!(ints(&serial), ints(&parallel));
    }

    // Mirrors the paper: `nested` is the one benchmark that needs `d = K = 3`, so the
    // escalation loop must reject degrees 1 and 2 and settle on 3. This remains an
    // aspirational red test — the degree-3 LP currently exceeds any practical budget
    // (see EXPERIMENTS.md, "Known limitations") — so it stays `#[ignore]`d and the
    // CI step running `--ignored` is non-blocking. Tier escalation is capped and a
    // per-attempt budget is set so the test fails in bounded time instead of
    // stalling CI for hours.
    #[test]
    #[ignore = "aspirational: the degree-3 `nested` LP exceeds the time budget (see EXPERIMENTS.md)"]
    fn escalation_discovers_degree_three_for_nested() {
        use dca_core::escalate::{solve_with_escalation, EscalationPolicy};
        use dca_core::InvariantTier;
        let benchmark = all_benchmarks().into_iter().find(|b| b.name == "nested").unwrap();
        let escalated = solve_with_escalation(
            &benchmark.new_program(),
            &benchmark.old_program(),
            &AnalysisOptions::default()
                .with_time_budget(std::time::Duration::from_secs(240)),
            EscalationPolicy::default().with_max_tier(InvariantTier::Baseline),
        )
        .expect("degree 3 must witness the nested pair");
        assert_eq!(escalated.degree, 3);
        assert_eq!(escalated.attempts.len(), 3);
        assert_eq!(escalated.result.threshold_int(), benchmark.tight);
    }

    #[test]
    fn simple_single_solves_tight() {
        let benchmark = all_benchmarks()
            .into_iter()
            .find(|b| b.name == "SimpleSingle")
            .unwrap();
        let result = benchmark.solve().expect("SimpleSingle must be solvable");
        assert_eq!(result.threshold_int(), benchmark.tight);
    }
}
