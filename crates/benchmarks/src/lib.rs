//! The benchmark suite of the paper's evaluation (Table 1) plus the running example.
//!
//! The paper evaluates on 19 program pairs drawn from the cost-analysis literature
//! (Gulwani et al. [23], Gulwani & Zuleger [25]) and from the semantic-differencing
//! literature (Partush & Yahav [40, 41]), plus the `join` running example of Fig. 1. The
//! original C sources are not distributed with the paper, so each pair here is a
//! *reconstruction* following the recipe of Section 6:
//!
//! * first class ("non-zero tight threshold"): the old version incurs cost 1 per loop
//!   iteration; the new version additionally incurs cost in a nested loop or branch;
//! * second class ("zero tight threshold"): semantically equivalent pairs whose syntactic
//!   shape differs;
//! * every uninitialized input is assumed to lie in `[1, 100]`.
//!
//! Each [`Benchmark`] records the tight threshold by construction, the value the paper's
//! tool reported (`paper_computed`, `None` for the ✗ rows), and any reconstruction notes.
//! `EXPERIMENTS.md` at the repository root compares these numbers against the values this
//! implementation reproduces.

mod suite;

pub use suite::{all_benchmarks, running_example, Benchmark, BenchmarkGroup};

use dca_core::{AnalysisError, AnalysisOptions, AnalyzedProgram, DiffCostResult, DiffCostSolver};

impl Benchmark {
    /// The analyzed old program version.
    pub fn old_program(&self) -> AnalyzedProgram {
        AnalyzedProgram::from_source(self.source_old)
            .unwrap_or_else(|e| panic!("benchmark {} old version: {e}", self.name))
    }

    /// The analyzed new program version.
    pub fn new_program(&self) -> AnalyzedProgram {
        AnalyzedProgram::from_source(self.source_new)
            .unwrap_or_else(|e| panic!("benchmark {} new version: {e}", self.name))
    }

    /// The analysis options the paper used for this benchmark (`d = K = 2`, except
    /// `nested` which needs `d = K = 3`).
    pub fn options(&self) -> AnalysisOptions {
        AnalysisOptions::with_degree(self.degree)
    }

    /// Runs the differential cost analysis on this benchmark.
    pub fn solve(&self) -> Result<DiffCostResult, AnalysisError> {
        let solver = DiffCostSolver::new(self.options());
        solver.solve(&self.new_program(), &self.old_program())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_nineteen_table_rows_plus_running_example() {
        let benchmarks = all_benchmarks();
        assert_eq!(benchmarks.len(), 19);
        assert_eq!(
            benchmarks
                .iter()
                .filter(|b| b.group == BenchmarkGroup::Gulwani09)
                .count(),
            10
        );
        assert_eq!(
            benchmarks
                .iter()
                .filter(|b| b.group == BenchmarkGroup::Gulwani10)
                .count(),
            5
        );
        assert_eq!(
            benchmarks
                .iter()
                .filter(|b| b.group == BenchmarkGroup::PartushYahav)
                .count(),
            4
        );
        assert_eq!(running_example().name, "join");
    }

    #[test]
    fn all_sources_parse_and_lower() {
        for benchmark in all_benchmarks().iter().chain([running_example()].iter()) {
            let old = benchmark.old_program();
            let new = benchmark.new_program();
            assert!(old.ts.num_locations() >= 2, "{}", benchmark.name);
            assert!(new.ts.num_locations() >= 2, "{}", benchmark.name);
        }
    }

    #[test]
    fn tight_thresholds_match_table_one() {
        let by_name: std::collections::BTreeMap<&str, i64> = all_benchmarks()
            .iter()
            .map(|b| (b.name, b.tight))
            .collect();
        // Spot-check the Table 1 "Tight" column.
        assert_eq!(by_name["Dis1"], 100);
        assert_eq!(by_name["NestedMultipleDep"], 9900);
        assert_eq!(by_name["NestedSingle"], 101);
        assert_eq!(by_name["SimpleMultipleDep"], 10000);
        assert_eq!(by_name["Ex4"], 201);
        assert_eq!(by_name["Ex7"], 1);
        assert_eq!(by_name["ddec"], 0);
        assert_eq!(by_name["sum"], 0);
    }

    /// The concrete semantics of each reconstruction must actually attain the documented
    /// tight threshold (and never exceed it). Verified with the exhaustive explorer on
    /// down-scaled inputs where the worst case scales linearly with the input bound.
    #[test]
    fn reconstructions_respect_their_tight_threshold_on_samples() {
        use dca_core::verify::{verify_threshold, VerifyConfig};
        let config = VerifyConfig { samples: 8, ..VerifyConfig::default() };
        for benchmark in all_benchmarks() {
            // Skip the cubic benchmark here (exhaustive exploration is too slow); it is
            // covered by the integration tests.
            if benchmark.name == "nested" {
                continue;
            }
            let report = verify_threshold(
                &benchmark.new_program(),
                &benchmark.old_program(),
                benchmark.tight as f64,
                &config,
            );
            assert!(
                report.ok(),
                "benchmark {} exceeds its documented tight threshold: {:?}",
                benchmark.name,
                report.violations
            );
        }
    }

    // The full running-example synthesis is exercised by `tests/running_example.rs` and
    // the `table1` harness; it is ignored here to keep `cargo test` fast.
    #[test]
    #[ignore = "slow: full synthesis on the Fig. 1 pair (run with --ignored)"]
    fn running_example_solves_to_ten_thousand() {
        let benchmark = running_example();
        let result = benchmark.solve().expect("the running example must be solvable");
        assert_eq!(result.threshold_int(), 10_000);
    }

    #[test]
    fn simple_single_solves_tight() {
        let benchmark = all_benchmarks()
            .into_iter()
            .find(|b| b.name == "SimpleSingle")
            .unwrap();
        let result = benchmark.solve().expect("SimpleSingle must be solvable");
        assert_eq!(result.threshold_int(), benchmark.tight);
    }
}
