//! The concrete benchmark definitions.

/// Which part of the paper's evaluation a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchmarkGroup {
    /// Loop-bound benchmarks from Gulwani, Mehra, Chilimbi — SPEED (POPL 2009) \[23\].
    Gulwani09,
    /// Benchmarks from Gulwani & Zuleger — the reachability-bound problem (PLDI 2010) \[25\].
    Gulwani10,
    /// Semantically equivalent pairs from Partush & Yahav (SAS 2013 / OOPSLA 2014) \[40, 41\].
    PartushYahav,
    /// The `join` running example of Fig. 1.
    RunningExample,
}

impl std::fmt::Display for BenchmarkGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BenchmarkGroup::Gulwani09 => "Gulwani et al. [23]",
            BenchmarkGroup::Gulwani10 => "Gulwani and Zuleger [25]",
            BenchmarkGroup::PartushYahav => "Partush and Yahav [40, 41]",
            BenchmarkGroup::RunningExample => "running example (Fig. 1)",
        };
        write!(f, "{s}")
    }
}

/// One program pair of the evaluation.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name as it appears in Table 1.
    pub name: &'static str,
    /// Which group of Table 1 the benchmark belongs to.
    pub group: BenchmarkGroup,
    /// Source of the old program version.
    pub source_old: &'static str,
    /// Source of the new program version.
    pub source_new: &'static str,
    /// The tight differential threshold (Table 1, column "Tight").
    pub tight: i64,
    /// The threshold the paper's tool computed (Table 1, column "Computed"); `None` for ✗.
    pub paper_computed: Option<f64>,
    /// Template degree `d` (= `K`) used by the paper for this benchmark.
    pub degree: u32,
    /// Reconstruction notes (what structure the pair exercises).
    pub notes: &'static str,
}

/// The running example of Fig. 1: `join` with interchanged loops and a doubled operator
/// cost. The tight threshold is `lenA · lenB ≤ 10000`.
pub fn running_example() -> Benchmark {
    Benchmark {
        name: "join",
        group: BenchmarkGroup::RunningExample,
        source_old: r#"
            proc join(lenA, lenB) {
                assume(lenA >= 1 && lenA <= 100 && lenB >= 1 && lenB <= 100);
                i = 0;
                while (i < lenA) {
                    j = 0;
                    while (j < lenB) {
                        tick(1);
                        j = j + 1;
                    }
                    i = i + 1;
                }
            }
        "#,
        source_new: r#"
            proc join(lenA, lenB) {
                assume(lenA >= 1 && lenA <= 100 && lenB >= 1 && lenB <= 100);
                i = 0;
                while (i < lenB) {
                    j = 0;
                    while (j < lenA) {
                        tick(2);
                        j = j + 1;
                    }
                    i = i + 1;
                }
            }
        "#,
        tight: 10_000,
        paper_computed: Some(10_000.0),
        degree: 2,
        notes: "Fig. 1: loop interchange plus operator cost change from 1 to 2; \
                tight threshold lenA*lenB = 10000 (Example 2.3)",
    }
}

/// All 19 Table-1 benchmarks, in table order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        // ----- Gulwani et al. [23] ------------------------------------------------------
        Benchmark {
            name: "Dis1",
            group: BenchmarkGroup::Gulwani09,
            source_old: r#"
                proc dis1(n) {
                    assume(n >= 1 && n <= 100);
                    i = 0; j = 0;
                    while (i + j < n) {
                        if (*) { i = i + 1; } else { j = j + 1; }
                        tick(1);
                    }
                }
            "#,
            source_new: r#"
                proc dis1(n) {
                    assume(n >= 1 && n <= 100);
                    i = 0; j = 0;
                    while (i + j < n) {
                        if (*) { i = i + 1; tick(2); } else { j = j + 1; tick(1); }
                    }
                }
            "#,
            tight: 100,
            paper_computed: Some(100.0),
            degree: 2,
            notes: "two-counter loop driven by non-deterministic branching; the revision \
                    doubles the cost of one branch",
        },
        Benchmark {
            name: "Dis2",
            group: BenchmarkGroup::Gulwani09,
            source_old: r#"
                proc dis2(x, y) {
                    assume(x >= 1 && x <= 100 && y - x >= 1 && y - x <= 100);
                    while (x < y) {
                        if (*) { x = x + 1; } else { y = y - 1; }
                        tick(1);
                    }
                }
            "#,
            source_new: r#"
                proc dis2(x, y) {
                    assume(x >= 1 && x <= 100 && y - x >= 1 && y - x <= 100);
                    while (x < y) {
                        if (*) { x = x + 1; tick(2); } else { y = y - 1; tick(1); }
                    }
                }
            "#,
            tight: 100,
            paper_computed: Some(100.0),
            degree: 2,
            notes: "converging counters; as in the paper an initial ordering (y - x in \
                    [1,100]) is assumed to avoid disjunctive reasoning",
        },
        Benchmark {
            name: "NestedMultiple",
            group: BenchmarkGroup::Gulwani09,
            source_old: r#"
                proc nested_multiple(n, m) {
                    assume(n >= 1 && n <= 100 && m >= 1 && m <= 100);
                    i = 0;
                    while (i < n) {
                        j = 0;
                        while (j < m) { tick(1); j = j + 1; }
                        i = i + 1;
                    }
                }
            "#,
            source_new: r#"
                proc nested_multiple(n, m) {
                    assume(n >= 1 && n <= 100 && m >= 1 && m <= 100);
                    i = 0;
                    while (i < n) {
                        j = 0;
                        while (j < m) { tick(1); j = j + 1; }
                        if (*) { tick(1); }
                        i = i + 1;
                    }
                }
            "#,
            tight: 100,
            paper_computed: Some(100.0),
            degree: 2,
            notes: "nested loop with an extra conditional cost per outer iteration",
        },
        Benchmark {
            name: "NestedMultipleDep",
            group: BenchmarkGroup::Gulwani09,
            source_old: r#"
                proc nested_multiple_dep(n, m) {
                    assume(n >= 1 && n <= 100 && m >= 1 && m <= 100);
                    i = 0;
                    while (i < n) invariant(i >= 0, i <= n) {
                        j = 0;
                        while (j < m) invariant(j >= 0, j <= m) { tick(1); j = j + 1; }
                        i = i + 1;
                    }
                }
            "#,
            source_new: r#"
                proc nested_multiple_dep(n, m) {
                    assume(n >= 1 && n <= 100 && m >= 1 && m <= 100);
                    i = 0;
                    while (i < n) invariant(i >= 0, i <= n) {
                        j = 0;
                        while (j < m) invariant(j >= 0, j <= m) { tick(1); j = j + 1; }
                        k = 1;
                        while (k < m) invariant(k >= 1, k <= m) { tick(1); k = k + 1; }
                        i = i + 1;
                    }
                }
            "#,
            tight: 9_900,
            paper_computed: Some(9_900.0),
            degree: 2,
            notes: "the revision adds a second, dependent inner loop costing n*(m-1); the \
                    paper strengthened the generated invariants (the * mark), mirrored here \
                    by invariant(...) annotations",
        },
        Benchmark {
            name: "NestedSingle",
            group: BenchmarkGroup::Gulwani09,
            source_old: r#"
                proc nested_single(n, m) {
                    assume(n >= 1 && n <= 100 && m >= 1 && m <= 100);
                    i = 0;
                    while (i < n) { tick(1); i = i + 1; }
                }
            "#,
            source_new: r#"
                proc nested_single(n, m) {
                    assume(n >= 1 && n <= 100 && m >= 1 && m <= 100);
                    tick(1);
                    i = 0;
                    while (i < n) {
                        tick(1);
                        if (i == 0) {
                            j = 0;
                            while (j < m) { tick(1); j = j + 1; }
                        }
                        i = i + 1;
                    }
                }
            "#,
            tight: 101,
            paper_computed: Some(101.0),
            degree: 2,
            notes: "the revision adds a one-shot setup cost plus an inner loop executed \
                    only on the first outer iteration: extra cost 1 + m <= 101",
        },
        Benchmark {
            name: "SequentialSingle",
            group: BenchmarkGroup::Gulwani09,
            source_old: r#"
                proc sequential_single(n) {
                    assume(n >= 1 && n <= 100);
                    i = 0;
                    while (i < n) { tick(1); i = i + 1; }
                    j = 0;
                    while (j < n) { tick(1); j = j + 1; }
                }
            "#,
            source_new: r#"
                proc sequential_single(n) {
                    assume(n >= 1 && n <= 100);
                    i = 0;
                    while (i < n) { tick(1); i = i + 1; }
                    j = 0;
                    while (j < n) {
                        tick(1);
                        if (*) { tick(1); }
                        j = j + 1;
                    }
                }
            "#,
            tight: 100,
            paper_computed: Some(100.0),
            degree: 2,
            notes: "two sequential loops; the second gains a conditional extra cost",
        },
        Benchmark {
            name: "SimpleMultiple",
            group: BenchmarkGroup::Gulwani09,
            source_old: r#"
                proc simple_multiple(n, m) {
                    assume(n >= 1 && n <= 100 && m >= 1 && m <= 100);
                    i = 0;
                    while (i < n) { tick(1); i = i + 1; }
                    j = 0;
                    while (j < m) { tick(1); j = j + 1; }
                }
            "#,
            source_new: r#"
                proc simple_multiple(n, m) {
                    assume(n >= 1 && n <= 100 && m >= 1 && m <= 100);
                    i = 0;
                    while (i < n) {
                        tick(1);
                        if (*) { tick(1); }
                        i = i + 1;
                    }
                    j = 0;
                    while (j < m) { tick(1); j = j + 1; }
                }
            "#,
            tight: 100,
            paper_computed: Some(100.0),
            degree: 2,
            notes: "two independent loops over different inputs; the first gains a \
                    conditional extra cost",
        },
        Benchmark {
            name: "SimpleMultipleDep",
            group: BenchmarkGroup::Gulwani09,
            source_old: r#"
                proc simple_multiple_dep(n, m) {
                    assume(n >= 1 && n <= 100 && m >= 1 && m <= 100);
                    i = 0;
                    while (i < n) { tick(1); i = i + 1; }
                }
            "#,
            source_new: r#"
                proc simple_multiple_dep(n, m) {
                    assume(n >= 1 && n <= 100 && m >= 1 && m <= 100);
                    i = 0;
                    while (i < n) {
                        tick(1);
                        j = 0;
                        while (j < m) { tick(1); j = j + 1; }
                        i = i + 1;
                    }
                }
            "#,
            tight: 10_000,
            paper_computed: Some(10_100.0),
            degree: 2,
            notes: "the revision nests a dependent inner loop: extra cost n*m; the paper's \
                    tool over-approximated to 10100 because tight bounds need disjunctive \
                    reasoning",
        },
        Benchmark {
            name: "SimpleSingle",
            group: BenchmarkGroup::Gulwani09,
            source_old: r#"
                proc simple_single(n) {
                    assume(n >= 1 && n <= 100);
                    i = 0;
                    while (i < n) { tick(1); i = i + 1; }
                }
            "#,
            source_new: r#"
                proc simple_single(n) {
                    assume(n >= 1 && n <= 100);
                    i = 0;
                    while (i < n) {
                        tick(1);
                        if (*) { tick(1); }
                        i = i + 1;
                    }
                }
            "#,
            tight: 100,
            paper_computed: Some(100.0),
            degree: 2,
            notes: "single loop; the revision adds a conditional unit cost per iteration",
        },
        Benchmark {
            name: "SimpleSingle2",
            group: BenchmarkGroup::Gulwani09,
            source_old: r#"
                proc simple_single2(n, m) {
                    assume(n >= 1 && n <= 100 && m >= 1 && m <= 100);
                    i = 0;
                    while (i < n) { tick(1); i = i + 1; }
                }
            "#,
            source_new: r#"
                proc simple_single2(n, m) {
                    assume(n >= 1 && n <= 100 && m >= 1 && m <= 100);
                    i = 0;
                    while (i < n) { tick(1); i = i + 1; }
                    j = 0;
                    while (j < m && j < n) { tick(1); j = j + 1; }
                }
            "#,
            tight: 100,
            paper_computed: Some(197.0),
            degree: 2,
            notes: "the extra loop costs min(n, m): a tight bound needs the disjunctive \
                    operator min, so polynomial potentials over-approximate (the paper \
                    reports 197)",
        },
        // ----- Gulwani and Zuleger [25] -------------------------------------------------
        Benchmark {
            name: "Ex2",
            group: BenchmarkGroup::Gulwani10,
            source_old: r#"
                proc ex2(x, n) {
                    assume(x >= 1 && x <= 100 && n >= 1 && n <= 100 && x <= n);
                    while (x < n) { tick(1); x = x + 1; }
                }
            "#,
            source_new: r#"
                proc ex2(x, n) {
                    assume(x >= 1 && x <= 100 && n >= 1 && n <= 100 && x <= n);
                    while (x < n) {
                        tick(1);
                        if (*) { tick(1); }
                        x = x + 1;
                    }
                }
            "#,
            tight: 99,
            paper_computed: Some(99.94),
            degree: 2,
            notes: "loop bounded by the distance n - x <= 99; the paper's real-valued LP \
                    reported 99.94, tight for integer costs",
        },
        Benchmark {
            name: "Ex4",
            group: BenchmarkGroup::Gulwani10,
            source_old: r#"
                proc ex4(n, m) {
                    assume(n >= 1 && n <= 100 && m >= 1 && m <= 100);
                    i = 0;
                    while (i < n) { tick(1); i = i + 1; }
                    j = 0;
                    while (j < m) { tick(1); j = j + 1; }
                }
            "#,
            source_new: r#"
                proc ex4(n, m) {
                    assume(n >= 1 && n <= 100 && m >= 1 && m <= 100);
                    tick(1);
                    i = 0;
                    while (i < n) {
                        tick(1);
                        if (*) { tick(1); }
                        i = i + 1;
                    }
                    j = 0;
                    while (j < m) {
                        tick(1);
                        if (*) { tick(1); }
                        j = j + 1;
                    }
                }
            "#,
            tight: 201,
            paper_computed: Some(201.0),
            degree: 2,
            notes: "two sequential loops plus a setup cost: extra cost 1 + n + m <= 201",
        },
        Benchmark {
            name: "Ex5",
            group: BenchmarkGroup::Gulwani10,
            source_old: r#"
                proc ex5(n, m) {
                    assume(n >= 1 && n <= 100 && m >= 1 && m <= 100);
                    i = 0;
                    while (i < n) { tick(1); i = i + 1; }
                }
            "#,
            source_new: r#"
                proc ex5(n, m) {
                    assume(n >= 1 && n <= 100 && m >= 1 && m <= 100);
                    i = 0;
                    while (i < n) {
                        if (i < m) { tick(2); } else { tick(1); }
                        i = i + 1;
                    }
                }
            "#,
            tight: 100,
            paper_computed: None,
            degree: 2,
            notes: "the extra cost is min(n, m), conditioned on a comparison between the \
                    loop counter and a second input; the paper's tool failed (✗) because \
                    the required reasoning is disjunctive",
        },
        Benchmark {
            name: "Ex6",
            group: BenchmarkGroup::Gulwani10,
            source_old: r#"
                proc ex6(x, n) {
                    assume(x >= 1 && x <= 100 && n >= 1 && n <= 100 && x <= n);
                    while (x < n) { tick(1); x = x + 1; }
                }
            "#,
            source_new: r#"
                proc ex6(x, n) {
                    assume(x >= 1 && x <= 100 && n >= 1 && n <= 100 && x <= n);
                    y = x;
                    while (y < n) {
                        tick(1);
                        if (*) { tick(1); }
                        y = y + 1;
                    }
                }
            "#,
            tight: 99,
            paper_computed: Some(99.01),
            degree: 2,
            notes: "the new version iterates on a copy of the input; extra cost n - x <= 99",
        },
        Benchmark {
            name: "Ex7",
            group: BenchmarkGroup::Gulwani10,
            source_old: r#"
                proc ex7(n, y) {
                    assume(n >= 1 && n <= 100 && y >= 1 && y <= 100);
                    i = 0;
                    while (i < n) { tick(1); i = i + 1; }
                }
            "#,
            source_new: r#"
                proc ex7(n, y) {
                    assume(n >= 1 && n <= 100 && y >= 1 && y <= 100);
                    i = 0;
                    while (i < n) { tick(1); i = i + 1; }
                    if (y > 50) { tick(1); }
                }
            "#,
            tight: 1,
            paper_computed: None,
            degree: 2,
            notes: "a single conditional unit cost guarded by an input comparison; a tight \
                    bound needs case reasoning on y, which the paper's tool could not do (✗)",
        },
        // ----- Partush and Yahav [40, 41] (semantically equivalent pairs) ----------------
        Benchmark {
            name: "ddec",
            group: BenchmarkGroup::PartushYahav,
            source_old: r#"
                proc ddec(n) {
                    assume(n >= 1 && n <= 100);
                    i = 0;
                    while (i < n) { tick(1); i = i + 1; }
                }
            "#,
            source_new: r#"
                proc ddec(n) {
                    assume(n >= 1 && n <= 100);
                    i = 0;
                    while (i < n) {
                        if (i < n - 1) { tick(2); i = i + 2; } else { tick(1); i = i + 1; }
                    }
                }
            "#,
            tight: 0,
            paper_computed: Some(73_896.4),
            degree: 2,
            notes: "equivalent loop with stride 2: the cost is identical but relating the \
                    two requires disjunctive (parity) reasoning, so the computed threshold \
                    is far from tight (the paper reports 73896.4)",
        },
        Benchmark {
            name: "ddec modified",
            group: BenchmarkGroup::PartushYahav,
            source_old: r#"
                proc ddec_modified(n) {
                    assume(n >= 1 && n <= 100);
                    i = 0;
                    while (i < n) { tick(1); i = i + 1; }
                }
            "#,
            source_new: r#"
                proc ddec_modified(n) {
                    assume(n >= 1 && n <= 100);
                    i = n;
                    while (i > 0) { tick(1); i = i - 1; }
                }
            "#,
            tight: 0,
            paper_computed: Some(0.0),
            degree: 2,
            notes: "equivalent rewrite (counting down instead of up) that does not need \
                    disjunctive reasoning",
        },
        Benchmark {
            name: "nested",
            group: BenchmarkGroup::PartushYahav,
            source_old: r#"
                proc nested(n) {
                    assume(n >= 1 && n <= 100);
                    i = 0;
                    while (i < n) invariant(i >= 0, i <= n) {
                        j = 0;
                        while (j < n) invariant(j >= 0, j <= n) {
                            k = 0;
                            while (k < n) invariant(k >= 0, k <= n) { tick(1); k = k + 1; }
                            j = j + 1;
                        }
                        i = i + 1;
                    }
                }
            "#,
            source_new: r#"
                proc nested(n) {
                    assume(n >= 1 && n <= 100);
                    k = 0;
                    while (k < n) invariant(k >= 0, k <= n) {
                        j = 0;
                        while (j < n) invariant(j >= 0, j <= n) {
                            i = 0;
                            while (i < n) invariant(i >= 0, i <= n) { tick(1); i = i + 1; }
                            j = j + 1;
                        }
                        k = k + 1;
                    }
                }
            "#,
            tight: 0,
            paper_computed: Some(0.0),
            degree: 3,
            notes: "triple nested loop (cubic cost n^3) with the loops reordered; needs \
                    d = K = 3 and, as in the paper (* mark), strengthened loop invariants",
        },
        Benchmark {
            name: "sum",
            group: BenchmarkGroup::PartushYahav,
            source_old: r#"
                proc sum(n) {
                    assume(n >= 1 && n <= 100);
                    i = 0;
                    while (i < n) { tick(1); i = i + 1; }
                }
            "#,
            source_new: r#"
                proc sum(n) {
                    assume(n >= 1 && n <= 100);
                    i = 1;
                    while (i <= n) { tick(1); i = i + 1; }
                }
            "#,
            tight: 0,
            paper_computed: Some(0.5),
            degree: 2,
            notes: "equivalent rewrite with shifted loop counter; the paper's real-valued \
                    LP reported 0.5, tight for integer costs",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_render() {
        assert!(BenchmarkGroup::Gulwani09.to_string().contains("[23]"));
        assert!(BenchmarkGroup::RunningExample.to_string().contains("Fig. 1"));
    }

    #[test]
    fn table_order_matches_paper() {
        let names: Vec<&str> = all_benchmarks().iter().map(|b| b.name).collect();
        assert_eq!(names[0], "Dis1");
        assert_eq!(names[9], "SimpleSingle2");
        assert_eq!(names[10], "Ex2");
        assert_eq!(names[14], "Ex7");
        assert_eq!(names[15], "ddec");
        assert_eq!(names[18], "sum");
    }

    #[test]
    fn failed_rows_have_no_paper_value() {
        let benchmarks = all_benchmarks();
        let failing: Vec<&str> = benchmarks
            .iter()
            .filter(|b| b.paper_computed.is_none())
            .map(|b| b.name)
            .collect();
        assert_eq!(failing, vec!["Ex5", "Ex7"]);
    }

    #[test]
    fn only_nested_needs_degree_three() {
        for b in all_benchmarks() {
            if b.name == "nested" {
                assert_eq!(b.degree, 3);
            } else {
                assert_eq!(b.degree, 2);
            }
        }
    }
}
