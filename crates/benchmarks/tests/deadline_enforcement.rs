//! Pins the hard-deadline behaviour of the batch engine on a genuinely slow pair:
//! `nested` (degree 3, ~45 s fault-free in release, minutes in debug) at a tiny
//! budget must stop cooperatively — orders of magnitude before the fault-free solve
//! would finish — and degrade down the ladder instead of reporting an uncertified
//! threshold as certified.

use std::time::{Duration, Instant};

use dca_core::batch::{run_batch, BatchConfig, BatchJob};
use dca_core::SolveOutcome;

#[test]
fn nested_at_a_tiny_budget_stops_cooperatively_and_degrades_soundly() {
    let nested = dca_benchmarks::all_benchmarks()
        .into_iter()
        .find(|b| b.name == "nested")
        .expect("the Table-1 suite contains the `nested` pair");
    let job = BatchJob::from_sources(nested.name, nested.source_new, nested.source_old)
        .with_options(nested.options());
    let budget = Duration::from_secs(2);
    let config = BatchConfig::with_jobs(1).with_time_budget(budget);
    let start = Instant::now();
    let report = run_batch(std::slice::from_ref(&job), &config);
    let elapsed = start.elapsed();

    // Cooperative, not exact: the loops poll every few dozen pivots and the encoding
    // checks at phase boundaries, so the stop lands within a small multiple of the
    // budget — far below the fault-free solve time (>40 s release, minutes debug).
    assert!(
        elapsed < Duration::from_secs(30),
        "cooperative cancellation took {elapsed:?} against a {budget:?} budget"
    );

    // The ladder never mislabels the interrupted solve: it is either a truncated
    // anytime bound (sound upper bound, possibly with an exact dual lower bound) or
    // an explicit phase-attributed abort — never `Certified`.
    match report.outcomes[0].outcome() {
        SolveOutcome::TruncatedAnytime { upper, lower, gap } => {
            assert!(
                upper >= nested.tight as f64 - 1e-9,
                "anytime upper bound {upper} undercuts the tight threshold {}",
                nested.tight
            );
            if let (Some(lower), Some(gap)) = (lower, gap) {
                assert!(lower <= upper + 1e-9, "lower bound {lower} exceeds upper {upper}");
                assert!(gap >= -1e-9, "negative gap {gap}");
            }
        }
        SolveOutcome::Aborted { phase, reason } => {
            // Acceptable when the budget dies before the LP reaches a feasible
            // iterate (debug builds spend seconds in encoding alone) — but the abort
            // must carry its phase and must not smuggle out a threshold.
            assert!(phase.is_some(), "timeout abort lost its phase: {reason}");
            assert!(report.outcomes[0].result.is_err());
        }
        SolveOutcome::Certified { .. } => {
            panic!("a {budget:?} budget cannot certify a >40 s solve")
        }
    }
}
