//! Property test over the Table-2 generated corpus: on 50+ generated pairs, the
//! certified threshold is never violated by interpreter-sampled concrete executions,
//! at every invariant tier.
//!
//! The sampling harness under-approximates the true cost-difference supremum
//! (`CostSup_new − CostInf_old` over the input box, observed on random walks plus the
//! box corners where the generated bounds bind), so any violation it reports is a
//! real soundness bug — in the generator's oracle, the encoder, or the LP.

use dca_benchmarks::table2::{check_sampled_soundness, run_table2, table2_manifest};
use dca_core::InvariantTier;

/// How many pairs the property must cover (the satellite's floor).
const MIN_PAIRS: usize = 50;

#[test]
fn sampled_costs_never_exceed_the_certified_bound_at_any_tier() {
    // The cheap half of the corpus: every degree-1 pair (depth-1, independent
    // bounds) plus single-phase depth-2 pairs, until the floor is comfortably met.
    // Dev-profile solves dominate this test's runtime, so the selection matters.
    let mut pairs: Vec<_> = table2_manifest()
        .into_iter()
        .filter(|p| p.degree == 1 || (p.shape.depth == 2 && p.shape.phases == 1))
        .collect();
    pairs.truncate(MIN_PAIRS);
    assert!(
        pairs.len() >= MIN_PAIRS,
        "the corpus must supply at least {MIN_PAIRS} cheap pairs, got {}",
        pairs.len()
    );

    let report = run_table2(&pairs, 0, None);
    let mut violations = Vec::new();
    for (pair, outcome) in pairs.iter().zip(&report.outcomes) {
        assert_eq!(pair.name, outcome.name);
        let result = outcome
            .result
            .as_ref()
            .unwrap_or_else(|e| panic!("{}: solve failed: {e}", pair.name));
        for tier in [
            InvariantTier::Baseline,
            InvariantTier::Hull,
            InvariantTier::Relational,
        ] {
            // A handful of walks per tier; the box corners (always included) are
            // where the generated bounds are attained, so tightness is exercised
            // even at this sample count.
            if let Err(found) =
                check_sampled_soundness(pair, result.threshold, tier, 4)
            {
                violations.extend(
                    found
                        .into_iter()
                        .map(|v| format!("{} @ tier {}: {v}", pair.name, tier.index())),
                );
            }
        }
    }
    assert!(
        violations.is_empty(),
        "sampled executions exceeded certified bounds:\n{}",
        violations.join("\n")
    );
}
