//! The line-delimited JSON protocol of the serve daemon.
//!
//! One request object per line in; one or more frame objects per line out. Every
//! frame names its type in a `"type"` member, and analyze frames echo the
//! request's `"id"`, so a pipelining client can match responses to queries.
//!
//! # Requests
//!
//! ```text
//! {"cmd": "analyze", "id": "q1", "new": "<source>", "old": "<source>",
//!  "degree": 2, "tier": 0, "timeout_ms": 30000, "stream": false}
//! {"cmd": "ping"}
//! {"cmd": "stats"}
//! {"cmd": "shutdown"}
//! ```
//!
//! `degree` (default 2), `tier` (invariant tier index 0/1/2, default 0),
//! `timeout_ms` and `stream` are optional. `stream` only has an effect together
//! with `timeout_ms`: the budget is sliced and each expired slice emits a
//! `progress` frame with the anytime bracket before the final answer.
//!
//! # Frames
//!
//! ```text
//! {"type": "progress", "id", "upper", "lower", "gap"}
//! {"type": "result", "id", "threshold", "threshold_int", "outcome",
//!  "cache": "hit"|"near"|"miss", "lp_iterations", "invalidated",
//!  "degree", "tier", "seconds"}
//! {"type": "error", "id", "code", "phase", "message"}
//! {"type": "pong"} | {"type": "stats", ...} | {"type": "bye"}
//! ```
//!
//! Error codes: `bad-request` (malformed JSON or fields), `compile-error`,
//! `timeout` (budget exhausted with no sound bound), `panic` (the request
//! crashed and was contained — the daemon keeps serving), `unsolved` (the
//! analysis found no witness at these options).

use crate::json::{escape, Value};

/// An `analyze` request: solve one program pair.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeRequest {
    /// Client-chosen request ID, echoed in every frame this request produces.
    pub id: String,
    /// Source of the new (revised) program version.
    pub new_source: String,
    /// Source of the old (baseline) program version.
    pub old_source: String,
    /// Template degree `d = K` (default 2).
    pub degree: Option<u32>,
    /// Invariant-tier index (0 baseline, 1 hull, 2 relational; default 0).
    pub tier: Option<u32>,
    /// Wall-clock budget for the solve, in milliseconds (default unlimited).
    pub timeout_ms: Option<u64>,
    /// Emit incremental anytime `progress` frames while solving (needs
    /// `timeout_ms` to slice).
    pub stream: bool,
}

impl AnalyzeRequest {
    /// A request with default options (degree 2, baseline tier, no budget).
    pub fn new(
        id: impl Into<String>,
        new_source: impl Into<String>,
        old_source: impl Into<String>,
    ) -> AnalyzeRequest {
        AnalyzeRequest {
            id: id.into(),
            new_source: new_source.into(),
            old_source: old_source.into(),
            degree: None,
            tier: None,
            timeout_ms: None,
            stream: false,
        }
    }

    /// Renders the request as one protocol line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"cmd\": \"analyze\", \"id\": \"{}\", \"new\": \"{}\", \"old\": \"{}\"",
            escape(&self.id),
            escape(&self.new_source),
            escape(&self.old_source),
        );
        if let Some(degree) = self.degree {
            out.push_str(&format!(", \"degree\": {degree}"));
        }
        if let Some(tier) = self.tier {
            out.push_str(&format!(", \"tier\": {tier}"));
        }
        if let Some(timeout_ms) = self.timeout_ms {
            out.push_str(&format!(", \"timeout_ms\": {timeout_ms}"));
        }
        if self.stream {
            out.push_str(", \"stream\": true");
        }
        out.push('}');
        out
    }
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Solve a program pair.
    Analyze(AnalyzeRequest),
    /// Liveness check; answered with a `pong` frame.
    Ping,
    /// Cache statistics; answered with a `stats` frame.
    Stats,
    /// Drain and stop the daemon; answered with a `bye` frame.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a message suitable for a `bad-request` error frame when the line
    /// is not valid JSON or not a valid request object.
    pub fn parse(line: &str) -> Result<Request, String> {
        let value = Value::parse(line)?;
        let cmd = value
            .get("cmd")
            .and_then(Value::as_str)
            .ok_or_else(|| "missing \"cmd\"".to_string())?;
        match cmd {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "analyze" => {
                let field = |key: &str| -> Result<String, String> {
                    value
                        .get(key)
                        .and_then(Value::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| format!("analyze needs a string {key:?}"))
                };
                let number = |key: &str| -> Result<Option<u64>, String> {
                    match value.get(key) {
                        None | Some(Value::Null) => Ok(None),
                        Some(v) => v
                            .as_u64()
                            .map(Some)
                            .ok_or_else(|| format!("{key:?} must be a non-negative integer")),
                    }
                };
                Ok(Request::Analyze(AnalyzeRequest {
                    id: field("id").unwrap_or_default(),
                    new_source: field("new")?,
                    old_source: field("old")?,
                    degree: number("degree")?.map(|d| d as u32),
                    tier: number("tier")?.map(|t| t as u32),
                    timeout_ms: number("timeout_ms")?,
                    stream: value.get("stream").and_then(Value::as_bool).unwrap_or(false),
                }))
            }
            other => Err(format!("unknown cmd {other:?}")),
        }
    }
}

/// The payload of a `result` frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultFrame {
    /// The request ID this frame answers.
    pub id: String,
    /// The differential threshold `t`.
    pub threshold: f64,
    /// The threshold rounded down to a sound integer bound.
    pub threshold_int: i64,
    /// Degradation-ladder label: `"certified"` or `"truncated"`.
    pub outcome: String,
    /// How the cache answered: `"hit"` (returned verbatim, pivot-free),
    /// `"near"` (warm-started from an edited ancestor's basis) or `"miss"`.
    pub cache: String,
    /// Simplex iterations of this answer (0 on a cache hit).
    pub lp_iterations: usize,
    /// Locations whose sub-fingerprint differed from the warm-start ancestor
    /// (0 on hits and cold misses): the rows the re-solve had to re-derive.
    pub invalidated: usize,
    /// Template degree of the answer.
    pub degree: u32,
    /// Invariant-tier index of the answer.
    pub tier: u32,
    /// Wall-clock seconds the daemon spent on this request.
    pub seconds: f64,
}

/// One response frame, rendered as a single protocol line.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// An incremental anytime bracket of a still-running streamed solve.
    Progress {
        /// The request ID this frame belongs to.
        id: String,
        /// The sound anytime upper bound so far.
        upper: f64,
        /// An exact lower bound on the optimum, when the dual side produced one.
        lower: Option<f64>,
        /// `upper - lower`, when `lower` is known (never negative).
        gap: Option<f64>,
    },
    /// The final answer of an `analyze` request.
    Result(ResultFrame),
    /// The request failed; the daemon keeps serving.
    Error {
        /// The request ID (empty when the line did not parse far enough).
        id: String,
        /// Machine-readable code (see the module docs for the vocabulary).
        code: String,
        /// The solve phase the failure is attributed to, when known.
        phase: Option<String>,
        /// Human-readable detail.
        message: String,
    },
    /// Answer to `ping`.
    Pong,
    /// Answer to `stats`.
    Stats {
        /// Certified solves currently cached.
        entries: usize,
        /// Solve-cache lookups answered from the cache.
        hits: u64,
        /// Solve-cache lookups that missed.
        misses: u64,
        /// Genuine compilations (program-cache misses).
        compiles: u64,
    },
    /// Answer to `shutdown`: the last frame the daemon writes.
    Bye,
}

fn opt_f64(value: Option<f64>) -> String {
    value.map(|v| format!("{v}")).unwrap_or_else(|| "null".to_string())
}

impl Frame {
    /// Renders the frame as one protocol line (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            Frame::Progress { id, upper, lower, gap } => format!(
                "{{\"type\": \"progress\", \"id\": \"{}\", \"upper\": {}, \
                 \"lower\": {}, \"gap\": {}}}",
                escape(id),
                upper,
                opt_f64(*lower),
                opt_f64(*gap),
            ),
            Frame::Result(r) => format!(
                "{{\"type\": \"result\", \"id\": \"{}\", \"threshold\": {}, \
                 \"threshold_int\": {}, \"outcome\": \"{}\", \"cache\": \"{}\", \
                 \"lp_iterations\": {}, \"invalidated\": {}, \"degree\": {}, \
                 \"tier\": {}, \"seconds\": {:.4}}}",
                escape(&r.id),
                r.threshold,
                r.threshold_int,
                escape(&r.outcome),
                escape(&r.cache),
                r.lp_iterations,
                r.invalidated,
                r.degree,
                r.tier,
                r.seconds,
            ),
            Frame::Error { id, code, phase, message } => format!(
                "{{\"type\": \"error\", \"id\": \"{}\", \"code\": \"{}\", \
                 \"phase\": {}, \"message\": \"{}\"}}",
                escape(id),
                escape(code),
                phase
                    .as_ref()
                    .map(|p| format!("\"{}\"", escape(p)))
                    .unwrap_or_else(|| "null".to_string()),
                escape(message),
            ),
            Frame::Pong => "{\"type\": \"pong\"}".to_string(),
            Frame::Stats { entries, hits, misses, compiles } => format!(
                "{{\"type\": \"stats\", \"entries\": {entries}, \"hits\": {hits}, \
                 \"misses\": {misses}, \"compiles\": {compiles}}}"
            ),
            Frame::Bye => "{\"type\": \"bye\"}".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_requests_round_trip() {
        let mut request = AnalyzeRequest::new("q1", "proc f(n) { tick(1); }", "proc g() {}");
        request.degree = Some(3);
        request.timeout_ms = Some(5000);
        request.stream = true;
        let parsed = Request::parse(&request.to_json()).unwrap();
        assert_eq!(parsed, Request::Analyze(request));

        assert_eq!(Request::parse("{\"cmd\": \"ping\"}").unwrap(), Request::Ping);
        assert_eq!(Request::parse("{\"cmd\": \"stats\"}").unwrap(), Request::Stats);
        assert_eq!(
            Request::parse("{\"cmd\": \"shutdown\"}").unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn malformed_requests_are_rejected_with_a_reason() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("{\"cmd\": \"frobnicate\"}").is_err());
        assert!(Request::parse("{\"cmd\": \"analyze\"}").is_err(), "missing sources");
        assert!(
            Request::parse(
                "{\"cmd\": \"analyze\", \"new\": \"x\", \"old\": \"y\", \"degree\": -1}"
            )
            .is_err(),
            "negative degree"
        );
    }

    #[test]
    fn frames_render_as_single_parseable_lines() {
        let frames = [
            Frame::Progress { id: "q".into(), upper: 12.5, lower: Some(10.0), gap: Some(2.5) },
            Frame::Progress { id: "q".into(), upper: 12.5, lower: None, gap: None },
            Frame::Result(ResultFrame {
                id: "q".into(),
                threshold: 100.0,
                threshold_int: 100,
                outcome: "certified".into(),
                cache: "hit".into(),
                lp_iterations: 0,
                invalidated: 0,
                degree: 2,
                tier: 0,
                seconds: 0.001,
            }),
            Frame::Error {
                id: "q".into(),
                code: "panic".into(),
                phase: Some("encode".into()),
                message: "injected fault: panic at phase encode".into(),
            },
            Frame::Pong,
            Frame::Stats { entries: 1, hits: 2, misses: 3, compiles: 4 },
            Frame::Bye,
        ];
        for frame in frames {
            let line = frame.to_json();
            assert!(!line.contains('\n'), "{line}");
            let value = crate::json::Value::parse(&line).unwrap();
            assert!(value.get("type").is_some(), "{line}");
        }
    }
}
