//! The request engine: caches, per-request isolation, anytime streaming.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use dca_core::{
    AnalysisError, AnalysisOptions, AnalyzedProgram, DiffCostResult, DiffCostSolver,
    InvariantTier, LpBasis, ProgramCache, SolveCache,
};
use dca_lp::fault;
use dca_lp::Deadline;

use crate::protocol::{AnalyzeRequest, Frame, Request, ResultFrame};

/// The anytime-streaming budget slices: a streamed solve first runs under 1/8 of
/// the request budget, then 1/4, then 1/2 (emitting a `progress` frame after each
/// truncated slice, threading the slice's basis into the next as a warm start),
/// and finally under the full budget.
const STREAM_SLICES: [f64; 3] = [0.125, 0.25, 0.5];

/// The daemon's long-lived state: both caches plus the daemon-wide deadline every
/// request scopes itself under (so [`Engine::shutdown`] also cancels in-flight
/// solves cooperatively).
#[derive(Debug, Default)]
pub struct Engine {
    programs: ProgramCache,
    solves: SolveCache,
    deadline: Deadline,
}

/// What one solve attempt produced, with panics already contained.
enum Attempt {
    Solved(Box<DiffCostResult>, Option<LpBasis>),
    Failed(AnalysisError),
    Panicked { phase: String, message: String },
}

impl Engine {
    /// A fresh engine with empty caches.
    pub fn new() -> Engine {
        Engine::default()
    }

    /// The solve cache (exposed for stats, benches and tests).
    pub fn solve_cache(&self) -> &SolveCache {
        &self.solves
    }

    /// The program cache (exposed for stats, benches and tests).
    pub fn program_cache(&self) -> &ProgramCache {
        &self.programs
    }

    /// Requests cooperative shutdown: in-flight solves stop at their next
    /// deadline poll, and the accept loop of [`crate::serve_tcp`] drains.
    pub fn shutdown(&self) {
        self.deadline.cancel();
    }

    /// `true` once [`Engine::shutdown`] was called.
    pub fn shutting_down(&self) -> bool {
        self.deadline.expired()
    }

    /// Handles one request, emitting every response frame through `emit` (in
    /// order; the final frame of an `analyze` is always `result` or `error`).
    pub fn handle(&self, request: &Request, emit: &mut dyn FnMut(Frame)) {
        match request {
            Request::Ping => emit(Frame::Pong),
            Request::Stats => emit(Frame::Stats {
                entries: self.solves.len(),
                hits: self.solves.hits(),
                misses: self.solves.misses(),
                compiles: self.programs.compiles(),
            }),
            Request::Shutdown => {
                self.shutdown();
                emit(Frame::Bye);
            }
            Request::Analyze(analyze) => self.handle_analyze(analyze, emit),
        }
    }

    /// Like [`Engine::handle`], collecting the frames (test/bench convenience).
    pub fn handle_collect(&self, request: &Request) -> Vec<Frame> {
        let mut frames = Vec::new();
        self.handle(request, &mut |frame| frames.push(frame));
        frames
    }

    fn handle_analyze(&self, request: &AnalyzeRequest, emit: &mut dyn FnMut(Frame)) {
        let start = Instant::now();
        let error = |code: &str, phase: Option<String>, message: String| Frame::Error {
            id: request.id.clone(),
            code: code.to_string(),
            phase,
            message,
        };

        let tier = match request.tier {
            None => InvariantTier::Baseline,
            Some(index) => match InvariantTier::from_index(index) {
                Some(tier) => tier,
                None => {
                    return emit(error(
                        "bad-request",
                        None,
                        format!("invalid tier {index} (expected 0, 1 or 2)"),
                    ))
                }
            },
        };
        let options = AnalysisOptions::with_degree(request.degree.unwrap_or(2))
            .with_invariant_tier(tier);

        // Compile both sides through the hash-consing cache. Compilation runs
        // under the same containment as the solve: an injected compile-phase
        // panic must produce an error frame, not kill the daemon.
        let compiled = catch_unwind(AssertUnwindSafe(|| {
            self.programs.get_or_compile(&request.new_source, tier).and_then(|new| {
                self.programs
                    .get_or_compile(&request.old_source, tier)
                    .map(|old| (new, old))
            })
        }));
        let (new, old) = match compiled {
            Ok(Ok(pair)) => pair,
            Ok(Err(message)) => return emit(error("compile-error", None, message)),
            Err(payload) => {
                return emit(error(
                    "panic",
                    Some(fault::current_phase().as_str().to_string()),
                    panic_message(payload.as_ref()),
                ))
            }
        };

        // Repeat query: the exact pair at these options was certified before —
        // answer verbatim from the cache, pivot-free.
        if let Some(hit) = self.solves.lookup(&new, &old, &options) {
            return emit(Frame::Result(ResultFrame {
                id: request.id.clone(),
                threshold: hit.result.threshold,
                threshold_int: hit.result.threshold_int(),
                outcome: "certified".to_string(),
                cache: "hit".to_string(),
                lp_iterations: 0,
                invalidated: 0,
                degree: options.degree,
                tier: tier.index(),
                seconds: start.elapsed().as_secs_f64(),
            }));
        }

        // Near-repeat: warm-start from the closest cached ancestor's basis (the
        // cache rebadges it to this pair — the explicit cross-pair opt-in).
        let near = self.solves.nearest_basis(&new, &old, &options);
        let (mut warm, invalidated, cache_label) = match near {
            Some(m) => (Some(m.basis), m.changed_locations, "near"),
            None => (None, 0, "miss"),
        };

        // Per-request isolation: a scoped child of the daemon deadline (so one
        // request's cancellation never reaches its siblings, while shutdown
        // still reaches everyone), tightened by the request budget.
        let deadline = self.deadline.scoped();
        let budget = request.timeout_ms.map(Duration::from_millis);
        let deadline = deadline.tightened(budget.map(|b| start + b));

        // Anytime streaming: run the solve under growing slices of the budget,
        // emitting a progress frame per truncated slice and threading the basis.
        if request.stream {
            if let Some(budget) = budget {
                for fraction in STREAM_SLICES {
                    let slice = deadline.tightened(Some(start + budget.mul_f64(fraction)));
                    match self.attempt(&new, &old, &options, warm.as_ref(), &slice) {
                        Attempt::Solved(result, basis) => {
                            let outcome = result.outcome();
                            if outcome.is_certified() {
                                self.finish(
                                    request, &options, &new, &old, *result, basis,
                                    cache_label, invalidated, start, emit,
                                );
                                return;
                            }
                            if let dca_core::SolveOutcome::TruncatedAnytime {
                                upper,
                                lower,
                                gap,
                            } = outcome
                            {
                                emit(Frame::Progress {
                                    id: request.id.clone(),
                                    upper,
                                    lower,
                                    gap,
                                });
                            }
                            if basis.is_some() {
                                warm = basis;
                            }
                        }
                        // A slice too short to produce anything: keep going —
                        // the full-budget attempt below gives the final verdict.
                        Attempt::Failed(_) => {}
                        Attempt::Panicked { phase, message } => {
                            return emit(error("panic", Some(phase), message))
                        }
                    }
                }
            }
        }

        match self.attempt(&new, &old, &options, warm.as_ref(), &deadline) {
            Attempt::Solved(result, basis) => self.finish(
                request, &options, &new, &old, *result, basis, cache_label, invalidated,
                start, emit,
            ),
            Attempt::Failed(failure) => {
                let code = match &failure {
                    AnalysisError::Timeout { .. } => "timeout",
                    AnalysisError::Panicked { .. } => "panic",
                    _ => "unsolved",
                };
                emit(error(
                    code,
                    failure.phase().map(|p| p.as_str().to_string()),
                    failure.to_string(),
                ));
            }
            Attempt::Panicked { phase, message } => {
                emit(error("panic", Some(phase), message))
            }
        }
    }

    /// One contained solve attempt under `deadline`.
    fn attempt(
        &self,
        new: &AnalyzedProgram,
        old: &AnalyzedProgram,
        options: &AnalysisOptions,
        warm: Option<&LpBasis>,
        deadline: &Deadline,
    ) -> Attempt {
        let solver = DiffCostSolver::new(*options).with_deadline(deadline.clone());
        // Nothing of a failed solve escapes the closure except the outcome we
        // construct, so `AssertUnwindSafe` is sound (same argument as the batch
        // engine's worker loop).
        let solved =
            catch_unwind(AssertUnwindSafe(|| solver.solve_with_warm_start(new, old, warm)));
        match solved {
            Ok((Ok(result), basis)) => Attempt::Solved(Box::new(result), basis),
            Ok((Err(failure), _)) => Attempt::Failed(failure),
            Err(payload) => Attempt::Panicked {
                phase: fault::current_phase().as_str().to_string(),
                message: panic_message(payload.as_ref()),
            },
        }
    }

    /// Emits the final result frame and populates the cache (certified only:
    /// replaying a truncated bound forever would pin a loose answer).
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        request: &AnalyzeRequest,
        options: &AnalysisOptions,
        new: &AnalyzedProgram,
        old: &AnalyzedProgram,
        result: DiffCostResult,
        basis: Option<LpBasis>,
        cache_label: &str,
        invalidated: usize,
        start: Instant,
        emit: &mut dyn FnMut(Frame),
    ) {
        let outcome = result.outcome();
        if outcome.is_certified() {
            self.solves.insert(new, old, options, &result, basis);
        }
        emit(Frame::Result(ResultFrame {
            id: request.id.clone(),
            threshold: result.threshold,
            threshold_int: result.threshold_int(),
            outcome: outcome.label().to_string(),
            cache: cache_label.to_string(),
            lp_iterations: result.stats.lp_iterations,
            invalidated,
            degree: options.degree,
            tier: options.invariant_tier.index(),
            seconds: start.elapsed().as_secs_f64(),
        }));
    }
}

/// Renders a caught panic payload (same contract as the batch engine).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source(tick: u32) -> String {
        format!(
            "proc count(n) {{ assume(n >= 1 && n <= 50); i = 0; \
             while (i < n) {{ tick({tick}); i = i + 1; }} }}"
        )
    }

    fn analyze(id: &str, new: &str, old: &str) -> Request {
        Request::Analyze(AnalyzeRequest::new(id, new, old))
    }

    fn result_frame(frames: &[Frame]) -> &ResultFrame {
        match frames {
            [Frame::Result(r)] => r,
            other => panic!("expected a single result frame, got {other:?}"),
        }
    }

    #[test]
    fn repeat_queries_hit_the_cache_pivot_free() {
        let engine = Engine::new();
        let cold = engine.handle_collect(&analyze("q1", &source(2), &source(1)));
        let cold = result_frame(&cold);
        assert_eq!(cold.cache, "miss");
        assert_eq!(cold.outcome, "certified");
        assert_eq!(cold.threshold_int, 50);
        assert!(cold.lp_iterations > 0);

        let hit = engine.handle_collect(&analyze("q2", &source(2), &source(1)));
        let hit = result_frame(&hit);
        assert_eq!(hit.cache, "hit");
        assert_eq!(hit.lp_iterations, 0, "a repeat query must be pivot-free");
        assert_eq!(hit.threshold.to_bits(), cold.threshold.to_bits());
        assert_eq!(engine.solve_cache().hits(), 1);
        // The sources were compiled once each, not re-parsed per query.
        assert_eq!(engine.program_cache().compiles(), 2);
    }

    #[test]
    fn an_edited_pair_warm_starts_from_its_ancestor() {
        let engine = Engine::new();
        let _ = engine.handle_collect(&analyze("q1", &source(2), &source(1)));
        let near = engine.handle_collect(&analyze("q2", &source(3), &source(1)));
        let near = result_frame(&near);
        assert_eq!(near.cache, "near");
        assert!(near.invalidated >= 1, "the edit must invalidate a location");
        assert_eq!(near.outcome, "certified");
        assert_eq!(near.threshold_int, 100);
    }

    #[test]
    fn bad_requests_and_compile_errors_are_frames_not_crashes() {
        let engine = Engine::new();
        let frames = engine.handle_collect(&analyze("q1", "proc broken {", &source(1)));
        match frames.as_slice() {
            [Frame::Error { code, .. }] => assert_eq!(code, "compile-error"),
            other => panic!("{other:?}"),
        }
        let mut request = AnalyzeRequest::new("q2", source(2), source(1));
        request.tier = Some(99);
        let frames = engine.handle_collect(&Request::Analyze(request));
        match frames.as_slice() {
            [Frame::Error { code, .. }] => assert_eq!(code, "bad-request"),
            other => panic!("{other:?}"),
        }
        // The daemon state is untouched: a good query still works.
        let ok = engine.handle_collect(&analyze("q3", &source(2), &source(1)));
        assert_eq!(result_frame(&ok).outcome, "certified");
    }

    #[test]
    fn ping_stats_and_shutdown_answer_their_frames() {
        let engine = Engine::new();
        assert_eq!(engine.handle_collect(&Request::Ping), vec![Frame::Pong]);
        let _ = engine.handle_collect(&analyze("q1", &source(2), &source(1)));
        match engine.handle_collect(&Request::Stats).as_slice() {
            [Frame::Stats { entries, compiles, .. }] => {
                assert_eq!(*entries, 1);
                assert_eq!(*compiles, 2);
            }
            other => panic!("{other:?}"),
        }
        assert!(!engine.shutting_down());
        assert_eq!(engine.handle_collect(&Request::Shutdown), vec![Frame::Bye]);
        assert!(engine.shutting_down());
    }
}
