//! Minimal hand-rolled JSON for the line-delimited serve protocol.
//!
//! The repository takes no external crates, so the protocol layer parses and
//! emits its frames with this module: a recursive-descent parser into [`Value`]
//! plus the [`escape`] helper for emission. It accepts exactly the JSON the
//! protocol produces (objects, strings with standard escapes, finite numbers,
//! booleans, null, arrays) and rejects everything else with a message.

/// A parsed JSON value. Objects preserve key order as a pair list — the
/// protocol never needs map semantics beyond [`Value::get`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (the protocol never needs more than `f64` range).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object as an ordered `(key, value)` list.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses one complete JSON document (trailing garbage is an error).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message with a byte offset on malformed input.
    pub fn parse(input: &str) -> Result<Value, String> {
        let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
        parser.skip_whitespace();
        let value = parser.value(0)?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing characters at byte {}", parser.pos));
        }
        Ok(value)
    }

    /// The member `key` of an object (`None` for other variants or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => {
                members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer (rejects fractions).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64).then_some(n as u64)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escapes a string for emission inside JSON quotes: backslash, quote, and
/// control characters (the short escapes where JSON has them, `\u00XX` otherwise).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Nesting depth cap: the protocol is at most two levels deep, and a recursion
/// bound turns adversarial input into an error instead of a stack overflow.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", byte as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        // The slice is ASCII by construction of the loop above.
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|text| text.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Value::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out: Vec<u8> = Vec::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(out)
                        .map_err(|_| "invalid UTF-8 in string".to_string());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'b' => out.push(0x08),
                        b'f' => out.push(0x0c),
                        b'n' => out.push(b'\n'),
                        b'r' => out.push(b'\r'),
                        b't' => out.push(b'\t'),
                        b'u' => {
                            let c = self.unicode_escape()?;
                            let mut buffer = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buffer).as_bytes());
                        }
                        other => {
                            return Err(format!("invalid escape \\{}", other as char))
                        }
                    }
                }
                Some(&byte) => {
                    if byte < 0x20 {
                        return Err("unescaped control character in string".to_string());
                    }
                    out.push(byte);
                    self.pos += 1;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        let text = std::str::from_utf8(chunk).map_err(|_| "invalid \\u escape")?;
        let code = u32::from_str_radix(text, 16).map_err(|_| "invalid \\u escape")?;
        self.pos += 4;
        Ok(code)
    }

    /// Decodes `\uXXXX` (already past the `\u`), pairing surrogates.
    fn unicode_escape(&mut self) -> Result<char, String> {
        let high = self.hex4()?;
        let code = if (0xd800..0xdc00).contains(&high) {
            // A high surrogate must be followed by `\uXXXX` with a low surrogate.
            if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                return Err("unpaired surrogate in \\u escape".to_string());
            }
            self.pos += 2;
            let low = self.hex4()?;
            if !(0xdc00..0xe000).contains(&low) {
                return Err("unpaired surrogate in \\u escape".to_string());
            }
            0x10000 + ((high - 0xd800) << 10) + (low - 0xdc00)
        } else {
            high
        };
        char::from_u32(code).ok_or_else(|| "invalid \\u code point".to_string())
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value(depth + 1)?);
            self.skip_whitespace();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_whitespace();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_whitespace();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let value = Value::parse(
            r#"{"cmd": "analyze", "id": "q1", "degree": 2, "stream": true,
                "new": "proc f(n) { tick(1); }", "empty": [], "null": null,
                "nested": {"a": [1, -2.5, 3e2]}}"#,
        )
        .unwrap();
        assert_eq!(value.get("cmd").and_then(Value::as_str), Some("analyze"));
        assert_eq!(value.get("degree").and_then(Value::as_u64), Some(2));
        assert_eq!(value.get("stream").and_then(Value::as_bool), Some(true));
        assert_eq!(value.get("null"), Some(&Value::Null));
        assert_eq!(value.get("missing"), None);
        let nested = value.get("nested").and_then(|n| n.get("a")).unwrap();
        assert_eq!(
            nested,
            &Value::Arr(vec![Value::Num(1.0), Value::Num(-2.5), Value::Num(300.0)])
        );
    }

    #[test]
    fn escapes_round_trip() {
        let original = "a \"quoted\" line\nwith\ttabs, a backslash \\ and unicode: λ → ∞";
        let wire = format!("\"{}\"", escape(original));
        assert_eq!(Value::parse(&wire).unwrap().as_str(), Some(original));
        // Control characters take the \u00XX form and parse back.
        let control = "\u{1}\u{2}";
        let wire = format!("\"{}\"", escape(control));
        assert!(wire.contains("\\u0001"));
        assert_eq!(Value::parse(&wire).unwrap().as_str(), Some(control));
        // Surrogate pairs decode.
        assert_eq!(
            Value::parse("\"\\ud83d\\ude00\"").unwrap().as_str(),
            Some("😀")
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "{\"a\" 1}", "tru", "1.2.3", "\"unterminated",
            "\"bad \\q escape\"", "\"lone \\ud800 surrogate\"", "{} trailing",
            "nan", "1e999",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} must not parse");
        }
        // Deep nesting errors out instead of overflowing the stack.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Value::parse(&deep).is_err());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Value::Num(3.0).as_u64(), Some(3));
        assert_eq!(Value::Num(3.5).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
        assert_eq!(Value::Str("3".into()).as_u64(), None);
    }
}
