//! Analysis-as-a-service: the persistent `dca serve` daemon.
//!
//! The daemon keeps a [`ProgramCache`](dca_core::ProgramCache) (hash-consed
//! compilation + invariant analysis) and a [`SolveCache`](dca_core::SolveCache)
//! (certified results keyed by structural pair fingerprint) alive across requests,
//! so repeated program-pair queries are answered pivot-free from the cache and
//! *edited* pairs re-solve from the nearest cached basis instead of from scratch.
//!
//! The protocol is line-delimited JSON over TCP or stdin/stdout — one request per
//! line in, one or more frames per line out (see [`protocol`]); there are no
//! external crates, the [`json`] module hand-rolls the parsing. Long solves can
//! stream incremental anytime frames (`{upper, lower, gap}` from the solver's
//! degradation ladder) before the final result.
//!
//! Fault isolation mirrors the batch engine: every request runs under a
//! [scoped](dca_lp::Deadline::scoped) child of the daemon deadline and inside
//! `catch_unwind`, so one poisoned request reports an error frame while the
//! daemon — and every concurrent sibling request — keeps running.

#![deny(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod engine;
pub mod json;
pub mod protocol;
pub mod server;

pub use engine::Engine;
pub use protocol::{AnalyzeRequest, Frame, Request, ResultFrame};
pub use server::{serve_connection, serve_stdio, serve_tcp};
