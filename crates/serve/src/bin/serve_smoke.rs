//! End-to-end daemon smoke test, CI-blocking.
//!
//! Re-executes itself as a `--daemon` child serving the stdio protocol with
//! `DCA_FAULT=encode:panic:2` armed in the child environment, then drives a
//! scripted six-request session over its pipes:
//!
//! 1. cold solve (cache miss, certified),
//! 2. exact repeat (cache hit, pivot-free),
//! 3. a different pair whose cold solve trips the injected encode panic —
//!    the daemon must answer an `error` frame and keep serving,
//! 4. repeat of the first pair (the poisoned request must not have damaged
//!    the shared caches),
//! 5. retry of the panicked pair (fault spent → certified, warm-started from
//!    the near-matching cached ancestor),
//! 6. shutdown (daemon answers `bye` and exits 0).

use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};
use std::sync::Arc;

use dca_serve::json::Value;
use dca_serve::protocol::AnalyzeRequest;
use dca_serve::Engine;

fn source(tick: u32) -> String {
    format!(
        "proc count(n) {{ assume(n >= 1 && n <= 40); i = 0; \
         while (i < n) {{ tick({tick}); i = i + 1; }} }}"
    )
}

fn main() {
    if std::env::args().any(|arg| arg == "--daemon") {
        let engine = Arc::new(Engine::new());
        if let Err(error) = dca_serve::serve_stdio(&engine) {
            eprintln!("serve_smoke daemon: {error}");
            std::process::exit(1);
        }
        return;
    }

    let exe = std::env::current_exe().expect("current_exe");
    let mut child = Command::new(exe)
        .arg("--daemon")
        .env("DCA_FAULT", "encode:panic:2")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn daemon child");
    let mut stdin = child.stdin.take().expect("child stdin");
    let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));

    let mut ask = |request: &str| -> Value {
        writeln!(stdin, "{request}").expect("write request");
        stdin.flush().expect("flush request");
        let mut line = String::new();
        stdout.read_line(&mut line).expect("read frame");
        assert!(!line.is_empty(), "daemon closed the stream unexpectedly");
        Value::parse(&line).unwrap_or_else(|e| panic!("unparseable frame {line:?}: {e}"))
    };
    let field = |frame: &Value, key: &str| -> String {
        frame
            .get(key)
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("missing string {key:?} in frame"))
            .to_string()
    };
    let num = |frame: &Value, key: &str| -> f64 {
        frame
            .get(key)
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("missing number {key:?} in frame"))
    };

    let old = source(1);
    let pair_a = AnalyzeRequest::new("q1", source(2), &old).to_json();
    let pair_b = AnalyzeRequest::new("q3", source(3), &old).to_json();

    // 1. Cold solve of pair A: this is the daemon's first encode (fault is
    //    armed for the *second*), so it certifies normally.
    let cold = ask(&pair_a);
    assert_eq!(field(&cold, "type"), "result");
    assert_eq!(field(&cold, "cache"), "miss");
    assert_eq!(field(&cold, "outcome"), "certified");
    assert_eq!(num(&cold, "threshold_int"), 40.0);
    assert!(num(&cold, "lp_iterations") > 0.0);

    // 2. Exact repeat: answered from the cache, pivot-free, bit-identical.
    let hit = ask(&pair_a);
    assert_eq!(field(&hit, "cache"), "hit");
    assert_eq!(num(&hit, "lp_iterations"), 0.0);
    assert_eq!(num(&hit, "threshold"), num(&cold, "threshold"));

    // 3. Pair B's cold solve enters encode a second time → the injected panic
    //    fires. The daemon must contain it to an error frame on this request.
    let poisoned = ask(&pair_b);
    assert_eq!(field(&poisoned, "type"), "error", "expected containment: {poisoned:?}");
    assert_eq!(field(&poisoned, "code"), "panic");
    assert_eq!(field(&poisoned, "phase"), "encode");
    assert!(field(&poisoned, "message").contains("injected fault"));

    // 4. The crash touched nothing shared: pair A still answers from cache.
    let still_cached = ask(&pair_a);
    assert_eq!(field(&still_cached, "cache"), "hit");
    assert_eq!(num(&still_cached, "lp_iterations"), 0.0);

    // 5. Retrying pair B: the one-shot fault is spent, and the solve
    //    warm-starts from pair A's basis (same old program, one edited loop).
    let retried = ask(&pair_b);
    assert_eq!(field(&retried, "type"), "result", "retry after fault: {retried:?}");
    assert_eq!(field(&retried, "outcome"), "certified");
    assert_eq!(field(&retried, "cache"), "near");
    assert_eq!(num(&retried, "threshold_int"), 80.0);
    assert!(num(&retried, "invalidated") >= 1.0);

    // 6. Orderly shutdown: `bye`, then a clean exit.
    let bye = ask("{\"cmd\": \"shutdown\"}");
    assert_eq!(field(&bye, "type"), "bye");
    drop(stdin);
    let status = child.wait().expect("wait for daemon");
    assert!(status.success(), "daemon exited with {status}");

    println!("serve smoke OK: cold miss -> pivot-free hit -> contained panic -> warm retry");
}
