//! Transport loops: line-delimited JSON over stdin/stdout or TCP.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use crate::engine::Engine;
use crate::protocol::{Frame, Request};

/// How often the TCP accept loop re-checks for shutdown between connections.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Serves one connection: reads requests line by line, writes every response
/// frame as its own line, flushing after each request so streamed `progress`
/// frames reach the client before the solve finishes. Returns when the peer
/// closes the stream, the engine shuts down, or a write fails.
pub fn serve_connection<R: BufRead, W: Write>(
    engine: &Engine,
    input: R,
    mut output: W,
) -> io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if engine.shutting_down() {
            break;
        }
        if line.trim().is_empty() {
            continue;
        }
        let request = match Request::parse(&line) {
            Ok(request) => request,
            Err(reason) => {
                let frame = Frame::Error {
                    id: String::new(),
                    code: "bad-request".to_string(),
                    phase: None,
                    message: reason,
                };
                writeln!(output, "{}", frame.to_json())?;
                output.flush()?;
                continue;
            }
        };
        // Frames are written as they are emitted (true streaming); a broken
        // pipe mid-request is captured and surfaced after the request ends.
        let mut write_error: Option<io::Error> = None;
        engine.handle(&request, &mut |frame| {
            if write_error.is_some() {
                return;
            }
            let attempt = writeln!(output, "{}", frame.to_json()).and_then(|()| output.flush());
            if let Err(error) = attempt {
                write_error = Some(error);
            }
        });
        if let Some(error) = write_error {
            return Err(error);
        }
        if engine.shutting_down() {
            break;
        }
    }
    Ok(())
}

/// Serves a single session over stdin/stdout (the `--stdio` daemon mode; also
/// what the smoke test drives through a child process).
pub fn serve_stdio(engine: &Engine) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve_connection(engine, stdin.lock(), stdout.lock())
}

/// Serves TCP connections until [`Engine::shutdown`] is observed: a
/// non-blocking accept loop that polls the shutdown flag between accepts and
/// hands each connection to its own thread. Returns the bound local address
/// through `on_bound` before accepting (so callers can print it / connect to
/// an OS-assigned port), and joins all connection threads before returning.
pub fn serve_tcp<A: ToSocketAddrs>(
    engine: Arc<Engine>,
    addr: A,
    on_bound: impl FnOnce(std::net::SocketAddr),
) -> io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    on_bound(listener.local_addr()?);

    let mut workers = Vec::new();
    while !engine.shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Connections block on reads again; only the accept loop polls.
                stream.set_nonblocking(false)?;
                let engine = Arc::clone(&engine);
                workers.push(std::thread::spawn(move || {
                    let reader = BufReader::new(match stream.try_clone() {
                        Ok(clone) => clone,
                        Err(_) => return,
                    });
                    // Peer disconnects are routine, not daemon errors.
                    let _ = serve_connection(&engine, reader, stream);
                }));
            }
            Err(error) if error.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(error) => return Err(error),
        }
        workers.retain(|worker| !worker.is_finished());
    }
    for worker in workers {
        let _ = worker.join();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::AnalyzeRequest;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    fn source(tick: u32) -> String {
        format!(
            "proc count(n) {{ assume(n >= 1 && n <= 50); i = 0; \
             while (i < n) {{ tick({tick}); i = i + 1; }} }}"
        )
    }

    #[test]
    fn a_scripted_connection_round_trips() {
        let engine = Engine::new();
        let mut script = String::new();
        script.push_str("{\"cmd\": \"ping\"}\n");
        script.push_str(&AnalyzeRequest::new("q1", source(2), source(1)).to_json());
        script.push('\n');
        script.push_str(&AnalyzeRequest::new("q2", source(2), source(1)).to_json());
        script.push('\n');
        script.push_str("not json\n");
        script.push_str("{\"cmd\": \"shutdown\"}\n");
        script.push_str("{\"cmd\": \"ping\"}\n"); // after shutdown: ignored

        let mut output = Vec::new();
        serve_connection(&engine, script.as_bytes(), &mut output).unwrap();
        let lines: Vec<String> =
            String::from_utf8(output).unwrap().lines().map(str::to_string).collect();
        assert_eq!(lines.len(), 5, "pong, 2 results, bad-request, bye: {lines:?}");
        assert!(lines[0].contains("\"pong\""));
        assert!(lines[1].contains("\"cache\": \"miss\""));
        assert!(lines[2].contains("\"cache\": \"hit\""));
        assert!(lines[2].contains("\"lp_iterations\": 0"));
        assert!(lines[3].contains("\"bad-request\""));
        assert!(lines[4].contains("\"bye\""));
        assert!(engine.shutting_down());
    }

    #[test]
    fn tcp_sessions_share_one_cache_and_shutdown_stops_the_listener() {
        let engine = Arc::new(Engine::new());
        let (addr_tx, addr_rx) = std::sync::mpsc::channel();
        let server = {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                serve_tcp(engine, "127.0.0.1:0", |addr| {
                    addr_tx.send(addr).unwrap();
                })
            })
        };
        let addr = addr_rx.recv().unwrap();

        let query = |id: &str| {
            let mut stream = TcpStream::connect(addr).unwrap();
            let request = AnalyzeRequest::new(id, source(2), source(1));
            writeln!(stream, "{}", request.to_json()).unwrap();
            let mut reply = String::new();
            BufReader::new(&stream).read_line(&mut reply).unwrap();
            reply
        };
        let cold = query("q1");
        assert!(cold.contains("\"cache\": \"miss\""), "{cold}");
        let warm = query("q2");
        assert!(warm.contains("\"cache\": \"hit\""), "{warm}");

        let mut stream = TcpStream::connect(addr).unwrap();
        writeln!(stream, "{{\"cmd\": \"shutdown\"}}").unwrap();
        let mut reply = String::new();
        BufReader::new(&stream).read_line(&mut reply).unwrap();
        assert!(reply.contains("\"bye\""), "{reply}");
        server.join().unwrap().unwrap();
        assert!(TcpStream::connect(addr).map(|_| ()).is_err() || engine.shutting_down());
    }
}
