//! Concurrent-cache soak test for the serve engine.
//!
//! One engine, many threads, three phases — a single `#[test]` because the
//! fault injector's armed state is process-global:
//!
//! 1. **Seed** (serial): cold-solve pair A through the engine; cold-solve the
//!    edited pair B through a *fresh reference* engine to learn its true
//!    threshold and cold latency.
//! 2. **Soak** (concurrent): worker threads hammer the shared engine with
//!    exact repeats of A (must all be pivot-free cache hits with bit-identical
//!    thresholds) interleaved with near-repeats B (must warm-start from A's
//!    basis and certify the reference threshold). Repeat queries must beat the
//!    cold solve by ≥ 10x.
//! 3. **Fault** (concurrent): arm a one-shot encode panic, query a *fresh*
//!    pair E from one thread (contained error frame) while sibling threads
//!    repeat A — the poisoned request must leave every sibling certified.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dca_lp::fault::{self, FaultSpec};
use dca_serve::protocol::{AnalyzeRequest, Frame, Request, ResultFrame};
use dca_serve::Engine;

/// A one-loop program; `tick` selects the cost, `bound` the loop bound — so
/// distinct `(tick, bound)` values give structurally distinct program pairs.
fn source(tick: u32, bound: u32) -> String {
    format!(
        "proc count(n) {{ assume(n >= 1 && n <= {bound}); i = 0; \
         while (i < n) {{ tick({tick}); i = i + 1; }} }}"
    )
}

fn analyze(id: &str, new: String, old: String) -> Request {
    Request::Analyze(AnalyzeRequest::new(id, new, old))
}

fn result_frame(frames: Vec<Frame>) -> ResultFrame {
    match frames.as_slice() {
        [Frame::Result(r)] => r.clone(),
        other => panic!("expected a single result frame, got {other:?}"),
    }
}

#[test]
fn concurrent_soak_hits_near_repeats_and_fault_isolation() {
    const WORKERS: usize = 4;
    const ROUNDS: usize = 8;

    let engine = Arc::new(Engine::new());
    let old = source(1, 30);
    let pair_a = |id: &str| analyze(id, source(2, 30), old.clone());
    let pair_b = |id: &str| analyze(id, source(3, 30), old.clone());

    // Phase 1 — seed. Pair A cold through the shared engine; pair B cold
    // through a throwaway engine so the soak phase has an independent oracle.
    let cold_started = Instant::now();
    let cold = result_frame(engine.handle_collect(&pair_a("seed-a")));
    let cold_elapsed = cold_started.elapsed();
    assert_eq!(cold.cache, "miss");
    assert_eq!(cold.outcome, "certified");
    let reference_b = result_frame(Engine::new().handle_collect(&pair_b("ref-b")));
    assert_eq!(reference_b.outcome, "certified");

    // Phase 2 — soak. Even workers repeat A, odd workers near-repeat B.
    let fastest_hit = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for worker in 0..WORKERS {
            let engine = Arc::clone(&engine);
            let pair_a = &pair_a;
            let pair_b = &pair_b;
            let reference_b = &reference_b;
            let cold = &cold;
            handles.push(scope.spawn(move || {
                let mut fastest = Duration::MAX;
                for round in 0..ROUNDS {
                    let id = format!("soak-{worker}-{round}");
                    if worker % 2 == 0 {
                        let started = Instant::now();
                        let hit = result_frame(engine.handle_collect(&pair_a(&id)));
                        fastest = fastest.min(started.elapsed());
                        assert_eq!(hit.cache, "hit", "{id}: repeats must hit");
                        assert_eq!(hit.lp_iterations, 0, "{id}: hits must be pivot-free");
                        assert_eq!(
                            hit.threshold.to_bits(),
                            cold.threshold.to_bits(),
                            "{id}: hits must be bit-identical to the cold solve"
                        );
                    } else {
                        let near = result_frame(engine.handle_collect(&pair_b(&id)));
                        assert_eq!(near.outcome, "certified", "{id}");
                        // The first B query to finish inserts B into the cache,
                        // so racing siblings may see either a warm near-match
                        // re-solve or a plain hit — both must agree with the
                        // reference oracle.
                        match near.cache.as_str() {
                            "near" => assert!(
                                near.invalidated >= 1,
                                "{id}: the edit must invalidate a location"
                            ),
                            "hit" => assert_eq!(near.lp_iterations, 0, "{id}"),
                            other => panic!("{id}: unexpected cache state {other:?}"),
                        }
                        assert_eq!(
                            near.threshold.to_bits(),
                            reference_b.threshold.to_bits(),
                            "{id}: near-repeats must certify the reference threshold"
                        );
                    }
                }
                fastest
            }));
        }
        handles
            .into_iter()
            .map(|handle| handle.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .min()
            .unwrap_or(Duration::MAX)
    });
    assert!(
        cold_elapsed >= 10 * fastest_hit,
        "repeat queries must be >= 10x faster than the cold solve \
         (cold {cold_elapsed:?}, fastest hit {fastest_hit:?})"
    );

    // Phase 3 — fault isolation. One-shot encode panic: the fresh pair E's
    // cold solve is the only query that enters encode (repeats of A are
    // answered from the cache), so exactly that request must fail — contained
    // — while concurrent siblings stay certified.
    fault::install(Some(FaultSpec::parse("encode:panic:1").unwrap()));
    std::thread::scope(|scope| {
        let poisoned = {
            let engine = Arc::clone(&engine);
            let old = old.clone();
            scope.spawn(move || {
                engine.handle_collect(&analyze("fault-e", source(5, 30), old))
            })
        };
        for worker in 0..WORKERS {
            let engine = Arc::clone(&engine);
            let pair_a = &pair_a;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    let id = format!("fault-{worker}-{round}");
                    let hit = result_frame(engine.handle_collect(&pair_a(&id)));
                    assert_eq!(hit.outcome, "certified", "{id}: siblings must stay certified");
                    assert_eq!(hit.lp_iterations, 0, "{id}");
                }
            });
        }
        match poisoned.join().unwrap().as_slice() {
            [Frame::Error { code, phase, message, .. }] => {
                assert_eq!(code, "panic");
                assert_eq!(phase.as_deref(), Some("encode"));
                assert!(message.contains("injected fault"), "{message}");
            }
            other => panic!("expected a contained panic error frame, got {other:?}"),
        }
    });
    assert!(fault::triggered(), "the armed fault must actually have fired");
    fault::install(None);

    // The poisoned request must not have polluted the cache: pair E certifies
    // cleanly now, and the A/B entries are still there.
    let recovered = result_frame(engine.handle_collect(&analyze(
        "recover-e",
        source(5, 30),
        old.clone(),
    )));
    assert_eq!(recovered.outcome, "certified");
    assert!(engine.solve_cache().len() >= 3);
}
