//! Seed-stability golden test for [`dca_ir::SmallRng`].
//!
//! The Table-2 manifest is committed as *code*: a seed plus the generator reproduce
//! the whole corpus. That only holds if the RNG stream itself is frozen — any change
//! to the seeding or stepping function silently regenerates a *different* corpus under
//! the same names, invalidating the committed `BENCH_table2.json` baselines. These
//! golden values pin the first draws of fixed seeds (including the Table-2 manifest
//! seed `0x7AB1E2`) so such a change fails loudly here instead.

use dca_ir::{generate_pair, PairKind, ShapeParams, SmallRng};

fn stream(seed: u64, len: usize) -> Vec<u64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len).map(|_| rng.next_u64()).collect()
}

#[test]
fn raw_streams_are_frozen() {
    assert_eq!(
        stream(0, 4),
        [
            8916199331640804048,
            16032783972208265725,
            12954103179475586193,
            16173463928478733820
        ]
    );
    assert_eq!(
        stream(1, 4),
        [
            5424204624148110235,
            15555979849632202484,
            6851360858507811590,
            4263911567865507035
        ]
    );
    assert_eq!(
        stream(42, 4),
        [
            3580622183945639842,
            10378725325292465923,
            8967075514996744559,
            5001014893397904463
        ]
    );
    assert_eq!(
        stream(0xDEADBEEF, 4),
        [
            18361595787741247823,
            8382779196145280957,
            7897452601676751431,
            8091508390058281924
        ]
    );
    // The Table-2 manifest seed.
    assert_eq!(
        stream(0x7AB1E2, 4),
        [
            10440558046550920990,
            10521493702035715241,
            2904263593258965184,
            14900453598368127629
        ]
    );
}

#[test]
fn derived_draws_are_frozen() {
    let mut rng = SmallRng::seed_from_u64(7);
    let ranged: Vec<i64> = (0..8).map(|_| rng.gen_range_inclusive(-5, 20)).collect();
    assert_eq!(ranged, [17, -3, 15, 15, 13, 0, 17, 20]);
    let mut rng = SmallRng::seed_from_u64(9);
    let indices: Vec<usize> = (0..8).map(|_| rng.gen_index(10)).collect();
    assert_eq!(indices, [8, 3, 3, 8, 3, 9, 2, 6]);
}

/// End-to-end seed stability: a generated pair's oracle data is itself a golden value.
/// (The full sources are exercised structurally by the generator's own unit tests;
/// pinning the drawn bounds and tight value here detects any re-ordering of draws.)
#[test]
fn generated_pair_oracle_is_frozen() {
    let shape = ShapeParams {
        depth: 2,
        phases: 1,
        dependent: true,
        disjunctive: true,
        padding: true,
        phase_flip: false,
        kind: PairKind::Delta,
    };
    let a = generate_pair(0x7AB1E2, &shape);
    assert_eq!(a.name, "t2_Dd2p1bgs_45538");
    assert_eq!((a.tight, a.bound_n, a.bound_m, a.degree), (34, 4, 7, 2));
    assert!(a.source_new.contains("if (*)"));
    assert!(a.source_old.contains("assume(n >= 1 && n <= 4 && m >= 1 && m <= 7);"));

    // The same seed with the phase-flip class on: every pre-flip draw (bounds,
    // amplitudes, padding) is identical because `flip_at`/`flip_delta` are drawn
    // last — this golden pins that ordering alongside the flip draws themselves.
    let flipped = generate_pair(0x7AB1E2, &ShapeParams { phase_flip: true, ..shape });
    assert_eq!(flipped.name, "t2_Dd2p1bgsf_45538");
    assert_eq!((flipped.bound_n, flipped.bound_m), (a.bound_n, a.bound_m));
    assert!(flipped.source_new.contains("if (i < "));
    assert!(flipped.tight > a.tight, "flip adds a positive contribution");
}
