//! Stable structural fingerprints of transition systems.
//!
//! The serve-mode solve cache and the warm-basis provenance guard both need a key
//! that identifies a program by *what it is*, not what it is called: two submissions
//! of the same loop under different display names must collide, and a one-line edit
//! must change exactly the fingerprints of the locations it touches. [`fingerprint_system`]
//! therefore hashes a [canonical rendering](canonical_form) that
//!
//! * excludes the system's human-readable name and its location display names
//!   (locations appear as `l{index}`),
//! * includes variable *names* in interning order — the differential analysis pairs
//!   old and new program variables by name, so renaming a variable genuinely changes
//!   the analysis and must change the fingerprint,
//! * renders guards, updates and Θ0 through the deterministic
//!   [`LinExpr`](dca_poly::LinExpr)/[`Polynomial`](dca_poly::Polynomial) printers
//!   (update maps are `BTreeMap`s, so iteration order is already canonical).
//!
//! The hash is 64-bit FNV-1a — collisions are unlikely but possible, so cache
//! consumers store the canonical string alongside each entry and compare it on hit;
//! the fingerprint is the shard key, the string is the proof of identity.

use std::fmt::Write as _;

use crate::system::{TransitionSystem, Update};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(FNV_OFFSET, bytes)
}

/// Continues a 64-bit FNV-1a hash with more bytes (for folding several renderings
/// into one fingerprint without concatenating strings).
pub fn fnv1a_extend(mut hash: u64, bytes: &[u8]) -> u64 {
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The structural fingerprint of a [`TransitionSystem`]: one hash for the whole
/// system plus one per location, so an edited program can be diffed against its
/// ancestor location-by-location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemFingerprint {
    /// Fingerprint of the whole system (hash of [`canonical_form`]).
    pub program: u64,
    /// Per-location sub-fingerprints, indexed by [`LocId`](crate::LocId) index: each
    /// covers the location's initial/terminal role, Θ0 (initial location only), and
    /// its outgoing transitions. A location whose sub-fingerprint is unchanged
    /// between two systems contributes identical constraints to the encoding.
    pub locations: Vec<u64>,
}

/// Computes the whole-system and per-location fingerprints in one pass.
pub fn fingerprint_system(ts: &TransitionSystem) -> SystemFingerprint {
    SystemFingerprint {
        program: fnv1a(canonical_form(ts).as_bytes()),
        locations: ts
            .locations()
            .into_iter()
            .map(|loc| fnv1a(location_form(ts, loc).as_bytes()))
            .collect(),
    }
}

/// The canonical, name-independent rendering the fingerprint hashes. Stable across
/// process runs (no addresses, no hash-map iteration order) and total: every field
/// of the system except its display names is included.
pub fn canonical_form(ts: &TransitionSystem) -> String {
    let mut out = String::new();
    let pool = ts.pool();
    let var_names: Vec<&str> = ts.vars().iter().map(|&v| pool.name(v)).collect();
    let _ = writeln!(out, "vars:{};cost:{}", var_names.join(","), pool.name(ts.cost_var()));
    let _ = writeln!(out, "locs:{};init:{};term:{}", ts.num_locations(), ts.initial(), ts.terminal());
    for loc in ts.locations() {
        out.push_str(&location_form(ts, loc));
    }
    out
}

/// The canonical rendering of one location: its role flags, Θ0 when initial, and
/// its outgoing transitions in declaration order.
fn location_form(ts: &TransitionSystem, loc: crate::LocId) -> String {
    let mut out = String::new();
    let pool = ts.pool();
    let _ = write!(out, "@{loc}");
    if loc == ts.initial() {
        let theta0: Vec<String> = ts.theta0().iter().map(|e| e.to_string(pool)).collect();
        let _ = write!(out, " init[{}]", theta0.join(" /\\ "));
    }
    if loc == ts.terminal() {
        out.push_str(" term");
    }
    out.push('\n');
    for t in ts.outgoing(loc) {
        let guard: Vec<String> = t.guard.iter().map(|e| e.to_string(pool)).collect();
        let updates: Vec<String> = t
            .updates
            .iter()
            .map(|(v, u)| match u {
                Update::Assign(p) => format!("{}'={}", pool.name(*v), p.to_string(pool)),
                Update::Nondet => format!("{}'=*", pool.name(*v)),
            })
            .collect();
        let _ = writeln!(out, "  ->{} [{}] {{{}}}", t.target, guard.join(" /\\ "), updates.join(","));
    }
    out
}

#[cfg(test)]
mod tests {
    use dca_poly::{LinExpr, Polynomial};

    use super::*;
    use crate::system::TsBuilder;

    fn simple_loop(name: &str, tick: i64) -> TransitionSystem {
        let mut b = TsBuilder::new();
        b.name(name);
        let i = b.var("i");
        let n = b.var("n");
        let head = b.location("head");
        let out = b.terminal();
        b.set_initial(head);
        b.add_theta0(LinExpr::var(n) - LinExpr::from_int(1));
        b.add_theta0_eq(LinExpr::var(i));
        b.transition(head, head)
            .guard(LinExpr::var(n) - LinExpr::var(i) - LinExpr::from_int(1))
            .update(i, Update::assign(Polynomial::var(i) + Polynomial::from_int(1)))
            .tick(tick)
            .finish();
        b.transition(head, out)
            .guard(LinExpr::var(i) - LinExpr::var(n))
            .finish();
        b.build().unwrap()
    }

    #[test]
    fn fingerprint_ignores_the_display_name() {
        let a = fingerprint_system(&simple_loop("alpha", 1));
        let b = fingerprint_system(&simple_loop("beta", 1));
        assert_eq!(a, b, "structurally identical systems must collide");
        assert_eq!(
            canonical_form(&simple_loop("alpha", 1)),
            canonical_form(&simple_loop("beta", 1))
        );
    }

    #[test]
    fn an_edit_changes_only_the_touched_location() {
        let a = fingerprint_system(&simple_loop("p", 1));
        let b = fingerprint_system(&simple_loop("p", 2));
        assert_ne!(a.program, b.program, "a tick edit must change the program fingerprint");
        assert_eq!(a.locations.len(), b.locations.len());
        // The edit touches the loop head's outgoing transitions only; the terminal
        // location is untouched and must keep its sub-fingerprint.
        assert_ne!(a.locations[0], b.locations[0]);
        assert_eq!(a.locations[1], b.locations[1]);
    }

    #[test]
    fn renaming_a_variable_changes_the_fingerprint() {
        let renamed = {
            let mut b = TsBuilder::new();
            b.name("p");
            let i = b.var("j");
            let n = b.var("n");
            let head = b.location("head");
            let out = b.terminal();
            b.set_initial(head);
            b.add_theta0(LinExpr::var(n) - LinExpr::from_int(1));
            b.add_theta0_eq(LinExpr::var(i));
            b.transition(head, head)
                .guard(LinExpr::var(n) - LinExpr::var(i) - LinExpr::from_int(1))
                .update(i, Update::assign(Polynomial::var(i) + Polynomial::from_int(1)))
                .tick(1)
                .finish();
            b.transition(head, out)
                .guard(LinExpr::var(i) - LinExpr::var(n))
                .finish();
            b.build().unwrap()
        };
        let a = fingerprint_system(&simple_loop("p", 1));
        let b = fingerprint_system(&renamed);
        assert_ne!(a.program, b.program, "variable pairing is by name: renames must differ");
    }

    #[test]
    fn fnv_basics() {
        assert_eq!(fnv1a(b""), FNV_OFFSET);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a_extend(fnv1a(b"ab"), b"c"), fnv1a(b"abc"));
    }
}
