//! A small deterministic pseudo-random number generator.
//!
//! The interpreter and explorer only need reproducible, reasonably-distributed draws
//! for resolving non-determinism in *tests and verification* — never for the analysis
//! itself — so a self-contained xorshift-style generator (seeded via SplitMix64, as in
//! the `xoshiro` family's recommended initialization) is all the workspace depends on.

/// A seeded xorshift64* generator with SplitMix64 seeding.
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed; equal seeds give equal streams.
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        // SplitMix64 step: spreads low-entropy seeds (0, 1, 2, ...) over the state space.
        let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        // xorshift64* has a single forbidden zero state.
        SmallRng { state: if z == 0 { 0x9E3779B97F4A7C15 } else { z } }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// A uniform draw from `[lo, hi]` (inclusive on both ends).
    pub fn gen_range_inclusive(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        let draw = ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % span;
        (lo as i128 + draw as i128) as i64
    }

    /// A uniform index into a collection of length `len` (which must be non-zero).
    pub fn gen_index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot draw an index from an empty collection");
        (self.next_u64() % len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_respected_and_cover_endpoints() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v = rng.gen_range_inclusive(-3, 3);
            assert!((-3..=3).contains(&v));
            seen_lo |= v == -3;
            seen_hi |= v == 3;
        }
        assert!(seen_lo && seen_hi, "1000 draws should hit both endpoints of [-3, 3]");
        for _ in 0..100 {
            assert!(rng.gen_index(5) < 5);
        }
        // Degenerate one-point range.
        assert_eq!(rng.gen_range_inclusive(9, 9), 9);
    }

    #[test]
    fn zero_seed_is_not_a_fixed_point() {
        let mut rng = SmallRng::seed_from_u64(0);
        let first = rng.next_u64();
        let second = rng.next_u64();
        assert_ne!(first, 0);
        assert_ne!(first, second);
    }
}
