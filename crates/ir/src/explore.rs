//! Exhaustive cost exploration and initial-state sampling.
//!
//! `CostSup` and `CostInf` (Section 3 of the paper) are defined as the supremum and
//! infimum of run costs over all resolutions of non-determinism. For the small benchmark
//! programs these can be computed exactly by exhaustively exploring every enabled
//! transition and every candidate value of non-deterministic updates. The explorer is the
//! oracle the test-suite uses to check that synthesized thresholds are sound and tight.

use dca_poly::VarId;

use crate::rng::SmallRng;
use crate::state::{eval_polynomial_int, satisfies_all, IntValuation, State};
use crate::system::{TransitionSystem, Update};

/// Exact minimal and maximal run cost from one initial valuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostBounds {
    /// `CostInf`: the minimum cost over all runs.
    pub min: i64,
    /// `CostSup`: the maximum cost over all runs.
    pub max: i64,
    /// `true` if the exploration budget was exhausted (bounds may then be partial).
    pub truncated: bool,
}

/// Exhaustively explores all runs of a transition system from a fixed initial valuation.
#[derive(Debug, Clone)]
pub struct CostExplorer {
    /// Candidate values tried for every non-deterministic update.
    pub nondet_candidates: Vec<i64>,
    /// Maximum length of a single run.
    pub max_depth: usize,
    /// Maximum total number of explored states across all runs.
    pub max_states: usize,
}

impl Default for CostExplorer {
    fn default() -> Self {
        CostExplorer {
            nondet_candidates: vec![0, 1],
            max_depth: 100_000,
            max_states: 2_000_000,
        }
    }
}

impl CostExplorer {
    /// Creates an explorer with the given candidate set for non-deterministic updates.
    pub fn with_candidates(candidates: Vec<i64>) -> CostExplorer {
        CostExplorer { nondet_candidates: candidates, ..CostExplorer::default() }
    }

    /// Computes exact cost bounds from the given initial valuation.
    ///
    /// Exploration branches over every enabled transition and, for non-deterministic
    /// updates, over every candidate value. Runs exceeding `max_depth` and exploration
    /// exceeding `max_states` are truncated and flagged in the result.
    pub fn explore(&self, ts: &TransitionSystem, initial_vals: &IntValuation) -> CostBounds {
        let mut bounds = CostBounds { min: i64::MAX, max: i64::MIN, truncated: false };
        let initial_cost = initial_vals.get(&ts.cost_var()).copied().unwrap_or(0);
        let mut budget = self.max_states;
        // Depth-first exploration with an explicit work stack (runs can be tens of
        // thousands of steps long, far deeper than the call stack allows).
        let mut stack: Vec<(State, usize)> = vec![(State::new(ts.initial(), initial_vals.clone()), 0)];
        while let Some((state, depth)) = stack.pop() {
            if budget == 0 || depth > self.max_depth {
                bounds.truncated = true;
                if budget == 0 {
                    break;
                }
                continue;
            }
            budget -= 1;
            if state.loc == ts.terminal() {
                let cost = state.value(ts.cost_var()) - initial_cost;
                bounds.min = bounds.min.min(cost);
                bounds.max = bounds.max.max(cost);
                continue;
            }
            for transition in ts.outgoing(state.loc) {
                if !satisfies_all(&transition.guard, &state.vals) {
                    continue;
                }
                // Collect non-deterministically updated variables of this transition.
                let nondet_vars: Vec<VarId> = transition
                    .updates
                    .iter()
                    .filter(|(_, u)| u.is_nondet())
                    .map(|(&v, _)| v)
                    .collect();
                let choices = self.nondet_candidates.len().max(1);
                let combos = choices.pow(nondet_vars.len() as u32);
                for combo in 0..combos {
                    let mut next_vals = state.vals.clone();
                    for (&var, update) in &transition.updates {
                        if let Update::Assign(p) = update {
                            next_vals.insert(var, eval_polynomial_int(p, &state.vals));
                        }
                    }
                    let mut rest = combo;
                    for &var in &nondet_vars {
                        let value = self.nondet_candidates[rest % choices];
                        rest /= choices;
                        next_vals.insert(var, value);
                    }
                    stack.push((State::new(transition.target, next_vals), depth + 1));
                }
            }
        }
        if bounds.min == i64::MAX {
            // No terminating run found within the budget.
            bounds.min = 0;
            bounds.max = 0;
            bounds.truncated = true;
        }
        bounds
    }

    /// Estimates cost bounds by random walks instead of exhaustive exploration.
    ///
    /// Each walk resolves branching non-determinism (several enabled transitions) and
    /// havoc updates uniformly at random. The returned `max` is therefore a *lower* bound
    /// on `CostSup` and `min` an *upper* bound on `CostInf`, which is exactly the
    /// direction needed to test a claimed differential threshold: any observed violation
    /// is a real violation. Deterministic programs are explored exactly by a single walk.
    pub fn sample_bounds(
        &self,
        ts: &TransitionSystem,
        initial_vals: &IntValuation,
        walks: usize,
        seed: u64,
    ) -> CostBounds {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut bounds = CostBounds { min: i64::MAX, max: i64::MIN, truncated: false };
        let initial_cost = initial_vals.get(&ts.cost_var()).copied().unwrap_or(0);
        for _ in 0..walks.max(1) {
            let mut state = State::new(ts.initial(), initial_vals.clone());
            let mut steps = 0usize;
            loop {
                if state.loc == ts.terminal() {
                    let cost = state.value(ts.cost_var()) - initial_cost;
                    bounds.min = bounds.min.min(cost);
                    bounds.max = bounds.max.max(cost);
                    break;
                }
                if steps > self.max_depth {
                    bounds.truncated = true;
                    break;
                }
                steps += 1;
                let enabled: Vec<&crate::system::Transition> = ts
                    .outgoing(state.loc)
                    .filter(|t| satisfies_all(&t.guard, &state.vals))
                    .collect();
                if enabled.is_empty() {
                    bounds.truncated = true;
                    break;
                }
                let transition = enabled[rng.gen_index(enabled.len())];
                let mut next_vals = state.vals.clone();
                for (&var, update) in &transition.updates {
                    match update {
                        Update::Assign(p) => {
                            next_vals.insert(var, eval_polynomial_int(p, &state.vals));
                        }
                        Update::Nondet => {
                            let idx = rng.gen_index(self.nondet_candidates.len().max(1));
                            next_vals
                                .insert(var, self.nondet_candidates.get(idx).copied().unwrap_or(0));
                        }
                    }
                }
                state = State::new(transition.target, next_vals);
            }
        }
        if bounds.min == i64::MAX {
            bounds.min = 0;
            bounds.max = 0;
            bounds.truncated = true;
        }
        bounds
    }
}

/// Enumerates all integer points of a box `{var -> (lo, hi)}`.
///
/// Intended for small boxes (the product of the ranges is the number of points).
pub fn enumerate_box(box_bounds: &[(VarId, i64, i64)]) -> Vec<IntValuation> {
    let mut result = vec![IntValuation::new()];
    for &(var, lo, hi) in box_bounds {
        assert!(lo <= hi, "empty range for {var:?}");
        let mut next = Vec::with_capacity(result.len() * (hi - lo + 1) as usize);
        for base in &result {
            for value in lo..=hi {
                let mut point = base.clone();
                point.insert(var, value);
                next.push(point);
            }
        }
        result = next;
    }
    result
}

/// Samples up to `count` integer points from a box that satisfy the conjunction `theta0`.
///
/// Points are drawn uniformly from the box with a seeded RNG, so results are
/// reproducible. The `cost` variable (and any variable not mentioned in the box) should
/// be fixed by the caller afterwards if needed.
pub fn sample_initial_states(
    theta0: &[dca_poly::LinExpr],
    box_bounds: &[(VarId, i64, i64)],
    count: usize,
    seed: u64,
) -> Vec<IntValuation> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut result = Vec::new();
    let mut attempts = 0usize;
    let max_attempts = count.saturating_mul(1000).max(1000);
    while result.len() < count && attempts < max_attempts {
        attempts += 1;
        let mut point = IntValuation::new();
        for &(var, lo, hi) in box_bounds {
            point.insert(var, rng.gen_range_inclusive(lo, hi));
        }
        if satisfies_all(theta0, &point) {
            result.push(point);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca_poly::{LinExpr, Polynomial};
    use crate::system::TsBuilder;

    /// while (i < n) { if (*) cost += 2 else cost += 1; i++ }
    /// Maximum cost 2n, minimum cost n, driven by branching non-determinism expressed via
    /// two guarded transitions with overlapping guards.
    fn branching_loop() -> TransitionSystem {
        let mut b = TsBuilder::new();
        let i = b.var("i");
        let n = b.var("n");
        let head = b.location("head");
        let out = b.terminal();
        b.set_initial(head);
        b.transition(head, head)
            .guard(LinExpr::var(n) - LinExpr::var(i) - LinExpr::from_int(1))
            .update(i, Update::assign(Polynomial::var(i) + Polynomial::from_int(1)))
            .tick(2)
            .finish();
        b.transition(head, head)
            .guard(LinExpr::var(n) - LinExpr::var(i) - LinExpr::from_int(1))
            .update(i, Update::assign(Polynomial::var(i) + Polynomial::from_int(1)))
            .tick(1)
            .finish();
        b.transition(head, out)
            .guard(LinExpr::var(i) - LinExpr::var(n))
            .finish();
        b.build().unwrap()
    }

    fn initial(ts: &TransitionSystem, n: i64) -> IntValuation {
        let mut vals = IntValuation::new();
        vals.insert(ts.pool().lookup("i").unwrap(), 0);
        vals.insert(ts.pool().lookup("n").unwrap(), n);
        vals.insert(ts.cost_var(), 0);
        vals
    }

    #[test]
    fn branching_bounds_are_exact() {
        let ts = branching_loop();
        let explorer = CostExplorer::default();
        for n in [1i64, 2, 3, 5] {
            let bounds = explorer.explore(&ts, &initial(&ts, n));
            assert!(!bounds.truncated);
            assert_eq!(bounds.min, n, "min cost is n");
            assert_eq!(bounds.max, 2 * n, "max cost is 2n");
        }
    }

    #[test]
    fn deterministic_program_has_equal_bounds() {
        let mut b = TsBuilder::new();
        let i = b.var("i");
        let n = b.var("n");
        let head = b.location("head");
        let out = b.terminal();
        b.set_initial(head);
        b.transition(head, head)
            .guard(LinExpr::var(n) - LinExpr::var(i) - LinExpr::from_int(1))
            .update(i, Update::assign(Polynomial::var(i) + Polynomial::from_int(1)))
            .tick(1)
            .finish();
        b.transition(head, out)
            .guard(LinExpr::var(i) - LinExpr::var(n))
            .finish();
        let ts = b.build().unwrap();
        let explorer = CostExplorer::default();
        let mut vals = IntValuation::new();
        vals.insert(ts.pool().lookup("i").unwrap(), 0);
        vals.insert(ts.pool().lookup("n").unwrap(), 7);
        vals.insert(ts.cost_var(), 0);
        let bounds = explorer.explore(&ts, &vals);
        assert_eq!(bounds.min, 7);
        assert_eq!(bounds.max, 7);
    }

    #[test]
    fn nondet_update_explored_over_candidates() {
        // x := nondet in {0, 5}; cost += x
        let mut b = TsBuilder::new();
        let x = b.var("x");
        let cost = b.cost_var();
        let start = b.location("start");
        let mid = b.location("mid");
        let out = b.terminal();
        b.set_initial(start);
        b.transition(start, mid).update(x, Update::Nondet).finish();
        b.transition(mid, out)
            .update(cost, Update::assign(Polynomial::var(cost) + Polynomial::var(x)))
            .finish();
        let ts = b.build().unwrap();
        let explorer = CostExplorer::with_candidates(vec![0, 5]);
        let mut vals = IntValuation::new();
        vals.insert(x, 0);
        vals.insert(cost, 0);
        let bounds = explorer.explore(&ts, &vals);
        assert_eq!(bounds.min, 0);
        assert_eq!(bounds.max, 5);
    }

    #[test]
    fn box_enumeration() {
        let points = enumerate_box(&[(VarId(0), 1, 3), (VarId(1), 0, 1)]);
        assert_eq!(points.len(), 6);
        assert!(points.iter().all(|p| (1..=3).contains(&p[&VarId(0)])));
    }

    #[test]
    fn sampling_respects_theta0() {
        let mut pool = dca_poly::VarPool::new();
        let a = pool.intern("a");
        let b = pool.intern("b");
        // a >= b
        let theta = vec![LinExpr::var(a) - LinExpr::var(b)];
        let samples = sample_initial_states(&theta, &[(a, 0, 10), (b, 0, 10)], 25, 7);
        assert!(!samples.is_empty());
        for s in samples {
            assert!(s[&a] >= s[&b]);
        }
    }
}
