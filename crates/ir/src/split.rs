//! Loop-phase splitting: a disjunctive analysis pass that detects a monotone
//! guard change inside a loop body and splits the loop into *phase copies*, so a
//! downstream analysis can assign each phase its own (anti-)potential template.
//!
//! # Why
//!
//! The paper's synthesis attaches *one* polynomial template per location. A loop
//! whose body branches on a predicate that flips exactly once per execution —
//! `if (i == 0) { expensive } else { cheap }` under an incremented `i` — forces
//! that single polynomial to cover two regimes at once, which is where the
//! `NestedSingle` Table-1 row loses tightness (5026 instead of the paper's 101).
//! Splitting the loop into a *phase 1* copy (the predicate may still hold) and a
//! *phase 2* copy (the predicate has flipped, and by monotonicity stays flipped)
//! restores a piecewise potential without changing the template machinery at all:
//! each copy is an ordinary location of the rebuilt system.
//!
//! # Detection
//!
//! For each loop header (outermost first), [`detect_phase_splits`] scans the
//! loop body for a *branch location* `ℓ` such that
//!
//! 1. `ℓ` is not itself a loop header — a loop's own stay/exit guards are always
//!    exact negations of each other, and pairing them would "split" every loop
//!    into a useless copy of itself (likewise for an inner loop's stay/exit pair
//!    seen from the outer body);
//! 2. two sibling out-transitions of `ℓ`, **both targeting locations inside the
//!    body**, carry guard conjuncts `e ≥ 0` and its exact integer negation
//!    `-e - 1 ≥ 0`;
//! 3. the predicate `e` is *non-increasing* across every transition internal to
//!    the body: `e ∘ Up − e` is a constant `≤ 0` for each of them, and no such
//!    transition updates a variable of `e` non-deterministically.
//!
//! Condition 3 is what makes the split *phased* rather than merely disjunctive:
//! once `e < 0` holds it holds forever (within the loop), so control that has
//! taken the negated branch can be confined to the phase-2 copy. The scan is
//! deterministic — body locations in id order, transitions in system order,
//! conjuncts in guard order — and keeps at most one candidate per header.
//!
//! # Transformation
//!
//! [`split_phases`] applies every detected split whose loop body is disjoint
//! from the previously applied ones (outermost-first, single pass — re-running
//! detection on the output would re-split the phase copies forever). Each body
//! location `x` becomes `x#p1` and `x#p2`; locations outside split bodies are
//! copied once. Transitions are rewritten as follows:
//!
//! - source outside every split body: one copy, targeting the phase-1 copy of
//!   the target (loops are entered in phase 1);
//! - source in a split body, target outside (loop exit): copied from **both**
//!   phase copies — a run may exit without ever flipping the predicate;
//! - source and target in the body: the phase-2 copy always stays in phase 2;
//!   the phase-1 copy is redirected to the phase-2 target iff its guard contains
//!   the negation conjunct (the *hand-off* edge), and stays in phase 1 otherwise.
//!
//! # Soundness
//!
//! The split system simulates the original and vice versa: erasing the `#p1`/
//! `#p2` tags maps every split run to an original run with identical costs, and
//! every original run lifts to a split run (stay in phase 1 until the first
//! transition whose guard contains the negation conjunct, then stay in phase 2
//! — monotonicity guarantees the phase-2 copies of the body edges remain
//! enabled). Reachable states, and hence `CostSup`/`CostInf`, are preserved
//! *unconditionally*; the detector's monotonicity requirement only buys the
//! precision that makes splitting worthwhile. Phase-1 copies of edges that are
//! unreachable after the flip (e.g. the `i == 0` branch under `i ≥ 1`) are left
//! to the infeasible-transition pruner, which drops them once per-phase
//! invariants are available.

use std::collections::{BTreeMap, BTreeSet};

use dca_poly::{LinExpr, Polynomial, VarId};

use crate::loops::LoopNest;
use crate::system::{LocId, Transition, TransitionSystem, TsBuilder, Update};

/// One detected phase split: a loop whose body tests a monotonically
/// non-increasing predicate against its exact negation.
///
/// All location ids refer to the **original** transition system the split was
/// detected on, not to the rebuilt system produced by [`split_phases`].
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSplit {
    /// The header of the loop being split.
    pub header: LocId,
    /// The branch location whose sibling out-edges test the predicate.
    pub branch: LocId,
    /// The phase-1 predicate `e` (as `e ≥ 0`): non-increasing inside the loop.
    pub predicate: LinExpr,
    /// Its exact integer negation `-e - 1` (as `-e - 1 ≥ 0`): guard conjuncts
    /// equal to this expression mark the hand-off edges into phase 2.
    pub negation: LinExpr,
}

/// The result of applying [`split_phases`]: the rebuilt system plus the
/// bookkeeping needed to map analysis results (invariants, annotations) between
/// the original and the split locations.
#[derive(Debug, Clone)]
pub struct SplitSystem {
    /// The rebuilt transition system with per-phase location copies.
    pub ts: TransitionSystem,
    /// The splits that were actually applied (pairwise-disjoint loop bodies,
    /// outermost first), with locations of the *original* system.
    pub splits: Vec<PhaseSplit>,
    /// Split location → the original location it copies.
    orig_of: BTreeMap<LocId, LocId>,
    /// Original location → its copies in the split system (one entry for
    /// unsplit locations, two — phase 1 then phase 2 — for split ones).
    copies: BTreeMap<LocId, Vec<LocId>>,
}

impl SplitSystem {
    /// The original location a split-system location is a copy of.
    pub fn original_of(&self, loc: LocId) -> LocId {
        self.orig_of[&loc]
    }

    /// The split-system copies of an original location: `[single]` for unsplit
    /// locations, `[phase1, phase2]` for locations inside a split loop body.
    pub fn copies_of(&self, loc: LocId) -> &[LocId] {
        &self.copies[&loc]
    }
}

/// Returns `true` if `b` is the exact integer negation of the guard `a ≥ 0`,
/// i.e. `b = -a - 1` (so `b ≥ 0` ⟺ `a < 0` over the integers).
fn is_exact_negation(a: &LinExpr, b: &LinExpr) -> bool {
    (a + b + LinExpr::from_int(1)).normalize().is_zero()
}

/// Returns `true` if the two guards are the same inequality.
fn same_conjunct(a: &LinExpr, b: &LinExpr) -> bool {
    (a - b).normalize().is_zero()
}

/// Checks that `e` cannot increase across `t`: every variable of `e` is updated
/// deterministically and `e ∘ Up − e` is a constant `≤ 0`.
fn non_increasing_across(e: &LinExpr, t: &Transition) -> bool {
    for v in e.vars() {
        if matches!(t.updates.get(&v), Some(Update::Nondet)) {
            return false;
        }
    }
    let subst: BTreeMap<VarId, Polynomial> = t
        .updates
        .iter()
        .filter_map(|(v, u)| match u {
            Update::Assign(p) => Some((*v, p.clone())),
            Update::Nondet => None,
        })
        .collect();
    let before = e.to_polynomial();
    let delta = &before.substitute(&subst) - &before;
    delta.is_constant() && !delta.constant_term().is_positive()
}

/// Detects at most one phase-split candidate per loop header, outermost first.
///
/// See the `split` module documentation for the exact detection conditions. The
/// returned candidates are *per-header*; [`split_phases`] additionally filters
/// them down to pairwise-disjoint loop bodies before applying any.
pub fn detect_phase_splits(ts: &TransitionSystem) -> Vec<PhaseSplit> {
    let nest = LoopNest::analyze(ts);
    let mut splits = Vec::new();
    for header in nest.headers() {
        let body = match nest.body(header) {
            Some(body) => body,
            None => continue,
        };
        if let Some(split) = detect_in_body(ts, &nest, header, body) {
            splits.push(split);
        }
    }
    splits
}

/// The per-header scan: first passing candidate in deterministic order wins.
fn detect_in_body(
    ts: &TransitionSystem,
    nest: &LoopNest,
    header: LocId,
    body: &BTreeSet<LocId>,
) -> Option<PhaseSplit> {
    let internal: Vec<&Transition> = ts
        .transitions()
        .iter()
        .filter(|t| body.contains(&t.source) && body.contains(&t.target))
        .collect();
    for &loc in body {
        // Never pair a loop's own stay/exit guards (this header's, or an inner
        // loop's seen from an outer body): those are always exact negations.
        if nest.is_header(loc) {
            continue;
        }
        let siblings: Vec<&Transition> = ts
            .outgoing(loc)
            .filter(|t| body.contains(&t.target))
            .collect();
        for (index, edge) in siblings.iter().enumerate() {
            for predicate in &edge.guard {
                if predicate.is_constant() {
                    continue;
                }
                let negated = siblings
                    .iter()
                    .enumerate()
                    .filter(|&(other, _)| other != index)
                    .flat_map(|(_, s)| s.guard.iter())
                    .find(|c| is_exact_negation(predicate, c));
                let negation = match negated {
                    Some(n) => n.clone(),
                    None => continue,
                };
                if internal.iter().all(|t| non_increasing_across(predicate, t)) {
                    return Some(PhaseSplit {
                        header,
                        branch: loc,
                        predicate: predicate.clone(),
                        negation,
                    });
                }
            }
        }
    }
    None
}

/// Applies every detected split with a loop body disjoint from the previously
/// applied ones, rebuilding the system with `#p1`/`#p2` phase copies.
///
/// Returns `None` when no split applies — or, defensively, when the rebuilt
/// system would not round-trip (variable ids not reproducible in pool order, or
/// the rebuilt system failing validation), so callers can always fall back to
/// the original system.
pub fn split_phases(ts: &TransitionSystem) -> Option<SplitSystem> {
    let candidates = detect_phase_splits(ts);
    if candidates.is_empty() {
        return None;
    }
    let nest = LoopNest::analyze(ts);
    let mut applied: Vec<(PhaseSplit, BTreeSet<LocId>)> = Vec::new();
    for candidate in candidates {
        let body = nest.body(candidate.header)?.clone();
        if applied.iter().all(|(_, other)| other.is_disjoint(&body)) {
            applied.push((candidate, body));
        }
    }

    let mut b = TsBuilder::new();
    b.name(&format!("{}#split", ts.name()));
    // Re-intern every variable in pool order; guards and updates are reused
    // verbatim, so the ids must come out identical (they do — `TsBuilder::new`
    // interns `cost` first, exactly like the original builder did).
    for v in ts.pool().ids() {
        if b.var(ts.pool().name(v)) != v {
            return None;
        }
    }

    let mut entry_map: BTreeMap<LocId, LocId> = BTreeMap::new();
    let mut phase2_map: BTreeMap<LocId, LocId> = BTreeMap::new();
    let mut orig_of: BTreeMap<LocId, LocId> = BTreeMap::new();
    let mut copies: BTreeMap<LocId, Vec<LocId>> = BTreeMap::new();
    for loc in ts.locations() {
        if loc == ts.terminal() {
            let copy = b.terminal();
            entry_map.insert(loc, copy);
            orig_of.insert(copy, loc);
            copies.insert(loc, vec![copy]);
            continue;
        }
        let name = ts.location_name(loc);
        if applied.iter().any(|(_, body)| body.contains(&loc)) {
            let p1 = b.location(&format!("{name}#p1"));
            let p2 = b.location(&format!("{name}#p2"));
            entry_map.insert(loc, p1);
            phase2_map.insert(loc, p2);
            orig_of.insert(p1, loc);
            orig_of.insert(p2, loc);
            copies.insert(loc, vec![p1, p2]);
        } else {
            let copy = b.location(name);
            entry_map.insert(loc, copy);
            orig_of.insert(copy, loc);
            copies.insert(loc, vec![copy]);
        }
    }

    b.set_initial(entry_map[&ts.initial()]);
    for e in ts.theta0() {
        b.add_theta0(e.clone());
    }

    for t in ts.transitions() {
        // `build()` re-adds the terminal self-loop.
        if t.source == ts.terminal() && t.target == ts.terminal() {
            continue;
        }
        let enclosing = applied.iter().find(|(_, body)| body.contains(&t.source));
        let (split, body) = match enclosing {
            None => {
                b.add_transition(Transition {
                    source: entry_map[&t.source],
                    target: entry_map[&t.target],
                    guard: t.guard.clone(),
                    updates: t.updates.clone(),
                });
                continue;
            }
            Some((split, body)) => (split, body),
        };
        let p1_source = entry_map[&t.source];
        let p2_source = phase2_map[&t.source];
        if !body.contains(&t.target) {
            // Loop exit: reachable from either phase.
            for source in [p1_source, p2_source] {
                b.add_transition(Transition {
                    source,
                    target: entry_map[&t.target],
                    guard: t.guard.clone(),
                    updates: t.updates.clone(),
                });
            }
        } else {
            let p2_target = phase2_map[&t.target];
            b.add_transition(Transition {
                source: p2_source,
                target: p2_target,
                guard: t.guard.clone(),
                updates: t.updates.clone(),
            });
            let hands_off =
                t.guard.iter().any(|c| same_conjunct(c, &split.negation));
            b.add_transition(Transition {
                source: p1_source,
                target: if hands_off { p2_target } else { entry_map[&t.target] },
                guard: t.guard.clone(),
                updates: t.updates.clone(),
            });
        }
    }

    let splits = applied.into_iter().map(|(split, _)| split).collect();
    let ts = b.build().ok()?;
    Some(SplitSystem { ts, splits, orig_of, copies })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{FixedOracle, Interpreter};
    use crate::state::IntValuation;
    use dca_poly::Polynomial;

    /// `while (i < n) { i++; cost++ }` — only the stay/exit negation pair.
    fn plain_loop() -> TransitionSystem {
        let mut b = TsBuilder::new();
        b.name("plain");
        let i = b.var("i");
        let n = b.var("n");
        let head = b.location("head");
        let out = b.terminal();
        b.set_initial(head);
        b.add_theta0(LinExpr::var(n) - LinExpr::from_int(1));
        b.add_theta0_eq(LinExpr::var(i));
        b.transition(head, head)
            .guard(LinExpr::var(n) - LinExpr::var(i) - LinExpr::from_int(1))
            .update(i, Update::assign(Polynomial::var(i) + Polynomial::from_int(1)))
            .tick(1)
            .finish();
        b.transition(head, out).guard(LinExpr::var(i) - LinExpr::var(n)).finish();
        b.build().unwrap()
    }

    /// A two-phase loop: `while (i < n) { if (i == 0) tick(2) else tick(1); i++ }`
    /// modelled with an explicit branch location, as the lowering produces it.
    fn two_phase_loop() -> TransitionSystem {
        let mut b = TsBuilder::new();
        b.name("two_phase");
        let i = b.var("i");
        let n = b.var("n");
        let head = b.location("head");
        let branch = b.location("branch");
        let join = b.location("join");
        let out = b.terminal();
        b.set_initial(head);
        b.add_theta0(LinExpr::var(n) - LinExpr::from_int(1));
        b.add_theta0(LinExpr::from_int(50) - LinExpr::var(n));
        b.add_theta0_eq(LinExpr::var(i));
        b.transition(head, branch)
            .guard(LinExpr::var(n) - LinExpr::var(i) - LinExpr::from_int(1))
            .finish();
        b.transition(head, out).guard(LinExpr::var(i) - LinExpr::var(n)).finish();
        // then: i == 0, expensive tick.
        b.transition(branch, join).guard_eq(LinExpr::var(i)).tick(2).finish();
        // else: i >= 1 (the exact negation of the `-i >= 0` conjunct), cheap tick.
        b.transition(branch, join)
            .guard(LinExpr::var(i) - LinExpr::from_int(1))
            .tick(1)
            .finish();
        b.transition(join, head)
            .update(i, Update::assign(Polynomial::var(i) + Polynomial::from_int(1)))
            .finish();
        b.build().unwrap()
    }

    #[test]
    fn plain_loop_stay_exit_pair_is_never_a_split() {
        let ts = plain_loop();
        assert!(detect_phase_splits(&ts).is_empty());
        assert!(split_phases(&ts).is_none());
    }

    #[test]
    fn two_phase_loop_is_detected_and_split() {
        let ts = two_phase_loop();
        let splits = detect_phase_splits(&ts);
        assert_eq!(splits.len(), 1);
        let split = &splits[0];
        assert_eq!(ts.location_name(split.header), "head");
        assert_eq!(ts.location_name(split.branch), "branch");
        // The non-increasing side of the `i == 0` test is `-i >= 0`.
        let i = ts.pool().lookup("i").unwrap();
        assert_eq!(split.predicate, -LinExpr::var(i));
        assert_eq!(split.negation, LinExpr::var(i) - LinExpr::from_int(1));

        let split_system = split_phases(&ts).unwrap();
        let sts = &split_system.ts;
        // head/branch/join doubled, terminal single.
        assert_eq!(sts.num_locations(), 7);
        assert_eq!(sts.location_name(sts.initial()), "head#p1");
        // The hand-off: branch#p1's `i >= 1` edge targets join#p2.
        let branch_p1 = split_system.copies_of(split.branch)[0];
        let join = ts.locations().into_iter().find(|&l| ts.location_name(l) == "join").unwrap();
        let handoff = sts
            .outgoing(branch_p1)
            .find(|t| t.guard.iter().any(|c| same_conjunct(c, &split.negation)))
            .expect("hand-off edge exists");
        assert_eq!(handoff.target, split_system.copies_of(join)[1]);
        // Phase 2 stays in phase 2.
        let branch_p2 = split_system.copies_of(split.branch)[1];
        for t in sts.outgoing(branch_p2) {
            assert_eq!(t.target, split_system.copies_of(join)[1]);
        }
        // Exits are reachable from both phase copies of the header.
        for copy in split_system.copies_of(split.header) {
            assert!(sts
                .outgoing(*copy)
                .any(|t| t.target == sts.terminal()), "no exit from {}", sts.location_name(*copy));
        }
        // Round-trip bookkeeping.
        assert_eq!(split_system.original_of(branch_p1), split.branch);
        assert_eq!(split_system.original_of(branch_p2), split.branch);
    }

    #[test]
    fn increasing_predicate_is_rejected() {
        // Same branch shape, but the tested counter *decreases*, so the
        // candidate whose negation is present is increasing: `while (i > 0)
        // { if (i <= 0) .. else .. ; i-- }` — `-i >= 0` vs `i - 1 >= 0` with
        // `i` decreasing makes `i - 1` the non-increasing side... flip it so
        // nothing qualifies: counter increases and only the increasing side
        // has its negation present.
        let mut b = TsBuilder::new();
        let i = b.var("i");
        let n = b.var("n");
        let head = b.location("head");
        let branch = b.location("branch");
        let join = b.location("join");
        let out = b.terminal();
        b.set_initial(head);
        b.add_theta0(LinExpr::var(n) - LinExpr::from_int(1));
        b.add_theta0_eq(LinExpr::var(i));
        b.transition(head, branch)
            .guard(LinExpr::var(n) - LinExpr::var(i) - LinExpr::from_int(1))
            .finish();
        b.transition(head, out).guard(LinExpr::var(i) - LinExpr::var(n)).finish();
        // then: i >= 5; else: i <= 4. The predicate `i - 5` increases with i,
        // and the else-side predicate `4 - i` has no internal-edge pair other
        // than `i - 5`, which *is* its exact negation — but `4 - i` decreases?
        // No: `4 - i` is non-increasing (i increases), so to test rejection we
        // make the update non-deterministic.
        b.transition(branch, join).guard(LinExpr::var(i) - LinExpr::from_int(5)).tick(2).finish();
        b.transition(branch, join)
            .guard(LinExpr::from_int(4) - LinExpr::var(i))
            .tick(1)
            .finish();
        b.transition(join, head).update(i, Update::Nondet).finish();
        let ts = b.build().unwrap();
        assert!(detect_phase_splits(&ts).is_empty(), "nondet counter must reject both sides");
    }

    #[test]
    fn monotone_decreasing_threshold_test_is_split() {
        // `while (i < n) { if (i < 5) tick(3) else tick(1); i++ }`: the
        // conjunct `4 - i >= 0` (i.e. `5 - i - 1`) is non-increasing and its
        // exact negation `i - 5 >= 0` guards the sibling — a phase-flip.
        let mut b = TsBuilder::new();
        let i = b.var("i");
        let n = b.var("n");
        let head = b.location("head");
        let branch = b.location("branch");
        let join = b.location("join");
        let out = b.terminal();
        b.set_initial(head);
        b.add_theta0(LinExpr::var(n) - LinExpr::from_int(1));
        b.add_theta0_eq(LinExpr::var(i));
        b.transition(head, branch)
            .guard(LinExpr::var(n) - LinExpr::var(i) - LinExpr::from_int(1))
            .finish();
        b.transition(head, out).guard(LinExpr::var(i) - LinExpr::var(n)).finish();
        b.transition(branch, join).guard(LinExpr::from_int(4) - LinExpr::var(i)).tick(3).finish();
        b.transition(branch, join).guard(LinExpr::var(i) - LinExpr::from_int(5)).tick(1).finish();
        b.transition(join, head)
            .update(i, Update::assign(Polynomial::var(i) + Polynomial::from_int(1)))
            .finish();
        let ts = b.build().unwrap();
        let splits = detect_phase_splits(&ts);
        assert_eq!(splits.len(), 1);
        assert_eq!(splits[0].predicate, LinExpr::from_int(4) - LinExpr::var(i));
    }

    #[test]
    fn branch_exiting_the_loop_is_not_a_split() {
        // A conditional break: the negated side leaves the loop, so the pair is
        // not two body-internal siblings and must not split.
        let mut b = TsBuilder::new();
        let i = b.var("i");
        let n = b.var("n");
        let head = b.location("head");
        let branch = b.location("branch");
        let out = b.terminal();
        b.set_initial(head);
        b.add_theta0(LinExpr::var(n) - LinExpr::from_int(1));
        b.add_theta0_eq(LinExpr::var(i));
        b.transition(head, branch)
            .guard(LinExpr::var(n) - LinExpr::var(i) - LinExpr::from_int(1))
            .finish();
        b.transition(head, out).guard(LinExpr::var(i) - LinExpr::var(n)).finish();
        b.transition(branch, head)
            .guard(LinExpr::from_int(4) - LinExpr::var(i))
            .update(i, Update::assign(Polynomial::var(i) + Polynomial::from_int(1)))
            .tick(1)
            .finish();
        b.transition(branch, out).guard(LinExpr::var(i) - LinExpr::from_int(5)).finish();
        let ts = b.build().unwrap();
        assert!(detect_phase_splits(&ts).is_empty());
    }

    #[test]
    fn nested_loop_inner_stay_exit_is_not_paired_from_the_outer_body() {
        // for i in 0..n { for j in 0..m { tick } }: the inner stay/exit guards
        // are exact negations with both targets inside the *outer* body, but
        // the inner location is a header and the `j := 0` reset breaks
        // monotonicity — no split either way.
        let mut b = TsBuilder::new();
        let i = b.var("i");
        let j = b.var("j");
        let n = b.var("n");
        let m = b.var("m");
        let outer = b.location("outer");
        let inner = b.location("inner");
        let out = b.terminal();
        b.set_initial(outer);
        b.add_theta0(LinExpr::var(n) - LinExpr::from_int(1));
        b.add_theta0(LinExpr::var(m) - LinExpr::from_int(1));
        b.add_theta0_eq(LinExpr::var(i));
        b.transition(outer, inner)
            .guard(LinExpr::var(n) - LinExpr::var(i) - LinExpr::from_int(1))
            .update(j, Update::assign(Polynomial::zero()))
            .finish();
        b.transition(inner, inner)
            .guard(LinExpr::var(m) - LinExpr::var(j) - LinExpr::from_int(1))
            .update(j, Update::assign(Polynomial::var(j) + Polynomial::from_int(1)))
            .tick(1)
            .finish();
        b.transition(inner, outer)
            .guard(LinExpr::var(j) - LinExpr::var(m))
            .update(i, Update::assign(Polynomial::var(i) + Polynomial::from_int(1)))
            .finish();
        b.transition(outer, out).guard(LinExpr::var(i) - LinExpr::var(n)).finish();
        let ts = b.build().unwrap();
        assert!(detect_phase_splits(&ts).is_empty());
        assert!(split_phases(&ts).is_none());
    }

    /// The split system must be cost-equivalent run by run: interpreting both
    /// from the same initial valuation yields identical termination and cost.
    #[test]
    fn split_system_preserves_interpreted_cost() {
        let ts = two_phase_loop();
        let split = split_phases(&ts).unwrap();
        let interp = Interpreter::new(10_000);
        let i = ts.pool().lookup("i").unwrap();
        let n = ts.pool().lookup("n").unwrap();
        for bound in 1..=20 {
            let mut vals = IntValuation::new();
            vals.insert(ts.cost_var(), 0);
            vals.insert(i, 0);
            vals.insert(n, bound);
            let original = interp.run(&ts, &vals, &mut FixedOracle(0));
            let phased = interp.run(&split.ts, &vals, &mut FixedOracle(0));
            assert_eq!(original.outcome, phased.outcome, "n = {bound}");
            assert_eq!(original.cost, phased.cost, "n = {bound}");
        }
    }

    #[test]
    fn split_preserves_variable_ids_and_theta0() {
        let ts = two_phase_loop();
        let split = split_phases(&ts).unwrap();
        assert_eq!(split.ts.pool().ids(), ts.pool().ids());
        for v in ts.pool().ids() {
            assert_eq!(split.ts.pool().name(v), ts.pool().name(v));
        }
        assert_eq!(split.ts.theta0(), ts.theta0());
        assert_eq!(split.ts.name(), "two_phase#split");
        assert_eq!(split.splits.len(), 1);
    }
}
