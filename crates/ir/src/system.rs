//! Transition systems: locations, transitions, guards, updates, builder and validation.

use std::collections::BTreeMap;
use std::fmt;

use dca_numeric::Rational;
use dca_poly::{LinExpr, Polynomial, VarId, VarPool};

/// Identifier of a program location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocId(pub u32);

impl LocId {
    /// Index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// The effect of a transition on one variable.
#[derive(Debug, Clone, PartialEq)]
pub enum Update {
    /// Deterministic update: the new value is a polynomial over the *current* variable
    /// values.
    Assign(Polynomial),
    /// Non-deterministic update: the new value is an arbitrary integer.
    Nondet,
}

impl Update {
    /// Convenience constructor for a deterministic assignment.
    pub fn assign(p: Polynomial) -> Update {
        Update::Assign(p)
    }

    /// Returns `true` for a non-deterministic update.
    pub fn is_nondet(&self) -> bool {
        matches!(self, Update::Nondet)
    }
}

/// A guarded transition `(ℓ, ℓ', G, Up)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Source location.
    pub source: LocId,
    /// Target location.
    pub target: LocId,
    /// Guard: conjunction of affine inequalities, each interpreted as `expr ≥ 0`.
    pub guard: Vec<LinExpr>,
    /// Per-variable updates; variables not listed keep their value.
    pub updates: BTreeMap<VarId, Update>,
}

impl Transition {
    /// The update applied to `v` (identity if the transition does not mention `v`).
    pub fn update_of(&self, v: VarId) -> Update {
        self.updates
            .get(&v)
            .cloned()
            .unwrap_or_else(|| Update::Assign(Polynomial::var(v)))
    }

    /// Returns `true` if the transition has a non-deterministic update for some variable.
    pub fn has_nondet(&self) -> bool {
        self.updates.values().any(Update::is_nondet)
    }
}

/// Errors produced when assembling or validating a [`TransitionSystem`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TsError {
    /// The system has no initial location set.
    MissingInitial,
    /// A transition references a location that does not exist.
    UnknownLocation(String),
    /// A non-terminal location has no outgoing transition.
    DeadEndLocation(String),
    /// The initial-state constraint does not force `cost = 0`.
    CostNotZeroInitially,
}

impl fmt::Display for TsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsError::MissingInitial => write!(f, "no initial location was set"),
            TsError::UnknownLocation(name) => write!(f, "unknown location `{name}`"),
            TsError::DeadEndLocation(name) => {
                write!(f, "location `{name}` has no outgoing transition")
            }
            TsError::CostNotZeroInitially => {
                write!(f, "initial condition must force cost = 0")
            }
        }
    }
}

impl std::error::Error for TsError {}

/// A complete transition system modelling one program.
///
/// Construct instances through [`TsBuilder`].
#[derive(Debug, Clone)]
pub struct TransitionSystem {
    pool: VarPool,
    cost_var: VarId,
    location_names: Vec<String>,
    transitions: Vec<Transition>,
    initial: LocId,
    terminal: LocId,
    /// Θ0: conjunction of affine inequalities (each `expr ≥ 0`) over initial valuations.
    theta0: Vec<LinExpr>,
    /// Human-readable name for reporting.
    name: String,
}

impl TransitionSystem {
    /// The variable pool (shared naming of program variables).
    pub fn pool(&self) -> &VarPool {
        &self.pool
    }

    /// The distinguished `cost` variable.
    pub fn cost_var(&self) -> VarId {
        self.cost_var
    }

    /// All program variables (including `cost`).
    pub fn vars(&self) -> Vec<VarId> {
        self.pool.ids()
    }

    /// Program variables excluding `cost`.
    pub fn data_vars(&self) -> Vec<VarId> {
        self.pool.ids().into_iter().filter(|&v| v != self.cost_var).collect()
    }

    /// All location ids.
    pub fn locations(&self) -> Vec<LocId> {
        (0..self.location_names.len() as u32).map(LocId).collect()
    }

    /// The name of a location.
    pub fn location_name(&self, loc: LocId) -> &str {
        &self.location_names[loc.index()]
    }

    /// The initial location `ℓ0`.
    pub fn initial(&self) -> LocId {
        self.initial
    }

    /// The terminal location `ℓ_out`.
    pub fn terminal(&self) -> LocId {
        self.terminal
    }

    /// All transitions.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Transitions leaving `loc`.
    pub fn outgoing(&self, loc: LocId) -> impl Iterator<Item = &Transition> {
        self.transitions.iter().filter(move |t| t.source == loc)
    }

    /// The initial condition Θ0 as a conjunction of `expr ≥ 0` inequalities.
    pub fn theta0(&self) -> &[LinExpr] {
        &self.theta0
    }

    /// Human-readable name of the modelled program.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of locations.
    pub fn num_locations(&self) -> usize {
        self.location_names.len()
    }

    /// Renders the transition system in a compact textual form (one line per transition).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "transition system `{}`: {} locations, {} transitions, initial {}, terminal {}",
            self.name,
            self.num_locations(),
            self.transitions.len(),
            self.location_name(self.initial),
            self.location_name(self.terminal)
        );
        let _ = writeln!(
            out,
            "  theta0: {}",
            self.theta0
                .iter()
                .map(|e| format!("{} >= 0", e.to_string(&self.pool)))
                .collect::<Vec<_>>()
                .join(" /\\ ")
        );
        for t in &self.transitions {
            let guard = if t.guard.is_empty() {
                "true".to_string()
            } else {
                t.guard
                    .iter()
                    .map(|e| format!("{} >= 0", e.to_string(&self.pool)))
                    .collect::<Vec<_>>()
                    .join(" /\\ ")
            };
            let updates = if t.updates.is_empty() {
                "id".to_string()
            } else {
                t.updates
                    .iter()
                    .map(|(v, u)| match u {
                        Update::Assign(p) => {
                            format!("{}' = {}", self.pool.name(*v), p.to_string(&self.pool))
                        }
                        Update::Nondet => format!("{}' = *", self.pool.name(*v)),
                    })
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let _ = writeln!(
                out,
                "  {} -> {} [{}] {{{}}}",
                self.location_name(t.source),
                self.location_name(t.target),
                guard,
                updates
            );
        }
        out
    }
}

/// Builder for [`TransitionSystem`]s.
#[derive(Debug, Clone)]
pub struct TsBuilder {
    pool: VarPool,
    cost_var: VarId,
    location_names: Vec<String>,
    transitions: Vec<Transition>,
    initial: Option<LocId>,
    terminal: Option<LocId>,
    theta0: Vec<LinExpr>,
    name: String,
}

impl Default for TsBuilder {
    fn default() -> Self {
        TsBuilder::new()
    }
}

impl TsBuilder {
    /// Creates an empty builder. The `cost` variable is interned immediately.
    pub fn new() -> TsBuilder {
        let mut pool = VarPool::new();
        let cost_var = pool.intern("cost");
        TsBuilder {
            pool,
            cost_var,
            location_names: Vec::new(),
            transitions: Vec::new(),
            initial: None,
            terminal: None,
            theta0: Vec::new(),
            name: "anonymous".to_string(),
        }
    }

    /// Sets the human-readable name of the program.
    pub fn name(&mut self, name: &str) -> &mut Self {
        self.name = name.to_string();
        self
    }

    /// Interns (or retrieves) a program variable.
    pub fn var(&mut self, name: &str) -> VarId {
        self.pool.intern(name)
    }

    /// The distinguished `cost` variable.
    pub fn cost_var(&self) -> VarId {
        self.cost_var
    }

    /// Access to the variable pool being built.
    pub fn pool(&self) -> &VarPool {
        &self.pool
    }

    /// Creates a fresh location with the given name.
    pub fn location(&mut self, name: &str) -> LocId {
        let id = LocId(self.location_names.len() as u32);
        self.location_names.push(name.to_string());
        id
    }

    /// Returns the terminal location, creating it on first use.
    pub fn terminal(&mut self) -> LocId {
        if let Some(t) = self.terminal {
            return t;
        }
        let t = self.location("l_out");
        self.terminal = Some(t);
        t
    }

    /// Sets the initial location.
    pub fn set_initial(&mut self, loc: LocId) -> &mut Self {
        self.initial = Some(loc);
        self
    }

    /// Adds an inequality `expr ≥ 0` to Θ0.
    pub fn add_theta0(&mut self, expr: LinExpr) -> &mut Self {
        self.theta0.push(expr);
        self
    }

    /// Adds an equality `expr = 0` to Θ0 (encoded as two inequalities).
    pub fn add_theta0_eq(&mut self, expr: LinExpr) -> &mut Self {
        self.theta0.push(expr.clone());
        self.theta0.push(-expr);
        self
    }

    /// Starts building a transition from `source` to `target`.
    pub fn transition(&mut self, source: LocId, target: LocId) -> TransitionBuilder<'_> {
        TransitionBuilder {
            builder: self,
            transition: Transition {
                source,
                target,
                guard: Vec::new(),
                updates: BTreeMap::new(),
            },
        }
    }

    /// Adds an already-assembled transition.
    pub fn add_transition(&mut self, t: Transition) -> &mut Self {
        self.transitions.push(t);
        self
    }

    /// Finalizes the builder into a validated [`TransitionSystem`].
    ///
    /// The terminal location (created on demand) receives the self-loop required by the
    /// paper's model, and every location is checked to have at least one outgoing
    /// transition. The initial condition is extended with `cost = 0` if the builder did
    /// not constrain `cost` explicitly.
    ///
    /// # Errors
    ///
    /// Returns a [`TsError`] if no initial location was set, if a transition references a
    /// location outside the system, or if a non-terminal location is a dead end.
    pub fn build(mut self) -> Result<TransitionSystem, TsError> {
        let initial = self.initial.ok_or(TsError::MissingInitial)?;
        let terminal = self.terminal();
        // Terminal self-loop with identity update (paper Section 3).
        let has_terminal_loop = self
            .transitions
            .iter()
            .any(|t| t.source == terminal && t.target == terminal && t.guard.is_empty());
        if !has_terminal_loop {
            self.transitions.push(Transition {
                source: terminal,
                target: terminal,
                guard: Vec::new(),
                updates: BTreeMap::new(),
            });
        }
        let num_locs = self.location_names.len() as u32;
        for t in &self.transitions {
            if t.source.0 >= num_locs {
                return Err(TsError::UnknownLocation(format!("{}", t.source)));
            }
            if t.target.0 >= num_locs {
                return Err(TsError::UnknownLocation(format!("{}", t.target)));
            }
        }
        for loc in 0..num_locs {
            let loc = LocId(loc);
            if loc != terminal && !self.transitions.iter().any(|t| t.source == loc) {
                return Err(TsError::DeadEndLocation(
                    self.location_names[loc.index()].clone(),
                ));
            }
        }
        // Ensure Θ0 forces cost = 0 (add the equality if cost is not mentioned at all).
        let cost = self.cost_var;
        let mentions_cost = self.theta0.iter().any(|e| !e.coeff(cost).is_zero());
        if !mentions_cost {
            self.theta0.push(LinExpr::var(cost));
            self.theta0.push(LinExpr::var(cost).scale(&Rational::from_int(-1)));
        }
        Ok(TransitionSystem {
            pool: self.pool,
            cost_var: self.cost_var,
            location_names: self.location_names,
            transitions: self.transitions,
            initial,
            terminal,
            theta0: self.theta0,
            name: self.name,
        })
    }
}

/// Fluent builder for a single [`Transition`]; obtained from [`TsBuilder::transition`].
pub struct TransitionBuilder<'a> {
    builder: &'a mut TsBuilder,
    transition: Transition,
}

impl TransitionBuilder<'_> {
    /// Adds a guard conjunct `expr ≥ 0`.
    pub fn guard(mut self, expr: LinExpr) -> Self {
        self.transition.guard.push(expr);
        self
    }

    /// Adds a guard equality `expr = 0` (two conjuncts).
    pub fn guard_eq(mut self, expr: LinExpr) -> Self {
        self.transition.guard.push(expr.clone());
        self.transition.guard.push(-expr);
        self
    }

    /// Sets the update of a variable.
    pub fn update(mut self, var: VarId, update: Update) -> Self {
        self.transition.updates.insert(var, update);
        self
    }

    /// Adds `cost' = cost + amount` for a constant amount.
    pub fn tick(self, amount: i64) -> Self {
        let cost = self.builder.cost_var;
        self.update(
            cost,
            Update::Assign(Polynomial::var(cost) + Polynomial::from_int(amount)),
        )
    }

    /// Finishes the transition and registers it with the parent builder.
    pub fn finish(self) {
        self.builder.transitions.push(self.transition);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_loop() -> TransitionSystem {
        // while (i < n) { i++; cost++ }
        let mut b = TsBuilder::new();
        b.name("simple_loop");
        let i = b.var("i");
        let n = b.var("n");
        let head = b.location("head");
        let out = b.terminal();
        b.set_initial(head);
        b.add_theta0(LinExpr::var(n) - LinExpr::from_int(1));
        b.add_theta0(LinExpr::from_int(100) - LinExpr::var(n));
        b.add_theta0_eq(LinExpr::var(i));
        b.transition(head, head)
            .guard(LinExpr::var(n) - LinExpr::var(i) - LinExpr::from_int(1))
            .update(i, Update::assign(Polynomial::var(i) + Polynomial::from_int(1)))
            .tick(1)
            .finish();
        b.transition(head, out)
            .guard(LinExpr::var(i) - LinExpr::var(n))
            .finish();
        b.build().unwrap()
    }

    #[test]
    fn build_simple_loop() {
        let ts = simple_loop();
        assert_eq!(ts.num_locations(), 2);
        // loop, exit, terminal self-loop
        assert_eq!(ts.transitions().len(), 3);
        assert_eq!(ts.outgoing(ts.initial()).count(), 2);
        assert_eq!(ts.outgoing(ts.terminal()).count(), 1);
        assert_eq!(ts.name(), "simple_loop");
        assert!(ts.data_vars().len() == 2);
    }

    #[test]
    fn theta0_forces_cost_zero() {
        let ts = simple_loop();
        let cost = ts.cost_var();
        // Both cost >= 0 and -cost >= 0 must be present.
        let pos = ts.theta0().iter().any(|e| e.coeff(cost) == Rational::one());
        let neg = ts
            .theta0()
            .iter()
            .any(|e| e.coeff(cost) == Rational::from_int(-1));
        assert!(pos && neg);
    }

    #[test]
    fn missing_initial_is_error() {
        let mut b = TsBuilder::new();
        let _ = b.location("head");
        assert_eq!(b.build().unwrap_err(), TsError::MissingInitial);
    }

    #[test]
    fn dead_end_is_error() {
        let mut b = TsBuilder::new();
        let head = b.location("head");
        let stuck = b.location("stuck");
        b.set_initial(head);
        b.transition(head, stuck).finish();
        let err = b.build().unwrap_err();
        assert_eq!(err, TsError::DeadEndLocation("stuck".to_string()));
    }

    #[test]
    fn update_of_defaults_to_identity() {
        let ts = simple_loop();
        let n = ts.pool().lookup("n").unwrap();
        let t = &ts.transitions()[0];
        assert_eq!(t.update_of(n), Update::Assign(Polynomial::var(n)));
        assert!(!t.has_nondet());
    }

    #[test]
    fn nondet_update_flag() {
        let mut b = TsBuilder::new();
        let x = b.var("x");
        let head = b.location("head");
        let out = b.terminal();
        b.set_initial(head);
        b.transition(head, out).update(x, Update::Nondet).finish();
        let ts = b.build().unwrap();
        assert!(ts.transitions()[0].has_nondet());
    }

    #[test]
    fn render_mentions_all_parts() {
        let ts = simple_loop();
        let rendered = ts.render();
        assert!(rendered.contains("simple_loop"));
        assert!(rendered.contains("theta0"));
        assert!(rendered.contains("cost' ="));
        assert!(rendered.contains("l_out"));
    }

    #[test]
    fn error_display_messages() {
        assert!(TsError::MissingInitial.to_string().contains("initial"));
        assert!(TsError::DeadEndLocation("x".into()).to_string().contains("x"));
        assert!(TsError::UnknownLocation("l9".into()).to_string().contains("l9"));
        assert!(TsError::CostNotZeroInitially.to_string().contains("cost"));
    }
}
