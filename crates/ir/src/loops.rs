//! Loop-nest structure of a transition system: back edges, headers, bodies, nesting.
//!
//! The invariant engine's precision tiers (see the `dca_invariants` crate) need to know
//! *where the loops are*: widening should only happen at loop headers, inner loops
//! should stabilize before their enclosing loop re-iterates, and the relational
//! strengthening pass reasons about the counters of an inner loop relative to the state
//! of its enclosing loop. This module derives all of that from the raw transition graph.
//!
//! The control-flow graphs produced by the `dca_lang` lowering are reducible (structured
//! `while`/`if` programs), so the classic depth-first-search characterization applies: a
//! *back edge* is a transition whose target is on the current DFS stack, its target is a
//! *loop header*, and the *natural loop body* of a header is everything that can reach
//! the back edge's source without passing through the header. Hand-built irreducible
//! graphs degrade gracefully: every DFS-retreating edge is treated as a back edge, which
//! over-approximates the set of widening points (sound for the analysis, merely less
//! precise).

use std::collections::{BTreeMap, BTreeSet};

use crate::system::{LocId, TransitionSystem};

/// One back edge of the transition graph: `source -> header` closes a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackEdge {
    /// Index of the transition in [`TransitionSystem::transitions`].
    pub transition: usize,
    /// The source location (inside the loop).
    pub source: LocId,
    /// The loop-header location the edge jumps back to.
    pub header: LocId,
}

/// The loop-nest structure of a transition system.
///
/// # Examples
///
/// ```
/// use dca_ir::{LoopNest, TsBuilder, Update};
/// use dca_poly::{LinExpr, Polynomial};
///
/// // while (i < n) { i++ }
/// let mut b = TsBuilder::new();
/// let i = b.var("i");
/// let n = b.var("n");
/// let head = b.location("head");
/// let out = b.terminal();
/// b.set_initial(head);
/// b.add_theta0(LinExpr::var(n));
/// b.transition(head, head)
///     .guard(LinExpr::var(n) - LinExpr::var(i) - LinExpr::from_int(1))
///     .update(i, Update::assign(Polynomial::var(i) + Polynomial::from_int(1)))
///     .finish();
/// b.transition(head, out).guard(LinExpr::var(i) - LinExpr::var(n)).finish();
/// let ts = b.build().unwrap();
///
/// let nest = LoopNest::analyze(&ts);
/// assert!(nest.is_header(head));
/// assert_eq!(nest.depth(head), 1);
/// assert_eq!(nest.depth(out), 0);
/// ```
#[derive(Debug, Clone)]
pub struct LoopNest {
    back_edges: Vec<BackEdge>,
    /// Header -> all locations of its natural loop (header included).
    bodies: BTreeMap<LocId, BTreeSet<LocId>>,
    /// Header -> innermost enclosing header (if any).
    parents: BTreeMap<LocId, LocId>,
    /// Location -> nesting depth (0 = outside every loop).
    depths: BTreeMap<LocId, usize>,
}

impl LoopNest {
    /// Computes the loop nest of a transition system.
    ///
    /// The terminal self-loop required by the paper's model is *not* reported as a loop:
    /// it carries no computation and would otherwise make every system "looping".
    pub fn analyze(ts: &TransitionSystem) -> LoopNest {
        let num_locs = ts.num_locations();
        let mut successors: Vec<Vec<(usize, LocId)>> = vec![Vec::new(); num_locs];
        for (index, t) in ts.transitions().iter().enumerate() {
            if t.source == ts.terminal() && t.target == ts.terminal() {
                continue;
            }
            successors[t.source.index()].push((index, t.target));
        }

        // Iterative DFS from the initial location; an edge to a location still on the
        // stack is a back edge.
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            Unseen,
            OnStack,
            Done,
        }
        let mut marks = vec![Mark::Unseen; num_locs];
        let mut back_edges: Vec<BackEdge> = Vec::new();
        // (location, next successor index) frames.
        let mut stack: Vec<(LocId, usize)> = vec![(ts.initial(), 0)];
        marks[ts.initial().index()] = Mark::OnStack;
        while let Some(&mut (loc, ref mut next)) = stack.last_mut() {
            if let Some(&(transition, target)) = successors[loc.index()].get(*next) {
                *next += 1;
                match marks[target.index()] {
                    Mark::Unseen => {
                        marks[target.index()] = Mark::OnStack;
                        stack.push((target, 0));
                    }
                    Mark::OnStack => {
                        back_edges.push(BackEdge { transition, source: loc, header: target });
                    }
                    Mark::Done => {}
                }
            } else {
                marks[loc.index()] = Mark::Done;
                stack.pop();
            }
        }

        // Natural loop of each back edge: everything reaching the back-edge source
        // backwards without going through the header.
        let mut predecessors: Vec<Vec<LocId>> = vec![Vec::new(); num_locs];
        for t in ts.transitions() {
            if t.source == ts.terminal() && t.target == ts.terminal() {
                continue;
            }
            predecessors[t.target.index()].push(t.source);
        }
        let mut bodies: BTreeMap<LocId, BTreeSet<LocId>> = BTreeMap::new();
        for edge in &back_edges {
            let body = bodies.entry(edge.header).or_default();
            body.insert(edge.header);
            let mut worklist = vec![edge.source];
            while let Some(loc) = worklist.pop() {
                if body.insert(loc) {
                    worklist.extend(predecessors[loc.index()].iter().copied());
                }
            }
        }

        // Nesting: the parent of header h is the innermost *other* header whose body
        // contains h; depth of a location is the number of bodies containing it.
        let mut parents: BTreeMap<LocId, LocId> = BTreeMap::new();
        for &header in bodies.keys() {
            let mut best: Option<(LocId, usize)> = None;
            for (&other, other_body) in &bodies {
                if other != header && other_body.contains(&header) {
                    let size = other_body.len();
                    if best.is_none_or(|(_, s)| size < s) {
                        best = Some((other, size));
                    }
                }
            }
            if let Some((parent, _)) = best {
                parents.insert(header, parent);
            }
        }
        let mut depths: BTreeMap<LocId, usize> = BTreeMap::new();
        for loc in ts.locations() {
            let depth = bodies.values().filter(|body| body.contains(&loc)).count();
            depths.insert(loc, depth);
        }

        LoopNest { back_edges, bodies, parents, depths }
    }

    /// All back edges, in DFS discovery order.
    pub fn back_edges(&self) -> &[BackEdge] {
        &self.back_edges
    }

    /// The loop headers (targets of back edges), outermost-first by nesting depth.
    pub fn headers(&self) -> Vec<LocId> {
        let mut headers: Vec<LocId> = self.bodies.keys().copied().collect();
        headers.sort_by_key(|h| (self.depth(*h), h.index()));
        headers
    }

    /// Returns `true` if `loc` is a loop header.
    pub fn is_header(&self, loc: LocId) -> bool {
        self.bodies.contains_key(&loc)
    }

    /// The locations of the natural loop of `header` (header included), or `None` if the
    /// location is not a header.
    pub fn body(&self, header: LocId) -> Option<&BTreeSet<LocId>> {
        self.bodies.get(&header)
    }

    /// The innermost loop header strictly enclosing `header`, if any.
    pub fn parent(&self, header: LocId) -> Option<LocId> {
        self.parents.get(&header).copied()
    }

    /// The loop-nesting depth of a location (0 = not inside any loop).
    pub fn depth(&self, loc: LocId) -> usize {
        self.depths.get(&loc).copied().unwrap_or(0)
    }

    /// The innermost header whose body contains `loc` (the header itself for headers).
    pub fn innermost_enclosing(&self, loc: LocId) -> Option<LocId> {
        self.bodies
            .iter()
            .filter(|(_, body)| body.contains(&loc))
            .min_by_key(|(_, body)| body.len())
            .map(|(&header, _)| header)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{TsBuilder, Update};
    use dca_poly::{LinExpr, Polynomial};

    /// for i in 0..n { for j in 0..m { .. } } as a 4-location system.
    fn nested() -> (TransitionSystem, LocId, LocId) {
        let mut b = TsBuilder::new();
        let i = b.var("i");
        let j = b.var("j");
        let n = b.var("n");
        let m = b.var("m");
        let outer = b.location("outer");
        let inner = b.location("inner");
        let out = b.terminal();
        b.set_initial(outer);
        b.add_theta0(LinExpr::var(n) - LinExpr::from_int(1));
        b.transition(outer, inner)
            .guard(LinExpr::var(n) - LinExpr::var(i) - LinExpr::from_int(1))
            .update(j, Update::assign(Polynomial::zero()))
            .finish();
        b.transition(inner, inner)
            .guard(LinExpr::var(m) - LinExpr::var(j) - LinExpr::from_int(1))
            .update(j, Update::assign(Polynomial::var(j) + Polynomial::from_int(1)))
            .finish();
        b.transition(inner, outer)
            .guard(LinExpr::var(j) - LinExpr::var(m))
            .update(i, Update::assign(Polynomial::var(i) + Polynomial::from_int(1)))
            .finish();
        b.transition(outer, out)
            .guard(LinExpr::var(i) - LinExpr::var(n))
            .finish();
        let ts = b.build().unwrap();
        (ts, outer, inner)
    }

    #[test]
    fn nested_loop_structure() {
        let (ts, outer, inner) = nested();
        let nest = LoopNest::analyze(&ts);
        assert_eq!(nest.back_edges().len(), 2);
        assert!(nest.is_header(outer));
        assert!(nest.is_header(inner));
        assert_eq!(nest.headers(), vec![outer, inner]);
        assert_eq!(nest.parent(inner), Some(outer));
        assert_eq!(nest.parent(outer), None);
        assert_eq!(nest.depth(outer), 1);
        assert_eq!(nest.depth(inner), 2);
        assert_eq!(nest.depth(ts.terminal()), 0);
        // The outer body contains the inner loop entirely.
        let outer_body = nest.body(outer).unwrap();
        assert!(outer_body.contains(&inner));
        assert_eq!(nest.innermost_enclosing(inner), Some(inner));
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut b = TsBuilder::new();
        let x = b.var("x");
        let start = b.location("start");
        let out = b.terminal();
        b.set_initial(start);
        b.add_theta0(LinExpr::var(x));
        b.transition(start, out).finish();
        let ts = b.build().unwrap();
        let nest = LoopNest::analyze(&ts);
        assert!(nest.back_edges().is_empty());
        assert!(nest.headers().is_empty());
        assert!(!nest.is_header(start));
        // The terminal self-loop is not reported as a loop.
        assert_eq!(nest.depth(out), 0);
        assert_eq!(nest.innermost_enclosing(start), None);
    }

    /// The shape the `dca_lang` lowering produces: headers separated from the back-edge
    /// sources by intermediate "step" locations.
    #[test]
    fn headers_found_through_intermediate_locations() {
        let mut b = TsBuilder::new();
        let i = b.var("i");
        let n = b.var("n");
        let entry = b.location("entry");
        let head = b.location("while_head");
        let body = b.location("body");
        let step = b.location("step");
        let exit = b.location("while_exit");
        let out = b.terminal();
        b.set_initial(entry);
        b.add_theta0(LinExpr::var(n) - LinExpr::from_int(1));
        b.transition(entry, head)
            .update(i, Update::assign(Polynomial::zero()))
            .finish();
        b.transition(head, body)
            .guard(LinExpr::var(n) - LinExpr::var(i) - LinExpr::from_int(1))
            .finish();
        b.transition(body, step)
            .update(i, Update::assign(Polynomial::var(i) + Polynomial::from_int(1)))
            .finish();
        b.transition(step, head).finish();
        b.transition(head, exit).guard(LinExpr::var(i) - LinExpr::var(n)).finish();
        b.transition(exit, out).finish();
        let ts = b.build().unwrap();
        let nest = LoopNest::analyze(&ts);
        assert_eq!(nest.headers(), vec![head]);
        let loop_body = nest.body(head).unwrap();
        assert!(loop_body.contains(&body) && loop_body.contains(&step));
        assert!(!loop_body.contains(&entry) && !loop_body.contains(&exit));
        assert_eq!(nest.depth(body), 1);
        assert_eq!(nest.innermost_enclosing(step), Some(head));
    }
}
