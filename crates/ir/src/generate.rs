//! Seeded generator of benchmark program pairs with known-by-construction bounds.
//!
//! Table 1 validates the reproduction on twenty hand-written pairs; this module is the
//! machinery behind "Table 2": a deterministic, parameterized emitter of program pairs
//! in the mini-language whose *exact* difference bound is known at generation time.
//! The recipe mirrors how the hand pairs were built — clone a deterministic base
//! program, then inject counted cost deltas into loops whose trip counts are derivable
//! from the generation parameters — so every emitted pair doubles as an oracle:
//!
//! * the base program (`source_old`) is a nest of counting loops with constant-amplitude
//!   `tick`s and compile-time input boxes (`assume(n >= 1 && n <= B)`),
//! * the revision (`source_new`) amplifies a tick at a chosen loop depth, optionally
//!   behind a non-deterministic `if (*)` branch, optionally adds a dependent inner loop
//!   or a one-shot setup tick — each with a contribution `delta × trip-count` that is a
//!   closed-form function of the drawn bounds,
//! * `tight` is the sum of those contributions: the exact supremum of
//!   `CostSup_new(x) − CostInf_old(x)` over the input box, attained at the upper-bound
//!   corner (all contributions are monotone in the inputs and the base cost cancels).
//!
//! Everything is driven by [`SmallRng`], so a `(seed, shape)` pair reproduces the same
//! sources bit-for-bit on every platform — the committed Table-2 manifest is code, not
//! data. Per the ROADMAP fuzz guidance for the 1-CPU benchmark box, the emitter never
//! produces more than [`MAX_BLOCK_STATEMENTS`] consecutive simple statements, keeping
//! the lowered transition systems (and hence the LPs) small.

use crate::rng::SmallRng;

/// Hard cap on consecutive simple (non-control) statements in any emitted block.
///
/// Every simple statement lowers to its own transition, so straight-line runs translate
/// directly into LP template locations; the ROADMAP fuzz guidance caps generated basic
/// blocks at 2 statements to keep generated LPs tractable on a 1-CPU box. The emitter
/// asserts the cap at generation time and [`GeneratedPair::max_block_len`] records the
/// longest run actually emitted, so tests can verify the guidance holds corpus-wide.
pub const MAX_BLOCK_STATEMENTS: usize = 2;

/// How the revision relates to the base program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairKind {
    /// The revision injects counted cost deltas; `tight` is their summed contribution.
    Delta,
    /// The revision is a semantics-preserving rewrite (loops count down instead of
    /// up); `tight` is exactly 0.
    Equivalent,
}

/// One cell of the Table-2 shape grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapeParams {
    /// Structural loop-nesting depth (1–3). Depth 3 adds a zero-cost innermost
    /// spinner loop, exercising deep nests without forcing degree-3 templates.
    pub depth: u32,
    /// Number of sequential top-level loop phases (counters are reused across phases).
    /// Phase 0 carries the full `depth`-deep nest; later phases are depth-1 counting
    /// loops — sequential composition is what multi-phase shapes exercise, and
    /// repeating the whole nest per phase doubles the LP for no extra coverage
    /// (measured ~7x solver cost on the 1-CPU bench box).
    pub phases: u32,
    /// Inject a *dependent* inner loop into the revision: extra cost `d·n·m` from a
    /// loop that exists only in the new version (the `SimpleMultipleDep` idiom).
    pub dependent: bool,
    /// Express the phase-0 delta behind a non-deterministic `if (*)` branch
    /// (disjunctive guard); the worst-case branch carries the delta.
    pub disjunctive: bool,
    /// Straight-line padding: a constant prelude tick per phase and an epilogue tick
    /// (both versions), plus a one-shot setup delta in the revision.
    pub padding: bool,
    /// Phase-flip revision: the depth-1 tick of phase 0 changes amplitude once the
    /// loop counter crosses a drawn threshold (`if (i < c) tick(a) else tick(a+d)`),
    /// the shape class exercising the loop-phase splitting pass. The flip guard
    /// lowers to an exact-negation conjunct pair over the non-decreasing counter,
    /// which is precisely what `crate::detect_phase_splits` looks for. Only affects
    /// `Delta` revisions (the `Equivalent` rewrite carries no injections).
    pub phase_flip: bool,
    /// Delta-injection pair or equivalent rewrite.
    pub kind: PairKind,
}

impl ShapeParams {
    /// A compact stable tag for benchmark names: kind, depth, phases, flag letters
    /// (`b` dependent bounds, `g` disjunctive guard, `s` straight-line padding,
    /// `f` phase-flip amplitude change).
    pub fn tag(&self) -> String {
        let kind = match self.kind {
            PairKind::Delta => 'D',
            PairKind::Equivalent => 'E',
        };
        let mut tag = format!("{kind}d{}p{}", self.depth, self.phases);
        if self.dependent {
            tag.push('b');
        }
        if self.disjunctive {
            tag.push('g');
        }
        if self.padding {
            tag.push('s');
        }
        if self.phase_flip {
            tag.push('f');
        }
        tag
    }
}

/// A generated program pair plus its by-construction oracle data.
#[derive(Debug, Clone)]
pub struct GeneratedPair {
    /// Stable benchmark name: `t2_<shape tag>_<seed>`.
    pub name: String,
    /// The seed that produced this pair (with [`ShapeParams`], fully reproducing it).
    pub seed: u64,
    /// The shape-grid cell this pair was drawn from.
    pub shape: ShapeParams,
    /// Source of the base (old) version.
    pub source_old: String,
    /// Source of the revised (new) version.
    pub source_new: String,
    /// The exact difference bound `sup_x (CostSup_new − CostInf_old)`, by construction.
    pub tight: i64,
    /// The template degree sufficient (and expected necessary) to prove `tight`.
    pub degree: u32,
    /// Upper bound of the primary input `n`.
    pub bound_n: i64,
    /// Upper bound of the secondary input `m` (0 when `m` is not used).
    pub bound_m: i64,
    /// Longest run of consecutive simple statements actually emitted
    /// (≤ [`MAX_BLOCK_STATEMENTS`] by construction).
    pub max_block_len: usize,
}

/// Everything drawn from the RNG, fixed before rendering so the old and new versions
/// are rendered from the *same* plan and differ only by the injections.
#[derive(Debug, Clone)]
struct Plan {
    shape: ShapeParams,
    bound_n: i64,
    bound_m: i64,
    uses_m: bool,
    /// Per-phase base tick amplitude at depth 1.
    base1: Vec<i64>,
    /// Per-phase base tick amplitude at depth 2 (unused entries 0).
    base2: Vec<i64>,
    /// Per-phase injection site depth (1 or 2) and delta amplitude.
    site: Vec<u32>,
    delta: Vec<i64>,
    /// Dependent inner-loop tick amplitude (0 when the class is off).
    dep_delta: i64,
    /// Padding prelude amplitude per phase, epilogue amplitude, one-shot setup delta.
    pad_prelude: Vec<i64>,
    pad_epilogue: i64,
    pad_setup_delta: i64,
    /// Phase-flip threshold (`1 ≤ flip_at < bound_n`) and the extra amplitude the
    /// depth-1 tick of phase 0 gains once `i ≥ flip_at` (both 0 when the class is
    /// off). Drawn *after* every other field so pre-existing `(seed, shape)` cells
    /// keep byte-identical sources.
    flip_at: i64,
    flip_delta: i64,
}

impl Plan {
    fn draw(rng: &mut SmallRng, shape: ShapeParams) -> Plan {
        let depth = shape.depth;
        let phases = shape.phases as usize;
        let is_delta = shape.kind == PairKind::Delta;
        let bound_n = rng.gen_range_inclusive(3, 12);
        let uses_m = depth >= 2 || shape.dependent;
        let bound_m = if uses_m { rng.gen_range_inclusive(2, 9) } else { 0 };
        let mut base1 = Vec::new();
        let mut base2 = Vec::new();
        let mut site = Vec::new();
        let mut delta = Vec::new();
        let mut pad_prelude = Vec::new();
        for phase in 0..phases {
            base1.push(rng.gen_range_inclusive(1, 3));
            base2.push(if depth >= 2 { rng.gen_range_inclusive(1, 2) } else { 0 });
            // Later phases are depth-1 loops, so their injection site is pinned to 1.
            let max_site = if phase == 0 { depth.min(2) } else { 1 };
            site.push(rng.gen_range_inclusive(1, max_site as i64) as u32);
            delta.push(if is_delta { rng.gen_range_inclusive(1, 3) } else { 0 });
            pad_prelude.push(if shape.padding { rng.gen_range_inclusive(1, 2) } else { 0 });
        }
        let dep_delta =
            if is_delta && shape.dependent { rng.gen_range_inclusive(1, 2) } else { 0 };
        let pad_epilogue = if shape.padding { rng.gen_range_inclusive(1, 2) } else { 0 };
        let pad_setup_delta =
            if is_delta && shape.padding { rng.gen_range_inclusive(1, 3) } else { 0 };
        let flip_at =
            if shape.phase_flip { rng.gen_range_inclusive(1, bound_n - 1) } else { 0 };
        let flip_delta =
            if is_delta && shape.phase_flip { rng.gen_range_inclusive(1, 3) } else { 0 };
        Plan {
            shape,
            bound_n,
            bound_m,
            uses_m,
            base1,
            base2,
            site,
            delta,
            dep_delta,
            pad_prelude,
            pad_epilogue,
            pad_setup_delta,
            flip_at,
            flip_delta,
        }
    }

    /// Trip count of an injection site at the upper-bound corner of the input box.
    fn trips(&self, site_depth: u32) -> i64 {
        match site_depth {
            1 => self.bound_n,
            2 => self.bound_n * self.bound_m,
            other => unreachable!("no injection sites at depth {other}"),
        }
    }

    /// The exact difference bound: the summed worst-case contribution of every
    /// injection, attained simultaneously at the all-upper-bounds input corner.
    fn tight(&self) -> i64 {
        if self.shape.kind == PairKind::Equivalent {
            return 0;
        }
        let mut total = 0;
        for (site, delta) in self.site.iter().zip(&self.delta) {
            total += delta * self.trips(*site);
        }
        if self.shape.dependent {
            total += self.dep_delta * self.bound_n * self.bound_m;
        }
        if self.shape.phase_flip {
            // The flipped tick pays `flip_delta` extra on each of the
            // `n - flip_at` iterations with `i ≥ flip_at`; the revision-vs-base
            // difference is monotone in `n`, so the supremum sits at the corner.
            total += self.flip_delta * (self.bound_n - self.flip_at);
        }
        total + self.pad_setup_delta
    }

    /// Effective nesting depth of a phase: phase 0 carries the full nest, later
    /// phases are plain depth-1 counting loops (see [`ShapeParams::phases`]).
    fn phase_depth(&self, phase: usize) -> u32 {
        if phase == 0 {
            self.shape.depth
        } else {
            1
        }
    }

    /// Degree of the densest cost polynomial either version carries: bilinear
    /// (`n·m`) cost appears as soon as a tick sits at depth 2 or a dependent inner
    /// loop is injected; everything else is affine. The depth-3 spinner loop carries
    /// no cost, so structural depth 3 does not force degree 3.
    fn degree(&self) -> u32 {
        if self.shape.depth >= 2 || self.shape.dependent {
            2
        } else {
            1
        }
    }
}

/// Statement emitter enforcing the [`MAX_BLOCK_STATEMENTS`] cap on straight-line runs.
struct Emitter {
    lines: Vec<String>,
    indent: usize,
    run: usize,
    max_run: usize,
}

impl Emitter {
    fn new() -> Emitter {
        Emitter { lines: Vec::new(), indent: 0, run: 0, max_run: 0 }
    }

    fn line(&mut self, text: &str) {
        self.lines.push(format!("{}{}", "    ".repeat(self.indent), text));
    }

    /// A simple statement (assignment or tick): extends the current straight-line run.
    fn simple(&mut self, text: &str) {
        self.run += 1;
        self.max_run = self.max_run.max(self.run);
        assert!(
            self.run <= MAX_BLOCK_STATEMENTS,
            "generator emitted a straight-line run longer than {MAX_BLOCK_STATEMENTS}: {text}"
        );
        self.line(text);
    }

    /// A control statement header (`while`, `if`): ends the current run.
    fn open(&mut self, header: &str) {
        self.run = 0;
        self.line(header);
        self.indent += 1;
    }

    fn close(&mut self, footer: &str) {
        self.run = 0;
        self.indent -= 1;
        self.line(footer);
    }

    fn finish(self) -> (String, usize) {
        (self.lines.join("\n"), self.max_run)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Version {
    Old,
    New,
}

/// Renders one version of the pair from the plan.
fn render(plan: &Plan, version: Version) -> (String, usize) {
    let new = version == Version::New;
    let equivalent = plan.shape.kind == PairKind::Equivalent;
    // The equivalent rewrite flips every loop to count down; injections only exist in
    // Delta revisions.
    let rewrite = new && equivalent;
    let inject = new && !equivalent;
    let mut e = Emitter::new();
    let params = if plan.uses_m { "n, m" } else { "n" };
    e.open(&format!("proc t2({params}) {{"));
    let mut assume = format!("n >= 1 && n <= {}", plan.bound_n);
    if plan.uses_m {
        assume.push_str(&format!(" && m >= 1 && m <= {}", plan.bound_m));
    }
    e.simple(&format!("assume({assume});"));
    // `assume` lowers into Θ0, not into a transition, so it does not start a run.
    e.run = 0;

    for phase in 0..plan.shape.phases as usize {
        if plan.shape.padding {
            let mut amplitude = plan.pad_prelude[phase];
            if inject && phase == 0 {
                amplitude += plan.pad_setup_delta;
            }
            e.simple(&format!("tick({amplitude});"));
        }
        render_loop(&mut e, plan, phase, 1, rewrite, inject);
    }
    if plan.shape.padding {
        e.simple(&format!("tick({});", plan.pad_epilogue));
    }
    e.close("}");
    e.finish()
}

/// Renders the loop nest of one phase from `level` inward.
fn render_loop(e: &mut Emitter, plan: &Plan, phase: usize, level: u32, rewrite: bool, inject: bool) {
    let (counter, bound) = match level {
        1 => ("i", "n"),
        2 => ("j", "m"),
        3 => ("k", "m"),
        other => unreachable!("no loops at level {other}"),
    };
    if rewrite {
        e.simple(&format!("{counter} = {bound};"));
        e.open(&format!("while ({counter} > 0) {{"));
    } else {
        e.simple(&format!("{counter} = 0;"));
        e.open(&format!("while ({counter} < {bound}) {{"));
    }

    // The cost-carrying body: depth-3 spinner loops are cost-free by design (they
    // exercise deep nesting without forcing degree-3 templates).
    if level <= 2 {
        let base = if level == 1 { plan.base1[phase] } else { plan.base2[phase] };
        if base > 0 {
            let injected = inject && plan.site[phase] == level;
            let amplitude = if injected { base + plan.delta[phase] } else { base };
            if inject && plan.shape.phase_flip && level == 1 && phase == 0 {
                // Phase flip: the tick amplitude grows once the counter crosses
                // the drawn threshold. The guard lowers to the exact-negation
                // conjunct pair the loop-phase splitting pass detects.
                e.open(&format!("if ({counter} < {}) {{", plan.flip_at));
                e.simple(&format!("tick({amplitude});"));
                e.close(&format!("}} else {{ tick({}); }}", amplitude + plan.flip_delta));
            } else if injected && plan.shape.disjunctive && phase == 0 {
                // Disjunctive guard: the delta hides in the worst-case branch.
                e.open("if (*) {");
                e.simple(&format!("tick({amplitude});"));
                e.close(&format!("}} else {{ tick({base}); }}"));
            } else {
                e.simple(&format!("tick({amplitude});"));
            }
        }
        if level < plan.phase_depth(phase) {
            render_loop(e, plan, phase, level + 1, rewrite, inject);
        }
        // The dependent inner loop exists only in the revision, at depth 1 of phase 0.
        if inject && plan.shape.dependent && level == 1 && phase == 0 {
            e.simple("q = 0;");
            e.open("while (q < m) {");
            e.simple(&format!("tick({});", plan.dep_delta));
            e.simple("q = q + 1;");
            e.close("}");
        }
    }

    if rewrite {
        e.simple(&format!("{counter} = {counter} - 1;"));
    } else {
        e.simple(&format!("{counter} = {counter} + 1;"));
    }
    e.close("}");
}

/// Generates one program pair from a seed and a shape-grid cell.
///
/// Determinism contract: equal `(seed, shape)` inputs produce byte-identical sources
/// and identical oracle data on every platform (all draws go through [`SmallRng`],
/// whose stream is pinned by a golden test).
pub fn generate_pair(seed: u64, shape: &ShapeParams) -> GeneratedPair {
    assert!((1..=3).contains(&shape.depth), "depth must be 1–3");
    assert!((1..=3).contains(&shape.phases), "phases must be 1–3");
    let mut rng = SmallRng::seed_from_u64(seed);
    let plan = Plan::draw(&mut rng, *shape);
    let (source_old, run_old) = render(&plan, Version::Old);
    let (source_new, run_new) = render(&plan, Version::New);
    GeneratedPair {
        name: format!("t2_{}_{:05}", shape.tag(), seed & 0xFFFF),
        seed,
        shape: *shape,
        source_old,
        source_new,
        tight: plan.tight(),
        degree: plan.degree(),
        bound_n: plan.bound_n,
        bound_m: plan.bound_m,
        max_block_len: run_old.max(run_new),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(depth: u32, phases: u32, dep: bool, dis: bool, pad: bool) -> ShapeParams {
        ShapeParams {
            depth,
            phases,
            dependent: dep,
            disjunctive: dis,
            padding: pad,
            phase_flip: false,
            kind: PairKind::Delta,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = shape(2, 2, true, true, true);
        let a = generate_pair(17, &s);
        let b = generate_pair(17, &s);
        assert_eq!(a.source_old, b.source_old);
        assert_eq!(a.source_new, b.source_new);
        assert_eq!(a.tight, b.tight);
        let c = generate_pair(18, &s);
        assert!(a.source_old != c.source_old || a.tight != c.tight);
    }

    #[test]
    fn equivalent_pairs_have_zero_tight_and_differ_syntactically() {
        let s = ShapeParams {
            depth: 2,
            phases: 1,
            dependent: false,
            disjunctive: false,
            padding: true,
            phase_flip: false,
            kind: PairKind::Equivalent,
        };
        let pair = generate_pair(5, &s);
        assert_eq!(pair.tight, 0);
        assert_ne!(pair.source_old, pair.source_new, "rewrite must change the text");
        assert!(pair.source_new.contains("i = n;"), "count-down rewrite");
        assert!(pair.source_new.contains("while (i > 0)"));
    }

    #[test]
    fn delta_pairs_have_positive_tight() {
        for depth in 1..=3 {
            for &dep in &[false, true] {
                let pair = generate_pair(depth as u64 * 7 + dep as u64, &shape(depth, 1, dep, false, false));
                assert!(pair.tight > 0, "delta pairs always inject something");
                assert_eq!(pair.degree, if depth >= 2 || dep { 2 } else { 1 });
            }
        }
    }

    #[test]
    fn block_cap_is_respected_across_the_grid() {
        for depth in 1..=3u32 {
            for phases in 1..=2u32 {
                for flags in 0..8u32 {
                    let s = shape(
                        depth,
                        phases,
                        flags & 1 != 0,
                        flags & 2 != 0,
                        flags & 4 != 0,
                    );
                    for seed in 0..8u64 {
                        let pair = generate_pair(seed, &s);
                        assert!(
                            pair.max_block_len <= MAX_BLOCK_STATEMENTS,
                            "{}: run of {} simple statements",
                            pair.name,
                            pair.max_block_len
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn phase_flip_revisions_flip_once_and_split() {
        let s = ShapeParams { phase_flip: true, ..shape(1, 1, false, false, false) };
        for seed in 0..16u64 {
            let pair = generate_pair(seed, &s);
            assert!(pair.name.contains("Dd1p1f"), "tag letter f: {}", pair.name);
            assert!(pair.source_new.contains("if (i < "), "flip guard: {}", pair.source_new);
            assert!(!pair.source_old.contains("if ("), "base has no branch");
            assert!(pair.tight > 0);
            assert!(pair.max_block_len <= MAX_BLOCK_STATEMENTS);
            // The lowered revision exhibits exactly the structure the loop-phase
            // splitting pass detects: a non-increasing predicate tested against
            // its exact negation inside the loop body.
            let pre_flip = ts_of(&pair.source_new);
            assert_eq!(crate::split::detect_phase_splits(&pre_flip).len(), 1, "{}", pair.source_new);
            assert!(crate::split::detect_phase_splits(&ts_of(&pair.source_old)).is_empty());
        }
    }

    /// Hand-lowers a generated phase-flip source far enough for split detection:
    /// the `dca_ir` crate cannot depend on the `dca_lang` compiler (it is a
    /// dependency of it), so this mimics the lowering of the exact statement
    /// shapes the generator emits. Full end-to-end coverage (compile + solve +
    /// verify) lives in the workspace-level `split_soundness` test.
    fn ts_of(source: &str) -> crate::system::TransitionSystem {
        use crate::system::{TsBuilder, Update};
        use dca_poly::{LinExpr, Polynomial};
        let mut b = TsBuilder::new();
        let i = b.var("i");
        let n = b.var("n");
        let head = b.location("head");
        let mut current = b.location("entry");
        b.set_initial(current);
        b.add_theta0(LinExpr::var(n) - LinExpr::from_int(1));
        // entry: i = 0
        b.transition(current, head)
            .update(i, Update::assign(Polynomial::zero()))
            .finish();
        // while (i < n)
        let body = b.location("body");
        b.transition(head, body)
            .guard(LinExpr::var(n) - LinExpr::var(i) - LinExpr::from_int(1))
            .finish();
        let out = b.terminal();
        b.transition(head, out).guard(LinExpr::var(i) - LinExpr::var(n)).finish();
        current = body;
        // optional flip branch: if (i < c) tick else tick — re-joined immediately
        if let Some(pos) = source.find("if (i < ") {
            let rest = &source[pos + 8..];
            let c: i64 = rest[..rest.find(')').unwrap()].parse().unwrap();
            let join = b.location("join");
            b.transition(current, join)
                .guard(LinExpr::from_int(c) - LinExpr::var(i) - LinExpr::from_int(1))
                .tick(1)
                .finish();
            b.transition(current, join)
                .guard(LinExpr::var(i) - LinExpr::from_int(c))
                .tick(2)
                .finish();
            current = join;
        } else {
            let join = b.location("join");
            b.transition(current, join).tick(1).finish();
            current = join;
        }
        // i = i + 1; back edge
        b.transition(current, head)
            .update(i, Update::assign(Polynomial::var(i) + Polynomial::from_int(1)))
            .finish();
        b.build().unwrap()
    }

    #[test]
    fn disjunctive_revisions_branch_nondeterministically() {
        let pair = generate_pair(3, &shape(1, 1, false, true, false));
        assert!(pair.source_new.contains("if (*)"));
        assert!(!pair.source_old.contains("if (*)"), "base stays deterministic");
    }

    #[test]
    fn sources_share_the_same_interface() {
        // Old and new must declare the same parameters and the same Θ0 box, so the
        // differential analysis quantifies over a shared initial region.
        for s in [shape(1, 1, true, false, false), shape(3, 2, true, true, true)] {
            let pair = generate_pair(11, &s);
            let header = |src: &str| {
                src.lines()
                    .take(2)
                    .map(|l| l.trim().to_string())
                    .collect::<Vec<_>>()
            };
            assert_eq!(header(&pair.source_old), header(&pair.source_new));
        }
    }
}
