//! A reference interpreter for transition systems.
//!
//! The interpreter is not part of the analysis itself; it is the ground truth used by the
//! test-suite and by the result verifier to compare computed thresholds against the cost
//! of concrete executions.

use dca_poly::VarId;

use crate::rng::SmallRng;
use crate::state::{eval_polynomial_int, satisfies_all, IntValuation, State};
use crate::system::{TransitionSystem, Update};

/// Supplies values for non-deterministic updates during interpretation.
pub trait NondetOracle {
    /// Chooses the value assigned to `var` by a non-deterministic update taken from the
    /// given state.
    fn choose(&mut self, var: VarId, state: &State) -> i64;
}

/// An oracle that always returns the same constant.
#[derive(Debug, Clone, Copy)]
pub struct FixedOracle(pub i64);

impl NondetOracle for FixedOracle {
    fn choose(&mut self, _var: VarId, _state: &State) -> i64 {
        self.0
    }
}

/// An oracle that draws uniformly from a closed range using a seeded RNG.
#[derive(Debug)]
pub struct RandomOracle {
    rng: SmallRng,
    lo: i64,
    hi: i64,
}

impl RandomOracle {
    /// Creates an oracle drawing from `[lo, hi]` with the given seed.
    pub fn new(seed: u64, lo: i64, hi: i64) -> RandomOracle {
        assert!(lo <= hi, "empty range for RandomOracle");
        RandomOracle { rng: SmallRng::seed_from_u64(seed), lo, hi }
    }
}

impl NondetOracle for RandomOracle {
    fn choose(&mut self, _var: VarId, _state: &State) -> i64 {
        self.rng.gen_range_inclusive(self.lo, self.hi)
    }
}

/// How a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The run reached the terminal location.
    Terminated,
    /// The step budget was exhausted before reaching the terminal location.
    StepLimit,
    /// No transition was enabled (models a stuck state; well-formed systems avoid this).
    Stuck,
}

/// The result of interpreting a transition system from one initial valuation.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Total incurred cost: final `cost` minus initial `cost`.
    pub cost: i64,
    /// Number of transitions taken.
    pub steps: usize,
    /// The final state.
    pub final_state: State,
}

/// The reference interpreter.
#[derive(Debug, Clone, Copy)]
pub struct Interpreter {
    max_steps: usize,
}

impl Default for Interpreter {
    fn default() -> Self {
        Interpreter::new(1_000_000)
    }
}

impl Interpreter {
    /// Creates an interpreter with the given step budget.
    pub fn new(max_steps: usize) -> Interpreter {
        Interpreter { max_steps }
    }

    /// Runs the transition system from the given initial valuation.
    ///
    /// At each step the *first* enabled transition (in declaration order) is taken; ties
    /// between several enabled transitions therefore resolve deterministically, while
    /// non-deterministic *updates* consult the oracle. This matches the usual convention
    /// that branching non-determinism in the model is expressed through guards plus
    /// havoc variables.
    pub fn run(
        &self,
        ts: &TransitionSystem,
        initial_vals: &IntValuation,
        oracle: &mut dyn NondetOracle,
    ) -> RunResult {
        let mut state = State::new(ts.initial(), initial_vals.clone());
        let initial_cost = state.value(ts.cost_var());
        let mut steps = 0usize;
        while steps < self.max_steps {
            if state.loc == ts.terminal() {
                return RunResult {
                    outcome: RunOutcome::Terminated,
                    cost: state.value(ts.cost_var()) - initial_cost,
                    steps,
                    final_state: state,
                };
            }
            let Some(transition) = ts
                .outgoing(state.loc)
                .find(|t| satisfies_all(&t.guard, &state.vals))
            else {
                return RunResult {
                    outcome: RunOutcome::Stuck,
                    cost: state.value(ts.cost_var()) - initial_cost,
                    steps,
                    final_state: state,
                };
            };
            let mut next_vals = state.vals.clone();
            for (&var, update) in &transition.updates {
                let value = match update {
                    Update::Assign(p) => eval_polynomial_int(p, &state.vals),
                    Update::Nondet => oracle.choose(var, &state),
                };
                next_vals.insert(var, value);
            }
            state = State::new(transition.target, next_vals);
            steps += 1;
        }
        RunResult {
            outcome: RunOutcome::StepLimit,
            cost: state.value(ts.cost_var()) - initial_cost,
            steps,
            final_state: state,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca_poly::{LinExpr, Polynomial};
    use crate::system::TsBuilder;

    /// while (i < n) { i++; cost++ }
    fn counting_loop() -> TransitionSystem {
        let mut b = TsBuilder::new();
        let i = b.var("i");
        let n = b.var("n");
        let head = b.location("head");
        let out = b.terminal();
        b.set_initial(head);
        b.add_theta0(LinExpr::var(n) - LinExpr::from_int(1));
        b.transition(head, head)
            .guard(LinExpr::var(n) - LinExpr::var(i) - LinExpr::from_int(1))
            .update(i, Update::assign(Polynomial::var(i) + Polynomial::from_int(1)))
            .tick(1)
            .finish();
        b.transition(head, out)
            .guard(LinExpr::var(i) - LinExpr::var(n))
            .finish();
        b.build().unwrap()
    }

    fn initial(ts: &TransitionSystem, n: i64) -> IntValuation {
        let mut vals = IntValuation::new();
        vals.insert(ts.pool().lookup("i").unwrap(), 0);
        vals.insert(ts.pool().lookup("n").unwrap(), n);
        vals.insert(ts.cost_var(), 0);
        vals
    }

    #[test]
    fn loop_cost_equals_bound() {
        let ts = counting_loop();
        let interp = Interpreter::default();
        for n in [1i64, 5, 50, 100] {
            let result = interp.run(&ts, &initial(&ts, n), &mut FixedOracle(0));
            assert_eq!(result.outcome, RunOutcome::Terminated);
            assert_eq!(result.cost, n, "loop should cost exactly n");
            assert_eq!(result.steps as i64, n + 1);
        }
    }

    #[test]
    fn zero_iterations() {
        let ts = counting_loop();
        let interp = Interpreter::default();
        let result = interp.run(&ts, &initial(&ts, 0), &mut FixedOracle(0));
        assert_eq!(result.outcome, RunOutcome::Terminated);
        assert_eq!(result.cost, 0);
    }

    #[test]
    fn step_limit_reported() {
        let ts = counting_loop();
        let interp = Interpreter::new(3);
        let result = interp.run(&ts, &initial(&ts, 100), &mut FixedOracle(0));
        assert_eq!(result.outcome, RunOutcome::StepLimit);
        assert_eq!(result.steps, 3);
    }

    #[test]
    fn nondet_update_uses_oracle() {
        // x := nondet(); cost := cost + x
        let mut b = TsBuilder::new();
        let x = b.var("x");
        let cost = b.cost_var();
        let start = b.location("start");
        let mid = b.location("mid");
        let out = b.terminal();
        b.set_initial(start);
        b.transition(start, mid).update(x, Update::Nondet).finish();
        b.transition(mid, out)
            .update(cost, Update::assign(Polynomial::var(cost) + Polynomial::var(x)))
            .finish();
        let ts = b.build().unwrap();
        let interp = Interpreter::default();
        let mut vals = IntValuation::new();
        vals.insert(x, 0);
        vals.insert(cost, 0);
        let result = interp.run(&ts, &vals, &mut FixedOracle(7));
        assert_eq!(result.outcome, RunOutcome::Terminated);
        assert_eq!(result.cost, 7);

        let mut random = RandomOracle::new(42, 0, 10);
        let result = interp.run(&ts, &vals, &mut random);
        assert!(result.cost >= 0 && result.cost <= 10);
    }

    #[test]
    fn stuck_state_detected() {
        // A location whose only outgoing guard is unsatisfiable at runtime.
        let mut b = TsBuilder::new();
        let x = b.var("x");
        let start = b.location("start");
        let out = b.terminal();
        b.set_initial(start);
        b.transition(start, out)
            .guard(LinExpr::var(x) - LinExpr::from_int(1_000))
            .finish();
        let ts = b.build().unwrap();
        let interp = Interpreter::default();
        let mut vals = IntValuation::new();
        vals.insert(x, 0);
        vals.insert(ts.cost_var(), 0);
        let result = interp.run(&ts, &vals, &mut FixedOracle(0));
        assert_eq!(result.outcome, RunOutcome::Stuck);
    }
}
