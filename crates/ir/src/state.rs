//! Concrete program states and integer valuations.

use std::collections::BTreeMap;

use dca_numeric::Rational;
use dca_poly::{LinExpr, Polynomial, Valuation, VarId};

use crate::system::LocId;

/// A concrete integer valuation of program variables.
pub type IntValuation = BTreeMap<VarId, i64>;

/// Converts an integer valuation into the rational [`Valuation`] used by `dca-poly`.
pub fn to_rational_valuation(vals: &IntValuation) -> Valuation {
    vals.iter()
        .map(|(&v, &x)| (v, Rational::from_int(x)))
        .collect()
}

/// Evaluates a polynomial at an integer valuation, returning an exact rational.
pub fn eval_polynomial(p: &Polynomial, vals: &IntValuation) -> Rational {
    p.eval(&to_rational_valuation(vals))
}

/// Evaluates a polynomial at an integer valuation and truncates to `i64`.
///
/// The updates produced by the language frontend always have integer values on integer
/// inputs; the truncation only matters for hand-built systems with rational coefficients.
pub fn eval_polynomial_int(p: &Polynomial, vals: &IntValuation) -> i64 {
    eval_polynomial(p, vals).round().to_i64().unwrap_or(0)
}

/// Checks whether an affine inequality `expr ≥ 0` holds at an integer valuation.
pub fn satisfies(expr: &LinExpr, vals: &IntValuation) -> bool {
    !expr.eval(&to_rational_valuation(vals)).is_negative()
}

/// Checks whether a conjunction of affine inequalities holds at an integer valuation.
pub fn satisfies_all(exprs: &[LinExpr], vals: &IntValuation) -> bool {
    exprs.iter().all(|e| satisfies(e, vals))
}

/// A concrete state of a transition system: a location paired with a valuation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    /// Current location.
    pub loc: LocId,
    /// Current values of all program variables.
    pub vals: IntValuation,
}

impl State {
    /// Creates a state.
    pub fn new(loc: LocId, vals: IntValuation) -> State {
        State { loc, vals }
    }

    /// The value of a variable (0 if unset).
    pub fn value(&self, v: VarId) -> i64 {
        self.vals.get(&v).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca_poly::VarPool;

    #[test]
    fn polynomial_evaluation_at_state() {
        let mut pool = VarPool::new();
        let x = pool.intern("x");
        let y = pool.intern("y");
        let p = Polynomial::var(x) * Polynomial::var(y) + Polynomial::from_int(1);
        let mut vals = IntValuation::new();
        vals.insert(x, 3);
        vals.insert(y, 4);
        assert_eq!(eval_polynomial(&p, &vals), Rational::from_int(13));
        assert_eq!(eval_polynomial_int(&p, &vals), 13);
    }

    #[test]
    fn guard_satisfaction() {
        let mut pool = VarPool::new();
        let x = pool.intern("x");
        let mut vals = IntValuation::new();
        vals.insert(x, 5);
        // x - 5 >= 0 holds, x - 6 >= 0 does not
        assert!(satisfies(&(LinExpr::var(x) - LinExpr::from_int(5)), &vals));
        assert!(!satisfies(&(LinExpr::var(x) - LinExpr::from_int(6)), &vals));
        assert!(satisfies_all(
            &[
                LinExpr::var(x),
                LinExpr::from_int(10) - LinExpr::var(x)
            ],
            &vals
        ));
    }

    #[test]
    fn state_value_defaults_to_zero() {
        let s = State::new(LocId(0), IntValuation::new());
        assert_eq!(s.value(VarId(3)), 0);
    }
}
