//! Program model for the diffcost analyzer: integer transition systems.
//!
//! Programs are modelled exactly as in Section 3 of the paper: a *transition system*
//! `T = (L, V, →, ℓ0, Θ0)` with
//!
//! * a finite set of locations `L` (with a distinguished terminal location `ℓ_out`),
//! * a finite set of integer program variables `V` containing the special `cost` variable,
//! * transitions `(ℓ, ℓ', G, Up)` whose guards `G` are conjunctions of affine
//!   inequalities and whose updates `Up` map each variable to a polynomial over `V` or to
//!   a non-deterministic value,
//! * an initial location `ℓ0` and a set of initial valuations `Θ0` given by a conjunction
//!   of affine inequalities (with `cost = 0`).
//!
//! Besides the data structures, the crate provides a reference [`Interpreter`] and an
//! exhaustive [`CostExplorer`] used by the test-suite and by the result verifier to check
//! computed thresholds against concrete executions.
//!
//! # Example
//!
//! ```
//! use dca_ir::{TsBuilder, Update};
//! use dca_poly::{LinExpr, Polynomial};
//! use dca_numeric::Rational;
//!
//! // while (i < n) { i++; cost++ }
//! let mut b = TsBuilder::new();
//! let i = b.var("i");
//! let n = b.var("n");
//! let cost = b.cost_var();
//! let head = b.location("head");
//! b.set_initial(head);
//! b.add_theta0(LinExpr::var(n) - LinExpr::from_int(1));      // n >= 1
//! b.add_theta0(LinExpr::from_int(100) - LinExpr::var(n));    // n <= 100
//! b.add_theta0_eq(LinExpr::var(i));                          // i == 0
//! let out = b.terminal();
//! // loop transition: guard i <= n - 1, update i' = i + 1, cost' = cost + 1
//! b.transition(head, head)
//!     .guard(LinExpr::var(n) - LinExpr::var(i) - LinExpr::from_int(1))
//!     .update(i, Update::assign(Polynomial::var(i) + Polynomial::from_int(1)))
//!     .update(cost, Update::assign(Polynomial::var(cost) + Polynomial::from_int(1)))
//!     .finish();
//! // exit transition: guard i >= n
//! b.transition(head, out)
//!     .guard(LinExpr::var(i) - LinExpr::var(n))
//!     .finish();
//! let ts = b.build().unwrap();
//! assert_eq!(ts.locations().len(), 2);
//! # let _ = Rational::one();
//! ```

mod explore;
pub mod fingerprint;
mod generate;
mod interp;
mod loops;
mod rng;
mod split;
mod state;
mod system;

pub use explore::{enumerate_box, sample_initial_states, CostBounds, CostExplorer};
pub use fingerprint::{canonical_form, fingerprint_system, SystemFingerprint};
pub use generate::{
    generate_pair, GeneratedPair, PairKind, ShapeParams, MAX_BLOCK_STATEMENTS,
};
pub use loops::{BackEdge, LoopNest};
pub use rng::SmallRng;
pub use split::{detect_phase_splits, split_phases, PhaseSplit, SplitSystem};
pub use interp::{FixedOracle, Interpreter, NondetOracle, RandomOracle, RunOutcome, RunResult};
pub use state::{
    eval_polynomial, eval_polynomial_int, satisfies, satisfies_all, to_rational_valuation,
    IntValuation, State,
};
pub use system::{
    LocId, Transition, TransitionBuilder, TransitionSystem, TsBuilder, TsError, Update,
};
