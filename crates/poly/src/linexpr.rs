//! Affine (degree ≤ 1) expressions over program variables.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::ops::{Add, Mul, Neg, Sub};

use dca_numeric::Rational;

use crate::polynomial::Polynomial;
use crate::vars::{VarId, VarPool};
use crate::Valuation;

/// An affine expression `c0 + c1*x1 + ... + cn*xn`.
///
/// Affine expressions appear throughout the analysis as transition guards, initial
/// conditions and invariants; the convention used by the whole pipeline is that a
/// constraint is the assertion `LinExpr ≥ 0`.
///
/// # Examples
///
/// ```
/// use dca_poly::{LinExpr, VarPool};
/// use dca_numeric::Rational;
///
/// let mut pool = VarPool::new();
/// let x = pool.intern("x");
/// // x - 3 ≥ 0, i.e. x ≥ 3
/// let e = LinExpr::var(x) - LinExpr::constant(Rational::from_int(3));
/// assert_eq!(e.to_string(&pool), "x - 3");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinExpr {
    constant: Rational,
    coeffs: BTreeMap<VarId, Rational>,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> LinExpr {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: Rational) -> LinExpr {
        LinExpr { constant: c, coeffs: BTreeMap::new() }
    }

    /// A constant expression from a machine integer.
    pub fn from_int(c: i64) -> LinExpr {
        LinExpr::constant(Rational::from_int(c))
    }

    /// The expression consisting of a single variable.
    pub fn var(v: VarId) -> LinExpr {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(v, Rational::one());
        LinExpr { constant: Rational::zero(), coeffs }
    }

    /// Builds an expression from a constant and `(variable, coefficient)` pairs.
    pub fn from_parts(
        constant: Rational,
        coeffs: impl IntoIterator<Item = (VarId, Rational)>,
    ) -> LinExpr {
        let mut e = LinExpr::constant(constant);
        for (v, c) in coeffs {
            e.set_coeff(v, c);
        }
        e
    }

    /// The constant term.
    pub fn constant_term(&self) -> &Rational {
        &self.constant
    }

    /// Coefficient of a variable (zero if absent).
    pub fn coeff(&self, v: VarId) -> Rational {
        self.coeffs.get(&v).cloned().unwrap_or_default()
    }

    /// Sets the coefficient of a variable (removing it when zero).
    pub fn set_coeff(&mut self, v: VarId, c: Rational) {
        if c.is_zero() {
            self.coeffs.remove(&v);
        } else {
            self.coeffs.insert(v, c);
        }
    }

    /// Sets the constant term.
    pub fn set_constant(&mut self, c: Rational) {
        self.constant = c;
    }

    /// Iterates over `(variable, coefficient)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&VarId, &Rational)> {
        self.coeffs.iter()
    }

    /// Variables with non-zero coefficients.
    pub fn vars(&self) -> Vec<VarId> {
        self.coeffs.keys().copied().collect()
    }

    /// Returns `true` if the expression is a constant.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Returns `true` if the expression is identically zero.
    pub fn is_zero(&self) -> bool {
        self.constant.is_zero() && self.coeffs.is_empty()
    }

    /// Multiplies the expression by a scalar.
    pub fn scale(&self, factor: &Rational) -> LinExpr {
        if factor.is_zero() {
            return LinExpr::zero();
        }
        LinExpr {
            constant: &self.constant * factor,
            coeffs: self.coeffs.iter().map(|(v, c)| (*v, c * factor)).collect(),
        }
    }

    /// Evaluates the expression at a valuation (missing variables default to 0).
    pub fn eval(&self, valuation: &Valuation) -> Rational {
        let mut acc = self.constant.clone();
        for (v, c) in &self.coeffs {
            if let Some(x) = valuation.get(v) {
                acc = &acc + &(c * x);
            }
        }
        acc
    }

    /// Converts the affine expression to a [`Polynomial`].
    pub fn to_polynomial(&self) -> Polynomial {
        let mut p = Polynomial::constant(self.constant.clone());
        for (v, c) in &self.coeffs {
            p += &Polynomial::var(*v).scale(c);
        }
        p
    }

    /// Attempts to convert a polynomial into an affine expression.
    ///
    /// Returns `None` if the polynomial has degree greater than 1.
    pub fn try_from_polynomial(p: &Polynomial) -> Option<LinExpr> {
        if p.degree() > 1 {
            return None;
        }
        let mut e = LinExpr::zero();
        for (m, c) in p.iter() {
            if m.is_unit() {
                e.constant = c.clone();
            } else {
                let (v, exp) = m.powers()[0];
                debug_assert_eq!(exp, 1);
                e.set_coeff(v, c.clone());
            }
        }
        Some(e)
    }

    /// Normalizes the expression so that all coefficients are coprime integers.
    ///
    /// This preserves the sign of the expression at every point (the scaling factor is
    /// strictly positive), so `e ≥ 0` and `e.normalize() ≥ 0` are equivalent constraints.
    pub fn normalize(&self) -> LinExpr {
        if self.is_zero() {
            return LinExpr::zero();
        }
        // Multiply by the lcm of denominators, then divide by the gcd of numerators.
        let mut scale = Rational::one();
        let mut values: Vec<Rational> = vec![self.constant.clone()];
        values.extend(self.coeffs.values().cloned());
        for v in &values {
            if !v.is_zero() {
                let den = Rational::from(v.denominator());
                // lcm accumulation on the scale denominator
                scale = &scale * &den;
            }
        }
        let scaled: Vec<Rational> = values.iter().map(|v| v * &scale).collect();
        let mut gcd = dca_numeric::BigInt::zero();
        for v in &scaled {
            gcd = gcd.gcd(&v.numerator());
        }
        let divisor = if gcd.is_zero() {
            Rational::one()
        } else {
            Rational::from(gcd)
        };
        let factor = &scale / &divisor;
        self.scale(&factor)
    }

    /// Renders the expression using variable names from the pool.
    pub fn to_string(&self, pool: &VarPool) -> String {
        let mut out = String::new();
        let mut first = true;
        for (v, c) in &self.coeffs {
            let mag = c.abs();
            if first {
                if c.is_negative() {
                    out.push('-');
                }
                first = false;
            } else if c.is_negative() {
                out.push_str(" - ");
            } else {
                out.push_str(" + ");
            }
            if mag == Rational::one() {
                let _ = write!(out, "{}", pool.name(*v));
            } else {
                let _ = write!(out, "{}*{}", mag, pool.name(*v));
            }
        }
        if first {
            let _ = write!(out, "{}", self.constant);
        } else if !self.constant.is_zero() {
            if self.constant.is_negative() {
                let _ = write!(out, " - {}", self.constant.abs());
            } else {
                let _ = write!(out, " + {}", self.constant);
            }
        }
        out
    }
}

impl Add for &LinExpr {
    type Output = LinExpr;
    fn add(self, rhs: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        out.constant = &out.constant + &rhs.constant;
        for (v, c) in &rhs.coeffs {
            let new = &out.coeff(*v) + c;
            out.set_coeff(*v, new);
        }
        out
    }
}

impl Sub for &LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: &LinExpr) -> LinExpr {
        self + &(-rhs.clone())
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self.scale(&-Rational::one())
    }
}

impl Neg for &LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self.scale(&-Rational::one())
    }
}

impl Mul<&Rational> for &LinExpr {
    type Output = LinExpr;
    fn mul(self, rhs: &Rational) -> LinExpr {
        self.scale(rhs)
    }
}

macro_rules! forward_owned_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for LinExpr {
            type Output = LinExpr;
            fn $method(self, rhs: LinExpr) -> LinExpr {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&LinExpr> for LinExpr {
            type Output = LinExpr;
            fn $method(self, rhs: &LinExpr) -> LinExpr {
                (&self).$method(rhs)
            }
        }
        impl $trait<LinExpr> for &LinExpr {
            type Output = LinExpr;
            fn $method(self, rhs: LinExpr) -> LinExpr {
                self.$method(&rhs)
            }
        }
    };
}

forward_owned_binop!(Add, add);
forward_owned_binop!(Sub, sub);

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (VarPool, VarId, VarId) {
        let mut pool = VarPool::new();
        let x = pool.intern("x");
        let y = pool.intern("y");
        (pool, x, y)
    }

    #[test]
    fn construction_and_access() {
        let (_, x, y) = setup();
        let e = LinExpr::from_parts(
            Rational::from_int(3),
            [(x, Rational::from_int(2)), (y, Rational::from_int(-1))],
        );
        assert_eq!(e.coeff(x), Rational::from_int(2));
        assert_eq!(e.coeff(y), Rational::from_int(-1));
        assert_eq!(*e.constant_term(), Rational::from_int(3));
        assert_eq!(e.vars(), vec![x, y]);
        assert!(!e.is_constant());
    }

    #[test]
    fn arithmetic() {
        let (_, x, y) = setup();
        let a = LinExpr::var(x) + LinExpr::from_int(1);
        let b = LinExpr::var(y) - LinExpr::from_int(2);
        let s = &a + &b;
        assert_eq!(s.coeff(x), Rational::one());
        assert_eq!(s.coeff(y), Rational::one());
        assert_eq!(*s.constant_term(), Rational::from_int(-1));
        let d = &a - &a;
        assert!(d.is_zero());
    }

    #[test]
    fn evaluation() {
        let (_, x, y) = setup();
        let e = LinExpr::var(x).scale(&Rational::from_int(2)) + LinExpr::var(y) - LinExpr::from_int(5);
        let mut v = Valuation::new();
        v.insert(x, Rational::from_int(3));
        v.insert(y, Rational::from_int(4));
        assert_eq!(e.eval(&v), Rational::from_int(5));
    }

    #[test]
    fn polynomial_roundtrip() {
        let (_, x, y) = setup();
        let e = LinExpr::var(x).scale(&Rational::new(1, 2)) - LinExpr::var(y) + LinExpr::from_int(7);
        let p = e.to_polynomial();
        assert_eq!(LinExpr::try_from_polynomial(&p), Some(e));
        let nonlinear = Polynomial::var(x) * Polynomial::var(y);
        assert_eq!(LinExpr::try_from_polynomial(&nonlinear), None);
    }

    #[test]
    fn normalization_clears_denominators() {
        let (_, x, y) = setup();
        let e = LinExpr::var(x).scale(&Rational::new(1, 2)) + LinExpr::var(y).scale(&Rational::new(1, 3));
        let n = e.normalize();
        // multiplied by 6: 3x + 2y
        assert_eq!(n.coeff(x), Rational::from_int(3));
        assert_eq!(n.coeff(y), Rational::from_int(2));
        // the two must have the same sign everywhere -- sample a point
        let mut v = Valuation::new();
        v.insert(x, Rational::from_int(-1));
        v.insert(y, Rational::from_int(1));
        assert_eq!(e.eval(&v).is_negative(), n.eval(&v).is_negative());
    }

    #[test]
    fn normalization_reduces_common_factor() {
        let (_, x, _) = setup();
        let e = LinExpr::var(x).scale(&Rational::from_int(4)) + LinExpr::from_int(6);
        let n = e.normalize();
        assert_eq!(n.coeff(x), Rational::from_int(2));
        assert_eq!(*n.constant_term(), Rational::from_int(3));
    }

    #[test]
    fn display() {
        let (pool, x, y) = setup();
        let e = LinExpr::var(x).scale(&Rational::from_int(-2)) + LinExpr::var(y) + LinExpr::from_int(3);
        assert_eq!(e.to_string(&pool), "-2*x + y + 3");
        assert_eq!(LinExpr::zero().to_string(&pool), "0");
        assert_eq!(LinExpr::from_int(-4).to_string(&pool), "-4");
    }
}
