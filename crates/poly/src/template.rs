//! Template polynomials: polynomials whose coefficients are affine forms over LP unknowns.
//!
//! Step 1 of the paper's algorithm fixes, for every program location, a symbolic
//! polynomial `Σ_{m ∈ Mono_d(V)} u_{ℓ,m} · m` whose coefficients `u_{ℓ,m}` are fresh LP
//! unknowns. All subsequent constraint manipulation (substituting transition updates,
//! subtracting incurred cost, forming the differential constraint with the threshold
//! unknown `t`) stays *linear* in these unknowns. [`TemplatePolynomial`] captures exactly
//! this shape: a polynomial over program variables whose coefficient at each monomial is
//! a [`LinForm`] — an affine combination of [`UnknownId`]s.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::ops::{Add, Neg, Sub};

use dca_numeric::Rational;

use crate::monomial::Monomial;
use crate::polynomial::Polynomial;
use crate::vars::{VarId, VarPool};

/// Identifier of an LP unknown (template coefficient, threshold, or Handelman multiplier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UnknownId(pub u32);

impl UnknownId {
    /// Index as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for UnknownId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// An affine form `c0 + c1*u1 + ... + cn*un` over LP unknowns.
///
/// # Examples
///
/// ```
/// use dca_poly::{LinForm, UnknownId};
/// use dca_numeric::Rational;
///
/// let u = UnknownId(0);
/// let f = LinForm::unknown(u).scale(&Rational::from_int(2)) + LinForm::constant(Rational::one());
/// assert_eq!(f.coeff(u), Rational::from_int(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinForm {
    constant: Rational,
    coeffs: BTreeMap<UnknownId, Rational>,
}

impl LinForm {
    /// The zero form.
    pub fn zero() -> LinForm {
        LinForm::default()
    }

    /// A constant form.
    pub fn constant(c: Rational) -> LinForm {
        LinForm { constant: c, coeffs: BTreeMap::new() }
    }

    /// The form consisting of a single unknown with coefficient one.
    pub fn unknown(u: UnknownId) -> LinForm {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(u, Rational::one());
        LinForm { constant: Rational::zero(), coeffs }
    }

    /// The constant term.
    pub fn constant_term(&self) -> &Rational {
        &self.constant
    }

    /// Coefficient of an unknown (zero if absent).
    pub fn coeff(&self, u: UnknownId) -> Rational {
        self.coeffs.get(&u).cloned().unwrap_or_default()
    }

    /// Iterates over `(unknown, coefficient)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&UnknownId, &Rational)> {
        self.coeffs.iter()
    }

    /// Unknowns with non-zero coefficients.
    pub fn unknowns(&self) -> Vec<UnknownId> {
        self.coeffs.keys().copied().collect()
    }

    /// Returns `true` if the form is identically zero.
    pub fn is_zero(&self) -> bool {
        self.constant.is_zero() && self.coeffs.is_empty()
    }

    /// Returns `true` if the form mentions no unknowns.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Adds `c * u` to the form in place.
    pub fn add_unknown(&mut self, u: UnknownId, c: Rational) {
        if c.is_zero() {
            return;
        }
        let entry = self.coeffs.entry(u).or_default();
        *entry = &*entry + &c;
        if entry.is_zero() {
            self.coeffs.remove(&u);
        }
    }

    /// Adds a constant to the form in place.
    pub fn add_constant(&mut self, c: &Rational) {
        self.constant = &self.constant + c;
    }

    /// Multiplies the form by a scalar.
    pub fn scale(&self, factor: &Rational) -> LinForm {
        if factor.is_zero() {
            return LinForm::zero();
        }
        LinForm {
            constant: &self.constant * factor,
            coeffs: self.coeffs.iter().map(|(u, c)| (*u, c * factor)).collect(),
        }
    }

    /// Evaluates the form under an assignment of values to unknowns.
    ///
    /// Unknowns missing from the assignment default to 0.
    pub fn eval(&self, assignment: &BTreeMap<UnknownId, Rational>) -> Rational {
        let mut acc = self.constant.clone();
        for (u, c) in &self.coeffs {
            if let Some(x) = assignment.get(u) {
                acc = &acc + &(c * x);
            }
        }
        acc
    }

    /// Human-readable rendering (`u3` style names for unknowns).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut first = true;
        for (u, c) in &self.coeffs {
            let mag = c.abs();
            if first {
                if c.is_negative() {
                    out.push('-');
                }
                first = false;
            } else if c.is_negative() {
                out.push_str(" - ");
            } else {
                out.push_str(" + ");
            }
            if mag == Rational::one() {
                let _ = write!(out, "{}", u);
            } else {
                let _ = write!(out, "{}*{}", mag, u);
            }
        }
        if first {
            let _ = write!(out, "{}", self.constant);
        } else if !self.constant.is_zero() {
            if self.constant.is_negative() {
                let _ = write!(out, " - {}", self.constant.abs());
            } else {
                let _ = write!(out, " + {}", self.constant);
            }
        }
        out
    }
}

impl Add for &LinForm {
    type Output = LinForm;
    fn add(self, rhs: &LinForm) -> LinForm {
        let mut out = self.clone();
        out.constant = &out.constant + &rhs.constant;
        for (u, c) in &rhs.coeffs {
            out.add_unknown(*u, c.clone());
        }
        out
    }
}

impl Sub for &LinForm {
    type Output = LinForm;
    fn sub(self, rhs: &LinForm) -> LinForm {
        self + &rhs.scale(&-Rational::one())
    }
}

impl Neg for &LinForm {
    type Output = LinForm;
    fn neg(self) -> LinForm {
        self.scale(&-Rational::one())
    }
}

impl Neg for LinForm {
    type Output = LinForm;
    fn neg(self) -> LinForm {
        -&self
    }
}

macro_rules! forward_owned_binop_linform {
    ($trait:ident, $method:ident) => {
        impl $trait for LinForm {
            type Output = LinForm;
            fn $method(self, rhs: LinForm) -> LinForm {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&LinForm> for LinForm {
            type Output = LinForm;
            fn $method(self, rhs: &LinForm) -> LinForm {
                (&self).$method(rhs)
            }
        }
        impl $trait<LinForm> for &LinForm {
            type Output = LinForm;
            fn $method(self, rhs: LinForm) -> LinForm {
                self.$method(&rhs)
            }
        }
    };
}

forward_owned_binop_linform!(Add, add);
forward_owned_binop_linform!(Sub, sub);

/// A polynomial over program variables whose coefficients are [`LinForm`]s over unknowns.
///
/// # Examples
///
/// ```
/// use dca_poly::{LinForm, Monomial, TemplatePolynomial, UnknownId, VarPool};
/// use dca_numeric::Rational;
///
/// let mut pool = VarPool::new();
/// let x = pool.intern("x");
/// // template: u0 + u1*x
/// let mut t = TemplatePolynomial::zero();
/// t.add_term(Monomial::unit(), LinForm::unknown(UnknownId(0)));
/// t.add_term(Monomial::var(x), LinForm::unknown(UnknownId(1)));
/// assert_eq!(t.num_terms(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TemplatePolynomial {
    terms: BTreeMap<Monomial, LinForm>,
}

impl TemplatePolynomial {
    /// The zero template polynomial.
    pub fn zero() -> TemplatePolynomial {
        TemplatePolynomial::default()
    }

    /// Lifts a concrete polynomial into a template polynomial with constant coefficients.
    pub fn from_polynomial(p: &Polynomial) -> TemplatePolynomial {
        let mut t = TemplatePolynomial::zero();
        for (m, c) in p.iter() {
            t.add_term(m.clone(), LinForm::constant(c.clone()));
        }
        t
    }

    /// A template polynomial consisting of a single unknown as its constant term.
    pub fn from_unknown(u: UnknownId) -> TemplatePolynomial {
        let mut t = TemplatePolynomial::zero();
        t.add_term(Monomial::unit(), LinForm::unknown(u));
        t
    }

    /// Builds the standard location template `Σ_m u_m · m` over the given monomials.
    ///
    /// `unknowns` must be the same length as `monomials`.
    pub fn from_template(monomials: &[Monomial], unknowns: &[UnknownId]) -> TemplatePolynomial {
        assert_eq!(monomials.len(), unknowns.len());
        let mut t = TemplatePolynomial::zero();
        for (m, u) in monomials.iter().zip(unknowns) {
            t.add_term(m.clone(), LinForm::unknown(*u));
        }
        t
    }

    /// Adds `form * mono` to the template polynomial in place.
    pub fn add_term(&mut self, mono: Monomial, form: LinForm) {
        if form.is_zero() {
            return;
        }
        let entry = self.terms.entry(mono.clone()).or_default();
        *entry = &*entry + &form;
        if entry.is_zero() {
            self.terms.remove(&mono);
        }
    }

    /// Returns `true` if this is the zero template polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of (non-zero) terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Coefficient of a monomial (zero form if absent).
    pub fn coeff(&self, m: &Monomial) -> LinForm {
        self.terms.get(m).cloned().unwrap_or_default()
    }

    /// Iterates over `(monomial, coefficient-form)` pairs in monomial order.
    pub fn iter(&self) -> impl Iterator<Item = (&Monomial, &LinForm)> {
        self.terms.iter()
    }

    /// All monomials with non-zero coefficient forms.
    pub fn monomials(&self) -> Vec<Monomial> {
        self.terms.keys().cloned().collect()
    }

    /// Total degree in the program variables.
    pub fn degree(&self) -> u32 {
        self.terms.keys().map(Monomial::degree).max().unwrap_or(0)
    }

    /// Multiplies the template polynomial by a scalar.
    pub fn scale(&self, factor: &Rational) -> TemplatePolynomial {
        if factor.is_zero() {
            return TemplatePolynomial::zero();
        }
        TemplatePolynomial {
            terms: self
                .terms
                .iter()
                .map(|(m, f)| (m.clone(), f.scale(factor)))
                .collect(),
        }
    }

    /// Multiplies the template polynomial by a concrete polynomial.
    pub fn mul_polynomial(&self, p: &Polynomial) -> TemplatePolynomial {
        let mut out = TemplatePolynomial::zero();
        for (m1, f) in &self.terms {
            for (m2, c) in p.iter() {
                out.add_term(m1.mul(m2), f.scale(c));
            }
        }
        out
    }

    /// Substitutes concrete polynomials for program variables.
    ///
    /// Variables not present in `subst` are left unchanged. The coefficients (which live
    /// over LP unknowns) are unaffected.
    pub fn substitute(&self, subst: &BTreeMap<VarId, Polynomial>) -> TemplatePolynomial {
        let mut out = TemplatePolynomial::zero();
        for (m, f) in &self.terms {
            // Expand the monomial under the substitution into a concrete polynomial.
            let mut expanded = Polynomial::one();
            for &(v, e) in m.powers() {
                let base = subst
                    .get(&v)
                    .cloned()
                    .unwrap_or_else(|| Polynomial::var(v));
                expanded = &expanded * &base.pow(e);
            }
            for (m2, c) in expanded.iter() {
                out.add_term(m2.clone(), f.scale(c));
            }
        }
        out
    }

    /// Instantiates the template with concrete values for the unknowns, producing a
    /// concrete [`Polynomial`]. Unknowns missing from the assignment default to 0.
    pub fn instantiate(&self, assignment: &BTreeMap<UnknownId, Rational>) -> Polynomial {
        let mut p = Polynomial::zero();
        for (m, f) in &self.terms {
            p.add_term(m.clone(), f.eval(assignment));
        }
        p
    }

    /// All unknowns mentioned anywhere in the template polynomial.
    pub fn unknowns(&self) -> Vec<UnknownId> {
        let mut out: Vec<UnknownId> = self
            .terms
            .values()
            .flat_map(|f| f.unknowns())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Human-readable rendering using variable names from the pool.
    pub fn render(&self, pool: &VarPool) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut parts = Vec::new();
        for (m, f) in &self.terms {
            if m.is_unit() {
                parts.push(format!("({})", f.render()));
            } else {
                parts.push(format!("({})*{}", f.render(), m.to_string(pool)));
            }
        }
        parts.join(" + ")
    }
}

impl Add for &TemplatePolynomial {
    type Output = TemplatePolynomial;
    fn add(self, rhs: &TemplatePolynomial) -> TemplatePolynomial {
        let mut out = self.clone();
        for (m, f) in &rhs.terms {
            out.add_term(m.clone(), f.clone());
        }
        out
    }
}

impl Sub for &TemplatePolynomial {
    type Output = TemplatePolynomial;
    fn sub(self, rhs: &TemplatePolynomial) -> TemplatePolynomial {
        self + &rhs.scale(&-Rational::one())
    }
}

impl Neg for &TemplatePolynomial {
    type Output = TemplatePolynomial;
    fn neg(self) -> TemplatePolynomial {
        self.scale(&-Rational::one())
    }
}

macro_rules! forward_owned_binop_tpoly {
    ($trait:ident, $method:ident) => {
        impl $trait for TemplatePolynomial {
            type Output = TemplatePolynomial;
            fn $method(self, rhs: TemplatePolynomial) -> TemplatePolynomial {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&TemplatePolynomial> for TemplatePolynomial {
            type Output = TemplatePolynomial;
            fn $method(self, rhs: &TemplatePolynomial) -> TemplatePolynomial {
                (&self).$method(rhs)
            }
        }
        impl $trait<TemplatePolynomial> for &TemplatePolynomial {
            type Output = TemplatePolynomial;
            fn $method(self, rhs: TemplatePolynomial) -> TemplatePolynomial {
                self.$method(&rhs)
            }
        }
    };
}

forward_owned_binop_tpoly!(Add, add);
forward_owned_binop_tpoly!(Sub, sub);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monomial::monomials_up_to_degree;
    use crate::Valuation;

    fn setup() -> (VarPool, VarId, VarId) {
        let mut pool = VarPool::new();
        let x = pool.intern("x");
        let y = pool.intern("y");
        (pool, x, y)
    }

    #[test]
    fn linform_arithmetic() {
        let (u0, u1) = (UnknownId(0), UnknownId(1));
        let f = LinForm::unknown(u0) + LinForm::unknown(u1).scale(&Rational::from_int(2));
        let g = LinForm::unknown(u0).scale(&Rational::from_int(-1)) + LinForm::constant(Rational::from_int(3));
        let s = &f + &g;
        assert_eq!(s.coeff(u0), Rational::zero());
        assert_eq!(s.coeff(u1), Rational::from_int(2));
        assert_eq!(*s.constant_term(), Rational::from_int(3));
        assert!( (&f - &f).is_zero() );
    }

    #[test]
    fn linform_eval() {
        let (u0, u1) = (UnknownId(0), UnknownId(1));
        let f = LinForm::unknown(u0).scale(&Rational::from_int(2))
            + LinForm::unknown(u1).scale(&Rational::from_int(-3))
            + LinForm::constant(Rational::from_int(1));
        let mut asg = BTreeMap::new();
        asg.insert(u0, Rational::from_int(5));
        asg.insert(u1, Rational::from_int(2));
        assert_eq!(f.eval(&asg), Rational::from_int(5));
        // missing unknowns default to zero
        assert_eq!(LinForm::unknown(UnknownId(7)).eval(&asg), Rational::zero());
    }

    #[test]
    fn template_from_monomials() {
        let (_, x, y) = setup();
        let monos = monomials_up_to_degree(&[x, y], 2);
        let unknowns: Vec<UnknownId> = (0..monos.len() as u32).map(UnknownId).collect();
        let t = TemplatePolynomial::from_template(&monos, &unknowns);
        assert_eq!(t.num_terms(), 6);
        assert_eq!(t.degree(), 2);
        assert_eq!(t.unknowns().len(), 6);
    }

    #[test]
    fn template_substitution_matches_concrete() {
        let (_, x, y) = setup();
        // template: u0*x^2 + u1*y. Substitute x -> y + 1.
        let (u0, u1) = (UnknownId(0), UnknownId(1));
        let mut t = TemplatePolynomial::zero();
        t.add_term(Monomial::from_powers(vec![(x, 2)]), LinForm::unknown(u0));
        t.add_term(Monomial::var(y), LinForm::unknown(u1));
        let mut subst = BTreeMap::new();
        subst.insert(x, Polynomial::var(y) + Polynomial::from_int(1));
        let substituted = t.substitute(&subst);

        // Instantiate with u0 = 2, u1 = -1 and compare against the concrete computation.
        let mut asg = BTreeMap::new();
        asg.insert(u0, Rational::from_int(2));
        asg.insert(u1, Rational::from_int(-1));
        let inst_then_subst = t.instantiate(&asg).substitute(&subst);
        let subst_then_inst = substituted.instantiate(&asg);
        assert_eq!(inst_then_subst, subst_then_inst);
    }

    #[test]
    fn instantiation_evaluates() {
        let (_, x, _) = setup();
        let u0 = UnknownId(0);
        let mut t = TemplatePolynomial::zero();
        t.add_term(Monomial::var(x), LinForm::unknown(u0));
        t.add_term(Monomial::unit(), LinForm::constant(Rational::from_int(3)));
        let mut asg = BTreeMap::new();
        asg.insert(u0, Rational::from_int(4));
        let p = t.instantiate(&asg);
        let mut v = Valuation::new();
        v.insert(x, Rational::from_int(2));
        assert_eq!(p.eval(&v), Rational::from_int(11));
    }

    #[test]
    fn mul_polynomial_distributes() {
        let (_, x, y) = setup();
        let u0 = UnknownId(0);
        // (u0 * x) * (x + y) = u0*x^2 + u0*x*y
        let mut t = TemplatePolynomial::zero();
        t.add_term(Monomial::var(x), LinForm::unknown(u0));
        let p = Polynomial::var(x) + Polynomial::var(y);
        let prod = t.mul_polynomial(&p);
        assert_eq!(prod.num_terms(), 2);
        assert_eq!(prod.coeff(&Monomial::from_powers(vec![(x, 2)])), LinForm::unknown(u0));
        assert_eq!(
            prod.coeff(&Monomial::from_powers(vec![(x, 1), (y, 1)])),
            LinForm::unknown(u0)
        );
    }

    #[test]
    fn add_sub_cancel() {
        let (_, x, _) = setup();
        let u0 = UnknownId(0);
        let mut t = TemplatePolynomial::zero();
        t.add_term(Monomial::var(x), LinForm::unknown(u0));
        let z = &t - &t;
        assert!(z.is_zero());
        let lifted = TemplatePolynomial::from_polynomial(&Polynomial::var(x));
        assert_eq!(lifted.coeff(&Monomial::var(x)), LinForm::constant(Rational::one()));
    }

    #[test]
    fn render_human_readable() {
        let (pool, x, _) = setup();
        let mut t = TemplatePolynomial::zero();
        t.add_term(Monomial::var(x), LinForm::unknown(UnknownId(1)));
        t.add_term(Monomial::unit(), LinForm::unknown(UnknownId(0)));
        let s = t.render(&pool);
        assert!(s.contains("u0"));
        assert!(s.contains("u1"));
        assert!(s.contains('x'));
    }
}
