//! Multivariate polynomials with exact rational coefficients.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

use dca_numeric::Rational;

use crate::monomial::Monomial;
use crate::vars::{VarId, VarPool};
use crate::Valuation;

/// A multivariate polynomial with [`Rational`] coefficients.
///
/// Stored as a map from [`Monomial`] to non-zero coefficient; the zero polynomial has an
/// empty map.
///
/// # Examples
///
/// ```
/// use dca_poly::{Polynomial, VarPool};
/// use dca_numeric::Rational;
///
/// let mut pool = VarPool::new();
/// let x = pool.intern("x");
/// let p = Polynomial::var(x) * Polynomial::var(x) - Polynomial::constant(Rational::from_int(1));
/// assert_eq!(p.degree(), 2);
/// let mut val = dca_poly::Valuation::new();
/// val.insert(x, Rational::from_int(3));
/// assert_eq!(p.eval(&val), Rational::from_int(8));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Polynomial {
    terms: BTreeMap<Monomial, Rational>,
}

impl Polynomial {
    /// The zero polynomial.
    pub fn zero() -> Polynomial {
        Polynomial { terms: BTreeMap::new() }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Polynomial {
        Polynomial::constant(Rational::one())
    }

    /// A constant polynomial.
    pub fn constant(c: Rational) -> Polynomial {
        let mut terms = BTreeMap::new();
        if !c.is_zero() {
            terms.insert(Monomial::unit(), c);
        }
        Polynomial { terms }
    }

    /// A constant polynomial from a machine integer.
    pub fn from_int(c: i64) -> Polynomial {
        Polynomial::constant(Rational::from_int(c))
    }

    /// The polynomial consisting of a single variable.
    pub fn var(v: VarId) -> Polynomial {
        Polynomial::from_monomial(Monomial::var(v), Rational::one())
    }

    /// A polynomial with a single term `coeff * mono`.
    pub fn from_monomial(mono: Monomial, coeff: Rational) -> Polynomial {
        let mut terms = BTreeMap::new();
        if !coeff.is_zero() {
            terms.insert(mono, coeff);
        }
        Polynomial { terms }
    }

    /// Builds a polynomial from `(monomial, coefficient)` pairs, summing duplicates.
    pub fn from_terms(pairs: impl IntoIterator<Item = (Monomial, Rational)>) -> Polynomial {
        let mut p = Polynomial::zero();
        for (m, c) in pairs {
            p.add_term(m, c);
        }
        p
    }

    /// Returns `true` if this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Returns `true` if the polynomial is a constant (possibly zero).
    pub fn is_constant(&self) -> bool {
        self.terms.keys().all(Monomial::is_unit)
    }

    /// The constant term.
    pub fn constant_term(&self) -> Rational {
        self.terms.get(&Monomial::unit()).cloned().unwrap_or_default()
    }

    /// Total degree of the polynomial (0 for constants and for the zero polynomial).
    pub fn degree(&self) -> u32 {
        self.terms.keys().map(Monomial::degree).max().unwrap_or(0)
    }

    /// Coefficient of a monomial (zero if absent).
    pub fn coeff(&self, mono: &Monomial) -> Rational {
        self.terms.get(mono).cloned().unwrap_or_default()
    }

    /// Iterates over `(monomial, coefficient)` pairs in monomial order.
    pub fn iter(&self) -> impl Iterator<Item = (&Monomial, &Rational)> {
        self.terms.iter()
    }

    /// Number of (non-zero) terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The set of variables mentioned by the polynomial.
    pub fn vars(&self) -> Vec<VarId> {
        let mut vars: Vec<VarId> = self
            .terms
            .keys()
            .flat_map(|m| m.vars().collect::<Vec<_>>())
            .collect();
        vars.sort();
        vars.dedup();
        vars
    }

    /// Adds `coeff * mono` to the polynomial in place.
    pub fn add_term(&mut self, mono: Monomial, coeff: Rational) {
        if coeff.is_zero() {
            return;
        }
        let entry = self.terms.entry(mono.clone()).or_default();
        *entry = &*entry + &coeff;
        if entry.is_zero() {
            self.terms.remove(&mono);
        }
    }

    /// Multiplies the polynomial by a scalar.
    pub fn scale(&self, factor: &Rational) -> Polynomial {
        if factor.is_zero() {
            return Polynomial::zero();
        }
        Polynomial {
            terms: self
                .terms
                .iter()
                .map(|(m, c)| (m.clone(), c * factor))
                .collect(),
        }
    }

    /// Raises the polynomial to a non-negative power.
    pub fn pow(&self, exp: u32) -> Polynomial {
        let mut acc = Polynomial::one();
        for _ in 0..exp {
            acc = &acc * self;
        }
        acc
    }

    /// Evaluates the polynomial at a valuation (missing variables default to 0).
    pub fn eval(&self, valuation: &Valuation) -> Rational {
        let mut acc = Rational::zero();
        for (m, c) in &self.terms {
            acc = &acc + &(c * &m.eval(valuation));
        }
        acc
    }

    /// Substitutes polynomials for variables.
    ///
    /// Variables not present in `subst` are left unchanged.
    pub fn substitute(&self, subst: &BTreeMap<VarId, Polynomial>) -> Polynomial {
        let mut result = Polynomial::zero();
        for (m, c) in &self.terms {
            let mut term = Polynomial::constant(c.clone());
            for &(v, e) in m.powers() {
                let base = subst
                    .get(&v)
                    .cloned()
                    .unwrap_or_else(|| Polynomial::var(v));
                term = &term * &base.pow(e);
            }
            result = &result + &term;
        }
        result
    }

    /// Renders the polynomial using variable names from the pool.
    pub fn to_string(&self, pool: &VarPool) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut out = String::new();
        for (i, (m, c)) in self.terms.iter().enumerate() {
            let coeff_abs = c.abs();
            if i == 0 {
                if c.is_negative() {
                    out.push('-');
                }
            } else if c.is_negative() {
                out.push_str(" - ");
            } else {
                out.push_str(" + ");
            }
            if m.is_unit() {
                let _ = write!(out, "{}", coeff_abs);
            } else if coeff_abs == Rational::one() {
                let _ = write!(out, "{}", m.to_string(pool));
            } else {
                let _ = write!(out, "{}*{}", coeff_abs, m.to_string(pool));
            }
        }
        out
    }
}

impl Add for &Polynomial {
    type Output = Polynomial;
    fn add(self, rhs: &Polynomial) -> Polynomial {
        let mut out = self.clone();
        for (m, c) in &rhs.terms {
            out.add_term(m.clone(), c.clone());
        }
        out
    }
}

impl Sub for &Polynomial {
    type Output = Polynomial;
    fn sub(self, rhs: &Polynomial) -> Polynomial {
        let mut out = self.clone();
        for (m, c) in &rhs.terms {
            out.add_term(m.clone(), -c.clone());
        }
        out
    }
}

impl Mul for &Polynomial {
    type Output = Polynomial;
    fn mul(self, rhs: &Polynomial) -> Polynomial {
        let mut out = Polynomial::zero();
        for (m1, c1) in &self.terms {
            for (m2, c2) in &rhs.terms {
                out.add_term(m1.mul(m2), c1 * c2);
            }
        }
        out
    }
}

impl Neg for &Polynomial {
    type Output = Polynomial;
    fn neg(self) -> Polynomial {
        self.scale(&-Rational::one())
    }
}

impl Neg for Polynomial {
    type Output = Polynomial;
    fn neg(self) -> Polynomial {
        -&self
    }
}

macro_rules! forward_owned_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Polynomial {
            type Output = Polynomial;
            fn $method(self, rhs: Polynomial) -> Polynomial {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Polynomial> for Polynomial {
            type Output = Polynomial;
            fn $method(self, rhs: &Polynomial) -> Polynomial {
                (&self).$method(rhs)
            }
        }
        impl $trait<Polynomial> for &Polynomial {
            type Output = Polynomial;
            fn $method(self, rhs: Polynomial) -> Polynomial {
                self.$method(&rhs)
            }
        }
    };
}

forward_owned_binop!(Add, add);
forward_owned_binop!(Sub, sub);
forward_owned_binop!(Mul, mul);

impl AddAssign<&Polynomial> for Polynomial {
    fn add_assign(&mut self, rhs: &Polynomial) {
        for (m, c) in &rhs.terms {
            self.add_term(m.clone(), c.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (VarPool, VarId, VarId) {
        let mut pool = VarPool::new();
        let x = pool.intern("x");
        let y = pool.intern("y");
        (pool, x, y)
    }

    fn val(pairs: &[(VarId, i64)]) -> Valuation {
        pairs
            .iter()
            .map(|&(v, c)| (v, Rational::from_int(c)))
            .collect()
    }

    #[test]
    fn constants() {
        let p = Polynomial::from_int(5);
        assert!(p.is_constant());
        assert_eq!(p.constant_term(), Rational::from_int(5));
        assert_eq!(p.degree(), 0);
        assert!(Polynomial::zero().is_zero());
        assert!(Polynomial::constant(Rational::zero()).is_zero());
    }

    #[test]
    fn add_and_cancel() {
        let (_, x, _) = setup();
        let p = Polynomial::var(x) + Polynomial::from_int(1);
        let q = -&Polynomial::var(x) + Polynomial::from_int(2);
        let s = &p + &q;
        assert_eq!(s, Polynomial::from_int(3));
        assert_eq!((&p - &p), Polynomial::zero());
    }

    #[test]
    fn multiplication_expands() {
        let (pool, x, y) = setup();
        // (x + y) * (x - y) = x^2 - y^2
        let p = Polynomial::var(x) + Polynomial::var(y);
        let q = Polynomial::var(x) - Polynomial::var(y);
        let prod = &p * &q;
        assert_eq!(prod.to_string(&pool), "x^2 - y^2");
        assert_eq!(prod.degree(), 2);
        assert_eq!(prod.num_terms(), 2);
    }

    #[test]
    fn binomial_square() {
        let (pool, x, y) = setup();
        let p = (Polynomial::var(x) + Polynomial::var(y)).pow(2);
        assert_eq!(p.to_string(&pool), "x^2 + 2*x*y + y^2");
    }

    #[test]
    fn evaluation() {
        let (_, x, y) = setup();
        // 2x^2 - 3y + 1 at x=2, y=3 -> 8 - 9 + 1 = 0
        let p = Polynomial::var(x).pow(2).scale(&Rational::from_int(2))
            - Polynomial::var(y).scale(&Rational::from_int(3))
            + Polynomial::from_int(1);
        assert_eq!(p.eval(&val(&[(x, 2), (y, 3)])), Rational::zero());
        assert_eq!(p.eval(&val(&[(x, 0), (y, 0)])), Rational::one());
    }

    #[test]
    fn substitution() {
        let (pool, x, y) = setup();
        // p = x^2 + y ; substitute x -> y + 1 gives y^2 + 3y + 1... check: (y+1)^2 + y = y^2 + 3y + 1
        let p = Polynomial::var(x).pow(2) + Polynomial::var(y);
        let mut subst = BTreeMap::new();
        subst.insert(x, Polynomial::var(y) + Polynomial::from_int(1));
        let q = p.substitute(&subst);
        assert_eq!(q.to_string(&pool), "1 + 3*y + y^2");
    }

    #[test]
    fn substitution_identity_when_missing() {
        let (_, x, y) = setup();
        let p = Polynomial::var(x) * Polynomial::var(y);
        let q = p.substitute(&BTreeMap::new());
        assert_eq!(p, q);
    }

    #[test]
    fn vars_listing() {
        let (_, x, y) = setup();
        let p = Polynomial::var(x) * Polynomial::var(y) + Polynomial::from_int(3);
        assert_eq!(p.vars(), vec![x, y]);
        assert!(Polynomial::from_int(3).vars().is_empty());
    }

    #[test]
    fn display_signs() {
        let (pool, x, _) = setup();
        let p = -&Polynomial::var(x) + Polynomial::from_int(2);
        assert_eq!(p.to_string(&pool), "2 - x");
        let q = Polynomial::var(x).scale(&Rational::new(-3, 2));
        assert_eq!(q.to_string(&pool), "-3/2*x");
        assert_eq!(Polynomial::zero().to_string(&pool), "0");
    }

    #[test]
    fn scale_by_zero() {
        let (_, x, _) = setup();
        assert!(Polynomial::var(x).scale(&Rational::zero()).is_zero());
    }

    // Deterministic grid versions of what used to be property-based tests (the
    // workspace builds offline, without a property-testing dependency). The grids cover
    // negative, zero and positive coefficients and evaluation points.
    const COEFFS: [i64; 6] = [-20, -3, -1, 0, 2, 19];
    const POINTS: [i64; 5] = [-10, -2, 0, 1, 9];

    #[test]
    fn eval_is_homomorphic_over_ring_operations() {
        let (_, x, y) = setup();
        for a in COEFFS {
            for c in COEFFS {
                for vx in POINTS {
                    for vy in POINTS {
                        let p = Polynomial::var(x).scale(&Rational::from_int(a))
                            + Polynomial::from_int(a + 1);
                        let q = Polynomial::var(y).scale(&Rational::from_int(c))
                            + Polynomial::from_int(c - 1);
                        let v = val(&[(x, vx), (y, vy)]);
                        assert_eq!((&p + &q).eval(&v), &p.eval(&v) + &q.eval(&v));
                        assert_eq!((&p * &q).eval(&v), &p.eval(&v) * &q.eval(&v));
                        assert_eq!((&p - &q).eval(&v), &p.eval(&v) - &q.eval(&v));
                    }
                }
            }
        }
    }

    #[test]
    fn substitution_commutes_with_eval() {
        let (_, x, y) = setup();
        for a in -5i64..5 {
            for b in -5i64..5 {
                for vy in -5i64..5 {
                    // p(x, y) = a*x^2 + b*x*y + y
                    let p = Polynomial::var(x).pow(2).scale(&Rational::from_int(a))
                        + (Polynomial::var(x) * Polynomial::var(y))
                            .scale(&Rational::from_int(b))
                        + Polynomial::var(y);
                    // substitute x -> y + 1
                    let mut subst = BTreeMap::new();
                    subst.insert(x, Polynomial::var(y) + Polynomial::from_int(1));
                    let q = p.substitute(&subst);
                    // Evaluating q at y = vy must equal evaluating p at x = vy + 1,
                    // y = vy. The x slot of v_q is set to a nonzero value unrelated to
                    // the substitution so any residual x term in q breaks the equality.
                    let v_q = val(&[(y, vy), (x, 17)]);
                    let v_p = val(&[(x, vy + 1), (y, vy)]);
                    assert_eq!(q.eval(&v_q), p.eval(&v_p));
                }
            }
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let (_, x, _) = setup();
        for e in 0u32..5 {
            for a in -5i64..5 {
                for vx in -5i64..5 {
                    let p = Polynomial::var(x) + Polynomial::from_int(a);
                    let v = val(&[(x, vx)]);
                    assert_eq!(p.pow(e).eval(&v), p.eval(&v).pow(e));
                }
            }
        }
    }
}
