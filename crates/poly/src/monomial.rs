//! Monomials: products of variable powers.

use std::cmp::Ordering;
use std::fmt::Write as _;

use dca_numeric::Rational;

use crate::vars::{VarId, VarPool};
use crate::Valuation;

/// A monomial `x1^e1 * x2^e2 * ...` over program variables.
///
/// The representation is a sorted list of `(variable, exponent)` pairs with strictly
/// positive exponents; the empty list is the constant monomial `1`.
///
/// # Examples
///
/// ```
/// use dca_poly::{Monomial, VarPool};
/// let mut pool = VarPool::new();
/// let x = pool.intern("x");
/// let y = pool.intern("y");
/// let m = Monomial::var(x).mul(&Monomial::var(y)).mul(&Monomial::var(x));
/// assert_eq!(m.degree(), 3);
/// assert_eq!(m.to_string(&pool), "x^2*y");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Monomial {
    /// Sorted by variable id; exponents are strictly positive.
    powers: Vec<(VarId, u32)>,
}

impl Monomial {
    /// The constant monomial `1`.
    pub fn unit() -> Monomial {
        Monomial { powers: Vec::new() }
    }

    /// The monomial consisting of a single variable to the first power.
    pub fn var(v: VarId) -> Monomial {
        Monomial { powers: vec![(v, 1)] }
    }

    /// Builds a monomial from `(variable, exponent)` pairs; zero exponents are dropped.
    pub fn from_powers(mut powers: Vec<(VarId, u32)>) -> Monomial {
        powers.retain(|&(_, e)| e > 0);
        powers.sort_by_key(|&(v, _)| v);
        // Merge duplicates.
        let mut merged: Vec<(VarId, u32)> = Vec::with_capacity(powers.len());
        for (v, e) in powers {
            match merged.last_mut() {
                Some((lv, le)) if *lv == v => *le += e,
                _ => merged.push((v, e)),
            }
        }
        Monomial { powers: merged }
    }

    /// Returns `true` if this is the constant monomial `1`.
    pub fn is_unit(&self) -> bool {
        self.powers.is_empty()
    }

    /// Total degree (sum of exponents).
    pub fn degree(&self) -> u32 {
        self.powers.iter().map(|&(_, e)| e).sum()
    }

    /// Exponent of a particular variable (0 if absent).
    pub fn exponent(&self, v: VarId) -> u32 {
        self.powers
            .iter()
            .find(|&&(pv, _)| pv == v)
            .map(|&(_, e)| e)
            .unwrap_or(0)
    }

    /// The `(variable, exponent)` pairs of this monomial.
    pub fn powers(&self) -> &[(VarId, u32)] {
        &self.powers
    }

    /// Variables occurring in this monomial.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.powers.iter().map(|&(v, _)| v)
    }

    /// Product of two monomials.
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut powers = self.powers.clone();
        powers.extend_from_slice(&other.powers);
        Monomial::from_powers(powers)
    }

    /// Evaluates the monomial at a valuation.
    ///
    /// Missing variables are treated as `0` (so any monomial mentioning them evaluates to 0,
    /// except the unit monomial).
    pub fn eval(&self, valuation: &Valuation) -> Rational {
        let mut acc = Rational::one();
        for &(v, e) in &self.powers {
            match valuation.get(&v) {
                Some(val) => acc = &acc * &val.pow(e),
                None => return Rational::zero(),
            }
        }
        acc
    }

    /// Renders the monomial using variable names from the pool.
    pub fn to_string(&self, pool: &VarPool) -> String {
        if self.is_unit() {
            return "1".to_string();
        }
        let mut out = String::new();
        for (i, &(v, e)) in self.powers.iter().enumerate() {
            if i > 0 {
                out.push('*');
            }
            if e == 1 {
                let _ = write!(out, "{}", pool.name(v));
            } else {
                let _ = write!(out, "{}^{}", pool.name(v), e);
            }
        }
        out
    }
}

impl PartialOrd for Monomial {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Monomial {
    /// Graded lexicographic order: first by total degree, then lexicographically on the
    /// exponent vector (a higher power of an earlier variable sorts first). This yields
    /// the conventional rendering `x^2 + 2*x*y + y^2`.
    fn cmp(&self, other: &Self) -> Ordering {
        match self.degree().cmp(&other.degree()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        // Walk variables in ascending id order over the union of both monomials; at the
        // first differing exponent, the monomial with the larger exponent sorts first.
        let mut vars: Vec<VarId> = self.vars().chain(other.vars()).collect();
        vars.sort();
        vars.dedup();
        for v in vars {
            match other.exponent(v).cmp(&self.exponent(v)) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

/// Enumerates all monomials of total degree at most `max_degree` over the given variables.
///
/// The result includes the unit monomial and is ordered by the monomial ordering
/// (graded lexicographic). The number of monomials is `C(n + d, d)` for `n` variables and
/// degree bound `d`.
///
/// # Examples
///
/// ```
/// use dca_poly::{monomials_up_to_degree, VarPool};
/// let mut pool = VarPool::new();
/// let x = pool.intern("x");
/// let y = pool.intern("y");
/// let monos = monomials_up_to_degree(&[x, y], 2);
/// assert_eq!(monos.len(), 6); // 1, x, y, x^2, xy, y^2
/// ```
pub fn monomials_up_to_degree(vars: &[VarId], max_degree: u32) -> Vec<Monomial> {
    let mut result = Vec::new();
    let mut current: Vec<(VarId, u32)> = Vec::new();
    fn recurse(
        vars: &[VarId],
        idx: usize,
        remaining: u32,
        current: &mut Vec<(VarId, u32)>,
        out: &mut Vec<Monomial>,
    ) {
        if idx == vars.len() {
            out.push(Monomial::from_powers(current.clone()));
            return;
        }
        for e in 0..=remaining {
            if e > 0 {
                current.push((vars[idx], e));
            }
            recurse(vars, idx + 1, remaining - e, current, out);
            if e > 0 {
                current.pop();
            }
        }
    }
    recurse(vars, 0, max_degree, &mut current, &mut result);
    result.sort();
    result.dedup();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool3() -> (VarPool, VarId, VarId, VarId) {
        let mut pool = VarPool::new();
        let x = pool.intern("x");
        let y = pool.intern("y");
        let z = pool.intern("z");
        (pool, x, y, z)
    }

    #[test]
    fn unit_monomial() {
        let m = Monomial::unit();
        assert!(m.is_unit());
        assert_eq!(m.degree(), 0);
        assert_eq!(m.eval(&Valuation::new()), Rational::one());
    }

    #[test]
    fn from_powers_normalizes() {
        let (_, x, y, _) = pool3();
        let m = Monomial::from_powers(vec![(y, 1), (x, 2), (y, 0), (x, 1)]);
        assert_eq!(m.powers(), &[(x, 3), (y, 1)]);
        assert_eq!(m.degree(), 4);
        assert_eq!(m.exponent(x), 3);
        assert_eq!(m.exponent(y), 1);
    }

    #[test]
    fn multiplication_merges_exponents() {
        let (pool, x, y, _) = pool3();
        let m = Monomial::var(x).mul(&Monomial::var(y)).mul(&Monomial::var(x));
        assert_eq!(m.to_string(&pool), "x^2*y");
        assert_eq!(m.mul(&Monomial::unit()), m);
    }

    #[test]
    fn eval_monomial() {
        let (_, x, y, _) = pool3();
        let m = Monomial::from_powers(vec![(x, 2), (y, 1)]);
        let mut val = Valuation::new();
        val.insert(x, Rational::from_int(3));
        val.insert(y, Rational::from_int(5));
        assert_eq!(m.eval(&val), Rational::from_int(45));
    }

    #[test]
    fn eval_missing_variable_is_zero() {
        let (_, x, _, _) = pool3();
        let m = Monomial::var(x);
        assert_eq!(m.eval(&Valuation::new()), Rational::zero());
    }

    #[test]
    fn ordering_graded() {
        let (_, x, y, _) = pool3();
        let unit = Monomial::unit();
        let mx = Monomial::var(x);
        let my = Monomial::var(y);
        let mxy = mx.mul(&my);
        let mx2 = mx.mul(&mx);
        assert!(unit < mx);
        assert!(mx < my);
        assert!(my < mx2);
        assert!(mx2 < mxy);
    }

    #[test]
    fn enumeration_counts() {
        let (_, x, y, z) = pool3();
        // C(n+d, d) monomials over n vars up to degree d.
        assert_eq!(monomials_up_to_degree(&[x], 3).len(), 4);
        assert_eq!(monomials_up_to_degree(&[x, y], 2).len(), 6);
        assert_eq!(monomials_up_to_degree(&[x, y, z], 2).len(), 10);
        assert_eq!(monomials_up_to_degree(&[x, y, z], 3).len(), 20);
        assert_eq!(monomials_up_to_degree(&[], 5), vec![Monomial::unit()]);
    }

    #[test]
    fn enumeration_degrees_bounded() {
        let (_, x, y, z) = pool3();
        for m in monomials_up_to_degree(&[x, y, z], 3) {
            assert!(m.degree() <= 3);
        }
    }

    #[test]
    fn display() {
        let (pool, x, y, _) = pool3();
        assert_eq!(Monomial::unit().to_string(&pool), "1");
        assert_eq!(Monomial::var(x).to_string(&pool), "x");
        assert_eq!(
            Monomial::from_powers(vec![(x, 2), (y, 3)]).to_string(&pool),
            "x^2*y^3"
        );
    }
}
