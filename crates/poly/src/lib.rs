//! Polynomial arithmetic for the diffcost analyzer.
//!
//! The synthesis algorithm of the paper manipulates three flavours of symbolic
//! expressions over program variables:
//!
//! * [`LinExpr`] — affine expressions (degree ≤ 1), used for transition guards, initial
//!   conditions `Θ0`, and the affine invariants assumed in Section 5;
//! * [`Polynomial`] — concrete multivariate polynomials with rational coefficients, used
//!   for transition updates and for the products `Prod_K(Aff)` of Handelman's theorem;
//! * [`TemplatePolynomial`] — polynomials whose coefficients are themselves affine forms
//!   over *LP unknowns* ([`LinForm`]), used for the potential / anti-potential templates
//!   `Σ u_{ℓ,m}·m` of Step 1 and all constraint expressions of Step 2.
//!
//! Variables are interned in a [`VarPool`] and referenced by the compact [`VarId`].
//!
//! # Example
//!
//! ```
//! use dca_poly::{Polynomial, VarPool};
//!
//! let mut pool = VarPool::new();
//! let x = pool.intern("x");
//! let y = pool.intern("y");
//! // (x + y)^2 = x^2 + 2xy + y^2
//! let p = (Polynomial::var(x) + Polynomial::var(y)).pow(2);
//! assert_eq!(p.degree(), 2);
//! assert_eq!(p.to_string(&pool), "x^2 + 2*x*y + y^2");
//! ```

mod linexpr;
mod monomial;
mod polynomial;
mod template;
mod vars;

pub use linexpr::LinExpr;
pub use monomial::{monomials_up_to_degree, Monomial};
pub use polynomial::Polynomial;
pub use template::{LinForm, TemplatePolynomial, UnknownId};
pub use vars::{VarId, VarPool};

/// A variable assignment mapping [`VarId`]s to exact rational values.
pub type Valuation = std::collections::HashMap<VarId, dca_numeric::Rational>;
