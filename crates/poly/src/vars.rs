//! Variable identifiers and the interning pool.

use std::collections::HashMap;
use std::fmt;

/// A compact identifier for a program variable.
///
/// `VarId`s are produced by [`VarPool::intern`] and are only meaningful with respect to
/// the pool that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// Index into the pool as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An interner mapping variable names to [`VarId`]s.
///
/// # Examples
///
/// ```
/// use dca_poly::VarPool;
/// let mut pool = VarPool::new();
/// let x = pool.intern("x");
/// assert_eq!(pool.intern("x"), x);
/// assert_eq!(pool.name(x), "x");
/// assert_eq!(pool.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VarPool {
    names: Vec<String>,
    by_name: HashMap<String, VarId>,
}

impl VarPool {
    /// Creates an empty pool.
    pub fn new() -> VarPool {
        VarPool::default()
    }

    /// Interns a name, returning the existing id if the name is already known.
    pub fn intern(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = VarId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Looks up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.by_name.get(name).copied()
    }

    /// Returns the name associated with an id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this pool.
    pub fn name(&self, id: VarId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if no variables have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all interned variable ids in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.names.len() as u32).map(VarId)
    }

    /// All variable ids as a vector.
    pub fn ids(&self) -> Vec<VarId> {
        self.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut pool = VarPool::new();
        let a = pool.intern("a");
        let b = pool.intern("b");
        assert_ne!(a, b);
        assert_eq!(pool.intern("a"), a);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.name(a), "a");
        assert_eq!(pool.name(b), "b");
    }

    #[test]
    fn lookup_unknown_returns_none() {
        let pool = VarPool::new();
        assert!(pool.lookup("missing").is_none());
        assert!(pool.is_empty());
    }

    #[test]
    fn iter_order_matches_insertion() {
        let mut pool = VarPool::new();
        let ids: Vec<_> = ["x", "y", "z"].iter().map(|n| pool.intern(n)).collect();
        assert_eq!(pool.ids(), ids);
    }
}
