//! `dca` — command-line differential cost analyzer.
//!
//! Usage:
//!
//! ```text
//! dca diff <old.dca> <new.dca> [--degree D]     compute a differential threshold
//! dca bound <program.dca> [--degree D]          single-program bounds with precision (Sec. 7)
//! dca show <program.dca>                        print the lowered transition system
//! ```

use std::process::ExitCode;

use dca_core::{AnalysisOptions, AnalyzedProgram, DiffCostSolver};

fn read_program(path: &str) -> Result<AnalyzedProgram, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    AnalyzedProgram::from_source(&source).map_err(|e| format!("{path}: {e}"))
}

fn parse_degree(args: &[String]) -> u32 {
    args.windows(2)
        .find(|w| w[0] == "--degree")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: dca <diff old new | bound program | show program> [--degree D]";
    let Some(command) = args.first() else {
        eprintln!("{usage}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "diff" if args.len() >= 3 => run_diff(&args[1], &args[2], parse_degree(&args)),
        "bound" if args.len() >= 2 => run_bound(&args[1], parse_degree(&args)),
        "show" if args.len() >= 2 => run_show(&args[1]),
        _ => Err(usage.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run_diff(old_path: &str, new_path: &str, degree: u32) -> Result<(), String> {
    let old = read_program(old_path)?;
    let new = read_program(new_path)?;
    let solver = DiffCostSolver::new(AnalysisOptions::with_degree(degree));
    let result = solver.solve(&new, &old).map_err(|e| e.to_string())?;
    println!("differential threshold: {:.4}", result.threshold);
    println!("integer threshold:      {}", result.threshold_int());
    println!("LP: {} variables, {} constraints, {:?}",
        result.stats.lp_variables, result.stats.lp_constraints, result.stats.duration);
    println!("\npotential function (new version):\n{}", result.potential_new.render(&new.ts));
    println!("anti-potential function (old version):\n{}", result.anti_potential_old.render(&old.ts));
    Ok(())
}

fn run_bound(path: &str, degree: u32) -> Result<(), String> {
    let program = read_program(path)?;
    let solver = DiffCostSolver::new(AnalysisOptions::with_degree(degree));
    let result = solver.precision(&program).map_err(|e| e.to_string())?;
    println!("precision gap: {:.4}", result.precision);
    println!("\nupper cost bound:\n{}", result.upper.render(&program.ts));
    println!("lower cost bound:\n{}", result.lower.render(&program.ts));
    Ok(())
}

fn run_show(path: &str) -> Result<(), String> {
    let program = read_program(path)?;
    println!("{}", program.ts.render());
    println!("invariants:\n{}", program.invariants.render(&program.ts));
    Ok(())
}
