//! `dca` — command-line differential cost analyzer.
//!
//! Usage:
//!
//! ```text
//! dca diff <old.dca> <new.dca> [options]   compute a differential threshold
//! dca bound <program.dca> [options]        single-program bounds with precision (Sec. 7)
//! dca show <program.dca> [--invariant-tier T]
//!                                          print the lowered transition system
//! dca suite [--jobs N] [--escalate] [--timeout SECS] [--invariant-tier T]
//!                                          run the 19 Table-1 pairs + running example
//! dca serve [--stdio | --listen ADDR]      run the analysis daemon (line-delimited
//!                                          JSON; default listens on 127.0.0.1:4158)
//! dca query <old.dca> <new.dca> [--addr ADDR] [--degree D] [--invariant-tier T]
//!           [--timeout-ms N] [--stream]    ask a running daemon for a threshold
//!
//! options for diff/bound:
//!   --degree D          template degree d = K (default 2)
//!   --max-products K    Handelman product bound K, overriding K = D
//!   --backend certified|f64|exact LP backend (default certified)
//!   --invariant-tier T  invariant precision: 0 baseline, 1 hull, 2 relational (default 0)
//!   --escalate          discover degree and invariant tier automatically
//!                       (tiers climb first, then degrees 1 -> 2 -> 3)
//! ```

use std::process::ExitCode;

use dca_benchmarks::SuiteConfig;
use dca_core::escalate::{solve_with_escalation, EscalationPolicy};
use dca_core::{AnalysisOptions, AnalyzedProgram, DiffCostSolver, InvariantTier, LpBackend};

fn read_program(path: &str, tier: InvariantTier) -> Result<AnalyzedProgram, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    AnalyzedProgram::from_source_at_tier(&source, tier).map_err(|e| format!("{path}: {e}"))
}

/// The value following `flag`: `Ok(None)` when the flag is absent, an error when it is
/// present without a value (silently ignoring `dca suite --timeout` would run the
/// suite unbounded — the opposite of what the user asked for).
fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, String> {
    let Some(position) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    match args.get(position + 1) {
        Some(value) => Ok(Some(value.as_str())),
        None => Err(format!("{flag} requires a value")),
    }
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Parses `--invariant-tier` (0 = baseline, 1 = hull, 2 = relational; default 0).
fn parse_invariant_tier(args: &[String]) -> Result<InvariantTier, String> {
    match flag_value(args, "--invariant-tier")? {
        None => Ok(InvariantTier::Baseline),
        Some(v) => {
            let index: u32 =
                v.parse().map_err(|_| format!("invalid --invariant-tier {v}"))?;
            InvariantTier::from_index(index)
                .ok_or_else(|| format!("invalid --invariant-tier {v} (expected 0, 1 or 2)"))
        }
    }
}

/// Builds [`AnalysisOptions`] from the `--degree`, `--max-products`, `--backend` and
/// `--invariant-tier` flags (defaults: `d = K = 2`, the float-first certified
/// backend, baseline invariants).
fn parse_options(args: &[String]) -> Result<AnalysisOptions, String> {
    let degree: u32 = match flag_value(args, "--degree")? {
        Some(v) => v.parse().map_err(|_| format!("invalid --degree {v}"))?,
        None => 2,
    };
    let max_products: u32 = match flag_value(args, "--max-products")? {
        Some(v) => v.parse().map_err(|_| format!("invalid --max-products {v}"))?,
        None => degree,
    };
    let backend = match flag_value(args, "--backend")? {
        Some("certified") | None => LpBackend::Certified,
        Some("f64") => LpBackend::F64,
        Some("exact") => LpBackend::Exact,
        Some(other) => {
            return Err(format!(
                "invalid --backend {other} (expected certified, f64 or exact)"
            ))
        }
    };
    Ok(AnalysisOptions {
        degree,
        max_products,
        backend,
        invariant_tier: parse_invariant_tier(args)?,
        ..AnalysisOptions::default()
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: dca <diff old new | bound program | show program | suite \
                 | serve | query old new> \
                 [--degree D] [--max-products K] [--backend certified|f64|exact] \
                 [--invariant-tier 0|1|2] [--escalate] [--jobs N] [--timeout SECS] \
                 [--stdio] [--listen ADDR] [--addr ADDR] [--timeout-ms N] [--stream]";
    let Some(command) = args.first() else {
        eprintln!("{usage}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "diff" if args.len() >= 3 => run_diff(&args[1], &args[2], &args),
        "bound" if args.len() >= 2 => run_bound(&args[1], &args),
        "show" if args.len() >= 2 => run_show(&args[1], &args),
        "suite" => run_suite_command(&args),
        "serve" => run_serve(&args),
        "query" if args.len() >= 3 => run_query(&args[1], &args[2], &args),
        _ => Err(usage.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn solve_pair(
    new: &AnalyzedProgram,
    old: &AnalyzedProgram,
    args: &[String],
) -> Result<(dca_core::DiffCostResult, u32, InvariantTier), String> {
    let options = parse_options(args)?;
    if has_flag(args, "--escalate") {
        let escalated = solve_with_escalation(new, old, &options, EscalationPolicy::default())
            .map_err(|failure| failure.error.to_string())?;
        Ok((escalated.result, escalated.degree, escalated.tier))
    } else {
        let result = DiffCostSolver::new(options)
            .solve(new, old)
            .map_err(|e| e.to_string())?;
        Ok((result, options.degree, options.invariant_tier))
    }
}

fn run_diff(old_path: &str, new_path: &str, args: &[String]) -> Result<(), String> {
    let tier = parse_invariant_tier(args)?;
    let old = read_program(old_path, tier)?;
    let new = read_program(new_path, tier)?;
    let (result, degree, tier) = solve_pair(&new, &old, args)?;
    println!("differential threshold: {:.4}", result.threshold);
    println!("integer threshold:      {}", result.threshold_int());
    println!("template degree:        {degree}");
    println!("invariant tier:         {tier}");
    println!("LP: {} variables, {} constraints ({} before dedup), {:?}",
        result.stats.lp_variables, result.stats.lp_constraints,
        result.stats.lp_constraints_raw, result.stats.duration);
    // A winning phase-split analysis keys its witnesses over the split systems'
    // locations, carried in the result; render against those, not the inputs.
    let (ts_new, ts_old) = match result.split_systems.as_deref() {
        Some((split_new, split_old)) => {
            println!("loop-phase splitting: {} split(s) analyzed; witnesses are over the split system(s)",
                result.stats.phases_split);
            (split_new, split_old)
        }
        None => (&new.ts, &old.ts),
    };
    println!("\npotential function (new version):\n{}", result.potential_new.render(ts_new));
    println!("anti-potential function (old version):\n{}", result.anti_potential_old.render(ts_old));
    Ok(())
}

fn run_bound(path: &str, args: &[String]) -> Result<(), String> {
    let tier = parse_invariant_tier(args)?;
    let program = read_program(path, tier)?;
    let (result, degree, tier) = solve_pair(&program, &program, args)?;
    println!("precision gap: {:.4}", result.threshold);
    println!("template degree: {degree}");
    println!("invariant tier: {tier}");
    let (ts_upper, ts_lower) = match result.split_systems.as_deref() {
        Some((split_new, split_old)) => (split_new, split_old),
        None => (&program.ts, &program.ts),
    };
    println!("\nupper cost bound:\n{}", result.potential_new.render(ts_upper));
    println!("lower cost bound:\n{}", result.anti_potential_old.render(ts_lower));
    Ok(())
}

fn run_show(path: &str, args: &[String]) -> Result<(), String> {
    let tier = parse_invariant_tier(args)?;
    let program = read_program(path, tier)?;
    println!("{}", program.ts.render());
    println!("invariants ({tier}):\n{}", program.invariants.render(&program.ts));
    Ok(())
}

/// The default daemon endpoint for `dca serve` / `dca query`.
const DEFAULT_ADDR: &str = "127.0.0.1:4158";

fn run_serve(args: &[String]) -> Result<(), String> {
    let engine = std::sync::Arc::new(dca_serve::Engine::new());
    if has_flag(args, "--stdio") {
        return dca_serve::serve_stdio(&engine).map_err(|e| format!("serve: {e}"));
    }
    let addr = flag_value(args, "--listen")?.unwrap_or(DEFAULT_ADDR);
    dca_serve::serve_tcp(engine, addr, |bound| {
        eprintln!("dca serve: listening on {bound}");
    })
    .map_err(|e| format!("serve: cannot listen on {addr}: {e}"))
}

fn run_query(old_path: &str, new_path: &str, args: &[String]) -> Result<(), String> {
    use std::io::{BufRead, BufReader, Write};

    let old_source =
        std::fs::read_to_string(old_path).map_err(|e| format!("cannot read {old_path}: {e}"))?;
    let new_source =
        std::fs::read_to_string(new_path).map_err(|e| format!("cannot read {new_path}: {e}"))?;
    let mut request = dca_serve::AnalyzeRequest::new("cli", new_source, old_source);
    request.degree = match flag_value(args, "--degree")? {
        Some(v) => Some(v.parse().map_err(|_| format!("invalid --degree {v}"))?),
        None => None,
    };
    request.tier = Some(parse_invariant_tier(args)?.index());
    request.timeout_ms = match flag_value(args, "--timeout-ms")? {
        Some(v) => Some(v.parse().map_err(|_| format!("invalid --timeout-ms {v}"))?),
        None => None,
    };
    request.stream = has_flag(args, "--stream");

    let addr = flag_value(args, "--addr")?.unwrap_or(DEFAULT_ADDR);
    let stream = std::net::TcpStream::connect(addr)
        .map_err(|e| format!("cannot reach a daemon at {addr} (start one with `dca serve`): {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("query: {e}"))?;
    writeln!(writer, "{}", request.to_json()).map_err(|e| format!("query: {e}"))?;

    // Print every frame as it arrives; the final frame of an analyze is always
    // `result` or `error`, so stop (and set the exit code) there.
    for line in BufReader::new(stream).lines() {
        let line = line.map_err(|e| format!("query: {e}"))?;
        println!("{line}");
        let frame = dca_serve::json::Value::parse(&line)
            .map_err(|e| format!("unparseable frame {line:?}: {e}"))?;
        match frame.get("type").and_then(dca_serve::json::Value::as_str) {
            Some("result") => return Ok(()),
            Some("error") => {
                let message = frame
                    .get("message")
                    .and_then(dca_serve::json::Value::as_str)
                    .unwrap_or("daemon reported an error");
                return Err(message.to_string());
            }
            _ => {}
        }
    }
    Err("daemon closed the connection before answering".to_string())
}

fn run_suite_command(args: &[String]) -> Result<(), String> {
    let jobs: usize = match flag_value(args, "--jobs")? {
        Some(v) => v.parse().map_err(|_| format!("invalid --jobs {v}"))?,
        None => 0,
    };
    let escalate = has_flag(args, "--escalate");
    let time_budget = match flag_value(args, "--timeout")? {
        Some(v) => Some(std::time::Duration::from_secs(
            v.parse().map_err(|_| format!("invalid --timeout {v}"))?,
        )),
        None => None,
    };
    let invariant_tier = parse_invariant_tier(args)?;
    let report = dca_benchmarks::run_suite_parallel(&SuiteConfig {
        jobs,
        escalate,
        time_budget,
        invariant_tier,
    });
    println!(
        "{:<21} | {:>10} | d | t | {:<9} | {:>8}",
        "benchmark", "threshold", "outcome", "time (s)"
    );
    println!("{:-<21}-+-{:->10}-+---+---+-{:-<9}-+-{:->8}", "", "", "", "");
    for outcome in &report.outcomes {
        let threshold = match &outcome.result {
            Ok(result) => format!("{}", result.threshold_int()),
            Err(error) => {
                // Keep the table aligned; full error text goes below.
                eprintln!("{}: {error}", outcome.name);
                "x".to_string()
            }
        };
        println!(
            "{:<21} | {:>10} | {} | {} | {:<9} | {:>8.2}",
            outcome.name,
            threshold,
            outcome.degree,
            outcome.tier.index(),
            outcome.outcome().label(),
            outcome.duration.as_secs_f64()
        );
    }
    println!(
        "\n{} solved, {} failed ({} certified, {} truncated, {} aborted); \
         wall-clock {:.2}s on {} worker threads (cpu {:.2}s, speedup {:.2}x)",
        report.solved(),
        report.failed(),
        report.certified(),
        report.truncated(),
        report.aborted(),
        report.wall_clock.as_secs_f64(),
        report.jobs,
        report.cpu_time().as_secs_f64(),
        report.cpu_time().as_secs_f64() / report.wall_clock.as_secs_f64().max(1e-9),
    );
    Ok(())
}
