//! The fault-injection test matrix: every `(phase × kind)` cell of `DCA_FAULT` must
//! produce a machine-distinguishable outcome, leave the rest of the batch intact, and
//! never let a degraded solve report a threshold that disagrees with the fault-free
//! run. The fault state is process-global, so everything here runs under one lock.

use std::sync::Mutex;

use dca_core::batch::{run_batch, BatchConfig, BatchJob, BatchReport};
use dca_core::{AnalysisError, SolveOutcome};
use dca_lp::fault::{self, FaultKind, FaultSpec};
use dca_lp::SolvePhase;

/// Serializes the tests in this file: `fault::install` writes process-global state.
static LOCK: Mutex<()> = Mutex::new(());

const TICK1: &str =
    "proc f(n) { assume(n >= 1 && n <= 20); i = 0; while (i < n) { tick(1); i = i + 1; } }";
const TICK2: &str =
    "proc f(n) { assume(n >= 1 && n <= 20); i = 0; while (i < n) { tick(2); i = i + 1; } }";
const TICK3: &str =
    "proc f(n) { assume(n >= 1 && n <= 20); i = 0; while (i < n) { tick(3); i = i + 1; } }";

fn jobs() -> Vec<BatchJob> {
    vec![
        BatchJob::from_sources("double", TICK2, TICK1),
        BatchJob::from_sources("triple", TICK3, TICK1),
        BatchJob::from_sources("same", TICK1, TICK1),
    ]
}

fn thresholds(report: &BatchReport) -> Vec<Option<i64>> {
    report
        .outcomes
        .iter()
        .map(|o| o.result.as_ref().ok().map(|r| r.threshold_int()))
        .collect()
}

/// Every cell of the `(phase × kind)` matrix, against a fault-free baseline.
#[test]
fn every_matrix_cell_degrades_predictably_and_is_contained() {
    let _guard = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    // Injected panics are expected here; keep them off the test output.
    std::panic::set_hook(Box::new(|_| {}));

    fault::install(None);
    let baseline = run_batch(&jobs(), &BatchConfig::with_jobs(1));
    let baseline_thresholds = thresholds(&baseline);
    assert_eq!(baseline_thresholds, vec![Some(20), Some(40), Some(0)]);
    assert_eq!(baseline.certified(), 3);

    for phase in SolvePhase::ALL {
        for kind in [FaultKind::Panic, FaultKind::Deadline, FaultKind::Numeric] {
            let spec = FaultSpec { phase, kind, nth: 1 };
            fault::install(Some(spec));
            let report = run_batch(&jobs(), &BatchConfig::with_jobs(1));
            let triggered = fault::triggered();
            fault::install(None);
            let cell = format!("{phase}:{kind}");

            // The batch always completes every pair, whatever was injected.
            assert_eq!(report.outcomes.len(), 3, "{cell}: lost outcomes");

            if !triggered {
                // The armed phase was never entered (legitimate only for the two
                // conditional LP phases — repair is skipped when the first basis
                // certifies, row generation when no lazy columns exist). The run
                // must then be indistinguishable from the fault-free one.
                assert!(
                    matches!(phase, SolvePhase::LpRepair | SolvePhase::LpRowGen),
                    "{cell}: fault never triggered in a mandatory phase"
                );
                assert_eq!(thresholds(&report), baseline_thresholds, "{cell}");
                assert_eq!(report.certified(), 3, "{cell}");
                continue;
            }

            // With one worker, the first pair to enter the phase is pair 0; the
            // siblings must match the baseline exactly in every cell.
            for (index, outcome) in report.outcomes.iter().enumerate().skip(1) {
                assert!(
                    outcome.outcome().is_certified(),
                    "{cell}: sibling {index} degraded: {:?}",
                    outcome.outcome()
                );
                assert_eq!(
                    thresholds(&report)[index], baseline_thresholds[index],
                    "{cell}: sibling {index} changed its threshold"
                );
            }

            let faulted = &report.outcomes[0];
            match kind {
                FaultKind::Panic => match &faulted.result {
                    Err(AnalysisError::Panicked { phase: at, message }) => {
                        assert_eq!(*at, phase, "{cell}: wrong crash site");
                        assert!(message.contains("injected fault"), "{cell}: {message}");
                        assert!(matches!(
                            faulted.outcome(),
                            SolveOutcome::Aborted { phase: Some(p), .. } if p == phase
                        ));
                    }
                    other => panic!("{cell}: expected a contained panic, got {other:?}"),
                },
                FaultKind::Deadline => match faulted.outcome() {
                    // A cancelled solve that had a feasible iterate degrades to an
                    // anytime bound; its upper bound must stay sound (≥ the true
                    // threshold the fault-free run certified).
                    SolveOutcome::TruncatedAnytime { upper, .. } => {
                        let tight = baseline_thresholds[0].unwrap() as f64;
                        assert!(upper >= tight - 1e-9, "{cell}: unsound bound {upper}");
                    }
                    SolveOutcome::Aborted { reason, .. } => {
                        assert!(
                            matches!(faulted.result, Err(AnalysisError::Timeout { .. })),
                            "{cell}: deadline abort without a timeout error: {reason}"
                        );
                    }
                    SolveOutcome::Certified { threshold } => {
                        // Allowed only when the solve finished before noticing the
                        // cancel — then the certificate is real and must agree with
                        // the fault-free answer.
                        assert_eq!(
                            threshold.floor() as i64,
                            baseline_thresholds[0].unwrap(),
                            "{cell}: certified a different threshold under cancellation"
                        );
                    }
                },
                // A forced numeric rejection makes the driver fall back to exact
                // arithmetic: same certified answer, by a more expensive route.
                FaultKind::Numeric => {
                    assert!(
                        faulted.outcome().is_certified(),
                        "{cell}: numeric rejection must not lose the certificate: {:?}",
                        faulted.outcome()
                    );
                    assert_eq!(thresholds(&report)[0], baseline_thresholds[0], "{cell}");
                }
            }
        }
    }
    let _ = std::panic::take_hook();
}

/// The containment guarantee on a *parallel* batch: an injected panic poisons
/// nothing — the surviving workers drain the queue, the panicking pair is reported as
/// [`AnalysisError::Panicked`], and the result slots (a Mutex per pair) all fill.
#[test]
fn a_panicking_job_is_contained_and_does_not_poison_a_parallel_batch() {
    let _guard = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    std::panic::set_hook(Box::new(|_| {}));

    fault::install(Some(FaultSpec {
        phase: SolvePhase::Encode,
        kind: FaultKind::Panic,
        nth: 1,
    }));
    let report = run_batch(&jobs(), &BatchConfig::with_jobs(2));
    fault::install(None);
    let _ = std::panic::take_hook();

    assert_eq!(report.outcomes.len(), 3, "every slot fills despite the panic");
    // Exactly one pair hit the injected panic (the hit counter is atomic); with two
    // workers, *which* pair is scheduling-dependent.
    let panicked: Vec<usize> = report
        .outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| matches!(o.result, Err(AnalysisError::Panicked { .. })))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(panicked.len(), 1, "exactly one pair absorbs the fault");
    assert_eq!(report.aborted(), 1);
    assert_eq!(report.certified(), 2);
    let expected = [Some(20), Some(40), Some(0)];
    for (index, outcome) in report.outcomes.iter().enumerate() {
        if index == panicked[0] {
            assert!(matches!(
                outcome.outcome(),
                SolveOutcome::Aborted { phase: Some(SolvePhase::Encode), .. }
            ));
        } else {
            assert_eq!(
                outcome.result.as_ref().ok().map(|r| r.threshold_int()),
                expected[index],
                "surviving pair {index} must match the fault-free answer"
            );
        }
    }
}
