//! Sampling-based verification of synthesized witnesses.
//!
//! The analysis is proved sound on paper (Theorems 4.2 and 5.1); this module provides an
//! *independent* check used by the test-suite and the benchmark harness: it replays
//! concrete executions through the reference interpreter and checks that every computed
//! threshold really bounds the observed cost difference, and that the synthesized
//! potential / anti-potential functions satisfy their defining inequalities along those
//! executions.

use dca_ir::{CostExplorer, IntValuation, LocId, State, TransitionSystem, Update};
use dca_lp::{ConstraintOp, LpProblem, LpStatus, VarKind};
use dca_numeric::Rational;
use dca_poly::{LinExpr, VarId};

use crate::potential::PotentialFunction;
use crate::program::AnalyzedProgram;

/// Configuration for sampling-based verification.
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// Number of initial states sampled from Θ0.
    pub samples: usize,
    /// RNG seed (sampling is reproducible).
    pub seed: u64,
    /// Candidate values explored for non-deterministic updates.
    pub nondet_candidates: Vec<i64>,
    /// Numerical slack allowed when comparing against real-valued thresholds.
    pub tolerance: f64,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            samples: 25,
            seed: 0xD1FF,
            nondet_candidates: vec![0, 1],
            tolerance: 1e-6,
        }
    }
}

/// Outcome of a verification pass.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Number of initial states actually checked.
    pub checked: usize,
    /// Human-readable descriptions of any violations found (empty means success).
    pub violations: Vec<String>,
}

impl VerifyReport {
    /// Returns `true` if no violation was found.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Derives a bounding box for the data variables of a program from its Θ0 (via per-variable
/// LPs), falling back to `[0, 100]` for unbounded variables.
pub fn input_box(program: &AnalyzedProgram) -> Vec<(VarId, i64, i64)> {
    program
        .ts
        .data_vars()
        .into_iter()
        .map(|var| {
            let lower = bound_var(program.ts.theta0(), var, true).unwrap_or(0);
            let upper = bound_var(program.ts.theta0(), var, false).unwrap_or(100);
            (var, lower.min(upper), upper.max(lower))
        })
        .collect()
}

fn bound_var(theta0: &[LinExpr], var: VarId, minimize: bool) -> Option<i64> {
    let mut vars: Vec<VarId> = theta0.iter().flat_map(LinExpr::vars).collect();
    vars.push(var);
    vars.sort();
    vars.dedup();
    let mut lp = LpProblem::new();
    let lp_vars: std::collections::BTreeMap<VarId, dca_lp::LpVar> = vars
        .iter()
        .map(|&v| (v, lp.add_var(format!("x{}", v.0), VarKind::Free)))
        .collect();
    for constraint in theta0 {
        let terms: Vec<_> = constraint
            .iter()
            .map(|(v, c)| (lp_vars[v], c.clone()))
            .collect();
        lp.add_constraint(terms, ConstraintOp::Ge, -constraint.constant_term().clone());
    }
    let sign = if minimize { Rational::one() } else { Rational::from_int(-1) };
    lp.set_objective(vec![(lp_vars[&var], sign)]);
    let solution = lp.solve_f64();
    (solution.status == LpStatus::Optimal)
        .then(|| solution.values[lp_vars[&var].index()].round() as i64)
}

/// Samples initial valuations of a program satisfying Θ0 (cost fixed to 0).
pub fn sample_inputs(program: &AnalyzedProgram, config: &VerifyConfig) -> Vec<IntValuation> {
    let bounds = input_box(program);
    let mut samples = dca_ir::sample_initial_states(
        program.ts.theta0(),
        &bounds,
        config.samples,
        config.seed,
    );
    // Always include the corners of the box (extreme inputs are where thresholds bind).
    let lower: IntValuation = bounds.iter().map(|&(v, lo, _)| (v, lo)).collect();
    let upper: IntValuation = bounds.iter().map(|&(v, _, hi)| (v, hi)).collect();
    for corner in [lower, upper] {
        if dca_ir::IntValuation::is_empty(&corner)
            || samples.contains(&corner)
            || !corner_satisfies(program, &corner)
        {
            continue;
        }
        samples.push(corner);
    }
    for sample in &mut samples {
        sample.insert(program.ts.cost_var(), 0);
    }
    samples
}

fn corner_satisfies(program: &AnalyzedProgram, corner: &IntValuation) -> bool {
    program.ts.theta0().iter().all(|c| {
        let value = c.eval(
            &corner
                .iter()
                .map(|(&v, &x)| (v, Rational::from_int(x)))
                .collect(),
        );
        // `cost` is absent from the corner; constraints mentioning it are checked later.
        !c.vars().iter().all(|v| corner.contains_key(v)) || !value.is_negative()
    })
}

/// Checks that `CostSup_new(x) − CostInf_old(x) ≤ threshold` on sampled inputs, computing
/// the exact cost bounds with the exhaustive explorer.
pub fn verify_threshold(
    new: &AnalyzedProgram,
    old: &AnalyzedProgram,
    threshold: f64,
    config: &VerifyConfig,
) -> VerifyReport {
    let explorer = CostExplorer::with_candidates(config.nondet_candidates.clone());
    let samples = sample_inputs(new, config);
    let mut violations = Vec::new();
    let mut checked = 0usize;
    for (index, sample) in samples.iter().enumerate() {
        // Random-walk bounds: the observed maximum under-approximates CostSup and the
        // observed minimum over-approximates CostInf, so any violation found is real.
        let new_bounds = explorer.sample_bounds(&new.ts, sample, 32, config.seed ^ index as u64);
        // Transfer the same named inputs to the old program's variable ids.
        let old_sample = transfer_valuation(sample, &new.ts, &old.ts);
        let old_bounds =
            explorer.sample_bounds(&old.ts, &old_sample, 32, config.seed ^ (index as u64) << 1);
        if new_bounds.truncated || old_bounds.truncated {
            continue;
        }
        checked += 1;
        let difference = new_bounds.max - old_bounds.min;
        if (difference as f64) > threshold + config.tolerance {
            violations.push(format!(
                "input {:?}: CostSup_new = {}, CostInf_old = {}, difference {} exceeds threshold {}",
                sample, new_bounds.max, old_bounds.min, difference, threshold
            ));
        }
    }
    VerifyReport { checked, violations }
}

/// Maps an integer valuation from one program's variable ids to another's by name.
pub fn transfer_valuation(
    valuation: &IntValuation,
    from: &TransitionSystem,
    to: &TransitionSystem,
) -> IntValuation {
    let mut out = IntValuation::new();
    for (&var, &value) in valuation {
        let name = from.pool().name(var);
        if let Some(target) = to.pool().lookup(name) {
            out.insert(target, value);
        }
    }
    for var in to.vars() {
        out.entry(var).or_insert(0);
    }
    out
}

/// Checks the defining potential / anti-potential inequalities of a synthesized witness
/// along concrete executions starting from sampled inputs.
///
/// For every visited state `(ℓ, x)` and every enabled transition to `(ℓ', x')`:
/// * potential: `φ(ℓ,x) ≥ φ(ℓ',x') + Δcost − tol`
/// * anti-potential: `χ(ℓ,x) ≤ χ(ℓ',x') + Δcost + tol`
///
/// and at terminal states `φ ≥ −tol` resp. `χ ≤ tol`.
pub fn verify_potential_on_runs(
    potential: &PotentialFunction,
    program: &AnalyzedProgram,
    is_anti: bool,
    config: &VerifyConfig,
) -> VerifyReport {
    let samples = sample_inputs(program, config);
    let mut violations = Vec::new();
    let mut checked = 0usize;
    for sample in &samples {
        let mut frontier = vec![State::new(program.ts.initial(), sample.clone())];
        let mut steps = 0usize;
        while let Some(state) = frontier.pop() {
            steps += 1;
            if steps > 50_000 {
                break;
            }
            checked += 1;
            let valuation: dca_poly::Valuation = state
                .vals
                .iter()
                .map(|(&v, &x)| (v, Rational::from_int(x)))
                .collect();
            let here = potential.eval(state.loc, &valuation).to_f64();
            if state.loc == program.ts.terminal() {
                let violated = if is_anti {
                    here > config.tolerance
                } else {
                    here < -config.tolerance
                };
                if violated {
                    violations.push(format!(
                        "termination condition violated at {:?}: value {}",
                        state.vals, here
                    ));
                }
                continue;
            }
            for transition in program.ts.outgoing(state.loc) {
                if !dca_ir::satisfies_all(&transition.guard, &state.vals) {
                    continue;
                }
                for successor in successors(&state, transition, &config.nondet_candidates) {
                    let next_valuation: dca_poly::Valuation = successor
                        .vals
                        .iter()
                        .map(|(&v, &x)| (v, Rational::from_int(x)))
                        .collect();
                    let there = potential.eval(successor.loc, &next_valuation).to_f64();
                    let delta_cost = (successor.vals[&program.ts.cost_var()]
                        - state.vals[&program.ts.cost_var()]) as f64;
                    let violated = if is_anti {
                        here > there + delta_cost + config.tolerance
                    } else {
                        here < there + delta_cost - config.tolerance
                    };
                    if violated {
                        violations.push(format!(
                            "preservation violated at {} -> {}: {} vs {} + {}",
                            program.ts.location_name(state.loc),
                            program.ts.location_name(successor.loc),
                            here,
                            there,
                            delta_cost
                        ));
                    }
                    if frontier.len() < 10_000 {
                        frontier.push(successor);
                    }
                }
            }
        }
    }
    VerifyReport { checked, violations }
}

fn successors(state: &State, transition: &dca_ir::Transition, candidates: &[i64]) -> Vec<State> {
    let nondet_vars: Vec<VarId> = transition
        .updates
        .iter()
        .filter(|(_, u)| u.is_nondet())
        .map(|(&v, _)| v)
        .collect();
    let choices = candidates.len().max(1);
    let combos = choices.pow(nondet_vars.len() as u32);
    let mut out = Vec::with_capacity(combos);
    for combo in 0..combos {
        let mut next = state.vals.clone();
        for (&var, update) in &transition.updates {
            if let Update::Assign(p) = update {
                next.insert(var, dca_ir::eval_polynomial_int(p, &state.vals));
            }
        }
        let mut rest = combo;
        for &var in &nondet_vars {
            next.insert(var, candidates[rest % choices]);
            rest /= choices;
        }
        out.push(State::new(transition.target, next));
    }
    out
}

/// The location a potential function should be inspected at for reporting: the initial
/// location of the program.
pub fn initial_location(program: &AnalyzedProgram) -> LocId {
    program.ts.initial()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnalysisOptions, DiffCostSolver};

    const OLD: &str = r#"
        proc count(n) {
            assume(n >= 1 && n <= 20);
            i = 0;
            while (i < n) { tick(1); i = i + 1; }
        }
    "#;
    const NEW: &str = r#"
        proc count(n) {
            assume(n >= 1 && n <= 20);
            i = 0;
            while (i < n) { tick(2); i = i + 1; }
        }
    "#;

    #[test]
    fn verifier_accepts_sound_threshold_and_rejects_unsound_one() {
        let old = AnalyzedProgram::from_source(OLD).unwrap();
        let new = AnalyzedProgram::from_source(NEW).unwrap();
        let config = VerifyConfig { samples: 10, ..VerifyConfig::default() };
        // 20 is a sound threshold (difference is exactly n <= 20)...
        let report = verify_threshold(&new, &old, 20.0, &config);
        assert!(report.ok(), "{:?}", report.violations);
        assert!(report.checked > 0);
        // ...but 10 is not: the corner n = 20 exceeds it.
        let report = verify_threshold(&new, &old, 10.0, &config);
        assert!(!report.ok());
    }

    #[test]
    fn synthesized_witnesses_pass_condition_checks() {
        let old = AnalyzedProgram::from_source(OLD).unwrap();
        let new = AnalyzedProgram::from_source(NEW).unwrap();
        let solver = DiffCostSolver::new(AnalysisOptions::default());
        let result = solver.solve(&new, &old).unwrap();
        let config = VerifyConfig { samples: 5, ..VerifyConfig::default() };
        let report = verify_potential_on_runs(&result.potential_new, &new, false, &config);
        assert!(report.ok(), "{:?}", report.violations);
        let report = verify_potential_on_runs(&result.anti_potential_old, &old, true, &config);
        assert!(report.ok(), "{:?}", report.violations);
        let report = verify_threshold(&new, &old, result.threshold, &config);
        assert!(report.ok(), "{:?}", report.violations);
    }

    #[test]
    fn input_box_reflects_theta0() {
        let program = AnalyzedProgram::from_source(OLD).unwrap();
        let n = program.ts.pool().lookup("n").unwrap();
        let bounds = input_box(&program);
        let (_, lo, hi) = bounds.iter().find(|(v, _, _)| *v == n).unwrap();
        assert_eq!((*lo, *hi), (1, 20));
    }

    #[test]
    fn valuation_transfer_by_name() {
        let a = AnalyzedProgram::from_source(OLD).unwrap();
        let b = AnalyzedProgram::from_source(NEW).unwrap();
        let mut valuation = IntValuation::new();
        valuation.insert(a.ts.pool().lookup("n").unwrap(), 7);
        let transferred = transfer_valuation(&valuation, &a.ts, &b.ts);
        assert_eq!(transferred[&b.ts.pool().lookup("n").unwrap()], 7);
        assert_eq!(transferred[&b.ts.cost_var()], 0);
    }
}
