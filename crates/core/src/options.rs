//! Configuration of the synthesis algorithm.

use std::time::Duration;

use dca_invariants::InvariantTier;

/// Which LP backend to use for Step 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpBackend {
    /// Float-first, exact-repair driver (default): the `f64` revised simplex does the
    /// pivoting, an exact-rational certifier accepts or repairs the candidate basis.
    /// Every verdict carries an exact certificate at a fraction of exact-backend cost
    /// (the QSopt_ex-style precision-boosting scheme; see `dca_lp`'s `certify`
    /// module).
    Certified,
    /// Floating-point simplex (mirrors the paper's use of a real-valued LP solver;
    /// verdicts are tolerance-guarded `f64`, with an exact fallback only on
    /// non-convergence).
    F64,
    /// Exact rational simplex from scratch (slowest; useful for cross-checking).
    Exact,
}

/// Options controlling the synthesis algorithm of Section 5.
///
/// The two numeric parameters correspond exactly to the paper's algorithm parameters:
/// `degree` is the maximal polynomial degree `d` of the potential / anti-potential
/// templates, and `max_products` is the parameter `K` bounding how many affine
/// expressions may be multiplied in `Prod_K(Aff)`.
///
/// When the right degree is unknown, pair the options with the escalation loop of
/// [`crate::escalate`], which retries `d = K = 1, 2, 3` until a witness exists:
///
/// ```
/// use dca_core::escalate::{solve_with_escalation, EscalationPolicy};
/// use dca_core::{AnalysisOptions, AnalyzedProgram};
///
/// let source = |tick: u32| format!(
///     "proc f(n) {{ assume(n >= 1 && n <= 10); i = 0; while (i < n) {{ tick({tick}); i = i + 1; }} }}",
/// );
/// let old = AnalyzedProgram::from_source(&source(1)).unwrap();
/// let new = AnalyzedProgram::from_source(&source(3)).unwrap();
///
/// let escalated = solve_with_escalation(
///     &new,
///     &old,
///     &AnalysisOptions::default(),       // backend/template shape; degree comes from the loop
///     EscalationPolicy::default(),       // try d = K = 1, then 2, then 3
/// ).unwrap();
/// // The difference 2n is affine, so the loop already succeeds at degree 1.
/// assert_eq!(escalated.degree, 1);
/// assert_eq!(escalated.result.threshold_int(), 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisOptions {
    /// Maximal degree `d` of the polynomial templates (the paper uses 2 for all
    /// benchmarks except `nested`, which needs 3).
    pub degree: u32,
    /// Maximal number of factors `K` in Handelman products (the paper uses `K = d`).
    pub max_products: u32,
    /// Whether the templates may mention the `cost` variable itself. The accumulated
    /// cost never helps to bound *future* cost, so excluding it (the default) shrinks the
    /// LP without affecting any of the paper's benchmarks.
    pub include_cost_in_template: bool,
    /// LP backend for Step 4.
    pub backend: LpBackend,
    /// Wall-clock budget for one solve (`None` = unlimited). When set, the LP solver
    /// polls a deadline and the solve fails with [`crate::AnalysisError::Timeout`]
    /// instead of stalling a batch run on a pathological instance.
    pub time_budget: Option<Duration>,
    /// Precision tier of the invariant generator (see [`InvariantTier`]). Programs
    /// analyzed at a different tier are re-analyzed by the solver before the LP is
    /// assembled, so the option is honored regardless of how the
    /// [`crate::AnalyzedProgram`] was produced.
    pub invariant_tier: InvariantTier,
    /// Whether the solver may apply loop-phase splitting (`dca_ir::split_phases`)
    /// and keep the better of the split and unsplit answers. On by default; the
    /// `DCA_NO_SPLIT=1` environment variable disables it process-wide regardless
    /// of this flag (the A/B escape hatch mirroring `DCA_LP_NO_ROWGEN`).
    pub phase_split: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            degree: 2,
            max_products: 2,
            include_cost_in_template: false,
            backend: LpBackend::Certified,
            time_budget: None,
            invariant_tier: InvariantTier::Baseline,
            phase_split: true,
        }
    }
}

impl AnalysisOptions {
    /// Options with a custom template degree (and `K = degree`).
    ///
    /// ```
    /// use dca_core::AnalysisOptions;
    /// let options = AnalysisOptions::with_degree(3);
    /// assert_eq!((options.degree, options.max_products), (3, 3));
    /// ```
    pub fn with_degree(degree: u32) -> AnalysisOptions {
        AnalysisOptions { degree, max_products: degree, ..AnalysisOptions::default() }
    }

    /// Switches to the exact rational LP backend.
    ///
    /// The exact backend is slower but free of floating-point tolerance effects, which
    /// makes it useful for cross-checking thresholds such as the paper's `99.94`:
    ///
    /// ```
    /// use dca_core::{AnalysisOptions, AnalyzedProgram, DiffCostSolver, LpBackend};
    ///
    /// let old = AnalyzedProgram::from_source(
    ///     "proc f(n) { assume(n >= 1 && n <= 10); i = 0; while (i < n) { tick(1); i = i + 1; } }",
    /// ).unwrap();
    /// let new = AnalyzedProgram::from_source(
    ///     "proc f(n) { assume(n >= 1 && n <= 10); i = 0; while (i < n) { tick(2); i = i + 1; } }",
    /// ).unwrap();
    ///
    /// let options = AnalysisOptions::with_degree(1).exact();
    /// assert_eq!(options.backend, LpBackend::Exact);
    /// let result = DiffCostSolver::new(options).solve(&new, &old).unwrap();
    /// // The exact optimum is exactly 10 — no floating-point undershoot.
    /// assert_eq!(result.threshold_int(), 10);
    /// ```
    pub fn exact(mut self) -> AnalysisOptions {
        self.backend = LpBackend::Exact;
        self
    }

    /// Sets the wall-clock budget for one solve.
    pub fn with_time_budget(mut self, budget: Duration) -> AnalysisOptions {
        self.time_budget = Some(budget);
        self
    }

    /// Sets the invariant precision tier.
    ///
    /// ```
    /// use dca_core::{AnalysisOptions, InvariantTier};
    /// let options = AnalysisOptions::default().with_invariant_tier(InvariantTier::Hull);
    /// assert_eq!(options.invariant_tier, InvariantTier::Hull);
    /// ```
    pub fn with_invariant_tier(mut self, tier: InvariantTier) -> AnalysisOptions {
        self.invariant_tier = tier;
        self
    }

    /// Enables or disables loop-phase splitting for this solve.
    ///
    /// ```
    /// use dca_core::AnalysisOptions;
    /// assert!(AnalysisOptions::default().phase_split);
    /// assert!(!AnalysisOptions::default().without_phase_split().phase_split);
    /// ```
    pub fn without_phase_split(mut self) -> AnalysisOptions {
        self.phase_split = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let options = AnalysisOptions::default();
        assert_eq!(options.degree, 2);
        assert_eq!(options.max_products, 2);
        assert!(!options.include_cost_in_template);
        assert_eq!(options.backend, LpBackend::Certified);
        assert!(options.phase_split);
    }

    #[test]
    fn with_degree_sets_both_parameters() {
        let options = AnalysisOptions::with_degree(3);
        assert_eq!(options.degree, 3);
        assert_eq!(options.max_products, 3);
        assert_eq!(AnalysisOptions::default().exact().backend, LpBackend::Exact);
    }
}
