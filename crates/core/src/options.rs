//! Configuration of the synthesis algorithm.

/// Which LP backend to use for Step 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpBackend {
    /// Floating-point simplex (default; mirrors the paper's use of a real-valued LP
    /// solver and is fast enough for the full benchmark suite).
    F64,
    /// Exact rational simplex (slower; useful for small programs and cross-checking).
    Exact,
}

/// Options controlling the synthesis algorithm of Section 5.
///
/// The two numeric parameters correspond exactly to the paper's algorithm parameters:
/// `degree` is the maximal polynomial degree `d` of the potential / anti-potential
/// templates, and `max_products` is the parameter `K` bounding how many affine
/// expressions may be multiplied in `Prod_K(Aff)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisOptions {
    /// Maximal degree `d` of the polynomial templates (the paper uses 2 for all
    /// benchmarks except `nested`, which needs 3).
    pub degree: u32,
    /// Maximal number of factors `K` in Handelman products (the paper uses `K = d`).
    pub max_products: u32,
    /// Whether the templates may mention the `cost` variable itself. The accumulated
    /// cost never helps to bound *future* cost, so excluding it (the default) shrinks the
    /// LP without affecting any of the paper's benchmarks.
    pub include_cost_in_template: bool,
    /// LP backend for Step 4.
    pub backend: LpBackend,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            degree: 2,
            max_products: 2,
            include_cost_in_template: false,
            backend: LpBackend::F64,
        }
    }
}

impl AnalysisOptions {
    /// Options with a custom template degree (and `K = degree`).
    pub fn with_degree(degree: u32) -> AnalysisOptions {
        AnalysisOptions { degree, max_products: degree, ..AnalysisOptions::default() }
    }

    /// Switches to the exact rational LP backend.
    pub fn exact(mut self) -> AnalysisOptions {
        self.backend = LpBackend::Exact;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let options = AnalysisOptions::default();
        assert_eq!(options.degree, 2);
        assert_eq!(options.max_products, 2);
        assert!(!options.include_cost_in_template);
        assert_eq!(options.backend, LpBackend::F64);
    }

    #[test]
    fn with_degree_sets_both_parameters() {
        let options = AnalysisOptions::with_degree(3);
        assert_eq!(options.degree, 3);
        assert_eq!(options.max_products, 3);
        assert_eq!(AnalysisOptions::default().exact().backend, LpBackend::Exact);
    }
}
