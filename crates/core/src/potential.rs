//! Synthesized potential and anti-potential functions.

use std::collections::BTreeMap;

use dca_ir::{LocId, TransitionSystem};
use dca_numeric::Rational;
use dca_poly::{Polynomial, Valuation};

/// A synthesized potential (or anti-potential) function: one polynomial per location.
///
/// The paper's Fig. 1 annotations — e.g. `φ_new(ℓ1) = 2·(lenB − i)·lenA` — are exactly
/// values of this map.
#[derive(Debug, Clone, PartialEq)]
pub struct PotentialFunction {
    per_location: BTreeMap<LocId, Polynomial>,
}

impl PotentialFunction {
    /// Creates a potential function from a per-location polynomial map.
    pub fn new(per_location: BTreeMap<LocId, Polynomial>) -> PotentialFunction {
        PotentialFunction { per_location }
    }

    /// The polynomial at a location (zero polynomial if the location is unknown).
    pub fn at(&self, loc: LocId) -> Polynomial {
        self.per_location.get(&loc).cloned().unwrap_or_else(Polynomial::zero)
    }

    /// Evaluates the potential at a concrete state.
    pub fn eval(&self, loc: LocId, valuation: &Valuation) -> Rational {
        self.at(loc).eval(valuation)
    }

    /// Iterates over `(location, polynomial)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&LocId, &Polynomial)> {
        self.per_location.iter()
    }

    /// Renders the potential function with location and variable names.
    pub fn render(&self, ts: &TransitionSystem) -> String {
        let mut out = String::new();
        for (loc, poly) in &self.per_location {
            out.push_str(&format!(
                "  {}: {}\n",
                ts.location_name(*loc),
                poly.to_string(ts.pool())
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca_poly::VarPool;

    #[test]
    fn evaluation_and_defaults() {
        let mut pool = VarPool::new();
        let x = pool.intern("x");
        let mut map = BTreeMap::new();
        map.insert(LocId(0), Polynomial::var(x) + Polynomial::from_int(1));
        let pf = PotentialFunction::new(map);
        let mut valuation = Valuation::new();
        valuation.insert(x, Rational::from_int(4));
        assert_eq!(pf.eval(LocId(0), &valuation), Rational::from_int(5));
        // Unknown locations evaluate to zero.
        assert_eq!(pf.eval(LocId(9), &valuation), Rational::zero());
        assert_eq!(pf.iter().count(), 1);
    }
}
