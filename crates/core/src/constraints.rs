//! Template allocation and constraint collection (Steps 1 and 2 of the algorithm).

use std::collections::BTreeMap;

use dca_handelman::{encode_nonnegativity, UnknownConstraint, UnknownFactory, UnknownKind};
use dca_invariants::InvariantMap;
use dca_ir::{LocId, TransitionSystem, Update};
use dca_numeric::Rational;
use dca_poly::{
    monomials_up_to_degree, Monomial, Polynomial, TemplatePolynomial, UnknownId, VarId,
};

use crate::potential::PotentialFunction;

/// What [`collect_program_constraints`] produced besides the constraint rows
/// themselves.
#[derive(Debug, Clone, Default)]
pub struct CollectOutcome {
    /// Transitions skipped because their premise `I(ℓ) ∧ G` was infeasible (the
    /// implication holds vacuously; encoding it would only destabilize the LP).
    pub pruned: usize,
    /// Handelman multiplier unknowns for degree-≥-2 products: the candidates the
    /// certified LP backend may defer under lazy row generation. Degree-≤-1
    /// products stay eagerly encoded as the always-active core.
    pub lazy_multipliers: Vec<UnknownId>,
}

/// Whether a template plays the role of a potential (upper bound) or anti-potential
/// (lower bound) function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemplateRole {
    /// Sufficiency constraints: `φ(ℓ,x) ≥ φ(ℓ',Up(x)) + Δcost` and `φ(ℓ_out) ≥ 0`.
    Potential,
    /// Insufficiency constraints: `χ(ℓ,x) ≤ χ(ℓ',Up(x)) + Δcost` and `χ(ℓ_out) ≤ 0`.
    AntiPotential,
}

/// The polynomial templates of one program: `Σ_m u_{ℓ,m}·m` for every location `ℓ`.
#[derive(Debug, Clone)]
pub struct ProgramTemplates {
    templates: BTreeMap<LocId, TemplatePolynomial>,
    monomials: Vec<Monomial>,
}

impl ProgramTemplates {
    /// Allocates fresh template unknowns for every location of `ts` (Step 1).
    pub fn allocate(
        ts: &TransitionSystem,
        degree: u32,
        include_cost: bool,
        factory: &mut UnknownFactory,
        prefix: &str,
    ) -> ProgramTemplates {
        let vars: Vec<VarId> = if include_cost { ts.vars() } else { ts.data_vars() };
        let monomials = monomials_up_to_degree(&vars, degree);
        let mut templates = BTreeMap::new();
        for loc in ts.locations() {
            let unknowns: Vec<UnknownId> = monomials
                .iter()
                .map(|m| factory.fresh(&format!("{prefix}[{loc:?}][{m:?}]"), UnknownKind::Free))
                .collect();
            templates.insert(loc, TemplatePolynomial::from_template(&monomials, &unknowns));
        }
        ProgramTemplates { templates, monomials }
    }

    /// The template at a location.
    pub fn at(&self, loc: LocId) -> &TemplatePolynomial {
        &self.templates[&loc]
    }

    /// The monomial basis shared by all locations.
    pub fn monomials(&self) -> &[Monomial] {
        &self.monomials
    }

    /// Instantiates the templates with concrete LP values into a [`PotentialFunction`].
    pub fn instantiate(
        &self,
        assignment: &BTreeMap<UnknownId, Rational>,
    ) -> PotentialFunction {
        let per_location = self
            .templates
            .iter()
            .map(|(loc, template)| (*loc, template.instantiate(assignment)))
            .collect();
        PotentialFunction::new(per_location)
    }
}

/// A growing set of linear constraints over LP unknowns.
#[derive(Debug, Clone, Default)]
pub struct ConstraintSet {
    constraints: Vec<UnknownConstraint>,
}

impl ConstraintSet {
    /// Creates an empty set.
    pub fn new() -> ConstraintSet {
        ConstraintSet::default()
    }

    /// Adds a single constraint.
    pub fn push(&mut self, constraint: UnknownConstraint) {
        self.constraints.push(constraint);
    }

    /// Adds many constraints.
    pub fn extend(&mut self, constraints: impl IntoIterator<Item = UnknownConstraint>) {
        self.constraints.extend(constraints);
    }

    /// The collected constraints.
    pub fn constraints(&self) -> &[UnknownConstraint] {
        &self.constraints
    }

    /// Number of collected constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Returns `true` if no constraints have been collected.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }
}

/// Collects the defining constraints of a potential or anti-potential function for one
/// program (Step 2), encoding each implication via Handelman products (Step 3).
///
/// For every non-terminal transition `(ℓ, ℓ', G, Up)` with `Aff = I(ℓ) ∪ G`:
///
/// * `Potential`:      `Aff ⟹ φ(ℓ,x) − φ(ℓ', Up(x)) − Δcost ≥ 0`
/// * `AntiPotential`:  `Aff ⟹ χ(ℓ', Up(x)) + Δcost − χ(ℓ,x) ≥ 0`
///
/// plus the termination condition at `ℓ_out` (`φ ≥ 0` resp. `−χ ≥ 0` under `I(ℓ_out)`).
/// Non-deterministic updates substitute a fresh universally-quantified variable, which
/// forces the template coefficients that would depend on the havocked value to vanish.
///
/// Transitions whose premise `I(ℓ) ∧ G` is infeasible over the rationals are *pruned*
/// before encoding and counted in the return value: their implication holds vacuously,
/// so dropping the rows is sound (it can only relax the LP), while encoding them would
/// feed contradictory-premise Handelman products to the simplex — numerically poisonous
/// rows that generated pairs with unreachable branches produce routinely.
pub fn collect_program_constraints(
    ts: &TransitionSystem,
    invariants: &InvariantMap,
    templates: &ProgramTemplates,
    role: TemplateRole,
    max_products: u32,
    factory: &mut UnknownFactory,
    out: &mut ConstraintSet,
) -> CollectOutcome {
    let cost = ts.cost_var();
    // Fresh universally-quantified variables for non-deterministic updates must not clash
    // with program variables or with anything the invariant analysis introduced.
    let mut fresh_counter = ts.pool().len() as u32 + 4096;
    let mut pruned = 0usize;
    let mut lazy_multipliers: Vec<UnknownId> = Vec::new();

    for (index, transition) in ts.transitions().iter().enumerate() {
        let is_terminal_self_loop = transition.source == ts.terminal()
            && transition.target == ts.terminal()
            && transition.guard.is_empty()
            && transition.updates.is_empty();
        if is_terminal_self_loop {
            continue;
        }
        let mut aff = invariants.constraints_at(transition.source);
        aff.extend(transition.guard.iter().cloned());

        // Vacuous implication: an infeasible premise proves nothing and its Handelman
        // products only destabilize the LP — skip the transition entirely. The check is
        // exact (rational simplex), so an f64 infeasibility artifact can never prune a
        // premise that is actually satisfiable; this matters for phase-split systems,
        // whose stale phase-copies of branch edges are exactly what gets dropped here.
        let premise = dca_invariants::Polyhedron::from_constraints(aff.iter().cloned());
        if premise.definitely_empty_exact() {
            pruned += 1;
            continue;
        }

        // Substitution x ↦ Up(x), with fresh variables for havocked updates.
        let mut substitution: BTreeMap<VarId, Polynomial> = BTreeMap::new();
        for (&var, update) in &transition.updates {
            match update {
                Update::Assign(p) => {
                    substitution.insert(var, p.clone());
                }
                Update::Nondet => {
                    substitution.insert(var, Polynomial::var(VarId(fresh_counter)));
                    fresh_counter += 1;
                }
            }
        }
        // Δcost = Up(cost)(x) − cost.
        let delta_cost = match transition.updates.get(&cost) {
            Some(Update::Assign(p)) => p - &Polynomial::var(cost),
            Some(Update::Nondet) => {
                let fresh = Polynomial::var(VarId(fresh_counter));
                fresh_counter += 1;
                fresh - Polynomial::var(cost)
            }
            None => Polynomial::zero(),
        };

        let source_template = templates.at(transition.source);
        let target_template = templates.at(transition.target).substitute(&substitution);
        let delta = TemplatePolynomial::from_polynomial(&delta_cost);
        let poly = match role {
            TemplateRole::Potential => &(source_template - &target_template) - &delta,
            TemplateRole::AntiPotential => &(&target_template - source_template) + &delta,
        };
        let origin = format!(
            "{}:{:?}:transition{}({}->{})",
            ts.name(),
            role,
            index,
            ts.location_name(transition.source),
            ts.location_name(transition.target)
        );
        let encoding = encode_nonnegativity(&aff, &poly, max_products, factory, &origin);
        lazy_multipliers.extend(encoding.lazy_multipliers());
        out.extend(encoding.constraints);
    }

    // Termination condition at ℓ_out.
    let terminal = ts.terminal();
    let aff = invariants.constraints_at(terminal);
    let terminal_template = templates.at(terminal);
    let poly = match role {
        TemplateRole::Potential => terminal_template.clone(),
        TemplateRole::AntiPotential => -terminal_template,
    };
    let origin = format!("{}:{:?}:terminal", ts.name(), role);
    let encoding = encode_nonnegativity(&aff, &poly, max_products, factory, &origin);
    lazy_multipliers.extend(encoding.lazy_multipliers());
    out.extend(encoding.constraints);
    CollectOutcome { pruned, lazy_multipliers }
}

/// Remaps the variables of a template polynomial through `mapping` (old id → new id),
/// leaving unmapped variables unchanged. Used to express the differential constraint over
/// a shared variable space when the two programs were lowered independently.
pub fn remap_template_vars(
    template: &TemplatePolynomial,
    mapping: &BTreeMap<VarId, VarId>,
) -> TemplatePolynomial {
    let substitution: BTreeMap<VarId, Polynomial> = mapping
        .iter()
        .map(|(&from, &to)| (from, Polynomial::var(to)))
        .collect();
    template.substitute(&substitution)
}

/// Remaps the variables of an affine expression through `mapping`.
pub fn remap_linexpr_vars(
    expr: &dca_poly::LinExpr,
    mapping: &BTreeMap<VarId, VarId>,
) -> dca_poly::LinExpr {
    let mut out = dca_poly::LinExpr::constant(expr.constant_term().clone());
    for (var, coeff) in expr.iter() {
        let target = mapping.get(var).copied().unwrap_or(*var);
        let existing = out.coeff(target);
        out.set_coeff(target, &existing + coeff);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca_handelman::ConstraintSense;
    use dca_invariants::InvariantAnalysis;
    use dca_ir::TsBuilder;
    use dca_poly::LinExpr;

    fn counting_loop(cost_per_iteration: i64) -> TransitionSystem {
        let mut b = TsBuilder::new();
        b.name("count");
        let i = b.var("i");
        let n = b.var("n");
        let head = b.location("head");
        let out = b.terminal();
        b.set_initial(head);
        b.add_theta0(LinExpr::var(n) - LinExpr::from_int(1));
        b.add_theta0(LinExpr::from_int(100) - LinExpr::var(n));
        b.add_theta0_eq(LinExpr::var(i));
        b.transition(head, head)
            .guard(LinExpr::var(n) - LinExpr::var(i) - LinExpr::from_int(1))
            .update(i, Update::assign(Polynomial::var(i) + Polynomial::from_int(1)))
            .tick(cost_per_iteration)
            .finish();
        b.transition(head, out)
            .guard(LinExpr::var(i) - LinExpr::var(n))
            .finish();
        b.build().unwrap()
    }

    #[test]
    fn template_allocation_counts() {
        let ts = counting_loop(1);
        let mut factory = UnknownFactory::new();
        let templates = ProgramTemplates::allocate(&ts, 2, false, &mut factory, "phi");
        // 2 data variables (i, n) and degree 2: C(2+2,2) = 6 monomials per location.
        assert_eq!(templates.monomials().len(), 6);
        // 2 locations => 12 unknowns.
        assert_eq!(factory.len(), 12);
        assert_eq!(templates.at(ts.initial()).num_terms(), 6);
    }

    #[test]
    fn template_with_cost_has_more_monomials() {
        let ts = counting_loop(1);
        let mut factory = UnknownFactory::new();
        let templates = ProgramTemplates::allocate(&ts, 2, true, &mut factory, "phi");
        // 3 variables, degree 2: C(3+2,2) = 10 monomials.
        assert_eq!(templates.monomials().len(), 10);
    }

    #[test]
    fn known_potential_satisfies_collected_constraints() {
        // For `while (i < n) { i++; cost++ }` the function φ(head) = n − i, φ(out) = 0 is a
        // valid potential. Check that it satisfies every collected constraint.
        let ts = counting_loop(1);
        let invariants = InvariantAnalysis::default().analyze(&ts);
        let mut factory = UnknownFactory::new();
        let templates = ProgramTemplates::allocate(&ts, 2, false, &mut factory, "phi");
        let mut set = ConstraintSet::new();
        collect_program_constraints(
            &ts,
            &invariants,
            &templates,
            TemplateRole::Potential,
            2,
            &mut factory,
            &mut set,
        );
        assert!(!set.is_empty());

        // Build the assignment for the known potential: coefficient of `n` is 1 and of `i`
        // is −1 at the loop head; everything else (including all of ℓ_out) is 0. The
        // Handelman multipliers also need values; instead of solving for them we only check
        // the *semantic* inequality by evaluation on all reachable integer points.
        let i = ts.pool().lookup("i").unwrap();
        let n = ts.pool().lookup("n").unwrap();
        let head = ts.initial();
        let mut assignment: BTreeMap<UnknownId, Rational> = BTreeMap::new();
        for (mono, form) in templates.at(head).iter() {
            let unknowns = form.unknowns();
            assert_eq!(unknowns.len(), 1);
            let value = if *mono == Monomial::var(n) {
                Rational::one()
            } else if *mono == Monomial::var(i) {
                Rational::from_int(-1)
            } else {
                Rational::zero()
            };
            assignment.insert(unknowns[0], value);
        }
        let pf = templates.instantiate(&assignment);
        // Semantic check of sufficiency preservation on a grid of reachable states.
        for n_value in 1..=20i64 {
            for i_value in 0..=n_value {
                let mut valuation = dca_poly::Valuation::new();
                valuation.insert(i, Rational::from_int(i_value));
                valuation.insert(n, Rational::from_int(n_value));
                let phi_head = pf.eval(head, &valuation);
                if i_value < n_value {
                    let mut next = valuation.clone();
                    next.insert(i, Rational::from_int(i_value + 1));
                    let phi_next = pf.eval(head, &next);
                    assert!(phi_head >= &phi_next + &Rational::one());
                } else {
                    let phi_out = pf.eval(ts.terminal(), &valuation);
                    assert!(phi_head >= phi_out);
                    assert!(!phi_out.is_negative());
                }
            }
        }
    }

    #[test]
    fn constraints_reference_template_unknowns() {
        let ts = counting_loop(1);
        let invariants = InvariantAnalysis::default().analyze(&ts);
        let mut factory = UnknownFactory::new();
        let templates = ProgramTemplates::allocate(&ts, 1, false, &mut factory, "chi");
        let template_unknowns = factory.len();
        let mut set = ConstraintSet::new();
        collect_program_constraints(
            &ts,
            &invariants,
            &templates,
            TemplateRole::AntiPotential,
            2,
            &mut factory,
            &mut set,
        );
        // Multipliers were allocated beyond the template unknowns.
        assert!(factory.len() > template_unknowns);
        // All constraints are equalities (coefficient matching).
        assert!(set
            .constraints()
            .iter()
            .all(|c| c.sense == ConstraintSense::Eq));
        // At least one constraint mentions a template unknown.
        assert!(set.constraints().iter().any(|c| c
            .form
            .unknowns()
            .iter()
            .any(|u| u.index() < template_unknowns)));
    }

    #[test]
    fn nondet_update_forces_fresh_variable() {
        // x := nondet(); cost unchanged. The PF constraint must mention a variable id
        // outside the program pool (the fresh universally-quantified value).
        let mut b = TsBuilder::new();
        let x = b.var("x");
        let start = b.location("start");
        let out = b.terminal();
        b.set_initial(start);
        b.add_theta0(LinExpr::var(x));
        b.transition(start, out).update(x, Update::Nondet).finish();
        let ts = b.build().unwrap();
        let invariants = InvariantAnalysis::default().analyze(&ts);
        let mut factory = UnknownFactory::new();
        let templates = ProgramTemplates::allocate(&ts, 1, false, &mut factory, "phi");
        let mut set = ConstraintSet::new();
        collect_program_constraints(
            &ts,
            &invariants,
            &templates,
            TemplateRole::Potential,
            1,
            &mut factory,
            &mut set,
        );
        assert!(!set.is_empty());
    }

    #[test]
    fn contradictory_premise_transition_is_pruned_before_the_simplex() {
        // A loop with one reachable transition plus a branch whose guard demands
        // `i ≥ 1 ∧ i ≤ −1` — unsatisfiable, so its implication is vacuous. The encoder
        // must drop it *before* Handelman products are built: no row of the resulting
        // constraint set may originate from the contradictory transition.
        let mut b = TsBuilder::new();
        b.name("contra");
        let i = b.var("i");
        let n = b.var("n");
        let head = b.location("head");
        let out = b.terminal();
        b.set_initial(head);
        b.add_theta0(LinExpr::var(n) - LinExpr::from_int(1));
        b.add_theta0_eq(LinExpr::var(i));
        b.transition(head, head)
            .guard(LinExpr::var(n) - LinExpr::var(i) - LinExpr::from_int(1))
            .update(i, Update::assign(Polynomial::var(i) + Polynomial::from_int(1)))
            .tick(1)
            .finish();
        // Contradictory premise: i - 1 >= 0 and -i - 1 >= 0 can never hold together.
        b.transition(head, out)
            .guard(LinExpr::var(i) - LinExpr::from_int(1))
            .guard(-LinExpr::var(i) - LinExpr::from_int(1))
            .tick(1_000_000)
            .finish();
        b.transition(head, out)
            .guard(LinExpr::var(i) - LinExpr::var(n))
            .finish();
        let ts = b.build().unwrap();
        let invariants = InvariantAnalysis::default().analyze(&ts);
        let mut factory = UnknownFactory::new();
        let templates = ProgramTemplates::allocate(&ts, 1, false, &mut factory, "phi");
        let mut set = ConstraintSet::new();
        let outcome = collect_program_constraints(
            &ts,
            &invariants,
            &templates,
            TemplateRole::Potential,
            1,
            &mut factory,
            &mut set,
        );
        assert_eq!(outcome.pruned, 1, "exactly the contradictory transition is pruned");
        assert!(
            set.constraints().iter().all(|c| !c.origin.contains("transition1")),
            "no constraint row of the pruned transition may reach the simplex"
        );
        // The reachable transitions are still fully encoded.
        assert!(set.constraints().iter().any(|c| c.origin.contains("transition0")));
        assert!(set.constraints().iter().any(|c| c.origin.contains("transition2")));
    }

    #[test]
    fn remapping_helpers() {
        let mut pool = dca_poly::VarPool::new();
        let a = pool.intern("a");
        let b = pool.intern("b");
        let mut mapping = BTreeMap::new();
        mapping.insert(a, b);
        let expr = LinExpr::var(a) + LinExpr::from_int(3);
        let remapped = remap_linexpr_vars(&expr, &mapping);
        assert_eq!(remapped.coeff(b), Rational::one());
        assert!(remapped.coeff(a).is_zero());

        let mut factory = UnknownFactory::new();
        let u = factory.fresh("u", UnknownKind::Free);
        let mut template = TemplatePolynomial::zero();
        template.add_term(Monomial::var(a), dca_poly::LinForm::unknown(u));
        let remapped = remap_template_vars(&template, &mapping);
        assert_eq!(remapped.coeff(&Monomial::var(b)), dca_poly::LinForm::unknown(u));
    }
}
