//! Parallel batch analysis over many program pairs.
//!
//! The paper's evaluation (Section 6) runs 19 independent program pairs — an
//! embarrassingly parallel workload. This module provides the engine for it: a set of
//! [`BatchJob`]s is fanned out across [`std::thread::scope`] workers pulling from a
//! shared atomic queue, and each pair is solved either at a fixed degree or through the
//! automatic degree-escalation loop of [`crate::escalate`].
//!
//! Results are deterministic: every pair is solved independently of worker scheduling,
//! and the [`BatchReport`] lists outcomes in input order, so `jobs = 1` and `jobs = N`
//! produce identical analyses (only the wall clock differs). One failing pair does not
//! poison the batch — its error is recorded in its [`PairOutcome`] and every other pair
//! still completes. That isolation extends to *panics*: each solve runs under
//! [`std::panic::catch_unwind`], a panicking pair is reported as
//! [`AnalysisError::Panicked`] with its crash-site phase, and the surviving workers
//! keep draining the queue. A batch-wide [`Deadline`] is scoped per job
//! ([`Deadline::scoped`]) so cancelling one solve never takes down its siblings.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use dca_lp::fault::{self, FaultKind};
use dca_lp::{Deadline, SolvePhase};

use crate::escalate::{solve_with_escalation_under, EscalationAttempt, EscalationPolicy};
use crate::options::AnalysisOptions;
use crate::program::AnalyzedProgram;
use crate::solver::{AnalysisError, DiffCostResult, DiffCostSolver, SolveOutcome, SolveStats};

/// The two program versions of a batch job, either pre-analyzed or as source text.
///
/// Source-text jobs are parsed, lowered and invariant-analyzed *inside* the worker, so
/// the whole front half of the pipeline parallelizes too; pre-analyzed jobs let callers
/// share an [`AnalyzedProgram`] they already have.
// `Analyzed` dwarfs `Source`, but jobs are built once per pair and never stored in
// bulk, so boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum PairInput {
    /// Both versions already analyzed.
    Analyzed {
        /// The new (revised) program version.
        new: AnalyzedProgram,
        /// The old (baseline) program version.
        old: AnalyzedProgram,
    },
    /// Both versions as source text in the mini-language.
    Source {
        /// Source of the new (revised) program version.
        new: String,
        /// Source of the old (baseline) program version.
        old: String,
    },
}

/// One unit of work for the batch engine: a named program pair plus analysis options.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Display name of the pair (e.g. the Table-1 benchmark name).
    pub name: String,
    /// The two program versions.
    pub input: PairInput,
    /// Options for the solve. Under escalation the degree fields act as the fallback
    /// fixed degree (see [`BatchConfig::escalation`]); backend and template shape are
    /// always honored.
    pub options: AnalysisOptions,
}

impl BatchJob {
    /// A job over two pre-analyzed programs, with default options.
    pub fn from_programs(
        name: impl Into<String>,
        new: AnalyzedProgram,
        old: AnalyzedProgram,
    ) -> BatchJob {
        BatchJob {
            name: name.into(),
            input: PairInput::Analyzed { new, old },
            options: AnalysisOptions::default(),
        }
    }

    /// A job over two source texts, with default options. The sources are compiled in
    /// the worker; compile errors surface as [`AnalysisError::InvalidProgram`].
    pub fn from_sources(
        name: impl Into<String>,
        new: impl Into<String>,
        old: impl Into<String>,
    ) -> BatchJob {
        BatchJob {
            name: name.into(),
            input: PairInput::Source { new: new.into(), old: old.into() },
            options: AnalysisOptions::default(),
        }
    }

    /// Replaces the analysis options of this job.
    pub fn with_options(mut self, options: AnalysisOptions) -> BatchJob {
        self.options = options;
        self
    }
}

/// Configuration of one batch run.
#[derive(Debug, Clone, PartialEq, Eq)]
#[derive(Default)]
pub struct BatchConfig {
    /// Number of worker threads. `0` means "one per available CPU"; the effective
    /// count is always clamped to the number of jobs.
    pub jobs: usize,
    /// `Some(policy)` runs every pair through the degree-escalation loop (the job's
    /// own `degree` is ignored); `None` solves each pair once at its job's degree.
    pub escalation: Option<EscalationPolicy>,
    /// Wall-clock budget applied to *each solve attempt* (`None` = unlimited). A job
    /// whose own options already carry a budget keeps it. Under escalation every tried
    /// degree gets its own budget, so a pair costs at most `degrees × budget`.
    pub time_budget: Option<Duration>,
    /// A batch-wide hard deadline (`None` = unlimited). Every job runs under a
    /// [scoped](Deadline::scoped) child of it, tightened by the per-attempt
    /// `time_budget`: when the batch deadline expires or is cancelled, every worker
    /// stops cooperatively at its next poll and the unfinished pairs report
    /// [`AnalysisError::Timeout`].
    pub deadline: Option<Deadline>,
}


impl BatchConfig {
    /// A fixed-degree configuration with the given worker count.
    pub fn with_jobs(jobs: usize) -> BatchConfig {
        BatchConfig { jobs, ..BatchConfig::default() }
    }

    /// Enables degree escalation with the default `1 → 2 → 3` policy.
    pub fn escalating(mut self) -> BatchConfig {
        self.escalation = Some(EscalationPolicy::default());
        self
    }

    /// Sets the per-attempt wall-clock budget.
    pub fn with_time_budget(mut self, budget: Duration) -> BatchConfig {
        self.time_budget = Some(budget);
        self
    }

    /// Sets the batch-wide hard deadline.
    pub fn with_deadline(mut self, deadline: Deadline) -> BatchConfig {
        self.deadline = Some(deadline);
        self
    }
}

/// The outcome of one pair in a batch run.
#[derive(Debug, Clone)]
pub struct PairOutcome {
    /// The job's name.
    pub name: String,
    /// The analysis result, or the error this pair failed with.
    pub result: Result<DiffCostResult, AnalysisError>,
    /// The degree that produced `result`: the chosen degree under escalation, the
    /// job's fixed degree otherwise (for failures, the last degree tried).
    pub degree: u32,
    /// The invariant tier that produced `result` (for failures, the last tier tried).
    pub tier: dca_invariants::InvariantTier,
    /// The escalation trail (one entry per tried `(degree, tier)` rung); a single
    /// entry when the batch ran without escalation.
    pub attempts: Vec<EscalationAttempt>,
    /// Wall-clock time this pair spent in its worker (compile + all solve attempts).
    pub duration: Duration,
    /// CPU time (user + system) the worker thread charged to this pair, read from
    /// the scheduler via [`thread_cpu_time`]. Unlike `duration` it is immune to
    /// queue-wait and sibling-load noise, so time-regression gates compare it.
    /// Falls back to the wall-clock `duration` on platforms without `/proc`.
    pub cpu_duration: Duration,
}

impl PairOutcome {
    /// Statistics of the successful solve, if any.
    pub fn stats(&self) -> Option<SolveStats> {
        self.result.as_ref().ok().map(|r| r.stats)
    }

    /// `true` if the pair produced a threshold.
    pub fn is_solved(&self) -> bool {
        self.result.is_ok()
    }

    /// Where this pair landed on the degradation ladder (see [`SolveOutcome`]):
    /// `Certified` or `TruncatedAnytime` when the solve produced a threshold,
    /// `Aborted` (with the failing phase, when known) otherwise.
    pub fn outcome(&self) -> SolveOutcome {
        match &self.result {
            Ok(result) => result.outcome(),
            Err(error) => SolveOutcome::Aborted {
                phase: error.phase(),
                reason: error.to_string(),
            },
        }
    }
}

/// The result of a batch run: per-pair outcomes in input order, plus totals.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One outcome per input job, in input order (independent of scheduling).
    pub outcomes: Vec<PairOutcome>,
    /// Wall-clock time of the whole batch.
    pub wall_clock: Duration,
    /// The effective number of worker threads used.
    pub jobs: usize,
}

impl BatchReport {
    /// Number of pairs that produced a threshold.
    pub fn solved(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_solved()).count()
    }

    /// Number of pairs that failed (no witness, compile error, ...).
    pub fn failed(&self) -> usize {
        self.outcomes.len() - self.solved()
    }

    /// Sum of per-pair CPU times: the serial cost the parallel run amortized.
    pub fn cpu_time(&self) -> Duration {
        self.outcomes.iter().map(|o| o.cpu_duration).sum()
    }

    /// Number of pairs whose threshold is exactly certified.
    pub fn certified(&self) -> usize {
        self.outcomes.iter().filter(|o| o.outcome().is_certified()).count()
    }

    /// Number of pairs that degraded to a truncated-anytime (sound but possibly
    /// loose) bound.
    pub fn truncated(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.outcome(), SolveOutcome::TruncatedAnytime { .. }))
            .count()
    }

    /// Number of pairs that produced no bound at all.
    pub fn aborted(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.outcome(), SolveOutcome::Aborted { .. }))
            .count()
    }
}

/// Resolves a [`BatchConfig::jobs`] request against the machine and the job count.
fn effective_jobs(requested: usize, job_count: usize) -> usize {
    let hardware = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let requested = if requested == 0 { hardware } else { requested };
    requested.clamp(1, job_count.max(1))
}

/// Runs every job and collects per-pair outcomes, fanning out across worker threads.
///
/// Workers pull indices from a shared atomic counter, so the distribution of pairs to
/// threads is dynamic (long-running pairs do not stall the queue), while the analyses
/// themselves stay deterministic.
pub fn run_batch(jobs: &[BatchJob], config: &BatchConfig) -> BatchReport {
    let start = Instant::now();
    let workers = effective_jobs(config.jobs, jobs.len());
    let next = AtomicUsize::new(0);
    let batch_deadline = config.deadline.clone().unwrap_or_default();
    let slots: Vec<Mutex<Option<PairOutcome>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(index) else { break };
                let job_start = Instant::now();
                // Panic containment: a panicking solve must not take the worker (and
                // with it the rest of the queue) down. The closure only touches the
                // job and config by shared reference, and a broken invariant inside
                // a failed solve cannot outlive it — nothing of the solve escapes
                // except the outcome we construct — so `AssertUnwindSafe` is sound.
                let cpu_start = thread_cpu_time();
                let solved =
                    catch_unwind(AssertUnwindSafe(|| run_one(job, config, &batch_deadline)));
                let mut outcome = solved.unwrap_or_else(|payload| PairOutcome {
                    name: job.name.clone(),
                    result: Err(AnalysisError::Panicked {
                        phase: fault::current_phase(),
                        message: panic_message(payload.as_ref()),
                    }),
                    degree: job.options.degree,
                    tier: job.options.invariant_tier,
                    attempts: Vec::new(),
                    duration: job_start.elapsed(),
                    cpu_duration: Duration::ZERO,
                });
                // The solve ran entirely on this thread, so the thread CPU clock
                // delta is exactly the pair's charge; fall back to wall time where
                // the clock is unavailable.
                outcome.cpu_duration = match (cpu_start, thread_cpu_time()) {
                    (Some(before), Some(after)) => after.saturating_sub(before),
                    _ => outcome.duration,
                };
                // A sibling worker can only have poisoned *its own* slot (one writer
                // per index), and a poisoned `Option` write is atomic-or-absent:
                // recover the guard and overwrite.
                *slots[index].lock().unwrap_or_else(PoisonError::into_inner) = Some(outcome);
            });
        }
    });

    let outcomes = slots
        .into_iter()
        .zip(jobs)
        .map(|(slot, job)| {
            slot.into_inner().unwrap_or_else(PoisonError::into_inner).unwrap_or_else(|| {
                // Unreachable in practice (the catch_unwind above fills every claimed
                // slot), but a lost worker must surface as a per-pair error, not a
                // batch-wide panic.
                PairOutcome {
                    name: job.name.clone(),
                    result: Err(AnalysisError::Panicked {
                        phase: SolvePhase::Compile,
                        message: "worker terminated before recording an outcome".into(),
                    }),
                    degree: job.options.degree,
                    tier: job.options.invariant_tier,
                    attempts: Vec::new(),
                    duration: Duration::ZERO,
                    cpu_duration: Duration::ZERO,
                }
            })
        })
        .collect();
    BatchReport { outcomes, wall_clock: start.elapsed(), jobs: workers }
}

/// CPU time (user + system) consumed so far by the *calling thread*, read from
/// `/proc/thread-self/stat`. Returns `None` when the file is unavailable or
/// malformed (non-Linux platforms); callers fall back to wall-clock time.
///
/// Per-thread CPU time is what the time-regression gates of the bench bins
/// compare: unlike wall time it does not inflate when a run shares the machine
/// with other load, which is the dominant source of gate flakiness in CI.
pub fn thread_cpu_time() -> Option<Duration> {
    let stat = std::fs::read_to_string("/proc/thread-self/stat").ok()?;
    // The comm field can itself contain spaces and parentheses, so split at the
    // *last* ')': everything after it is whitespace-separated numeric fields.
    let (_, rest) = stat.rsplit_once(')')?;
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    // utime/stime are in clock ticks; USER_HZ is 100 on every supported target,
    // so one tick is 10 ms.
    Some(Duration::from_millis((utime + stime) * 10))
}

/// Renders a caught panic payload for the error report (panics almost always carry
/// `&str` or `String`; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Solves a single job (compile if needed, then fixed-degree or escalated solve)
/// under a per-job scope of the batch-wide deadline.
fn run_one(job: &BatchJob, config: &BatchConfig, batch_deadline: &Deadline) -> PairOutcome {
    let start = Instant::now();
    // A fresh cancel flag per job: a deadline-fault injection (or any other per-job
    // cancellation) stops this pair only, while a batch-wide cancel still reaches it
    // through the parent link.
    let deadline = batch_deadline.scoped();
    if fault::enter(SolvePhase::Compile) == Some(FaultKind::Deadline) {
        deadline.cancel();
    }
    let mut options = job.options;
    if options.time_budget.is_none() {
        options.time_budget = config.time_budget;
    }
    let compiled = match &job.input {
        PairInput::Analyzed { new, old } => Ok((new.clone(), old.clone())),
        // Compile directly at the configured tier; compiling at the baseline would
        // make the solver throw the analysis away and redo it at the right tier.
        PairInput::Source { new, old } => {
            AnalyzedProgram::from_source_at_tier(new, options.invariant_tier).and_then(|n| {
                AnalyzedProgram::from_source_at_tier(old, options.invariant_tier)
                    .map(|o| (n, o))
            })
        }
    };
    let (new, old) = match compiled {
        Ok(pair) => pair,
        Err(message) => {
            return PairOutcome {
                name: job.name.clone(),
                result: Err(AnalysisError::InvalidProgram(message)),
                degree: job.options.degree,
                tier: job.options.invariant_tier,
                attempts: Vec::new(),
                duration: start.elapsed(),
                cpu_duration: Duration::ZERO,
            }
        }
    };
    if deadline.expired() {
        return PairOutcome {
            name: job.name.clone(),
            result: Err(AnalysisError::Timeout { phase: SolvePhase::Compile }),
            degree: job.options.degree,
            tier: options.invariant_tier,
            attempts: Vec::new(),
            duration: start.elapsed(),
                cpu_duration: Duration::ZERO,
        };
    }

    match config.escalation {
        Some(policy) => match solve_with_escalation_under(&new, &old, &options, policy, &deadline)
        {
            Ok(escalated) => PairOutcome {
                name: job.name.clone(),
                result: Ok(escalated.result),
                degree: escalated.degree,
                tier: escalated.tier,
                attempts: escalated.attempts,
                duration: start.elapsed(),
                cpu_duration: Duration::ZERO,
            },
            Err(failure) => PairOutcome {
                name: job.name.clone(),
                result: Err(failure.error),
                degree: failure.attempts.last().map(|a| a.degree).unwrap_or(policy.max_degree),
                tier: failure
                    .attempts
                    .last()
                    .map(|a| a.tier)
                    .unwrap_or(options.invariant_tier),
                attempts: failure.attempts,
                duration: start.elapsed(),
                cpu_duration: Duration::ZERO,
            },
        },
        None => {
            let attempt_start = Instant::now();
            let result =
                DiffCostSolver::new(options).with_deadline(deadline.clone()).solve(&new, &old);
            let attempt = EscalationAttempt {
                degree: job.options.degree,
                tier: options.invariant_tier,
                error: result.as_ref().err().cloned(),
                duration: attempt_start.elapsed(),
            };
            PairOutcome {
                name: job.name.clone(),
                result,
                degree: job.options.degree,
                tier: options.invariant_tier,
                attempts: vec![attempt],
                duration: start.elapsed(),
                cpu_duration: Duration::ZERO,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK1: &str =
        "proc f(n) { assume(n >= 1 && n <= 20); i = 0; while (i < n) { tick(1); i = i + 1; } }";
    const TICK2: &str =
        "proc f(n) { assume(n >= 1 && n <= 20); i = 0; while (i < n) { tick(2); i = i + 1; } }";
    const TICK3: &str =
        "proc f(n) { assume(n >= 1 && n <= 20); i = 0; while (i < n) { tick(3); i = i + 1; } }";

    fn thresholds(report: &BatchReport) -> Vec<Option<i64>> {
        report
            .outcomes
            .iter()
            .map(|o| o.result.as_ref().ok().map(|r| r.threshold_int()))
            .collect()
    }

    #[test]
    fn effective_jobs_clamps_to_job_count() {
        assert_eq!(effective_jobs(8, 3), 3);
        assert_eq!(effective_jobs(2, 3), 2);
        assert_eq!(effective_jobs(1, 0), 1);
        assert!(effective_jobs(0, 64) >= 1);
    }

    #[test]
    fn batch_results_are_in_input_order_and_deterministic_across_jobs() {
        let jobs = vec![
            BatchJob::from_sources("double", TICK2, TICK1),
            BatchJob::from_sources("triple", TICK3, TICK1),
            BatchJob::from_sources("same", TICK1, TICK1),
        ];
        let serial = run_batch(&jobs, &BatchConfig::with_jobs(1));
        let parallel = run_batch(&jobs, &BatchConfig::with_jobs(3));
        assert_eq!(serial.jobs, 1);
        assert_eq!(parallel.jobs, 3);
        // thresholds: 2n - n = n <= 20; 3n - n = 2n <= 40; identical = 0.
        assert_eq!(thresholds(&serial), vec![Some(20), Some(40), Some(0)]);
        assert_eq!(thresholds(&serial), thresholds(&parallel));
        let names: Vec<&str> = parallel.outcomes.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names, vec!["double", "triple", "same"]);
    }

    #[test]
    fn one_failing_pair_does_not_poison_the_batch() {
        let jobs = vec![
            BatchJob::from_sources("ok", TICK2, TICK1),
            BatchJob::from_sources("broken", "proc f( {", TICK1),
            BatchJob::from_sources("also-ok", TICK3, TICK1),
        ];
        let report = run_batch(&jobs, &BatchConfig::with_jobs(2));
        assert_eq!(report.solved(), 2);
        assert_eq!(report.failed(), 1);
        assert!(report.outcomes[0].is_solved());
        assert!(matches!(
            report.outcomes[1].result,
            Err(AnalysisError::InvalidProgram(_))
        ));
        assert!(report.outcomes[2].is_solved());
    }

    #[test]
    fn escalating_batch_records_chosen_degrees_and_tiers() {
        // Interchanged nested loops over *unbounded* inputs: the cost difference is
        // exactly 0 but the witness is bilinear, so no degree-1 rung (at any tier)
        // succeeds and the ladder must climb to degree 2.
        let interchange_old = r#"proc f(a, b) {
            assume(a >= 1 && b >= 1);
            i = 0;
            while (i < a) {
                j = 0;
                while (j < b) { tick(1); j = j + 1; }
                i = i + 1;
            }
        }"#;
        let interchange_new = r#"proc f(a, b) {
            assume(a >= 1 && b >= 1);
            i = 0;
            while (i < b) {
                j = 0;
                while (j < a) { tick(1); j = j + 1; }
                i = i + 1;
            }
        }"#;
        let jobs = vec![
            BatchJob::from_sources("affine", TICK2, TICK1),
            BatchJob::from_sources("interchange", interchange_new, interchange_old),
        ];
        let report = run_batch(&jobs, &BatchConfig::with_jobs(2).escalating());
        assert_eq!(report.solved(), 2);
        assert_eq!(report.outcomes[0].degree, 1);
        assert_eq!(report.outcomes[0].tier, dca_invariants::InvariantTier::Baseline);
        assert_eq!(report.outcomes[1].degree, 2);
        assert_eq!(report.outcomes[1].tier, dca_invariants::InvariantTier::Baseline);
        // The full tier climb at degree 1 precedes the degree bump.
        assert_eq!(report.outcomes[1].attempts.len(), 4);
        assert!(report.outcomes[1].attempts[0].error.is_some());
    }
}
