//! The DiffCost solver: LP assembly, threshold minimization, and the corollary analyses.

use std::collections::BTreeMap;
use std::fmt;
use std::time::{Duration, Instant};

use dca_handelman::{encode_nonnegativity, ConstraintSense, UnknownConstraint, UnknownFactory, UnknownKind};
use dca_ir::{IntValuation, TransitionSystem};
use dca_lp::fault::{self, FaultKind};
use dca_lp::{ConstraintOp, Deadline, LpBasis, LpProblem, LpStatus, LpVar, SolvePhase, VarKind};
use dca_numeric::Rational;
use dca_poly::{LinExpr, LinForm, Polynomial, TemplatePolynomial, UnknownId, VarId};

use crate::constraints::{
    collect_program_constraints, remap_linexpr_vars, remap_template_vars, CollectOutcome,
    ConstraintSet, ProgramTemplates, TemplateRole,
};
use crate::options::{AnalysisOptions, LpBackend};
use crate::potential::PotentialFunction;
use crate::program::AnalyzedProgram;

/// Errors produced by the solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// The LP is infeasible: no polynomial PF/anti-PF pair of the chosen degree witnesses
    /// a threshold (the paper reports this as ✗).
    NoThresholdFound,
    /// The LP is unbounded (should not happen for well-formed inputs with bounded Θ0).
    Unbounded,
    /// The floating-point simplex hit its iteration limit.
    IterationLimit,
    /// The candidate threshold could not be refuted with the given inputs.
    RefutationFailed,
    /// A program handed to the batch engine as source text failed to compile.
    InvalidProgram(String),
    /// The wall-clock budget ([`AnalysisOptions::time_budget`] or a batch-wide
    /// [`Deadline`]) ran out — or the deadline was cancelled — before any sound
    /// answer existed.
    Timeout {
        /// The pipeline phase that was running when the budget ran out.
        phase: SolvePhase,
    },
    /// The solve panicked and the batch engine contained the panic at the job
    /// boundary (no other pair in the batch is affected).
    Panicked {
        /// The phase the panicking thread had most recently entered (the crash site).
        phase: SolvePhase,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl AnalysisError {
    /// The pipeline phase this error is attributed to, when it carries one. Timeouts
    /// and contained panics name their phase; analysis *verdicts* such as
    /// [`AnalysisError::NoThresholdFound`] are answers about the problem, not
    /// failures of a phase, and return `None`.
    pub fn phase(&self) -> Option<SolvePhase> {
        match self {
            AnalysisError::Timeout { phase } | AnalysisError::Panicked { phase, .. } => {
                Some(*phase)
            }
            _ => None,
        }
    }
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::NoThresholdFound => {
                write!(f, "no threshold of the chosen template degree could be synthesized")
            }
            AnalysisError::Unbounded => write!(f, "the synthesis LP is unbounded"),
            AnalysisError::IterationLimit => write!(f, "the LP solver hit its iteration limit"),
            AnalysisError::RefutationFailed => {
                write!(f, "the candidate threshold could not be refuted on the tried inputs")
            }
            AnalysisError::InvalidProgram(message) => {
                write!(f, "the program failed to compile: {message}")
            }
            AnalysisError::Timeout { phase } => {
                write!(f, "the solve exceeded its wall-clock budget during {phase}")
            }
            AnalysisError::Panicked { phase, message } => {
                write!(f, "the solve panicked during {phase}: {message}")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Size and timing statistics of one solver invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveStats {
    /// Number of LP variables (template coefficients, threshold, multipliers).
    pub lp_variables: usize,
    /// Number of LP constraints actually solved (after row deduplication).
    pub lp_constraints: usize,
    /// Number of constraint rows the Handelman encoding emitted before duplicate and
    /// trivially-satisfied rows were removed.
    pub lp_constraints_raw: usize,
    /// Simplex iterations of the final LP solve across both backends (0 when
    /// presolve decided it); `lp_float_iterations + lp_exact_iterations` under the
    /// float-first driver.
    pub lp_iterations: usize,
    /// Pivots performed by the `f64` phase of the float-first driver.
    pub lp_float_iterations: usize,
    /// Pivots performed by the exact rational simplex (repair + fallback).
    pub lp_exact_iterations: usize,
    /// `true` when the LP deadline expired during phase 2 and the reported threshold
    /// is the last feasible iterate — a *sound but possibly loose* upper bound
    /// rather than a proven optimum (anytime semantics).
    pub lp_truncated: bool,
    /// An exact lower bound on the true LP optimum, recovered from a dual-feasible
    /// basis seen during certification (weak duality). Only populated for truncated
    /// solves, where the reported threshold is an *upper* bound: together they
    /// bracket the unreachable optimum and their difference is the anytime gap.
    pub lp_dual_bound: Option<f64>,
    /// `true` when the reported LP answer carries an exact-rational certificate
    /// (always under the `Certified` and `Exact` backends; `false` under plain
    /// `F64`, whose verdicts are tolerance-guarded floats).
    pub lp_certified: bool,
    /// Certification rounds the float-first driver performed.
    pub lp_certify_rounds: usize,
    /// Wall-clock the LP spent in presolve.
    pub lp_presolve_time: Duration,
    /// Wall-clock the LP spent pivoting in `f64`.
    pub lp_float_time: Duration,
    /// Wall-clock the LP spent in exact basis certification.
    pub lp_certify_time: Duration,
    /// Wall-clock the LP spent in exact repair pivoting.
    pub lp_repair_time: Duration,
    /// Constraint rows removed by the LP presolve pass.
    pub presolve_rows_removed: usize,
    /// Standard-form columns removed by the LP presolve pass.
    pub presolve_cols_removed: usize,
    /// Transitions skipped before encoding because their premise `I(ℓ) ∧ G` is
    /// infeasible (vacuous implications; pruning is sound and keeps
    /// contradictory-premise Handelman products away from the simplex).
    pub transitions_pruned: usize,
    /// Loop-phase splits the solver detected and analyzed across both program
    /// sides (see `dca_ir::split_phases`). When non-zero, a second solve ran on
    /// the split system(s) and the reported result is the better of the two;
    /// when zero — no split detected, or splitting disabled via
    /// [`crate::AnalysisOptions::phase_split`] / `DCA_NO_SPLIT=1` — the result
    /// is bit-identical to the plain unsplit solve.
    pub phases_split: usize,
    /// Lazy row-generation candidate columns (degree-≥-2 Handelman multipliers)
    /// that survived LP presolve. 0 when row generation did not run.
    pub lp_products_total: usize,
    /// Lazy candidate columns actually activated by separation. 0 when row
    /// generation did not run.
    pub lp_products_generated: usize,
    /// Row-generation solve rounds (1 = the initial core sufficed; 0 = eager).
    pub lp_separation_rounds: usize,
    /// Exact simplex pivots absorbed as incremental rank-1 eta updates of the
    /// rational LU factorization.
    pub lp_lu_updates: usize,
    /// Full Markowitz refactorizations the exact simplex performed mid-run
    /// (growth-triggered rebuilds; warm-start builds are not counted).
    pub lp_lu_refactorizations: usize,
    /// `true` when a warm-start basis handed to
    /// [`DiffCostSolver::solve_with_warm_start`] was refused because its provenance
    /// fingerprint named a different program pair (the solve then ran cold). Name
    /// matching alone cannot tell two programs apart, so a stamped basis from the
    /// wrong pair is rejected rather than silently applied.
    pub lp_warm_rejected: bool,
    /// Wall-clock time spent constructing and solving the LP.
    pub duration: Duration,
}

/// The result of the main differential cost analysis.
#[derive(Debug, Clone)]
pub struct DiffCostResult {
    /// The synthesized threshold `t` (real-valued, as produced by the LP).
    pub threshold: f64,
    /// The potential function for the new program.
    pub potential_new: PotentialFunction,
    /// The anti-potential function for the old program.
    pub anti_potential_old: PotentialFunction,
    /// The `(new, old)` transition systems the witnesses are keyed over, when they
    /// differ from the input programs — i.e. when the phase-split analysis produced
    /// the reported result. The split pass renames and adds locations, so
    /// [`potential_new`](DiffCostResult::potential_new) and
    /// [`anti_potential_old`](DiffCostResult::anti_potential_old) must be rendered
    /// and evaluated against these systems, not the inputs. `None` when the unsplit
    /// analysis won (the common case): the witnesses are keyed over the input
    /// systems themselves.
    pub split_systems: Option<Box<(TransitionSystem, TransitionSystem)>>,
    /// Solve statistics.
    pub stats: SolveStats,
}

/// The degradation ladder: the best *sound* answer a solve produced, in decreasing
/// order of strength. The pipeline resolves every solve to exactly one of these —
/// and never degrades past soundness: a threshold is either the proven optimum
/// ([`Certified`](SolveOutcome::Certified)), an explicitly-marked anytime upper
/// bound ([`TruncatedAnytime`](SolveOutcome::TruncatedAnytime)), or absent
/// ([`Aborted`](SolveOutcome::Aborted)). A wrong threshold is never an allowed
/// degradation.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveOutcome {
    /// The LP solved to proven optimality within budget. Under the default
    /// `Certified` and the `Exact` backends the threshold carries an exact-rational
    /// certificate ([`SolveStats::lp_certified`]); under the explicitly-requested
    /// `F64` backend it is the tolerance-guarded float optimum.
    Certified {
        /// The optimal threshold.
        threshold: f64,
    },
    /// The deadline expired with a feasible iterate in hand: the reported threshold
    /// is a *sound but possibly loose* upper bound (anytime semantics), never
    /// presented as the optimum.
    TruncatedAnytime {
        /// The sound upper bound (the last feasible iterate's objective).
        upper: f64,
        /// An exact lower bound on the unreachable optimum, recovered from a
        /// dual-feasible basis during certification, when one was seen.
        lower: Option<f64>,
        /// `upper − lower` when both ends of the bracket are known.
        gap: Option<f64>,
    },
    /// No sound answer: the budget ran out before any feasible iterate, the solve
    /// panicked (and was contained), or the analysis failed outright.
    Aborted {
        /// The phase the abort is attributed to — populated for timeouts and
        /// contained panics, `None` for analysis verdicts (e.g. "no witness of this
        /// degree exists").
        phase: Option<SolvePhase>,
        /// Human-readable reason (the underlying error's display form).
        reason: String,
    },
}

impl SolveOutcome {
    /// The stable machine-readable tag (`"certified"`, `"truncated"`, `"aborted"`)
    /// used in benchmark JSON rows and history lines.
    pub fn label(&self) -> &'static str {
        match self {
            SolveOutcome::Certified { .. } => "certified",
            SolveOutcome::TruncatedAnytime { .. } => "truncated",
            SolveOutcome::Aborted { .. } => "aborted",
        }
    }

    /// `true` for [`SolveOutcome::Certified`].
    pub fn is_certified(&self) -> bool {
        matches!(self, SolveOutcome::Certified { .. })
    }

    /// The phase an [`SolveOutcome::Aborted`] outcome is attributed to.
    pub fn aborted_phase(&self) -> Option<SolvePhase> {
        match self {
            SolveOutcome::Aborted { phase, .. } => *phase,
            _ => None,
        }
    }

    /// The anytime gap of a [`SolveOutcome::TruncatedAnytime`] outcome.
    pub fn gap(&self) -> Option<f64> {
        match self {
            SolveOutcome::TruncatedAnytime { gap, .. } => *gap,
            _ => None,
        }
    }
}

impl DiffCostResult {
    /// Where this result sits on the degradation ladder: `Certified` when the LP ran
    /// to proven optimality, `TruncatedAnytime` when the deadline cut it short and
    /// the threshold is the last feasible iterate (with the exact dual lower bound
    /// bracketing the optimum, when one was recovered). A `DiffCostResult` always
    /// carries a sound threshold, so `Aborted` never arises here — errors abort the
    /// solve before a result exists (see `PairOutcome::outcome` in the batch engine).
    pub fn outcome(&self) -> SolveOutcome {
        if self.stats.lp_truncated {
            // The dual bound travels as an f64 rounded from an exact rational; on a
            // near-closed bracket that rounding can land *above* the truncated upper
            // vertex, and reporting the resulting negative gap would read as "better
            // than proven optimal". Clamp the bracket to the sound side: the upper
            // bound is the trusted end (a feasible iterate), so the lower bound
            // saturates at it and the gap at 0.
            let lower = self.stats.lp_dual_bound.map(|lower| lower.min(self.threshold));
            SolveOutcome::TruncatedAnytime {
                upper: self.threshold,
                lower,
                gap: lower.map(|lower| (self.threshold - lower).max(0.0)),
            }
        } else {
            SolveOutcome::Certified { threshold: self.threshold }
        }
    }

    /// The threshold rounded down to an integer.
    ///
    /// Costs are integer-valued, so any real threshold `t` implies the integer threshold
    /// `⌊t⌋`; this mirrors the paper's observation that computed bounds such as `99.94`
    /// are tight for integer costs.
    pub fn threshold_int(&self) -> i64 {
        // The floating-point LP can undershoot the true optimum by a small tolerance
        // (e.g. report -1.6e-5 where the exact optimum is 0); the slack added here is an
        // order of magnitude above that tolerance and well below 1, so integer-valued
        // costs keep a sound integer threshold.
        (self.threshold + 1e-4).floor() as i64
    }
}

/// The result of proving a symbolic polynomial bound (Section 5, final paragraph).
#[derive(Debug, Clone)]
pub struct SymbolicBoundResult {
    /// The potential function for the new program.
    pub potential_new: PotentialFunction,
    /// The anti-potential function for the old program.
    pub anti_potential_old: PotentialFunction,
    /// Solve statistics.
    pub stats: SolveStats,
}

/// The result of refuting a candidate threshold (Theorem 4.3).
#[derive(Debug, Clone)]
pub struct RefutationResult {
    /// The input on which the cost difference provably exceeds the candidate threshold.
    pub witness_input: IntValuation,
    /// Anti-potential function for the new program (lower bound on its cost).
    pub anti_potential_new: PotentialFunction,
    /// Potential function for the old program (upper bound on its cost).
    pub potential_old: PotentialFunction,
    /// Solve statistics.
    pub stats: SolveStats,
}

/// The result of the single-program precision analysis (Section 7).
#[derive(Debug, Clone)]
pub struct PrecisionResult {
    /// The precision bound `p`: both computed bounds are within `p` of the true cost.
    pub precision: f64,
    /// The upper cost bound (potential function).
    pub upper: PotentialFunction,
    /// The lower cost bound (anti-potential function).
    pub lower: PotentialFunction,
    /// Solve statistics.
    pub stats: SolveStats,
}

/// The solver implementing the simultaneous synthesis algorithm of Section 5.
#[derive(Debug, Clone)]
pub struct DiffCostSolver {
    options: AnalysisOptions,
    deadline: Deadline,
}

impl Default for DiffCostSolver {
    fn default() -> Self {
        DiffCostSolver::new(AnalysisOptions::default())
    }
}

impl DiffCostSolver {
    /// Creates a solver with the given options (and no external deadline: only the
    /// options' own [`AnalysisOptions::time_budget`] bounds each solve).
    pub fn new(options: AnalysisOptions) -> DiffCostSolver {
        DiffCostSolver { options, deadline: Deadline::unlimited() }
    }

    /// Attaches a shared [`Deadline`]: every solve polls it cooperatively (in the
    /// invariant, encoding and LP phases) and stops within one polling stride of its
    /// cutoff or cancellation. A per-solve [`AnalysisOptions::time_budget`]
    /// *tightens* this deadline per attempt; the earlier cutoff wins. The batch
    /// engine threads its batch-wide deadline into every worker this way.
    pub fn with_deadline(mut self, deadline: Deadline) -> DiffCostSolver {
        self.deadline = deadline;
        self
    }

    /// The options this solver was created with.
    pub fn options(&self) -> AnalysisOptions {
        self.options
    }

    /// The effective deadline of one solve: the solver's shared deadline tightened
    /// by the per-solve time budget, anchored at the caller's start instant (the
    /// budget covers constraint collection too, not just the LP).
    fn effective_deadline(&self, start: Instant) -> Deadline {
        self.deadline.tightened(self.options.time_budget.map(|budget| start + budget))
    }

    /// Re-analyzes a program when its invariants were generated at a different tier
    /// than the solver is configured for (borrowing it unchanged otherwise).
    fn at_option_tier<'a>(
        &self,
        program: &'a AnalyzedProgram,
    ) -> std::borrow::Cow<'a, AnalyzedProgram> {
        if program.tier == self.options.invariant_tier {
            std::borrow::Cow::Borrowed(program)
        } else {
            std::borrow::Cow::Owned(program.at_tier(self.options.invariant_tier))
        }
    }

    /// Solves the DiffCost problem: minimizes a threshold `t` such that
    /// `CostSup_new(x) − CostInf_old(x) ≤ t` for all `x ∈ Θ0`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::NoThresholdFound`] when no polynomial witness of the
    /// configured degree exists (e.g. the benchmarks the paper marks ✗).
    pub fn solve(
        &self,
        new: &AnalyzedProgram,
        old: &AnalyzedProgram,
    ) -> Result<DiffCostResult, AnalysisError> {
        self.solve_with_warm_start(new, old, None).0
    }

    /// Like [`DiffCostSolver::solve`], seeding the LP with the final basis of a
    /// previous related solve and returning this solve's own final basis.
    ///
    /// The escalation ladder ([`crate::escalate`]) threads the basis from rung to
    /// rung: consecutive `(degree, tier)` attempts share most of their constraint
    /// system (the Handelman encoding emits constraints in a stable graded order, and
    /// unknown names are stable across attempts), so the previous basis — even the
    /// basis of a *failed*, infeasible attempt — puts the simplex within a few pivots
    /// of the new optimum. The returned basis is `Some` whenever an LP actually ran,
    /// regardless of the analysis outcome.
    ///
    /// When [`AnalysisOptions::phase_split`] is on (the default) and
    /// `dca_ir::split_phases` finds a phase structure in either program, a second
    /// solve runs on the split system(s) and the better (smaller-threshold) of the
    /// two answers is reported, with [`SolveStats::phases_split`] recording how many
    /// splits were analyzed. The returned warm-start basis is always the *unsplit*
    /// solve's basis: split systems rename locations, so their unknowns cannot seed
    /// a later unsplit rung. `DCA_NO_SPLIT=1` disables splitting process-wide.
    ///
    /// The returned basis is stamped with the pair's structural fingerprint
    /// ([`crate::cache::pair_fingerprint`]), and an *incoming* stamped basis whose
    /// fingerprint names a different pair is refused (the solve runs cold and
    /// [`SolveStats::lp_warm_rejected`] records the refusal). The fingerprint
    /// covers the programs but not the degree or tier, so the escalation ladder's
    /// rung-to-rung reuse keeps passing the guard; a cache layer that deliberately
    /// replays a *near*-match must opt in via [`LpBasis::rebadged`].
    pub fn solve_with_warm_start(
        &self,
        new: &AnalyzedProgram,
        old: &AnalyzedProgram,
        warm: Option<&LpBasis>,
    ) -> (Result<DiffCostResult, AnalysisError>, Option<LpBasis>) {
        let pair = crate::cache::pair_fingerprint(new, old);
        let warm_rejected =
            warm.is_some_and(|basis| basis.fingerprint().is_some_and(|fp| fp != pair));
        let warm = if warm_rejected { None } else { warm };
        let (result, basis) = self.solve_any_split(new, old, warm);
        let result = result.map(|mut result| {
            result.stats.lp_warm_rejected = warm_rejected;
            result
        });
        (result, basis.map(|basis| basis.rebadged(pair)))
    }

    /// [`DiffCostSolver::solve_with_warm_start`] after the provenance guard: the
    /// unsplit solve plus the optional phase-split second solve, merged.
    fn solve_any_split(
        &self,
        new: &AnalyzedProgram,
        old: &AnalyzedProgram,
        warm: Option<&LpBasis>,
    ) -> (Result<DiffCostResult, AnalysisError>, Option<LpBasis>) {
        let (base_result, base_basis) = self.solve_unsplit(new, old, warm);
        if !self.options.phase_split || std::env::var("DCA_NO_SPLIT").is_ok() {
            return (base_result, base_basis);
        }
        let tier = self.options.invariant_tier;
        let split_new = new.split_phases_at_tier(tier);
        let split_old = old.split_phases_at_tier(tier);
        let phases_split = split_new.as_ref().map_or(0, |(_, n)| *n)
            + split_old.as_ref().map_or(0, |(_, n)| *n);
        if phases_split == 0 {
            return (base_result, base_basis);
        }
        let new_side = split_new.map_or_else(|| new.clone(), |(program, _)| program);
        let old_side = split_old.map_or_else(|| old.clone(), |(program, _)| program);
        // No warm basis: the split system's locations (hence unknown names) differ.
        let (split_result, _) = self.solve_unsplit(&new_side, &old_side, None);
        let stamped = |mut result: DiffCostResult| {
            result.stats.phases_split = phases_split;
            result
        };
        // A winning split result carries the split systems along: its witnesses are
        // keyed by the split systems' locations, and rendering or evaluating them
        // against the input systems would be out of bounds (or silently wrong).
        let stamped_split = |mut result: DiffCostResult| {
            result.split_systems = Some(Box::new((new_side.ts.clone(), old_side.ts.clone())));
            stamped(result)
        };
        let merged = match (base_result, split_result) {
            (Ok(base), Ok(split)) if split.threshold < base.threshold => Ok(stamped_split(split)),
            (Ok(base), _) => Ok(stamped(base)),
            (Err(_), Ok(split)) => Ok(stamped_split(split)),
            (Err(base), Err(_)) => Err(base),
        };
        (merged, base_basis)
    }

    /// The plain single-system solve behind [`DiffCostSolver::solve_with_warm_start`]:
    /// encodes and solves exactly the two programs it is given, with no phase-split
    /// attempt.
    fn solve_unsplit(
        &self,
        new: &AnalyzedProgram,
        old: &AnalyzedProgram,
        warm: Option<&LpBasis>,
    ) -> (Result<DiffCostResult, AnalysisError>, Option<LpBasis>) {
        let start = Instant::now();
        let deadline = self.effective_deadline(start);
        // Phase boundary: invariant (re-)analysis. An injected deadline fault here
        // exercises the same cooperative-cancellation path a real exhaustion takes.
        if fault::enter(SolvePhase::Invariants) == Some(FaultKind::Deadline) {
            deadline.cancel();
        }
        let (new, old) = (self.at_option_tier(new), self.at_option_tier(old));
        let (new, old) = (new.as_ref(), old.as_ref());
        if deadline.expired() {
            return (Err(AnalysisError::Timeout { phase: SolvePhase::Invariants }), None);
        }
        // Phase boundary: Handelman encoding of the constraint system.
        if fault::enter(SolvePhase::Encode) == Some(FaultKind::Deadline) {
            deadline.cancel();
        }
        let mut factory = UnknownFactory::new();
        let threshold = factory.fresh("t", UnknownKind::Free);
        let (templates_new, templates_old, mut set, collected) =
            self.collect_both(new, old, &mut factory);
        let mut lazy = collected.lazy_multipliers;

        // Differential constraint: Θ0 ⟹ t − (φ_new(ℓ0,x) − χ_old(ℓ0,x)) ≥ 0.
        let (phi0, chi0, theta0) = self.initial_difference(new, old, &templates_new, &templates_old);
        let poly = &(&TemplatePolynomial::from_unknown(threshold) - &phi0) + &chi0;
        let encoding = encode_nonnegativity(
            &theta0,
            &poly,
            self.options.max_products,
            &mut factory,
            "differential",
        );
        lazy.extend(encoding.lazy_multipliers());
        set.extend(encoding.constraints);
        if deadline.expired() {
            return (Err(AnalysisError::Timeout { phase: SolvePhase::Encode }), None);
        }

        let attempt = self.solve_lp(&factory, &set, Some(threshold), start, &deadline, warm, &lazy);
        let result = attempt.result.map(|(objective_value, assignment, mut stats)| {
            stats.transitions_pruned = collected.pruned;
            DiffCostResult {
                threshold: objective_value,
                potential_new: templates_new.instantiate(&assignment),
                anti_potential_old: templates_old.instantiate(&assignment),
                split_systems: None,
                stats,
            }
        });
        (result, attempt.basis)
    }

    /// Proves a symbolic polynomial bound `p(x)` on the cost difference:
    /// `CostSup_new(x) − CostInf_old(x) ≤ p(x)` for all `x ∈ Θ0`.
    ///
    /// The bound is expressed over the *new* program's variables.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::NoThresholdFound`] if the bound cannot be witnessed with
    /// templates of the configured degree.
    pub fn prove_symbolic_bound(
        &self,
        new: &AnalyzedProgram,
        old: &AnalyzedProgram,
        bound: &Polynomial,
    ) -> Result<SymbolicBoundResult, AnalysisError> {
        let start = Instant::now();
        let (new, old) = (self.at_option_tier(new), self.at_option_tier(old));
        let (new, old) = (new.as_ref(), old.as_ref());
        let mut factory = UnknownFactory::new();
        let (templates_new, templates_old, mut set, collected) =
            self.collect_both(new, old, &mut factory);
        let mut lazy = collected.lazy_multipliers;
        let (phi0, chi0, theta0) = self.initial_difference(new, old, &templates_new, &templates_old);
        let poly = &(&TemplatePolynomial::from_polynomial(bound) - &phi0) + &chi0;
        let encoding = encode_nonnegativity(
            &theta0,
            &poly,
            self.options.max_products,
            &mut factory,
            "symbolic-bound",
        );
        lazy.extend(encoding.lazy_multipliers());
        set.extend(encoding.constraints);
        let deadline = self.effective_deadline(start);
        let (_, assignment, mut stats) =
            self.solve_lp(&factory, &set, None, start, &deadline, None, &lazy).result?;
        stats.transitions_pruned = collected.pruned;
        Ok(SymbolicBoundResult {
            potential_new: templates_new.instantiate(&assignment),
            anti_potential_old: templates_old.instantiate(&assignment),
            stats,
        })
    }

    /// Attempts to refute a candidate threshold `t` (Theorem 4.3): finds an input on which
    /// the cost difference provably *exceeds* `t`, by synthesizing an anti-potential for
    /// the new program and a potential for the old one.
    ///
    /// Candidate inputs are taken from `candidate_inputs` (variable name → value, over the
    /// new program's inputs); if empty, corner points of the input box implied by Θ0 are
    /// tried.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::RefutationFailed`] if no tried input admits a witness.
    pub fn refute_threshold(
        &self,
        new: &AnalyzedProgram,
        old: &AnalyzedProgram,
        threshold: i64,
        candidate_inputs: &[BTreeMap<String, i64>],
    ) -> Result<RefutationResult, AnalysisError> {
        let start = Instant::now();
        let (new, old) = (self.at_option_tier(new), self.at_option_tier(old));
        let (new, old) = (new.as_ref(), old.as_ref());
        let mut factory = UnknownFactory::new();
        // Roles are swapped relative to `solve`: lower bound on new, upper bound on old.
        let templates_new = ProgramTemplates::allocate(
            &new.ts,
            self.options.degree,
            self.options.include_cost_in_template,
            &mut factory,
            "chi_new",
        );
        let templates_old = ProgramTemplates::allocate(
            &old.ts,
            self.options.degree,
            self.options.include_cost_in_template,
            &mut factory,
            "phi_old",
        );
        let mut set = ConstraintSet::new();
        let mut lazy = collect_program_constraints(
            &new.ts,
            &new.invariants,
            &templates_new,
            TemplateRole::AntiPotential,
            self.options.max_products,
            &mut factory,
            &mut set,
        )
        .lazy_multipliers;
        lazy.extend(
            collect_program_constraints(
                &old.ts,
                &old.invariants,
                &templates_old,
                TemplateRole::Potential,
                self.options.max_products,
                &mut factory,
                &mut set,
            )
            .lazy_multipliers,
        );

        let mapping = variable_mapping(old, new);
        let chi0_new = templates_new.at(new.ts.initial()).clone();
        let phi0_old = remap_template_vars(templates_old.at(old.ts.initial()), &mapping);

        let candidates = if candidate_inputs.is_empty() {
            default_corner_inputs(new)
        } else {
            candidate_inputs
                .iter()
                .map(|named| {
                    named
                        .iter()
                        .filter_map(|(name, &value)| {
                            new.ts.pool().lookup(name).map(|id| (id, value))
                        })
                        .collect::<IntValuation>()
                })
                .collect()
        };

        for candidate in candidates {
            // χ_new(ℓ0, x*) − φ_old(ℓ0, x*) ≥ t + 1 at the concrete input x*.
            let valuation: dca_poly::Valuation = candidate
                .iter()
                .map(|(&v, &x)| (v, Rational::from_int(x)))
                .collect();
            let difference = &eval_template(&chi0_new, &valuation)
                - &eval_template(&phi0_old, &valuation);
            let exceeded = &difference - &LinForm::constant(Rational::from_int(threshold + 1));
            let mut candidate_set = set.clone();
            candidate_set.push(UnknownConstraint::ge(exceeded, "refutation"));
            let deadline = self.effective_deadline(start);
            match self
                .solve_lp(&factory, &candidate_set, None, start, &deadline, None, &lazy)
                .result
            {
                Ok((_, assignment, stats)) => {
                    return Ok(RefutationResult {
                        witness_input: candidate,
                        anti_potential_new: templates_new.instantiate(&assignment),
                        potential_old: templates_old.instantiate(&assignment),
                        stats,
                    })
                }
                Err(AnalysisError::NoThresholdFound) => continue,
                Err(other) => return Err(other),
            }
        }
        Err(AnalysisError::RefutationFailed)
    }

    /// Single-program precision analysis (Section 7): simultaneously computes an upper
    /// bound `φ` and a lower bound `χ` on the program's cost and minimizes the precision
    /// gap `p` with `φ(ℓ0,x) − χ(ℓ0,x) ≤ p` on `Θ0`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::NoThresholdFound`] if no pair of polynomial bounds of the
    /// configured degree exists.
    pub fn precision(&self, program: &AnalyzedProgram) -> Result<PrecisionResult, AnalysisError> {
        let result = self.solve(program, program)?;
        Ok(PrecisionResult {
            precision: result.threshold,
            upper: result.potential_new,
            lower: result.anti_potential_old,
            stats: result.stats,
        })
    }

    // ----- internal helpers -------------------------------------------------------------

    fn collect_both(
        &self,
        new: &AnalyzedProgram,
        old: &AnalyzedProgram,
        factory: &mut UnknownFactory,
    ) -> (ProgramTemplates, ProgramTemplates, ConstraintSet, CollectOutcome) {
        let templates_new = ProgramTemplates::allocate(
            &new.ts,
            self.options.degree,
            self.options.include_cost_in_template,
            factory,
            "phi_new",
        );
        let templates_old = ProgramTemplates::allocate(
            &old.ts,
            self.options.degree,
            self.options.include_cost_in_template,
            factory,
            "chi_old",
        );
        let mut set = ConstraintSet::new();
        let mut outcome = collect_program_constraints(
            &new.ts,
            &new.invariants,
            &templates_new,
            TemplateRole::Potential,
            self.options.max_products,
            factory,
            &mut set,
        );
        let old_outcome = collect_program_constraints(
            &old.ts,
            &old.invariants,
            &templates_old,
            TemplateRole::AntiPotential,
            self.options.max_products,
            factory,
            &mut set,
        );
        outcome.pruned += old_outcome.pruned;
        outcome.lazy_multipliers.extend(old_outcome.lazy_multipliers);
        (templates_new, templates_old, set, outcome)
    }

    /// Builds `φ_new(ℓ0)`, the remapped `χ_old(ℓ0)` and the shared Θ0 over the new
    /// program's variable space.
    fn initial_difference(
        &self,
        new: &AnalyzedProgram,
        old: &AnalyzedProgram,
        templates_new: &ProgramTemplates,
        templates_old: &ProgramTemplates,
    ) -> (TemplatePolynomial, TemplatePolynomial, Vec<LinExpr>) {
        let mapping = variable_mapping(old, new);
        let phi0 = templates_new.at(new.ts.initial()).clone();
        let chi0 = remap_template_vars(templates_old.at(old.ts.initial()), &mapping);
        let mut theta0: Vec<LinExpr> = new.ts.theta0().to_vec();
        for constraint in old.ts.theta0() {
            let remapped = remap_linexpr_vars(constraint, &mapping);
            if !theta0.contains(&remapped) {
                theta0.push(remapped);
            }
        }
        if !self.options.include_cost_in_template {
            // Θ0 always carries `cost = 0`, but when the templates exclude `cost` the
            // target polynomial has no cost-divisible monomial: every product with a
            // pure-cost factor contributes *only* cost-divisible monomials, whose total
            // is forced to zero anyway. Dropping those premises is sound (a weaker
            // premise set) and completeness-preserving, and prunes the product pool.
            let cost = new.ts.cost_var();
            theta0.retain(|expr| {
                expr.is_constant() || !expr.vars().iter().all(|&v| v == cost)
            });
        }
        (phi0, chi0, theta0)
    }

    // One parameter over the limit, but every argument is load-bearing pipeline
    // state; bundling them into a one-shot struct would only rename the problem.
    #[allow(clippy::too_many_arguments)]
    fn solve_lp(
        &self,
        factory: &UnknownFactory,
        set: &ConstraintSet,
        objective: Option<UnknownId>,
        start: Instant,
        deadline: &Deadline,
        warm: Option<&LpBasis>,
        lazy: &[UnknownId],
    ) -> LpAttempt {
        let mut lp = LpProblem::new();
        // The deadline covers the whole solve (constraint collection already consumed
        // part of the budget — it is anchored at the caller's start time) and carries
        // the shared cancel flag, so an external cancellation stops the LP loops too.
        lp.set_deadline(deadline.clone());
        let lp_vars: Vec<LpVar> = factory
            .iter()
            .map(|u| {
                let kind = match factory.kind(u) {
                    UnknownKind::Free => VarKind::Free,
                    UnknownKind::NonNegative => VarKind::NonNegative,
                };
                lp.add_var(factory.name(u), kind)
            })
            .collect();
        // Row cleanup before solving: identical rows appear when distinct transitions
        // share guards and invariants (their coefficient-matching equalities coincide
        // monomial by monomial), and all-zero rows appear when a monomial cancels on
        // both sides of an encoding. Both inflate the tableau the simplex has to drag
        // along — the degree-3 `nested` encoding sheds thousands of rows here — and
        // neither changes the feasible set, so they are dropped up front.
        let raw_rows = set.constraints().len();
        // One row, canonicalized: sorted (column, coefficient) terms, equality flag,
        // right-hand side.
        type RowKey = (Vec<(LpVar, Rational)>, bool, Rational);
        let mut seen: std::collections::HashSet<RowKey> = std::collections::HashSet::new();
        for constraint in set.constraints() {
            let terms: Vec<(LpVar, Rational)> = constraint
                .form
                .iter()
                .map(|(u, c)| (lp_vars[u.index()], c.clone()))
                .collect();
            let rhs = -constraint.form.constant_term().clone();
            let op = match constraint.sense {
                ConstraintSense::Eq => ConstraintOp::Eq,
                ConstraintSense::Ge => ConstraintOp::Ge,
            };
            if terms.is_empty() {
                // Constant row: drop when trivially satisfied, keep when violated (the
                // solver then correctly reports infeasibility).
                let satisfied = match op {
                    ConstraintOp::Eq => rhs.is_zero(),
                    ConstraintOp::Ge => !rhs.is_positive(),
                    ConstraintOp::Le => !rhs.is_negative(),
                };
                if satisfied {
                    continue;
                }
            }
            if seen.insert((terms.clone(), op == ConstraintOp::Eq, rhs.clone())) {
                lp.add_constraint(terms, op, rhs);
            }
        }
        if let Some(objective) = objective {
            lp.set_objective(vec![(lp_vars[objective.index()], Rational::one())]);
        }
        if std::env::var("DCA_LP_DEBUG").is_ok() {
            eprintln!(
                "[solver] LP: {} rows raw -> {} after dedup, {} variables",
                raw_rows,
                lp.num_constraints(),
                lp.num_vars()
            );
        }

        let stats = |duration, info: dca_lp::LpSolveInfo| SolveStats {
            lp_variables: lp.num_vars(),
            lp_constraints: lp.num_constraints(),
            lp_constraints_raw: raw_rows,
            lp_iterations: info.iterations,
            lp_float_iterations: info.float_iterations,
            lp_exact_iterations: info.exact_iterations,
            lp_truncated: info.truncated,
            lp_dual_bound: None,
            lp_certified: info.certified,
            lp_certify_rounds: info.certify_rounds,
            lp_presolve_time: info.presolve_time,
            lp_float_time: info.float_time,
            lp_certify_time: info.certify_time,
            lp_repair_time: info.repair_time,
            presolve_rows_removed: info.presolve_rows_removed,
            presolve_cols_removed: info.presolve_cols_removed,
            // Filled in by the callers that know their program pair (pruning happens
            // during constraint collection, and phase splitting around whole solves —
            // both before/outside the LP).
            transitions_pruned: 0,
            phases_split: 0,
            lp_products_total: info.products_total,
            lp_products_generated: info.products_generated,
            lp_separation_rounds: info.separation_rounds,
            lp_lu_updates: info.lu_updates,
            lp_lu_refactorizations: info.lu_refactorizations,
            lp_warm_rejected: false,
            duration,
        };
        // Shared interpretation of an exact-rational solve outcome (the `Exact`
        // backend and the float-first `Certified` driver produce the same shape).
        let rational_attempt = |solution: dca_lp::LpResult<Rational>| -> LpAttempt {
            let basis = Some(solution.basis.clone());
            let result = match solution.status {
                LpStatus::Optimal => {
                    let assignment: BTreeMap<UnknownId, Rational> = factory
                        .iter()
                        .map(|u| (u, solution.values[u.index()].clone()))
                        .collect();
                    let objective_value = solution
                        .objective
                        .as_ref()
                        .map(Rational::to_f64)
                        .unwrap_or(0.0);
                    let mut stats = stats(start.elapsed(), solution.info);
                    stats.lp_dual_bound =
                        solution.dual_bound.as_ref().map(Rational::to_f64);
                    Ok((objective_value, assignment, stats))
                }
                LpStatus::Infeasible => Err(AnalysisError::NoThresholdFound),
                LpStatus::Unbounded => Err(AnalysisError::Unbounded),
                LpStatus::IterationLimit => Err(AnalysisError::IterationLimit),
                // The thread-local phase marker names the LP stage that was running
                // when the deadline fired (the certified driver enters each stage).
                LpStatus::TimedOut => {
                    Err(AnalysisError::Timeout { phase: fault::current_phase() })
                }
            };
            LpAttempt { result, basis }
        };
        let solve_exact = |lp: &LpProblem| -> LpAttempt { rational_attempt(lp.solve_exact()) };
        match self.options.backend {
            LpBackend::Certified => {
                // Only the certified driver understands lazy row generation; the
                // plain backends below always solve the eager encoding. The lazy
                // set names Handelman multiplier columns the driver may defer and
                // separate on demand — the verdict is proven identical to the
                // eager one before it is accepted (see `dca_lp::certify`).
                let lazy_names: Vec<String> =
                    lazy.iter().map(|&u| factory.name(u).to_string()).collect();
                rational_attempt(lp.solve_certified_lazy(warm, &lazy_names))
            }
            LpBackend::F64 => {
                let solution = lp.solve_f64_warm(warm);
                let basis = Some(solution.basis.clone());
                let result = match solution.status {
                    LpStatus::Optimal => {
                        let assignment: BTreeMap<UnknownId, Rational> = factory
                            .iter()
                            .map(|u| (u, Rational::from_f64(solution.values[u.index()])))
                            .collect();
                        let objective_value = solution.objective.unwrap_or(0.0);
                        Ok((objective_value, assignment, stats(start.elapsed(), solution.info)))
                    }
                    LpStatus::Infeasible => Err(AnalysisError::NoThresholdFound),
                    // Spurious unboundedness / stalling can occur in floating point on
                    // badly conditioned instances; fall back to the exact backend before
                    // giving up.
                    LpStatus::Unbounded | LpStatus::IterationLimit => return solve_exact(&lp),
                    // A timeout is a genuine budget exhaustion: no fallback. The F64
                    // backend does not mark LP sub-stages, so the phase is whatever
                    // boundary was last crossed (the encode phase).
                    LpStatus::TimedOut => {
                        Err(AnalysisError::Timeout { phase: fault::current_phase() })
                    }
                };
                LpAttempt { result, basis }
            }
            LpBackend::Exact => solve_exact(&lp),
        }
    }
}

/// Outcome of one LP assembly-and-solve: the analysis-level result plus the final
/// simplex basis, which warm-starts the next related solve even when this one failed
/// (an infeasible rung's basis is exactly where the next rung wants to resume).
struct LpAttempt {
    result: Result<(f64, BTreeMap<UnknownId, Rational>, SolveStats), AnalysisError>,
    basis: Option<LpBasis>,
}

/// Evaluates a template polynomial at a concrete valuation, producing an affine form over
/// the LP unknowns.
fn eval_template(template: &TemplatePolynomial, valuation: &dca_poly::Valuation) -> LinForm {
    let mut result = LinForm::zero();
    for (mono, form) in template.iter() {
        result = &result + &form.scale(&mono.eval(valuation));
    }
    result
}

/// Maps the old program's variables onto the new program's variables by name; names that
/// only exist in the old program keep their (disjoint) identity shifted beyond the new
/// pool so they cannot collide.
fn variable_mapping(old: &AnalyzedProgram, new: &AnalyzedProgram) -> BTreeMap<VarId, VarId> {
    let mut mapping = BTreeMap::new();
    let offset = new.ts.pool().len() as u32 + 8192;
    for old_var in old.ts.vars() {
        let name = old.ts.pool().name(old_var);
        match new.ts.pool().lookup(name) {
            Some(new_var) => {
                mapping.insert(old_var, new_var);
            }
            None => {
                mapping.insert(old_var, VarId(offset + old_var.0));
            }
        }
    }
    mapping
}

/// Derives candidate corner inputs from the new program's Θ0 by bounding every data
/// variable with two LPs (minimum and maximum); returns the all-minimum corner, the
/// all-maximum corner and the mixed corners obtained by flipping one variable at a time.
fn default_corner_inputs(program: &AnalyzedProgram) -> Vec<IntValuation> {
    let theta0 = program.ts.theta0();
    let data_vars = program.ts.data_vars();
    let mut bounds: Vec<(VarId, i64, i64)> = Vec::new();
    for var in &data_vars {
        let lower = optimize_var(theta0, *var, true).unwrap_or(0);
        let upper = optimize_var(theta0, *var, false).unwrap_or(lower.max(0));
        bounds.push((*var, lower, upper));
    }
    let mut corners = Vec::new();
    let lower_corner: IntValuation = bounds.iter().map(|&(v, lo, _)| (v, lo)).collect();
    let upper_corner: IntValuation = bounds.iter().map(|&(v, _, hi)| (v, hi)).collect();
    corners.push(upper_corner.clone());
    corners.push(lower_corner.clone());
    for &(flip, lo, _) in &bounds {
        let mut mixed = upper_corner.clone();
        mixed.insert(flip, lo);
        if !corners.contains(&mixed) {
            corners.push(mixed);
        }
    }
    // cost starts at 0 in every candidate.
    for corner in &mut corners {
        corner.insert(program.ts.cost_var(), 0);
    }
    corners
}

/// Minimizes (or maximizes) a single variable over the Θ0 polytope.
fn optimize_var(theta0: &[LinExpr], var: VarId, minimize: bool) -> Option<i64> {
    let mut vars: Vec<VarId> = theta0.iter().flat_map(LinExpr::vars).collect();
    vars.push(var);
    vars.sort();
    vars.dedup();
    let mut lp = LpProblem::new();
    let lp_vars: BTreeMap<VarId, LpVar> = vars
        .iter()
        .map(|&v| (v, lp.add_var(format!("x{}", v.0), VarKind::Free)))
        .collect();
    for constraint in theta0 {
        let terms: Vec<_> = constraint
            .iter()
            .map(|(v, c)| (lp_vars[v], c.clone()))
            .collect();
        lp.add_constraint(terms, ConstraintOp::Ge, -constraint.constant_term().clone());
    }
    let sign = if minimize { Rational::one() } else { Rational::from_int(-1) };
    lp.set_objective(vec![(lp_vars[&var], sign)]);
    let solution = lp.solve_f64();
    if solution.status != LpStatus::Optimal {
        return None;
    }
    Some(solution.values[lp_vars[&var].index()].round() as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyzed(source: &str) -> AnalyzedProgram {
        AnalyzedProgram::from_source(source).unwrap()
    }

    const COUNT_TICK1: &str = r#"
        proc count(n) {
            assume(n >= 1 && n <= 100);
            i = 0;
            while (i < n) { tick(1); i = i + 1; }
        }
    "#;
    const COUNT_TICK2: &str = r#"
        proc count(n) {
            assume(n >= 1 && n <= 100);
            i = 0;
            while (i < n) { tick(2); i = i + 1; }
        }
    "#;

    #[test]
    fn doubling_cost_gives_threshold_n_max() {
        let old = analyzed(COUNT_TICK1);
        let new = analyzed(COUNT_TICK2);
        let solver = DiffCostSolver::default();
        let result = solver.solve(&new, &old).expect("threshold should exist");
        // CostSup_new - CostInf_old = 2n - n = n <= 100; the tight threshold is 100.
        assert!(
            (result.threshold - 100.0).abs() < 0.5,
            "threshold = {}",
            result.threshold
        );
        assert_eq!(result.threshold_int(), 100);
        assert!(result.stats.lp_variables > 0);
        assert!(result.stats.lp_constraints > 0);
    }

    #[test]
    fn identical_programs_give_zero_threshold() {
        let old = analyzed(COUNT_TICK1);
        let new = analyzed(COUNT_TICK1);
        let solver = DiffCostSolver::default();
        let result = solver.solve(&new, &old).expect("threshold should exist");
        assert!(result.threshold.abs() < 0.5, "threshold = {}", result.threshold);
        assert_eq!(result.threshold_int(), 0);
    }

    #[test]
    fn cheaper_new_version_gives_negative_or_zero_threshold() {
        let old = analyzed(COUNT_TICK2);
        let new = analyzed(COUNT_TICK1);
        let solver = DiffCostSolver::default();
        let result = solver.solve(&new, &old).expect("threshold should exist");
        // New is cheaper by n >= 1, so the tightest threshold is -1 (on n = 1).
        assert!(result.threshold <= 0.5, "threshold = {}", result.threshold);
    }

    #[test]
    fn precision_analysis_on_deterministic_loop_is_tight() {
        let program = analyzed(COUNT_TICK1);
        let solver = DiffCostSolver::default();
        let result = solver.precision(&program).expect("precision bound should exist");
        // The loop is deterministic with cost exactly n, so upper and lower bounds can
        // coincide: precision 0 (up to LP tolerance).
        assert!(result.precision.abs() < 0.5, "precision = {}", result.precision);
    }

    #[test]
    fn symbolic_bound_is_provable() {
        let old = analyzed(COUNT_TICK1);
        let new = analyzed(COUNT_TICK2);
        let solver = DiffCostSolver::default();
        // The difference is exactly n, so the symbolic bound p(x) = n is provable...
        let n = new.ts.pool().lookup("n").unwrap();
        let bound = Polynomial::var(n);
        assert!(solver.prove_symbolic_bound(&new, &old, &bound).is_ok());
        // ...but p(x) = n - 1 is not.
        let too_small = Polynomial::var(n) - Polynomial::from_int(1);
        assert!(matches!(
            solver.prove_symbolic_bound(&new, &old, &too_small),
            Err(AnalysisError::NoThresholdFound)
        ));
    }

    #[test]
    fn refutation_of_too_small_threshold() {
        let old = analyzed(COUNT_TICK1);
        let new = analyzed(COUNT_TICK2);
        let solver = DiffCostSolver::default();
        // 99 is not a threshold (difference reaches 100 at n = 100).
        let refutation = solver
            .refute_threshold(&new, &old, 99, &[])
            .expect("99 should be refutable");
        let n = new.ts.pool().lookup("n").unwrap();
        assert_eq!(refutation.witness_input.get(&n), Some(&100));
        // 100 is a genuine threshold and must not be refutable.
        assert!(matches!(
            solver.refute_threshold(&new, &old, 100, &[]),
            Err(AnalysisError::RefutationFailed)
        ));
    }

    #[test]
    fn corner_input_derivation() {
        let program = analyzed(COUNT_TICK1);
        let corners = default_corner_inputs(&program);
        let n = program.ts.pool().lookup("n").unwrap();
        assert!(corners.iter().any(|c| c.get(&n) == Some(&100)));
        assert!(corners.iter().any(|c| c.get(&n) == Some(&1)));
    }

    #[test]
    fn error_display() {
        assert!(AnalysisError::NoThresholdFound.to_string().contains("threshold"));
        assert!(AnalysisError::RefutationFailed.to_string().contains("refuted"));
    }

    /// Regression: the exact dual bound is rounded to `f64` and on a near-closed
    /// bracket can land *above* the truncated upper vertex; the outcome must clamp
    /// the bracket instead of reporting a negative gap ("better than optimal").
    #[test]
    fn truncated_outcome_clamps_a_crossed_bracket() {
        let old = analyzed(COUNT_TICK1);
        let new = analyzed(COUNT_TICK2);
        let mut result = DiffCostSolver::default().solve(&new, &old).unwrap();
        result.stats.lp_truncated = true;
        result.stats.lp_dual_bound = Some(result.threshold + 0.5);
        match result.outcome() {
            SolveOutcome::TruncatedAnytime { upper, lower, gap } => {
                assert_eq!(upper, result.threshold);
                assert_eq!(lower, Some(result.threshold), "lower must clamp to upper");
                assert_eq!(gap, Some(0.0), "gap must clamp to zero, never go negative");
            }
            other => panic!("expected a truncated outcome, got {other:?}"),
        }
        // A well-ordered bracket passes through unclamped.
        result.stats.lp_dual_bound = Some(result.threshold - 2.0);
        assert_eq!(result.outcome().gap(), Some(2.0));
    }

    /// A warm basis stamped for one program pair must be refused when replayed into
    /// a different pair — column names alone collide across unrelated programs —
    /// and the refusing solve must still produce the cold answer.
    #[test]
    fn forged_warm_basis_is_refused_not_applied() {
        let tick1 = analyzed(COUNT_TICK1);
        let tick2 = analyzed(COUNT_TICK2);
        let solver = DiffCostSolver::default();
        // Pair A: (tick2, tick1). Its returned basis is stamped with A's fingerprint.
        let (result_a, basis_a) = solver.solve_with_warm_start(&tick2, &tick1, None);
        assert!(!result_a.unwrap().stats.lp_warm_rejected);
        let basis_a = basis_a.expect("an LP ran, a basis must come back");
        assert_eq!(
            basis_a.fingerprint(),
            Some(crate::cache::pair_fingerprint(&tick2, &tick1))
        );
        // Pair B: (tick1, tick2) — same column names, different programs. The forged
        // replay is refused; the result is bit-identical to the cold solve.
        let (cold_b, basis_b) = solver.solve_with_warm_start(&tick1, &tick2, None);
        let cold_b = cold_b.unwrap();
        let (warm_b, _) = solver.solve_with_warm_start(&tick1, &tick2, Some(&basis_a));
        let warm_b = warm_b.unwrap();
        assert!(warm_b.stats.lp_warm_rejected, "a cross-pair basis must be rejected");
        assert_eq!(warm_b.threshold.to_bits(), cold_b.threshold.to_bits());
        // B's own basis (and an explicitly rebadged foreign one) pass the guard.
        let (own_b, _) =
            solver.solve_with_warm_start(&tick1, &tick2, basis_b.as_ref());
        assert!(!own_b.unwrap().stats.lp_warm_rejected);
        let rebadged = basis_a.rebadged(crate::cache::pair_fingerprint(&tick1, &tick2));
        let (rebadged_b, _) = solver.solve_with_warm_start(&tick1, &tick2, Some(&rebadged));
        let rebadged_b = rebadged_b.unwrap();
        assert!(!rebadged_b.stats.lp_warm_rejected);
        assert_eq!(rebadged_b.threshold.to_bits(), cold_b.threshold.to_bits());
    }
}
