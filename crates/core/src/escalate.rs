//! Automatic escalation of invariant precision and template degree.
//!
//! The paper fixes the template degree per benchmark (`d = K = 2` everywhere except
//! `nested`, which needs `d = K = 3`) and feeds the solver invariants from external
//! generators (Aspic/Sting). When neither the right degree nor the necessary invariant
//! strength is known in advance, the natural strategy is to start small and escalate.
//! [`AnalysisError::NoThresholdFound`] is a definitive "no witness of this degree
//! exists *under these invariants*" answer, so two independent knobs can unblock it:
//!
//! 1. **stronger invariants** (a higher [`InvariantTier`]) enlarge the `Prod_K(Aff)`
//!    product pool the Handelman certificate draws from, and
//! 2. **a higher template degree** enlarges the witness space itself.
//!
//! A tier bump re-runs the abstract interpreter (seconds), while a degree bump grows
//! the LP multiplicatively (minutes on the nested pairs) — so the ladder climbs the
//! *invariant tiers first* at each degree before paying for `d + 1`:
//!
//! ```text
//! (d₀, t₀) → (d₀, t₁) → … → (d₀, tmax) → (d₀+1, t₀) → …
//! ```
//!
//! Every attempt is recorded so callers (the batch engine, the CLI, `EXPERIMENTS.md`
//! generation) can report which rung finally succeeded and how much the failed
//! attempts cost.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use dca_invariants::InvariantTier;
use dca_lp::fault;
use dca_lp::Deadline;

use crate::options::AnalysisOptions;
use crate::program::AnalyzedProgram;
use crate::solver::{AnalysisError, DiffCostResult, DiffCostSolver};

/// Controls the escalation loop of [`solve_with_escalation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EscalationPolicy {
    /// First degree to try (`d = K = start_degree`).
    pub start_degree: u32,
    /// Largest degree to try before giving up. The paper's evaluation never needs more
    /// than 3.
    pub max_degree: u32,
    /// Highest invariant tier to climb to at each degree before bumping the degree.
    /// The climb starts at the tier of the base [`AnalysisOptions`]; a ceiling below
    /// the starting tier disables tier escalation.
    pub max_invariant_tier: InvariantTier,
}

impl Default for EscalationPolicy {
    /// The policy covering the paper's whole evaluation: degrees `1 → 2 → 3`, with the
    /// full invariant-tier climb at each degree.
    fn default() -> Self {
        EscalationPolicy {
            start_degree: 1,
            max_degree: 3,
            max_invariant_tier: InvariantTier::Relational,
        }
    }
}

impl EscalationPolicy {
    /// A policy that tries exactly one degree (and no tier escalation).
    pub fn fixed(degree: u32) -> EscalationPolicy {
        EscalationPolicy {
            start_degree: degree,
            max_degree: degree,
            max_invariant_tier: InvariantTier::Baseline,
        }
    }

    /// Caps the invariant-tier climb.
    pub fn with_max_tier(mut self, tier: InvariantTier) -> EscalationPolicy {
        self.max_invariant_tier = tier;
        self
    }

    /// The degrees this policy will try, in order.
    pub fn degrees(&self) -> impl Iterator<Item = u32> {
        self.start_degree..=self.max_degree.max(self.start_degree)
    }

    /// The invariant tiers this policy will try at each degree, in order, starting
    /// from `base_tier`.
    pub fn tiers(&self, base_tier: InvariantTier) -> impl Iterator<Item = InvariantTier> {
        let top = self.max_invariant_tier.max(base_tier);
        (base_tier.index()..=top.index()).filter_map(InvariantTier::from_index)
    }
}

/// One attempted `(degree, tier)` rung and how it went.
#[derive(Debug, Clone)]
pub struct EscalationAttempt {
    /// The degree `d = K` that was tried.
    pub degree: u32,
    /// The invariant tier that was tried.
    pub tier: InvariantTier,
    /// `None` if the attempt succeeded, otherwise the error it failed with.
    pub error: Option<AnalysisError>,
    /// Wall-clock time of this attempt (including any invariant re-analysis).
    pub duration: Duration,
}

/// A successful escalated solve: the result plus the trail of attempts.
#[derive(Debug, Clone)]
pub struct EscalatedResult {
    /// The result of the successful attempt.
    pub result: DiffCostResult,
    /// The degree that succeeded.
    pub degree: u32,
    /// The invariant tier that succeeded.
    pub tier: InvariantTier,
    /// All attempts, in the order they were made (the last one succeeded).
    pub attempts: Vec<EscalationAttempt>,
}

/// A failed escalated solve: every tried degree failed.
#[derive(Debug, Clone)]
pub struct EscalationFailure {
    /// The error of the final (highest-degree) attempt.
    pub error: AnalysisError,
    /// All attempts, in the order they were made.
    pub attempts: Vec<EscalationAttempt>,
}

/// Solves the DiffCost problem with automatic invariant-tier and degree escalation.
///
/// Starting from `policy.start_degree` and the base options' invariant tier, each
/// attempt runs the full simultaneous synthesis with `d = K = degree` at one invariant
/// tier (all other fields of `base` — LP backend, template shape — are kept). On
/// [`AnalysisError::NoThresholdFound`] the ladder first climbs the invariant tiers —
/// re-running the abstract interpreter is far cheaper than a bigger LP — and only then
/// bumps the degree (resetting to the base tier). Any other error aborts immediately,
/// because it does not mean "the rung was too low" (e.g. an unbounded LP will stay
/// unbounded at higher degrees).
///
/// Re-analyzed programs are cached per tier, so a tier's invariants are computed at
/// most once across all degrees.
///
/// # Errors
///
/// Returns an [`EscalationFailure`] carrying the final error and the full attempt
/// trail when every rung up to `(max_degree, max_invariant_tier)` fails.
///
/// # Examples
///
/// ```
/// use dca_core::escalate::{solve_with_escalation, EscalationPolicy};
/// use dca_core::{AnalysisOptions, AnalyzedProgram};
///
/// let old = AnalyzedProgram::from_source(
///     "proc f(n) { assume(n >= 1 && n <= 10); i = 0; while (i < n) { tick(1); i = i + 1; } }",
/// ).unwrap();
/// let new = AnalyzedProgram::from_source(
///     "proc f(n) { assume(n >= 1 && n <= 10); i = 0; while (i < n) { tick(2); i = i + 1; } }",
/// ).unwrap();
///
/// let escalated = solve_with_escalation(
///     &new,
///     &old,
///     &AnalysisOptions::default(),
///     EscalationPolicy::default(),
/// ).unwrap();
/// assert_eq!(escalated.result.threshold_int(), 10);
/// // The trail records one attempt per tried rung, ending with the chosen one.
/// assert_eq!(escalated.attempts.last().unwrap().degree, escalated.degree);
/// assert_eq!(escalated.attempts.last().unwrap().tier, escalated.tier);
/// ```
pub fn solve_with_escalation(
    new: &AnalyzedProgram,
    old: &AnalyzedProgram,
    base: &AnalysisOptions,
    policy: EscalationPolicy,
) -> Result<EscalatedResult, EscalationFailure> {
    solve_with_escalation_under(new, old, base, policy, &Deadline::unlimited())
}

/// [`solve_with_escalation`] under an externally owned [`Deadline`]: every rung's
/// solver runs with it (tightened by the per-attempt `time_budget`, if any), and the
/// ladder stops climbing once it expires — a cancelled batch does not pay for the
/// remaining rungs. The final attempt trail records the cut-off as a
/// [`AnalysisError::Timeout`] attempt.
pub fn solve_with_escalation_under(
    new: &AnalyzedProgram,
    old: &AnalyzedProgram,
    base: &AnalysisOptions,
    policy: EscalationPolicy,
    deadline: &Deadline,
) -> Result<EscalatedResult, EscalationFailure> {
    let mut attempts = Vec::new();
    let mut last_error = AnalysisError::NoThresholdFound;
    // Tier -> re-analyzed program pair, shared across degrees.
    let mut tiered: BTreeMap<InvariantTier, (AnalyzedProgram, AnalyzedProgram)> =
        BTreeMap::new();
    // The previous rung's final simplex basis. Consecutive rungs share most of their
    // constraint system — the Handelman encoding emits rows in a stable graded order
    // and LP unknowns keep their names across attempts — so even a *failed* rung's
    // basis puts the next rung's phase 1 within a few pivots of feasibility (see
    // [`DiffCostSolver::solve_with_warm_start`]). Soundness never depends on the
    // basis (a stale one degrades to a cold start), though the f64 pivot *path* —
    // and therefore solve time, or which vertex an anytime-truncated solve lands
    // on — can differ from a cold start's. The basis also carries lazy
    // row-generation state across rungs: warm column *names* that belong to the
    // next rung's lazy product set are pre-activated before its first separation
    // round (warm ∩ lazy, see `dca_lp`'s `solve_certified_lazy`), so a rung never
    // re-discovers the product multipliers its predecessor already proved it needs.
    let mut warm: Option<dca_lp::LpBasis> = None;
    'ladder: for degree in policy.degrees() {
        for tier in policy.tiers(base.invariant_tier) {
            if deadline.expired() {
                attempts.push(EscalationAttempt {
                    degree,
                    tier,
                    error: Some(AnalysisError::Timeout { phase: fault::current_phase() }),
                    duration: Duration::ZERO,
                });
                last_error = AnalysisError::Timeout { phase: fault::current_phase() };
                break 'ladder;
            }
            let start = Instant::now();
            let (new_t, old_t) = tiered
                .entry(tier)
                .or_insert_with(|| (new.at_tier(tier), old.at_tier(tier)));
            let options = AnalysisOptions {
                degree,
                max_products: degree,
                invariant_tier: tier,
                ..*base
            };
            let (outcome, basis) = DiffCostSolver::new(options)
                .with_deadline(deadline.clone())
                .solve_with_warm_start(new_t, old_t, warm.as_ref());
            if basis.as_ref().is_some_and(|b| !b.is_empty()) {
                warm = basis;
            }
            let duration = start.elapsed();
            match outcome {
                Ok(result) => {
                    attempts.push(EscalationAttempt { degree, tier, error: None, duration });
                    return Ok(EscalatedResult { result, degree, tier, attempts });
                }
                Err(error) => {
                    attempts.push(EscalationAttempt {
                        degree,
                        tier,
                        error: Some(error.clone()),
                        duration,
                    });
                    let fatal = error != AnalysisError::NoThresholdFound;
                    last_error = error;
                    if fatal {
                        break 'ladder;
                    }
                }
            }
        }
    }
    Err(EscalationFailure { error: last_error, attempts })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyzed(source: &str) -> AnalyzedProgram {
        AnalyzedProgram::from_source(source).unwrap()
    }

    #[test]
    fn policy_degree_sequences() {
        let degrees: Vec<u32> = EscalationPolicy::default().degrees().collect();
        assert_eq!(degrees, vec![1, 2, 3]);
        let fixed: Vec<u32> = EscalationPolicy::fixed(2).degrees().collect();
        assert_eq!(fixed, vec![2]);
        // A max below the start still tries the start degree once.
        let inverted =
            EscalationPolicy { start_degree: 3, max_degree: 1, ..EscalationPolicy::default() };
        assert_eq!(inverted.degrees().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn policy_tier_sequences() {
        let policy = EscalationPolicy::default();
        let tiers: Vec<InvariantTier> = policy.tiers(InvariantTier::Baseline).collect();
        assert_eq!(
            tiers,
            vec![InvariantTier::Baseline, InvariantTier::Hull, InvariantTier::Relational]
        );
        // Starting above the ceiling still tries the starting tier once.
        let capped = policy.with_max_tier(InvariantTier::Baseline);
        let tiers: Vec<InvariantTier> = capped.tiers(InvariantTier::Hull).collect();
        assert_eq!(tiers, vec![InvariantTier::Hull]);
        // A fixed policy tries exactly one rung.
        let fixed = EscalationPolicy::fixed(2);
        assert_eq!(fixed.tiers(InvariantTier::Baseline).count(), 1);
    }

    #[test]
    fn affine_pair_succeeds_at_degree_one() {
        let old = analyzed(
            "proc f(n) { assume(n >= 1 && n <= 20); i = 0; while (i < n) { tick(1); i = i + 1; } }",
        );
        let new = analyzed(
            "proc f(n) { assume(n >= 1 && n <= 20); i = 0; while (i < n) { tick(2); i = i + 1; } }",
        );
        let escalated = solve_with_escalation(
            &new,
            &old,
            &AnalysisOptions::default(),
            EscalationPolicy::default(),
        )
        .expect("escalation must succeed");
        // The potential 2(n - i) is affine, so the very first degree suffices.
        assert_eq!(escalated.degree, 1);
        assert_eq!(escalated.attempts.len(), 1);
        assert_eq!(escalated.result.threshold_int(), 20);
    }

    /// A pair with *no* affine witness at any invariant tier: the two versions
    /// interchange a nested loop (both cost exactly `a·b`, so the tight threshold is
    /// 0), but the inputs are unbounded above — without a box, no degree-1 potential
    /// can dominate the bilinear cost, while the degree-2 template carries the exact
    /// `a·b`-shaped witness. (Box-bounded pairs cannot serve here: over a bounded box
    /// every polynomial difference admits a loose affine witness once the invariants
    /// carry the bounds, which they do at every tier since the back-edge-delay
    /// widening fix.)
    const INTERCHANGE_OLD: &str = r#"proc f(a, b) {
        assume(a >= 1 && b >= 1);
        i = 0;
        while (i < a) {
            j = 0;
            while (j < b) { tick(1); j = j + 1; }
            i = i + 1;
        }
    }"#;
    const INTERCHANGE_NEW: &str = r#"proc f(a, b) {
        assume(a >= 1 && b >= 1);
        i = 0;
        while (i < b) {
            j = 0;
            while (j < a) { tick(1); j = j + 1; }
            i = i + 1;
        }
    }"#;

    #[test]
    fn capped_policy_fails_fast_below_the_needed_degree() {
        let old = analyzed(INTERCHANGE_OLD);
        let new = analyzed(INTERCHANGE_NEW);
        let failure = solve_with_escalation(
            &new,
            &old,
            &AnalysisOptions::default(),
            EscalationPolicy {
                start_degree: 1,
                max_degree: 1,
                max_invariant_tier: InvariantTier::Baseline,
            },
        )
        .expect_err("degree 1 cannot witness an unbounded bilinear difference");
        assert_eq!(failure.error, AnalysisError::NoThresholdFound);
        assert_eq!(failure.attempts.len(), 1);
        assert_eq!(failure.attempts[0].degree, 1);
        assert_eq!(failure.attempts[0].tier, InvariantTier::Baseline);
    }

    #[test]
    fn escalation_stops_at_degree_two_for_interchanged_loops() {
        let old = analyzed(INTERCHANGE_OLD);
        let new = analyzed(INTERCHANGE_NEW);
        // Tier escalation is capped: no invariant strength rescues degree 1 here, and
        // climbing the tiers first would only lengthen the trail this test pins down.
        let escalated = solve_with_escalation(
            &new,
            &old,
            &AnalysisOptions::default(),
            EscalationPolicy::default().with_max_tier(InvariantTier::Baseline),
        )
        .expect("degree 2 must succeed");
        assert_eq!(escalated.degree, 2);
        assert_eq!(escalated.attempts.len(), 2);
        assert!(escalated.attempts[0].error.is_some());
        assert!(escalated.attempts[1].error.is_none());
        assert_eq!(escalated.result.threshold_int(), 0);
    }

    /// The full ladder climbs the invariant tiers within a degree before paying for
    /// the bigger template, and each failed rung's simplex basis warm-starts the next
    /// one (the rung order is what this test pins; the warm-start threading runs
    /// inside `solve_with_warm_start` on every hop).
    #[test]
    fn ladder_climbs_tiers_before_degrees() {
        let old = analyzed(INTERCHANGE_OLD);
        let new = analyzed(INTERCHANGE_NEW);
        let escalated = solve_with_escalation(
            &new,
            &old,
            &AnalysisOptions::default(),
            EscalationPolicy::default(),
        )
        .expect("the ladder must succeed");
        let rungs: Vec<(u32, InvariantTier)> =
            escalated.attempts.iter().map(|a| (a.degree, a.tier)).collect();
        assert_eq!(
            rungs,
            vec![
                (1, InvariantTier::Baseline),
                (1, InvariantTier::Hull),
                (1, InvariantTier::Relational),
                (2, InvariantTier::Baseline),
            ],
            "tiers climb before the degree bumps"
        );
        assert!(escalated.attempts[..3].iter().all(|a| a.error.is_some()));
        assert_eq!(escalated.degree, 2);
        assert_eq!(escalated.tier, InvariantTier::Baseline);
        assert_eq!(escalated.result.threshold_int(), 0);
    }
}
