//! Automatic template-degree escalation.
//!
//! The paper fixes the template degree per benchmark (`d = K = 2` everywhere except
//! `nested`, which needs `d = K = 3`). When the right degree is *not* known in advance,
//! the natural strategy is to start small and escalate: a degree-`d` LP is much cheaper
//! than a degree-`d+1` LP, and [`AnalysisError::NoThresholdFound`] is a definitive
//! "no witness of this degree exists" answer, so retrying with a larger degree is both
//! sound and complete up to the configured ceiling.
//!
//! [`solve_with_escalation`] implements that loop: try `d = K = start_degree`, and on
//! `NoThresholdFound` escalate to `d + 1` until `max_degree`. Every attempt is recorded
//! so callers (the batch engine, the CLI, `EXPERIMENTS.md` generation) can report which
//! degree finally succeeded and how much the failed attempts cost.

use std::time::{Duration, Instant};

use crate::options::AnalysisOptions;
use crate::program::AnalyzedProgram;
use crate::solver::{AnalysisError, DiffCostResult, DiffCostSolver};

/// Controls the degree-escalation loop of [`solve_with_escalation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EscalationPolicy {
    /// First degree to try (`d = K = start_degree`).
    pub start_degree: u32,
    /// Largest degree to try before giving up. The paper's evaluation never needs more
    /// than 3.
    pub max_degree: u32,
}

impl Default for EscalationPolicy {
    /// The policy covering the paper's whole evaluation: `1 → 2 → 3`.
    fn default() -> Self {
        EscalationPolicy { start_degree: 1, max_degree: 3 }
    }
}

impl EscalationPolicy {
    /// A policy that tries exactly one degree (no escalation).
    pub fn fixed(degree: u32) -> EscalationPolicy {
        EscalationPolicy { start_degree: degree, max_degree: degree }
    }

    /// The degrees this policy will try, in order.
    pub fn degrees(&self) -> impl Iterator<Item = u32> {
        self.start_degree..=self.max_degree.max(self.start_degree)
    }
}

/// One attempted degree and how it went.
#[derive(Debug, Clone)]
pub struct EscalationAttempt {
    /// The degree `d = K` that was tried.
    pub degree: u32,
    /// `None` if the attempt succeeded, otherwise the error it failed with.
    pub error: Option<AnalysisError>,
    /// Wall-clock time of this attempt.
    pub duration: Duration,
}

/// A successful escalated solve: the result plus the trail of attempts.
#[derive(Debug, Clone)]
pub struct EscalatedResult {
    /// The result of the successful attempt.
    pub result: DiffCostResult,
    /// The degree that succeeded.
    pub degree: u32,
    /// All attempts, in the order they were made (the last one succeeded).
    pub attempts: Vec<EscalationAttempt>,
}

/// A failed escalated solve: every tried degree failed.
#[derive(Debug, Clone)]
pub struct EscalationFailure {
    /// The error of the final (highest-degree) attempt.
    pub error: AnalysisError,
    /// All attempts, in the order they were made.
    pub attempts: Vec<EscalationAttempt>,
}

/// Solves the DiffCost problem with automatic degree escalation.
///
/// Starting from `policy.start_degree`, each attempt runs the full simultaneous
/// synthesis with `d = K = degree` (all other fields of `base` — LP backend, template
/// shape — are kept). On [`AnalysisError::NoThresholdFound`] the degree is bumped;
/// any other error aborts immediately, because it does not mean "the degree was too
/// small" (e.g. an unbounded LP will stay unbounded at higher degrees).
///
/// # Errors
///
/// Returns an [`EscalationFailure`] carrying the final error and the full attempt
/// trail when every degree up to `policy.max_degree` fails.
///
/// # Examples
///
/// ```
/// use dca_core::escalate::{solve_with_escalation, EscalationPolicy};
/// use dca_core::{AnalysisOptions, AnalyzedProgram};
///
/// let old = AnalyzedProgram::from_source(
///     "proc f(n) { assume(n >= 1 && n <= 10); i = 0; while (i < n) { tick(1); i = i + 1; } }",
/// ).unwrap();
/// let new = AnalyzedProgram::from_source(
///     "proc f(n) { assume(n >= 1 && n <= 10); i = 0; while (i < n) { tick(2); i = i + 1; } }",
/// ).unwrap();
///
/// let escalated = solve_with_escalation(
///     &new,
///     &old,
///     &AnalysisOptions::default(),
///     EscalationPolicy::default(),
/// ).unwrap();
/// assert_eq!(escalated.result.threshold_int(), 10);
/// // The trail records one attempt per tried degree, ending with the chosen one.
/// assert_eq!(escalated.attempts.last().unwrap().degree, escalated.degree);
/// ```
pub fn solve_with_escalation(
    new: &AnalyzedProgram,
    old: &AnalyzedProgram,
    base: &AnalysisOptions,
    policy: EscalationPolicy,
) -> Result<EscalatedResult, EscalationFailure> {
    let mut attempts = Vec::new();
    let mut last_error = AnalysisError::NoThresholdFound;
    for degree in policy.degrees() {
        let options = AnalysisOptions { degree, max_products: degree, ..*base };
        let start = Instant::now();
        let outcome = DiffCostSolver::new(options).solve(new, old);
        let duration = start.elapsed();
        match outcome {
            Ok(result) => {
                attempts.push(EscalationAttempt { degree, error: None, duration });
                return Ok(EscalatedResult { result, degree, attempts });
            }
            Err(error) => {
                attempts.push(EscalationAttempt {
                    degree,
                    error: Some(error.clone()),
                    duration,
                });
                let fatal = error != AnalysisError::NoThresholdFound;
                last_error = error;
                if fatal {
                    break;
                }
            }
        }
    }
    Err(EscalationFailure { error: last_error, attempts })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyzed(source: &str) -> AnalyzedProgram {
        AnalyzedProgram::from_source(source).unwrap()
    }

    #[test]
    fn policy_degree_sequences() {
        let degrees: Vec<u32> = EscalationPolicy::default().degrees().collect();
        assert_eq!(degrees, vec![1, 2, 3]);
        let fixed: Vec<u32> = EscalationPolicy::fixed(2).degrees().collect();
        assert_eq!(fixed, vec![2]);
        // A max below the start still tries the start degree once.
        let inverted = EscalationPolicy { start_degree: 3, max_degree: 1 };
        assert_eq!(inverted.degrees().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn affine_pair_succeeds_at_degree_one() {
        let old = analyzed(
            "proc f(n) { assume(n >= 1 && n <= 20); i = 0; while (i < n) { tick(1); i = i + 1; } }",
        );
        let new = analyzed(
            "proc f(n) { assume(n >= 1 && n <= 20); i = 0; while (i < n) { tick(2); i = i + 1; } }",
        );
        let escalated = solve_with_escalation(
            &new,
            &old,
            &AnalysisOptions::default(),
            EscalationPolicy::default(),
        )
        .expect("escalation must succeed");
        // The potential 2(n - i) is affine, so the very first degree suffices.
        assert_eq!(escalated.degree, 1);
        assert_eq!(escalated.attempts.len(), 1);
        assert_eq!(escalated.result.threshold_int(), 20);
    }

    /// A pair whose cost difference is genuinely quadratic *per location*: the inner
    /// loop of the new version is bounded by the outer counter, so the potential must
    /// mention `i*j`-shaped terms and no affine (degree-1) witness exists. (A nested
    /// loop bounded by a second *input* does admit an affine witness over the bounded
    /// input box, so it cannot serve here.)
    const TRIANGULAR_NEW: &str = r#"proc f(n) {
        assume(n >= 1 && n <= 20);
        i = 0;
        while (i < n) {
            tick(1);
            j = 0;
            while (j < i) { tick(1); j = j + 1; }
            i = i + 1;
        }
    }"#;
    const TRIANGULAR_OLD: &str =
        "proc f(n) { assume(n >= 1 && n <= 20); i = 0; while (i < n) { tick(1); i = i + 1; } }";

    #[test]
    fn capped_policy_fails_fast_below_the_needed_degree() {
        let old = analyzed(TRIANGULAR_OLD);
        let new = analyzed(TRIANGULAR_NEW);
        let failure = solve_with_escalation(
            &new,
            &old,
            &AnalysisOptions::default(),
            EscalationPolicy { start_degree: 1, max_degree: 1 },
        )
        .expect_err("degree 1 cannot witness a triangular difference");
        assert_eq!(failure.error, AnalysisError::NoThresholdFound);
        assert_eq!(failure.attempts.len(), 1);
        assert_eq!(failure.attempts[0].degree, 1);
    }

    #[test]
    fn escalation_stops_at_degree_two_for_triangular_pair() {
        let old = analyzed(TRIANGULAR_OLD);
        let new = analyzed(TRIANGULAR_NEW);
        let escalated = solve_with_escalation(
            &new,
            &old,
            &AnalysisOptions::default(),
            EscalationPolicy::default(),
        )
        .expect("degree 2 must succeed");
        assert_eq!(escalated.degree, 2);
        assert_eq!(escalated.attempts.len(), 2);
        assert!(escalated.attempts[0].error.is_some());
        assert!(escalated.attempts[1].error.is_none());
    }
}
