//! Hash-consed caches for analysis-as-a-service: compiled programs and certified
//! solve results, keyed by structural fingerprint.
//!
//! The serve daemon answers three kinds of query from these caches:
//!
//! * **repeat** — the exact pair (by [`AnalyzedProgram::fingerprint`]) was solved at
//!   the same options before: the certified [`DiffCostResult`] is returned verbatim,
//!   pivot-free;
//! * **near-repeat** — an *edited* pair shares most per-location sub-fingerprints
//!   with a cached entry: the cached basis is [rebadged](dca_lp::LpBasis::rebadged)
//!   to the new pair and replayed as a warm start, so the re-solve only has to
//!   re-derive the edited locations' constraint rows (warm starts change the pivot
//!   path, never the verdict — the replay is sound by construction);
//! * **cold** — nothing matches: a full solve runs and populates the cache.
//!
//! Fingerprints are 64-bit, so every entry stores the pair's canonical strings and
//! [`SolveCache::lookup`] compares them on a shard hit: a fingerprint collision
//! degrades to a cache miss, never to a wrong answer.
//!
//! Both caches shard their maps over [`Mutex`]es keyed by fingerprint, so concurrent
//! daemon requests contend only when they touch the same shard; a poisoned shard
//! (a panicking request died holding the lock) is recovered with
//! [`PoisonError::into_inner`] — entries are only ever inserted whole.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use dca_ir::fingerprint::{fnv1a, fnv1a_extend};
use dca_lp::LpBasis;

use crate::options::{AnalysisOptions, LpBackend};
use crate::program::AnalyzedProgram;
use crate::solver::DiffCostResult;

const SHARDS: usize = 16;

/// The structural fingerprint of a `(new, old)` program pair: the two program
/// fingerprints folded in order ("new then old" — direction matters, the analysis
/// is asymmetric). This is also the provenance stamp
/// [`crate::DiffCostSolver::solve_with_warm_start`] puts on the bases it returns.
/// Degree and tier are deliberately excluded so the escalation ladder can thread
/// one basis across rungs; cache layers key on them separately.
pub fn pair_fingerprint(new: &AnalyzedProgram, old: &AnalyzedProgram) -> u64 {
    let hash = fnv1a_extend(fnv1a(b"pair:"), &new.fingerprint().to_le_bytes());
    fnv1a_extend(hash, &old.fingerprint().to_le_bytes())
}

/// A fingerprint of every [`AnalysisOptions`] field that changes the synthesized LP
/// (and hence the result): two solves agree whenever their pair and options
/// fingerprints agree. The time budget is excluded — it bounds the solve, it does
/// not select the answer (and only certified results are cached).
pub fn options_fingerprint(options: &AnalysisOptions) -> u64 {
    let backend = match options.backend {
        LpBackend::Certified => 0u8,
        LpBackend::F64 => 1,
        LpBackend::Exact => 2,
    };
    let encoded = [
        options.degree.to_le_bytes(),
        options.max_products.to_le_bytes(),
        options.invariant_tier.index().to_le_bytes(),
        u32::from_le_bytes([
            u8::from(options.include_cost_in_template),
            u8::from(options.phase_split),
            backend,
            0,
        ])
        .to_le_bytes(),
    ]
    .concat();
    fnv1a_extend(fnv1a(b"options:"), &encoded)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SolveKey {
    pair: u64,
    options: u64,
}

/// One cached certified solve, with everything a replay needs.
#[derive(Debug, Clone)]
pub struct CachedSolve {
    /// Canonical forms of the pair (collision guard: compared on every hit).
    new_canonical: String,
    old_canonical: String,
    /// The certified result, returned verbatim on a repeat query.
    pub result: DiffCostResult,
    /// The final basis, stamped with this pair's fingerprint.
    pub basis: Option<LpBasis>,
    /// Per-location sub-fingerprints of both sides (near-repeat matching).
    new_locations: Vec<u64>,
    old_locations: Vec<u64>,
}

/// A cached basis selected for a near-repeat replay.
#[derive(Debug, Clone)]
pub struct NearMatch {
    /// The ancestor's basis, already rebadged to the *querying* pair's fingerprint
    /// (the explicit cross-pair opt-in — see [`LpBasis::rebadged`]).
    pub basis: LpBasis,
    /// How many locations (across both sides) differ from the ancestor — the rows
    /// the warm-started re-solve actually has to re-derive.
    pub changed_locations: usize,
}

/// One shard's bucket list: entries whose `(pair, options)` fingerprint collides.
type SolveShard = Mutex<HashMap<u64, Vec<(SolveKey, CachedSolve)>>>;

/// Sharded map from `(pair, options)` fingerprints to certified solves.
#[derive(Debug)]
pub struct SolveCache {
    shards: Vec<SolveShard>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for SolveCache {
    fn default() -> SolveCache {
        SolveCache::new()
    }
}

impl SolveCache {
    /// An empty cache.
    pub fn new() -> SolveCache {
        SolveCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: SolveKey) -> &Mutex<HashMap<u64, Vec<(SolveKey, CachedSolve)>>> {
        &self.shards[(key.pair as usize) % SHARDS]
    }

    /// Looks up a certified solve for exactly this pair at these options. On a
    /// fingerprint hit the canonical strings are compared too, so a collision is
    /// reported as a miss.
    pub fn lookup(
        &self,
        new: &AnalyzedProgram,
        old: &AnalyzedProgram,
        options: &AnalysisOptions,
    ) -> Option<CachedSolve> {
        let key = SolveKey {
            pair: pair_fingerprint(new, old),
            options: options_fingerprint(options),
        };
        let shard = self.shard(key).lock().unwrap_or_else(PoisonError::into_inner);
        let found = shard.get(&key.pair).and_then(|entries| {
            entries.iter().find(|(entry_key, entry)| {
                *entry_key == key
                    && entry.new_canonical == new.canonical_form()
                    && entry.old_canonical == old.canonical_form()
            })
        });
        match found {
            Some((_, entry)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a certified solve. Uncertified (truncated/anytime) results must not be
    /// inserted — a repeat query would replay a loose bound forever; callers gate on
    /// [`crate::SolveOutcome::is_certified`].
    pub fn insert(
        &self,
        new: &AnalyzedProgram,
        old: &AnalyzedProgram,
        options: &AnalysisOptions,
        result: &DiffCostResult,
        basis: Option<LpBasis>,
    ) {
        let key = SolveKey {
            pair: pair_fingerprint(new, old),
            options: options_fingerprint(options),
        };
        let entry = CachedSolve {
            new_canonical: new.canonical_form(),
            old_canonical: old.canonical_form(),
            result: result.clone(),
            basis,
            new_locations: new.location_fingerprints(),
            old_locations: old.location_fingerprints(),
        };
        let mut shard = self.shard(key).lock().unwrap_or_else(PoisonError::into_inner);
        let entries = shard.entry(key.pair).or_default();
        match entries.iter_mut().find(|(entry_key, _)| *entry_key == key) {
            Some((_, existing)) => *existing = entry,
            None => entries.push((key, entry)),
        }
    }

    /// Scans for the closest cached ancestor of an edited pair: same options, same
    /// location counts on both sides, and more than half of the per-location
    /// sub-fingerprints unchanged. Returns its basis rebadged to the querying
    /// pair's fingerprint, plus the changed-location count. `None` when nothing is
    /// close enough for a warm start to plausibly help.
    pub fn nearest_basis(
        &self,
        new: &AnalyzedProgram,
        old: &AnalyzedProgram,
        options: &AnalysisOptions,
    ) -> Option<NearMatch> {
        let options_fp = options_fingerprint(options);
        let new_locations = new.location_fingerprints();
        let old_locations = old.location_fingerprints();
        let total = new_locations.len() + old_locations.len();
        let mut best: Option<(usize, LpBasis)> = None;
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            for (key, entry) in shard.values().flatten() {
                if key.options != options_fp
                    || entry.new_locations.len() != new_locations.len()
                    || entry.old_locations.len() != old_locations.len()
                {
                    continue;
                }
                let Some(basis) = &entry.basis else { continue };
                let changed = count_mismatches(&entry.new_locations, &new_locations)
                    + count_mismatches(&entry.old_locations, &old_locations);
                if changed * 2 >= total {
                    continue;
                }
                if best.as_ref().is_none_or(|(best_changed, _)| changed < *best_changed) {
                    best = Some((changed, basis.clone()));
                }
            }
        }
        best.map(|(changed_locations, basis)| NearMatch {
            basis: basis.rebadged(pair_fingerprint(new, old)),
            changed_locations,
        })
    }

    /// Number of cached solves.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                let shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
                shard.values().map(Vec::len).sum::<usize>()
            })
            .sum()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that returned a verified entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing (or only a colliding fingerprint).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

fn count_mismatches(a: &[u64], b: &[u64]) -> usize {
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

/// One shard's bucket list: `(source, tier index, compiled)` per source hash.
type ProgramShard = Mutex<HashMap<u64, Vec<(String, u32, AnalyzedProgram)>>>;

/// Sharded source-text → [`AnalyzedProgram`] cache (hash-consing of compilation and
/// invariant analysis). Keyed by `(source hash, tier)`; the source string is stored
/// and compared on hit, so a hash collision degrades to a recompile.
#[derive(Debug)]
pub struct ProgramCache {
    shards: Vec<ProgramShard>,
    compiles: AtomicU64,
}

impl Default for ProgramCache {
    fn default() -> ProgramCache {
        ProgramCache::new()
    }
}

impl ProgramCache {
    /// An empty cache.
    pub fn new() -> ProgramCache {
        ProgramCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            compiles: AtomicU64::new(0),
        }
    }

    /// Compiles (and invariant-analyzes) `source` at `tier`, or returns the cached
    /// program for an identical earlier submission.
    ///
    /// # Errors
    ///
    /// Returns the compiler's human-readable message when `source` does not parse
    /// or lower (compile errors are not cached — they are cheap to reproduce).
    pub fn get_or_compile(
        &self,
        source: &str,
        tier: dca_invariants::InvariantTier,
    ) -> Result<AnalyzedProgram, String> {
        let hash = fnv1a(source.as_bytes());
        let shard = &self.shards[(hash as usize) % SHARDS];
        {
            let shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(entries) = shard.get(&hash) {
                for (cached_source, cached_tier, program) in entries {
                    if *cached_tier == tier.index() && cached_source == source {
                        return Ok(program.clone());
                    }
                }
            }
        }
        // Compile outside the shard lock: compilation is the expensive part, and a
        // racing duplicate insert is harmless (last writer wins on identical data).
        let program = AnalyzedProgram::from_source_at_tier(source, tier)?;
        self.compiles.fetch_add(1, Ordering::Relaxed);
        let mut shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
        shard
            .entry(hash)
            .or_default()
            .push((source.to_string(), tier.index(), program.clone()));
        Ok(program)
    }

    /// How many genuine compilations ran (cache misses).
    pub fn compiles(&self) -> u64 {
        self.compiles.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::DiffCostSolver;
    use dca_invariants::InvariantTier;

    fn source(tick: u32) -> String {
        format!(
            "proc count(n) {{ assume(n >= 1 && n <= 50); i = 0; \
             while (i < n) {{ tick({tick}); i = i + 1; }} }}"
        )
    }

    #[test]
    fn solve_cache_round_trips_and_matches_near_repeats() {
        let programs = ProgramCache::new();
        let old = programs.get_or_compile(&source(1), InvariantTier::Baseline).unwrap();
        let new = programs.get_or_compile(&source(2), InvariantTier::Baseline).unwrap();
        let options = AnalysisOptions::default();
        let cache = SolveCache::new();
        assert!(cache.lookup(&new, &old, &options).is_none());
        assert!(cache.is_empty());

        let solver = DiffCostSolver::new(options);
        let (result, basis) = solver.solve_with_warm_start(&new, &old, None);
        let result = result.unwrap();
        cache.insert(&new, &old, &options, &result, basis);
        assert_eq!(cache.len(), 1);

        // Repeat query: recompile the same sources, hit the cache bit-identically.
        let new_again = programs.get_or_compile(&source(2), InvariantTier::Baseline).unwrap();
        let hit = cache.lookup(&new_again, &old, &options).expect("repeat must hit");
        assert_eq!(hit.result.threshold.to_bits(), result.threshold.to_bits());
        assert_eq!(cache.hits(), 1);

        // Different options miss; swapped direction misses (analysis is asymmetric).
        assert!(cache.lookup(&new, &old, &AnalysisOptions::with_degree(3)).is_none());
        assert!(cache.lookup(&old, &new, &options).is_none());

        // Near-repeat: a one-location edit matches the cached entry's basis and
        // reports how many locations changed.
        let edited = programs.get_or_compile(&source(3), InvariantTier::Baseline).unwrap();
        let near = cache.nearest_basis(&edited, &old, &options).expect("edit must near-match");
        assert!(near.changed_locations >= 1);
        assert!(
            near.changed_locations * 2
                < edited.ts.num_locations() + old.ts.num_locations(),
            "most locations must be unchanged"
        );
        assert_eq!(
            near.basis.fingerprint(),
            Some(pair_fingerprint(&edited, &old)),
            "the replayed basis must be rebadged to the querying pair"
        );
        // The rebadged basis passes the provenance guard and solves to the same
        // threshold a cold solve finds.
        let (warm_result, _) = solver.solve_with_warm_start(&edited, &old, Some(&near.basis));
        let warm_result = warm_result.unwrap();
        assert!(!warm_result.stats.lp_warm_rejected);
        let (cold_result, _) = solver.solve_with_warm_start(&edited, &old, None);
        assert_eq!(
            warm_result.threshold.to_bits(),
            cold_result.unwrap().threshold.to_bits()
        );
    }

    #[test]
    fn program_cache_dedupes_identical_sources_per_tier() {
        let cache = ProgramCache::new();
        let a = cache.get_or_compile(&source(1), InvariantTier::Baseline).unwrap();
        let b = cache.get_or_compile(&source(1), InvariantTier::Baseline).unwrap();
        assert_eq!(cache.compiles(), 1, "second submission must be a hit");
        assert_eq!(a.fingerprint(), b.fingerprint());
        let _ = cache.get_or_compile(&source(1), InvariantTier::Hull).unwrap();
        assert_eq!(cache.compiles(), 2, "a different tier is a different entry");
        assert!(cache.get_or_compile("proc broken {", InvariantTier::Baseline).is_err());
    }

    #[test]
    fn options_fingerprint_separates_every_lp_relevant_field() {
        let base = AnalysisOptions::default();
        let fp = options_fingerprint(&base);
        assert_eq!(fp, options_fingerprint(&base.clone()));
        assert_ne!(fp, options_fingerprint(&AnalysisOptions::with_degree(3)));
        assert_ne!(fp, options_fingerprint(&base.exact()));
        assert_ne!(fp, options_fingerprint(&base.with_invariant_tier(InvariantTier::Hull)));
        assert_ne!(fp, options_fingerprint(&base.without_phase_split()));
        // The time budget does not change what is computed, only how long it may take.
        assert_eq!(
            fp,
            options_fingerprint(&base.with_time_budget(std::time::Duration::from_secs(1)))
        );
    }
}
