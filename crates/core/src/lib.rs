//! Differential cost analysis with simultaneous potentials and anti-potentials.
//!
//! This crate implements the primary contribution of the paper (Sections 4, 5 and 7):
//! given two terminating programs `T_new` and `T_old` over the same inputs `Θ0`, it
//! simultaneously synthesizes
//!
//! * a polynomial **potential function** `φ_new` — an upper bound on the cost incurred by
//!   the new program,
//! * a polynomial **anti-potential function** `χ_old` — a lower bound on the cost incurred
//!   by the old program, and
//! * a **threshold** `t` with `φ_new(ℓ0, x) − χ_old(ℓ0, x) ≤ t` for every input `x ∈ Θ0`,
//!
//! which together prove the differential bound `CostSup_new(x) − CostInf_old(x) ≤ t`
//! (Theorem 4.2). The synthesis reduces to a single linear program via Handelman's
//! theorem and minimizes `t`.
//!
//! The crate also provides the three corollary analyses described in the paper:
//! refutation of a candidate threshold (Theorem 4.3), proving a *symbolic* polynomial
//! bound on the cost difference (Section 5), and single-program upper/lower bounds with a
//! precision guarantee (Section 7). A sampling-based [`verify`] module replays concrete
//! executions to validate every produced witness.
//!
//! # Quick start
//!
//! ```
//! use dca_core::{AnalysisOptions, AnalyzedProgram, DiffCostSolver};
//!
//! let old = AnalyzedProgram::from_source(r#"
//!     proc count(n) {
//!         assume(n >= 1 && n <= 100);
//!         i = 0;
//!         while (i < n) { tick(1); i = i + 1; }
//!     }
//! "#).unwrap();
//! let new = AnalyzedProgram::from_source(r#"
//!     proc count(n) {
//!         assume(n >= 1 && n <= 100);
//!         i = 0;
//!         while (i < n) { tick(2); i = i + 1; }
//!     }
//! "#).unwrap();
//!
//! let solver = DiffCostSolver::new(AnalysisOptions::default());
//! let result = solver.solve(&new, &old).unwrap();
//! // The new version costs at most 100 more than the old one (tick 2 vs 1, n <= 100).
//! assert_eq!(result.threshold_int(), 100);
//! ```

#![deny(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod batch;
pub mod cache;
mod constraints;
pub mod escalate;
mod options;
mod potential;
mod program;
mod solver;
pub mod verify;

pub use batch::{run_batch, BatchConfig, BatchJob, BatchReport, PairInput, PairOutcome};
pub use cache::{pair_fingerprint, CachedSolve, NearMatch, ProgramCache, SolveCache};
pub use constraints::{
    collect_program_constraints, CollectOutcome, ConstraintSet, ProgramTemplates, TemplateRole,
};
pub use escalate::{
    solve_with_escalation, EscalatedResult, EscalationAttempt, EscalationFailure,
    EscalationPolicy,
};
pub use dca_invariants::InvariantTier;
pub use dca_lp::{Deadline, LpBasis, SolvePhase};
pub use options::{AnalysisOptions, LpBackend};
pub use potential::PotentialFunction;
pub use program::AnalyzedProgram;
pub use solver::{
    AnalysisError, DiffCostResult, DiffCostSolver, PrecisionResult, RefutationResult,
    SolveOutcome, SolveStats, SymbolicBoundResult,
};
