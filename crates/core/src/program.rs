//! A program prepared for analysis: transition system plus invariants.

use dca_invariants::{InvariantAnalysis, InvariantMap};
use dca_ir::TransitionSystem;
use dca_lang::LoweredProgram;

/// A transition system bundled with the affine invariants the synthesis consumes.
///
/// This corresponds to the input the paper's algorithm expects: the program model plus
/// the invariants produced by an off-the-shelf generator (Aspic/Sting in the paper, the
/// [`dca_invariants`] crate here), optionally strengthened by user annotations.
#[derive(Debug, Clone)]
pub struct AnalyzedProgram {
    /// The transition system.
    pub ts: TransitionSystem,
    /// Affine invariants, one conjunction per location.
    pub invariants: InvariantMap,
}

impl AnalyzedProgram {
    /// Runs invariant generation on a transition system.
    pub fn from_ts(ts: TransitionSystem) -> AnalyzedProgram {
        let invariants = InvariantAnalysis::default().analyze(&ts);
        AnalyzedProgram { ts, invariants }
    }

    /// Runs invariant generation on a lowered program and conjoins its `invariant(...)`
    /// annotations (mirroring the manual strengthening of the paper's `*` benchmarks).
    pub fn from_lowered(lowered: &LoweredProgram) -> AnalyzedProgram {
        let mut analyzed = AnalyzedProgram::from_ts(lowered.ts.clone());
        for (loc, constraints) in &lowered.annotations {
            analyzed.invariants.strengthen(*loc, constraints);
        }
        analyzed
    }

    /// Parses, lowers and analyzes a source program in one step.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message if parsing or lowering fails.
    pub fn from_source(source: &str) -> Result<AnalyzedProgram, String> {
        let lowered = dca_lang::compile(source)?;
        Ok(AnalyzedProgram::from_lowered(&lowered))
    }

    /// The program name (from the `proc` declaration or the builder).
    pub fn name(&self) -> &str {
        self.ts.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca_poly::LinExpr;

    const SOURCE: &str = r#"
        proc count(n) {
            assume(n >= 1 && n <= 100);
            i = 0;
            while (i < n) invariant(i >= 0) { tick(1); i = i + 1; }
        }
    "#;

    #[test]
    fn from_source_produces_invariants() {
        let analyzed = AnalyzedProgram::from_source(SOURCE).unwrap();
        assert_eq!(analyzed.name(), "count");
        let n = analyzed.ts.pool().lookup("n").unwrap();
        // Every reachable location must know n >= 1.
        for loc in analyzed.ts.locations() {
            let invariant = analyzed.invariants.at(loc);
            if !invariant.is_bottom() && loc != analyzed.ts.initial() {
                assert!(
                    invariant.entails(&(LinExpr::var(n) - LinExpr::from_int(1))),
                    "location {} misses n >= 1",
                    analyzed.ts.location_name(loc)
                );
            }
        }
    }

    #[test]
    fn from_source_reports_errors() {
        assert!(AnalyzedProgram::from_source("proc broken {").is_err());
        assert!(AnalyzedProgram::from_source("proc f(n) { x = nondet() * 2; }").is_err());
    }
}
