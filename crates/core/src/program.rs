//! A program prepared for analysis: transition system plus invariants.

use dca_invariants::{InvariantAnalysis, InvariantMap, InvariantTier};
use dca_ir::{LocId, TransitionSystem};
use dca_lang::LoweredProgram;
use dca_poly::LinExpr;

/// A transition system bundled with the affine invariants the synthesis consumes.
///
/// This corresponds to the input the paper's algorithm expects: the program model plus
/// the invariants produced by an off-the-shelf generator (Aspic/Sting in the paper, the
/// [`dca_invariants`] crate here), optionally strengthened by user annotations.
///
/// The program remembers which [`InvariantTier`] produced its invariants and the user
/// annotations it was strengthened with, so the escalation ladder can *re-analyze* it
/// at a higher tier (see [`AnalyzedProgram::at_tier`]) without losing the annotations.
#[derive(Debug, Clone)]
pub struct AnalyzedProgram {
    /// The transition system.
    pub ts: TransitionSystem,
    /// Affine invariants, one conjunction per location.
    pub invariants: InvariantMap,
    /// The precision tier the invariants were generated at.
    pub tier: InvariantTier,
    /// `invariant(...)` source annotations, replayed on every re-analysis.
    annotations: Vec<(LocId, Vec<LinExpr>)>,
}

impl AnalyzedProgram {
    /// Runs invariant generation on a transition system (at the baseline tier).
    pub fn from_ts(ts: TransitionSystem) -> AnalyzedProgram {
        AnalyzedProgram::from_ts_at_tier(ts, InvariantTier::Baseline)
    }

    /// Runs invariant generation on a transition system at the given precision tier.
    pub fn from_ts_at_tier(ts: TransitionSystem, tier: InvariantTier) -> AnalyzedProgram {
        let invariants = InvariantAnalysis::at_tier(tier).analyze(&ts);
        AnalyzedProgram { ts, invariants, tier, annotations: Vec::new() }
    }

    /// Runs invariant generation on a lowered program and conjoins its `invariant(...)`
    /// annotations (mirroring the manual strengthening of the paper's `*` benchmarks).
    pub fn from_lowered(lowered: &LoweredProgram) -> AnalyzedProgram {
        AnalyzedProgram::from_lowered_at_tier(lowered, InvariantTier::Baseline)
    }

    /// Like [`AnalyzedProgram::from_lowered`], at the given precision tier.
    pub fn from_lowered_at_tier(
        lowered: &LoweredProgram,
        tier: InvariantTier,
    ) -> AnalyzedProgram {
        let mut analyzed = AnalyzedProgram::from_ts_at_tier(lowered.ts.clone(), tier);
        analyzed.annotations = lowered.annotations.clone();
        analyzed.apply_annotations();
        analyzed
    }

    /// Parses, lowers and analyzes a source program in one step.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message if parsing or lowering fails.
    pub fn from_source(source: &str) -> Result<AnalyzedProgram, String> {
        AnalyzedProgram::from_source_at_tier(source, InvariantTier::Baseline)
    }

    /// Like [`AnalyzedProgram::from_source`], at the given precision tier.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message if parsing or lowering fails.
    pub fn from_source_at_tier(
        source: &str,
        tier: InvariantTier,
    ) -> Result<AnalyzedProgram, String> {
        let lowered = dca_lang::compile(source)?;
        Ok(AnalyzedProgram::from_lowered_at_tier(&lowered, tier))
    }

    /// The same program re-analyzed at another precision tier, with the source
    /// annotations replayed. Returns a cheap clone when the tier already matches.
    ///
    /// Facts added through [`InvariantMap::strengthen`] by *callers* (as opposed to
    /// source annotations) are not replayed — strengthen the re-analyzed program again
    /// if needed.
    pub fn at_tier(&self, tier: InvariantTier) -> AnalyzedProgram {
        if tier == self.tier {
            return self.clone();
        }
        let invariants = InvariantAnalysis::at_tier(tier).analyze(&self.ts);
        let mut analyzed = AnalyzedProgram {
            ts: self.ts.clone(),
            invariants,
            tier,
            annotations: self.annotations.clone(),
        };
        analyzed.apply_annotations();
        analyzed
    }

    fn apply_annotations(&mut self) {
        for (loc, constraints) in &self.annotations {
            self.invariants.strengthen(*loc, constraints);
        }
    }

    /// Applies loop-phase splitting ([`dca_ir::split_phases`]) to this program and
    /// re-analyzes the split system at the given tier, so every phase copy gets its
    /// own invariants (and, downstream, its own potential template).
    ///
    /// Source `invariant(...)` annotations are replayed onto *every* phase copy of
    /// their location: an annotation holds at a location of the original system,
    /// and each copy only sees a subset of the runs that reach that location.
    ///
    /// Returns the split program together with the number of loop splits applied,
    /// or `None` when the program has no detectable phase structure.
    pub fn split_phases_at_tier(
        &self,
        tier: InvariantTier,
    ) -> Option<(AnalyzedProgram, usize)> {
        let split = dca_ir::split_phases(&self.ts)?;
        let splits = split.splits.len();
        let annotations: Vec<(LocId, Vec<LinExpr>)> = self
            .annotations
            .iter()
            .flat_map(|(loc, constraints)| {
                split
                    .copies_of(*loc)
                    .iter()
                    .map(|copy| (*copy, constraints.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut analyzed = AnalyzedProgram::from_ts_at_tier(split.ts, tier);
        analyzed.annotations = annotations;
        analyzed.apply_annotations();
        Some((analyzed, splits))
    }

    /// The program name (from the `proc` declaration or the builder).
    pub fn name(&self) -> &str {
        self.ts.name()
    }

    /// The canonical, display-name-independent rendering this program is
    /// fingerprinted from: the transition system's [`dca_ir::canonical_form`]
    /// followed by the source annotations. The invariant *tier* is deliberately
    /// excluded — invariants are a deterministic function of `(canonical form,
    /// tier)`, so cache layers key on the tier separately and the escalation
    /// ladder can reuse warm bases across tiers of the same pair.
    pub fn canonical_form(&self) -> String {
        use std::fmt::Write as _;
        let mut out = dca_ir::canonical_form(&self.ts);
        for (loc, constraints) in &self.annotations {
            let rendered: Vec<String> =
                constraints.iter().map(|c| c.to_string(self.ts.pool())).collect();
            let _ = writeln!(out, "inv@{loc}:{}", rendered.join(" /\\ "));
        }
        out
    }

    /// A stable 64-bit structural fingerprint (FNV-1a of
    /// [`canonical_form`](AnalyzedProgram::canonical_form)). Equal programs always
    /// collide; unequal programs collide with negligible but nonzero probability,
    /// so cache layers verify the canonical strings on every hit.
    pub fn fingerprint(&self) -> u64 {
        dca_ir::fingerprint::fnv1a(self.canonical_form().as_bytes())
    }

    /// Per-location structural sub-fingerprints (indexed by [`LocId`] index): the
    /// transition system's location fingerprints, each folded with the source
    /// annotations attached to that location. A location with an unchanged
    /// sub-fingerprint between two programs contributes identical constraints to
    /// the encoding, which is what lets a near-repeat query re-solve from its
    /// ancestor's basis and re-derive only the edited locations' rows.
    pub fn location_fingerprints(&self) -> Vec<u64> {
        let mut fps = dca_ir::fingerprint_system(&self.ts).locations;
        for (loc, constraints) in &self.annotations {
            if let Some(fp) = fps.get_mut(loc.index()) {
                for c in constraints {
                    *fp = dca_ir::fingerprint::fnv1a_extend(
                        *fp,
                        c.to_string(self.ts.pool()).as_bytes(),
                    );
                }
            }
        }
        fps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca_poly::LinExpr;

    const SOURCE: &str = r#"
        proc count(n) {
            assume(n >= 1 && n <= 100);
            i = 0;
            while (i < n) invariant(i >= 0) { tick(1); i = i + 1; }
        }
    "#;

    #[test]
    fn from_source_produces_invariants() {
        let analyzed = AnalyzedProgram::from_source(SOURCE).unwrap();
        assert_eq!(analyzed.name(), "count");
        let n = analyzed.ts.pool().lookup("n").unwrap();
        // Every reachable location must know n >= 1.
        for loc in analyzed.ts.locations() {
            let invariant = analyzed.invariants.at(loc);
            if !invariant.is_bottom() && loc != analyzed.ts.initial() {
                assert!(
                    invariant.entails(&(LinExpr::var(n) - LinExpr::from_int(1))),
                    "location {} misses n >= 1",
                    analyzed.ts.location_name(loc)
                );
            }
        }
    }

    #[test]
    fn from_source_reports_errors() {
        assert!(AnalyzedProgram::from_source("proc broken {").is_err());
        assert!(AnalyzedProgram::from_source("proc f(n) { x = nondet() * 2; }").is_err());
    }
}
