//! The numeric abstraction shared by the `f64` and exact [`Rational`] simplex backends.

use dca_numeric::Rational;

/// Arithmetic required by the simplex solver.
///
/// The trait is sealed in spirit: the two implementations provided here (`f64` with an
/// absolute tolerance, and [`Rational`] exactly) are the only ones the crate is tested
/// with; the solver chooses pivoting rules based on [`Scalar::IS_EXACT`].
pub trait Scalar: Clone + std::fmt::Debug + PartialEq {
    /// `true` for exact arithmetic (enables Bland's anti-cycling rule unconditionally).
    const IS_EXACT: bool;

    /// The additive identity.
    fn zero() -> Self;
    /// The multiplicative identity.
    fn one() -> Self;
    /// Conversion from an exact rational coefficient.
    fn from_rational(r: &Rational) -> Self;
    /// Approximate conversion used for reporting.
    fn to_f64(&self) -> f64;

    /// Addition.
    fn add(&self, other: &Self) -> Self;
    /// Subtraction.
    fn sub(&self, other: &Self) -> Self;
    /// Multiplication.
    fn mul(&self, other: &Self) -> Self;
    /// Division.
    fn div(&self, other: &Self) -> Self;
    /// Negation.
    fn neg(&self) -> Self;

    /// `true` if the value is (numerically) zero.
    fn is_zero(&self) -> bool;
    /// `true` only for the exact representation of zero. Used for sparsity skips in the
    /// tableau updates: unlike [`Scalar::is_zero`], skipping an exactly-zero entry never
    /// changes the arithmetic (a tolerance-zero entry times a large pivot factor would).
    fn is_exactly_zero(&self) -> bool {
        self.is_zero()
    }
    /// `true` if the value is (numerically) strictly positive.
    fn is_positive(&self) -> bool;
    /// `true` if the value is (numerically) strictly negative.
    fn is_negative(&self) -> bool;
    /// Strict comparison used by the ratio test.
    fn lt(&self, other: &Self) -> bool;
    /// Approximate arithmetic cost of carrying this value through a solve, in
    /// machine-word units (1 for fixed-width scalars). The exact backend's
    /// eta-file growth monitor sums this over stored entries so that rational
    /// bit-length blowup — not just fill-in — triggers refactorization.
    fn complexity(&self) -> usize {
        1
    }
}

/// Absolute tolerance used by the floating-point backend.
pub(crate) const F64_EPS: f64 = 1e-8;

/// Magnitude of a scalar (shared by the simplex pivot choices and equilibration).
pub(crate) fn abs<S: Scalar>(value: &S) -> S {
    if value.is_negative() {
        value.neg()
    } else {
        value.clone()
    }
}

impl Scalar for f64 {
    const IS_EXACT: bool = false;

    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn from_rational(r: &Rational) -> Self {
        r.to_f64()
    }
    fn to_f64(&self) -> f64 {
        *self
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    fn sub(&self, other: &Self) -> Self {
        self - other
    }
    fn mul(&self, other: &Self) -> Self {
        self * other
    }
    fn div(&self, other: &Self) -> Self {
        self / other
    }
    fn neg(&self) -> Self {
        -self
    }
    fn is_zero(&self) -> bool {
        self.abs() <= F64_EPS
    }
    fn is_exactly_zero(&self) -> bool {
        *self == 0.0
    }
    fn is_positive(&self) -> bool {
        *self > F64_EPS
    }
    fn is_negative(&self) -> bool {
        *self < -F64_EPS
    }
    fn lt(&self, other: &Self) -> bool {
        self < other
    }
}

impl Scalar for Rational {
    const IS_EXACT: bool = true;

    fn zero() -> Self {
        Rational::zero()
    }
    fn one() -> Self {
        Rational::one()
    }
    fn from_rational(r: &Rational) -> Self {
        r.clone()
    }
    fn to_f64(&self) -> f64 {
        Rational::to_f64(self)
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    fn sub(&self, other: &Self) -> Self {
        self - other
    }
    fn mul(&self, other: &Self) -> Self {
        self * other
    }
    fn div(&self, other: &Self) -> Self {
        self / other
    }
    fn neg(&self) -> Self {
        -self.clone()
    }
    fn is_zero(&self) -> bool {
        Rational::is_zero(self)
    }
    fn is_positive(&self) -> bool {
        Rational::is_positive(self)
    }
    fn is_negative(&self) -> bool {
        Rational::is_negative(self)
    }
    fn lt(&self, other: &Self) -> bool {
        self < other
    }
    fn complexity(&self) -> usize {
        self.storage_weight()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_tolerance() {
        assert!(Scalar::is_zero(&1e-12));
        assert!(!Scalar::is_positive(&1e-12));
        assert!(Scalar::is_positive(&1e-3));
        assert!(Scalar::is_negative(&-1e-3));
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // IS_EXACT is the property under test
    fn rational_exactness() {
        let tiny = Rational::new(1, 1_000_000_000);
        assert!(!Scalar::is_zero(&tiny));
        assert!(Scalar::is_positive(&tiny));
        assert!(Rational::IS_EXACT);
        assert!(!f64::IS_EXACT);
    }

    #[test]
    fn conversions() {
        let half = Rational::new(1, 2);
        assert_eq!(<f64 as Scalar>::from_rational(&half), 0.5);
        assert_eq!(<Rational as Scalar>::from_rational(&half), half);
        assert_eq!(Scalar::to_f64(&half), 0.5);
    }
}
