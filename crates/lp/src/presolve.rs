//! Presolve: shrinks a standard-form LP before any simplex runs, and maps the reduced
//! solution back to the original column space.
//!
//! The Handelman encodings this crate solves are dominated by coefficient-matching
//! equalities with zero right-hand sides over non-negative multipliers. That structure
//! makes four classical reductions unusually productive:
//!
//! * **zero / constant rows** — rows whose every coefficient vanished are dropped when
//!   trivially satisfied (and decide infeasibility when violated);
//! * **singleton rows** — `a·y = b` fixes `y = b/a` outright, and the fixed value is
//!   substituted through the rest of the system (bound propagation for an all-equality,
//!   `y ≥ 0` form: a negative fixed value is an immediate infeasibility verdict);
//! * **forcing rows** — `Σ aᵢ yᵢ = 0` with single-signed coefficients forces every
//!   involved variable to zero (each `yᵢ ≥ 0`), eliminating whole column groups;
//! * **duplicate rows and empty columns** — textually identical rows are kept once;
//!   columns that appear in no row are fixed to zero when their cost cannot improve
//!   the objective. (A no-row column with *negative* cost is kept: the LP is then
//!   "infeasible or unbounded", and only the simplex — which proves feasibility in
//!   phase 1 before anything else — can tell which.)
//! * **dominated rows** — two rows that encode inequalities over *proportional* cores
//!   (each row's own zero-cost slack singleton makes it `core·y ≤ b` or `core·y ≥ b`)
//!   imply one another when they point the same way: only the tighter bound survives.
//!   The paper's `X ≤ c` and `2X ≤ 2c'` Θ0 shapes (and the overlapping guard rows the
//!   invariant tiers emit) are exactly this pattern.
//!
//! The reductions cascade (fixing a column can create new singleton or zero rows), so
//! the pass iterates to a fixpoint. Everything runs in the solver's scalar type, with
//! one asymmetry: **only the exact backend may conclude infeasibility here**. The
//! `f64` pass substitutes rounded values, and a cascade of substitutions on raw
//! (un-equilibrated) coefficients could push a residual past the tolerance — so any
//! row an `f64` pass would call violated is simply *left in place* for the simplex,
//! whose infeasibility verdicts sit behind a noise floor and a perturbed retry.
//! Fixed column values, by contrast, are always safe to propagate: a wrong `Optimal`
//! built on them is caught by the model-level feasibility re-check in
//! `LpProblem::solve_f64`.

use crate::problem::LpStatus;
use crate::scalar::Scalar;
use crate::simplex::StandardForm;

/// The outcome of presolving a standard-form problem.
#[derive(Debug, Clone)]
pub(crate) struct Presolved<S> {
    /// The reduced problem (meaningful only when `verdict` is `None`).
    pub form: StandardForm<S>,
    /// Reduced column index → original column index.
    pub kept_cols: Vec<usize>,
    /// Values of eliminated columns, by original column index.
    pub fixed: Vec<(usize, S)>,
    /// Number of rows removed by the pass.
    pub rows_removed: usize,
    /// Number of columns removed by the pass.
    pub cols_removed: usize,
    /// A definitive verdict reached during presolve (`Infeasible` or `Unbounded`),
    /// short-circuiting the simplex entirely.
    pub verdict: Option<LpStatus>,
}

impl<S: Scalar> Presolved<S> {
    /// Maps a solution over the reduced columns back to the original column space.
    pub fn restore(&self, reduced_values: &[S], num_original_cols: usize) -> Vec<S> {
        let mut values = vec![S::zero(); num_original_cols];
        for (&original, value) in self.kept_cols.iter().zip(reduced_values) {
            values[original] = value.clone();
        }
        for (original, value) in &self.fixed {
            values[*original] = value.clone();
        }
        values
    }

    /// Maps original column indices (e.g. a warm-start basis) to reduced indices,
    /// silently dropping columns the presolve eliminated.
    pub fn map_cols(&self, original: &[usize]) -> Vec<usize> {
        let mut lookup = vec![usize::MAX; original.iter().max().map_or(0, |m| m + 1)];
        for (reduced, &orig) in self.kept_cols.iter().enumerate() {
            if orig < lookup.len() {
                lookup[orig] = reduced;
            }
        }
        original
            .iter()
            .filter_map(|&c| lookup.get(c).copied().filter(|&r| r != usize::MAX))
            .collect()
    }
}

/// One live row during the pass: terms over *original* column indices, plus the
/// (substitution-adjusted) right-hand side.
struct Row<S> {
    terms: Vec<(usize, S)>,
    rhs: S,
}

/// The identity presolve: keeps every row and column (used when presolve is disabled
/// with `DCA_LP_NO_PRESOLVE=1`, e.g. by the A/B soundness tests).
pub(crate) fn identity<S: Scalar>(form: &StandardForm<S>) -> Presolved<S> {
    Presolved {
        form: form.clone(),
        kept_cols: (0..form.costs.len()).collect(),
        fixed: Vec::new(),
        rows_removed: 0,
        cols_removed: 0,
        verdict: None,
    }
}

/// Runs the presolve reductions to a fixpoint.
pub(crate) fn presolve<S: Scalar>(form: &StandardForm<S>) -> Presolved<S> {
    let num_cols = form.costs.len();
    let mut rows: Vec<Option<Row<S>>> = form
        .matrix
        .iter()
        .zip(&form.rhs)
        .map(|(row, rhs)| {
            let terms: Vec<(usize, S)> = row
                .iter()
                .enumerate()
                .filter(|(_, a)| !a.is_exactly_zero())
                .map(|(j, a)| (j, a.clone()))
                .collect();
            Some(Row { terms, rhs: rhs.clone() })
        })
        .collect();
    // `None` = still free; `Some(v)` = fixed to `v`.
    let mut fixed: Vec<Option<S>> = vec![None; num_cols];
    let mut rows_removed = 0usize;
    let mut infeasible = false;
    // `f64` only: a reduction step smelled infeasibility. The float pass must not
    // issue that verdict itself (see the module docs), and it must not leave the
    // suspect row in the *reduced* system either — substituted-away columns and row
    // equilibration could amplify a rounding residual into a hard contradiction. The
    // whole pass is abandoned instead: the simplex solves the original system and
    // issues the verdict behind its own noise floor and perturbed retry.
    let mut suspect = false;

    // Reduction fixpoint. Each pass substitutes known values, then applies the row
    // rules; fixing a column can enable further reductions, so iterate (the cascade
    // depth is small in practice — the cap is a safety net, not a tuning knob).
    let mut difference_scanned = false;
    for _ in 0..24 {
        let mut changed = false;
        for slot in rows.iter_mut() {
            let Some(row) = slot else { continue };
            // Substitute fixed columns into the right-hand side.
            let before = row.terms.len();
            let mut rhs = row.rhs.clone();
            row.terms.retain(|(col, coeff)| match &fixed[*col] {
                Some(value) => {
                    if !value.is_exactly_zero() {
                        rhs = rhs.sub(&coeff.mul(value));
                    }
                    false
                }
                None => true,
            });
            row.rhs = rhs;
            if row.terms.len() != before {
                changed = true;
            }

            if row.terms.is_empty() {
                // Constant row: satisfied → drop; violated → infeasible (exact) or
                // left for the simplex to condemn behind its noise floor (f64).
                if !row.rhs.is_zero() {
                    if S::IS_EXACT {
                        infeasible = true;
                    } else {
                        suspect = true;
                        continue;
                    }
                }
                *slot = None;
                rows_removed += 1;
                changed = true;
                continue;
            }
            if row.terms.len() == 1 {
                // Singleton row: a·y = b fixes y = b/a (and y ≥ 0 must hold). A
                // violated or conflicting singleton decides infeasibility only on
                // the exact backend; the f64 pass keeps the row for the simplex.
                let (col, coeff) = row.terms[0].clone();
                let value = row.rhs.div(&coeff);
                let violated = value.is_negative()
                    || matches!(&fixed[col], Some(existing) if !existing.sub(&value).is_zero());
                if violated {
                    if S::IS_EXACT {
                        infeasible = true;
                    } else {
                        suspect = true;
                        continue;
                    }
                } else if fixed[col].is_none() {
                    fixed[col] = Some(value);
                }
                *slot = None;
                rows_removed += 1;
                changed = true;
                continue;
            }
            // Forcing row: Σ aᵢ yᵢ = b with single-signed coefficients and y ≥ 0.
            let all_nonneg = row.terms.iter().all(|(_, a)| !a.is_negative());
            let all_nonpos = row.terms.iter().all(|(_, a)| !a.is_positive());
            if (all_nonneg && row.rhs.is_negative()) || (all_nonpos && row.rhs.is_positive()) {
                // The left side cannot reach the right side's sign.
                if S::IS_EXACT {
                    infeasible = true;
                    *slot = None;
                    rows_removed += 1;
                    changed = true;
                } else {
                    suspect = true;
                }
                continue;
            }
            if (all_nonneg || all_nonpos) && row.rhs.is_zero() {
                if row.terms.iter().any(|(col, _)| {
                    matches!(&fixed[*col], Some(existing) if !existing.is_zero())
                }) {
                    // Conflicts with an earlier fix: infeasible on the exact
                    // backend, the simplex's problem otherwise.
                    if S::IS_EXACT {
                        infeasible = true;
                        *slot = None;
                        rows_removed += 1;
                        changed = true;
                    } else {
                        suspect = true;
                    }
                    continue;
                }
                for (col, _) in &row.terms {
                    if fixed[*col].is_none() {
                        fixed[*col] = Some(S::zero());
                    }
                }
                *slot = None;
                rows_removed += 1;
                changed = true;
                continue;
            }
        }
        if infeasible || suspect {
            break;
        }
        if changed {
            continue;
        }
        // The classical reductions reached a fixpoint. One shot of the
        // difference-bound prefilter: propagate the rows that encode difference
        // constraints through a Bellman–Ford scan, which can prove infeasibility
        // (negative cycle) or force variables whose derived bounds coincide.
        // Exact backend only — an approximate negative cycle proves nothing, and
        // an approximate forced value would corrupt every later substitution.
        if difference_scanned || !S::IS_EXACT {
            break;
        }
        difference_scanned = true;
        let outcome = difference_prefilter(&rows, form);
        if outcome.infeasible {
            infeasible = true;
            break;
        }
        if outcome.fixes.is_empty() {
            break;
        }
        for (col, value) in outcome.fixes {
            if fixed[col].is_none() {
                fixed[col] = Some(value);
            }
        }
        // Loop once more: the forced values substitute through the system and can
        // cascade into fresh singleton/forcing reductions.
    }

    if suspect {
        return identity(form);
    }

    if infeasible {
        return Presolved {
            form: StandardForm {
                matrix: Vec::new(),
                rhs: Vec::new(),
                costs: Vec::new(),
                model_columns: form.model_columns.clone(),
            },
            kept_cols: Vec::new(),
            fixed: collect_fixed(&fixed),
            rows_removed,
            cols_removed: fixed.iter().filter(|f| f.is_some()).count(),
            verdict: Some(LpStatus::Infeasible),
        };
    }

    // Duplicate-row drop: hash on the (column, bit-pattern) term list, verify exactly.
    {
        use std::collections::HashMap;
        let mut seen: HashMap<Vec<(usize, u64)>, usize> = HashMap::new();
        let indices: Vec<usize> =
            rows.iter().enumerate().filter(|(_, r)| r.is_some()).map(|(i, _)| i).collect();
        for index in indices {
            // `indices` lists only live rows, so the map is infallible; a dead row
            // simply contributes no key.
            let Some(key) = rows[index].as_ref().map(|row| {
                let mut key: Vec<(usize, u64)> = row
                    .terms
                    .iter()
                    .map(|(c, a)| (*c, a.to_f64().to_bits()))
                    .collect();
                key.push((usize::MAX, row.rhs.to_f64().to_bits()));
                key
            }) else {
                continue;
            };
            match seen.get(&key) {
                Some(&kept) => {
                    // Bit-pattern collision is not proof; confirm term-by-term.
                    // Both rows are live here (duplicates drop `index`, never the
                    // kept row); a dead row degrades to "not the same" — no drop.
                    let same = match (rows[kept].as_ref(), rows[index].as_ref()) {
                        (Some(a), Some(b)) => {
                            a.terms.len() == b.terms.len()
                                && a.rhs.sub(&b.rhs).is_exactly_zero()
                                && a.terms.iter().zip(&b.terms).all(|((ca, va), (cb, vb))| {
                                    ca == cb && va.sub(vb).is_exactly_zero()
                                })
                        }
                        _ => false,
                    };
                    if same {
                        rows[index] = None;
                        rows_removed += 1;
                    }
                }
                None => {
                    seen.insert(key, index);
                }
            }
        }
    }

    // Dominated-row elimination. A surviving row with exactly one *zero-cost
    // singleton* column (a column appearing in no other row) encodes an inequality
    // over its remaining "core" terms: `core·y + c_s·y_s = b` with `y_s ≥ 0` is
    // `core·y ≤ b` when `c_s > 0` and `core·y ≥ b` when `c_s < 0`. Two such rows with
    // proportional cores and the same direction imply one another; the looser bound
    // is dropped (its orphaned slack column is then fixed to zero by the column
    // accounting below). Rows are grouped by a normalized-core hash and verified by
    // exact cross-multiplication before anything is removed, so a hash or rounding
    // collision can never drop a non-dominated row.
    {
        use std::collections::HashMap;
        let mut occurrence = vec![0usize; num_cols];
        for row in rows.iter().flatten() {
            for (col, _) in &row.terms {
                occurrence[*col] += 1;
            }
        }
        // Only synthesized slack/surplus columns may play the disposable-singleton
        // role. A *model* variable that happens to have zero cost and a single
        // occurrence is still part of the reported solution — dropping its row and
        // then fixing it to zero would return values that violate the original
        // constraint (e.g. `x + z = 10` with zero-cost `z` must keep `z = 10 − x`).
        let mut is_model_column = vec![false; num_cols];
        for (positive, negative) in &form.model_columns {
            if *positive < num_cols {
                is_model_column[*positive] = true;
            }
            if let Some(negative) = negative {
                if *negative < num_cols {
                    is_model_column[*negative] = true;
                }
            }
        }
        // (index, singleton position, direction Le?) of each inequality-shaped row.
        struct IneqRow<S> {
            index: usize,
            /// Core terms (the singleton removed), in column order.
            core: Vec<(usize, S)>,
            /// Core pivot = first core coefficient (the normalization divisor).
            pivot: S,
            /// `true` for `core·y ≤ b` (after normalizing by the pivot's sign).
            le: bool,
            /// The normalized bound `b / pivot`.
            bound: S,
        }
        let mut groups: HashMap<Vec<(usize, u64)>, Vec<IneqRow<S>>> = HashMap::new();
        for (index, slot) in rows.iter().enumerate() {
            let Some(row) = slot else { continue };
            let singletons: Vec<usize> = row
                .terms
                .iter()
                .enumerate()
                .filter(|(_, (col, _))| {
                    occurrence[*col] == 1
                        && !is_model_column[*col]
                        && form.costs[*col].is_exactly_zero()
                })
                .map(|(pos, _)| pos)
                .collect();
            // Exactly one zero-cost singleton and a non-empty core: an inequality.
            if singletons.len() != 1 || row.terms.len() < 2 {
                continue;
            }
            let singleton_pos = singletons[0];
            let slack_coeff = row.terms[singleton_pos].1.clone();
            let core: Vec<(usize, S)> = row
                .terms
                .iter()
                .enumerate()
                .filter(|(pos, _)| *pos != singleton_pos)
                .map(|(_, (col, a))| (*col, a.clone()))
                .collect();
            let pivot = core[0].1.clone();
            // Direction: `≤` iff the slack sign and the pivot sign agree (dividing
            // the inequality by a negative pivot flips it).
            let le = slack_coeff.is_positive() == pivot.is_positive();
            let bound = row.rhs.div(&pivot);
            let key: Vec<(usize, u64)> = core
                .iter()
                .map(|(col, a)| (*col, a.div(&pivot).to_f64().to_bits()))
                .collect();
            groups.entry(key).or_default().push(IneqRow { index, core, pivot, le, bound });
        }
        for group in groups.values_mut() {
            if group.len() < 2 {
                continue;
            }
            for direction in [true, false] {
                // The surviving (tightest) row so far for this direction.
                let mut keeper: Option<usize> = None; // position in `group`
                for candidate in 0..group.len() {
                    if group[candidate].le != direction
                        || rows[group[candidate].index].is_none()
                    {
                        continue;
                    }
                    let Some(kept) = keeper else {
                        keeper = Some(candidate);
                        continue;
                    };
                    // Exact proportionality: va/p_a = vb/p_b for every core column,
                    // checked by cross-multiplication (the pivot *sign* is already
                    // folded into the `le` direction, so either sign ratio is fine).
                    let (a, b) = (&group[kept], &group[candidate]);
                    let proportional = a.core.len() == b.core.len()
                        && a.core.iter().zip(&b.core).all(|((ca, va), (cb, vb))| {
                            ca == cb && va.mul(&b.pivot).sub(&vb.mul(&a.pivot)).is_exactly_zero()
                        });
                    if !proportional {
                        continue;
                    }
                    // Same direction, proportional cores: drop the looser bound.
                    let candidate_tighter = if direction {
                        b.bound.lt(&a.bound)
                    } else {
                        a.bound.lt(&b.bound)
                    };
                    let loser = if candidate_tighter { kept } else { candidate };
                    rows[group[loser].index] = None;
                    rows_removed += 1;
                    if candidate_tighter {
                        keeper = Some(candidate);
                    }
                }
            }
        }
    }

    // Column accounting: a column in no surviving row is free of constraints. With
    // non-negative cost it is fixed to zero; with *negative* cost it is kept — the
    // LP is then "infeasible or unbounded", and only the simplex (which first proves
    // feasibility in phase 1) can tell which, so presolve must not issue a
    // definitive `Unbounded` verdict here.
    let mut occurs = vec![false; num_cols];
    for row in rows.iter().flatten() {
        for (col, _) in &row.terms {
            occurs[*col] = true;
        }
    }
    for col in 0..num_cols {
        if fixed[col].is_some() || occurs[col] || form.costs[col].is_negative() {
            continue;
        }
        fixed[col] = Some(S::zero());
    }

    // Assemble the reduced problem over the surviving columns.
    let kept_cols: Vec<usize> = (0..num_cols).filter(|&c| fixed[c].is_none()).collect();
    let mut reduced_of = vec![usize::MAX; num_cols];
    for (reduced, &orig) in kept_cols.iter().enumerate() {
        reduced_of[orig] = reduced;
    }
    let mut matrix = Vec::new();
    let mut rhs_out = Vec::new();
    for row in rows.iter().flatten() {
        let mut dense = vec![S::zero(); kept_cols.len()];
        for (col, coeff) in &row.terms {
            dense[reduced_of[*col]] = coeff.clone();
        }
        let mut b = row.rhs.clone();
        // Substitutions can flip a right-hand side negative; re-normalize to b ≥ 0.
        if b.is_negative() {
            for cell in &mut dense {
                *cell = cell.neg();
            }
            b = b.neg();
        }
        matrix.push(dense);
        rhs_out.push(b);
    }
    let costs: Vec<S> = kept_cols.iter().map(|&c| form.costs[c].clone()).collect();
    let cols_removed = num_cols - kept_cols.len();
    // Remap the model-column layout into the reduced index space so the field stays
    // meaningful on the reduced form (a pair whose positive column was eliminated is
    // dropped; an eliminated negative half degrades to `None`). Nothing decides
    // soundness off this today, but a stale original-index copy would silently
    // mislead any future consumer of the reduced form.
    let model_columns: Vec<(usize, Option<usize>)> = form
        .model_columns
        .iter()
        .filter_map(|(positive, negative)| {
            let positive = *reduced_of.get(*positive)?;
            if positive == usize::MAX {
                return None;
            }
            let negative = negative
                .and_then(|n| reduced_of.get(n).copied())
                .filter(|&n| n != usize::MAX);
            Some((positive, negative))
        })
        .collect();
    Presolved {
        form: StandardForm {
            matrix,
            rhs: rhs_out,
            costs,
            model_columns,
        },
        kept_cols,
        fixed: collect_fixed(&fixed),
        rows_removed,
        cols_removed,
        verdict: None,
    }
}

/// What the difference-bound scan concluded.
struct DiffOutcome<S> {
    /// The difference subsystem (implied by the full system) contains a negative
    /// cycle: the LP is infeasible. Sound only in exact arithmetic.
    infeasible: bool,
    /// Variables whose derived upper and lower difference bounds coincide — every
    /// feasible solution of the full LP takes exactly these values.
    fixes: Vec<(usize, S)>,
}

/// Difference-bound prefilter over the surviving rows.
///
/// Classifies rows that encode single-variable bounds (`x ≤ c`, `x ≥ c`) or
/// two-variable difference bounds (`x − y ≤ c`, `x − y = c`) — in standard form
/// these are rows whose only disposable column is one zero-cost slack singleton
/// (direction from the slack's sign), or pure two-term equalities with opposite
/// equal-magnitude coefficients. The bounds induce the classical constraint graph
/// (edge `v → u` of weight `c` per `x_u − x_v ≤ c`, plus a virtual zero vertex
/// carrying `x ≥ 0` and the explicit variable bounds), which a queue-based
/// Bellman–Ford (SPFA) scan processes incrementally:
///
/// * a negative cycle proves the subsystem — hence the LP — infeasible;
/// * otherwise shortest paths from/to the zero vertex are exact upper/lower
///   bounds on each variable, and a variable whose bounds meet is *forced*: the
///   returned fix is substituted through the system by the caller's reduction
///   loop, exactly like a singleton row's.
///
/// Everything here is implied constraints only — no row is modified or removed,
/// so the scan can never weaken the system; rows made redundant by a forced fix
/// are cleaned up by the ordinary reductions afterwards.
fn difference_prefilter<S: Scalar>(
    rows: &[Option<Row<S>>],
    form: &StandardForm<S>,
) -> DiffOutcome<S> {
    let num_cols = form.costs.len();
    let no_op = DiffOutcome { infeasible: false, fixes: Vec::new() };

    // Occurrence counts and the model-column mask decide which columns may play
    // the disposable-slack role (same criterion as dominated-row elimination).
    let mut occurrence = vec![0usize; num_cols];
    for row in rows.iter().flatten() {
        for (col, _) in &row.terms {
            occurrence[*col] += 1;
        }
    }
    let mut is_model_column = vec![false; num_cols];
    for (positive, negative) in &form.model_columns {
        if *positive < num_cols {
            is_model_column[*positive] = true;
        }
        if let Some(negative) = negative {
            if *negative < num_cols {
                is_model_column[*negative] = true;
            }
        }
    }

    // Extract difference edges. `None` is the virtual zero vertex; an edge
    // `(from, to, w)` encodes `x_to − x_from ≤ w` (with `x_None ≡ 0`).
    let mut raw_edges: Vec<(Option<usize>, Option<usize>, S)> = Vec::new();
    for row in rows.iter().flatten() {
        let slacks: Vec<usize> = row
            .terms
            .iter()
            .enumerate()
            .filter(|(_, (col, _))| {
                occurrence[*col] == 1
                    && !is_model_column[*col]
                    && form.costs[*col].is_exactly_zero()
            })
            .map(|(pos, _)| pos)
            .collect();
        // Each entry is one `core · y ≤ bound` inequality implied by the row.
        let mut inequalities: Vec<(Vec<(usize, S)>, S)> = Vec::new();
        if slacks.len() == 1 && row.terms.len() >= 2 {
            // `core·y + c_s·s = b`, `s ≥ 0`: an inequality whose direction follows
            // the slack's sign (normalize to `≤` by negating when `c_s < 0`).
            let slack_coeff = &row.terms[slacks[0]].1;
            let core: Vec<(usize, S)> = row
                .terms
                .iter()
                .enumerate()
                .filter(|(pos, _)| *pos != slacks[0])
                .map(|(_, (col, a))| (*col, a.clone()))
                .collect();
            if slack_coeff.is_positive() {
                inequalities.push((core, row.rhs.clone()));
            } else {
                let negated = core.iter().map(|(col, a)| (*col, a.neg())).collect();
                inequalities.push((negated, row.rhs.neg()));
            }
        } else if slacks.is_empty() {
            // A pure equality is both inequalities at once.
            let core: Vec<(usize, S)> = row.terms.clone();
            let negated: Vec<(usize, S)> =
                core.iter().map(|(col, a)| (*col, a.neg())).collect();
            inequalities.push((core, row.rhs.clone()));
            inequalities.push((negated, row.rhs.neg()));
        }
        for (core, bound) in inequalities {
            match core.as_slice() {
                // `a·x ≤ b`: an explicit upper (a > 0) or lower (a < 0) bound.
                [(col, a)] => {
                    if a.is_positive() {
                        raw_edges.push((None, Some(*col), bound.div(a)));
                    } else {
                        raw_edges.push((Some(*col), None, bound.div(a).neg()));
                    }
                }
                // `a·u − a·v ≤ b`: a difference bound (only exact opposite
                // coefficients qualify; anything else is not a difference row).
                [(u, a), (v, c)] => {
                    if !a.add(c).is_exactly_zero() {
                        continue;
                    }
                    if a.is_positive() {
                        raw_edges.push((Some(*v), Some(*u), bound.div(a)));
                    } else {
                        raw_edges.push((Some(*u), Some(*v), bound.div(c)));
                    }
                }
                _ => {}
            }
        }
    }
    if raw_edges.is_empty() {
        return no_op;
    }

    // Compact node numbering: node 0 is the virtual zero vertex.
    let mut node_of = vec![usize::MAX; num_cols];
    let mut col_of_node: Vec<usize> = Vec::new();
    let mut node = |col: Option<usize>, node_of: &mut Vec<usize>| -> usize {
        match col {
            None => 0,
            Some(col) => {
                if node_of[col] == usize::MAX {
                    col_of_node.push(col);
                    node_of[col] = col_of_node.len();
                }
                node_of[col]
            }
        }
    };
    let mut edges: Vec<(usize, usize, S)> = Vec::new();
    for (from, to, weight) in raw_edges {
        let from = node(from, &mut node_of);
        let to = node(to, &mut node_of);
        edges.push((from, to, weight));
    }
    let num_nodes = col_of_node.len() + 1;
    // Implicit `x ≥ 0` on every participating column: edge `col → 0` of weight 0.
    for n in 1..num_nodes {
        edges.push((n, 0, S::zero()));
    }

    // SPFA from the zero vertex. In the *reverse* graph every node is reachable
    // (the implicit non-negativity edges reverse into `0 → col`), so the reverse
    // scan doubles as a complete negative-cycle detector: any negative cycle is a
    // negative cycle of the reverse graph too, and reachable there.
    let spfa = |forward: bool| -> Option<Vec<Option<S>>> {
        let mut adjacency: Vec<Vec<(usize, S)>> = vec![Vec::new(); num_nodes];
        for (from, to, weight) in &edges {
            if forward {
                adjacency[*from].push((*to, weight.clone()));
            } else {
                adjacency[*to].push((*from, weight.clone()));
            }
        }
        let mut dist: Vec<Option<S>> = vec![None; num_nodes];
        let mut in_queue = vec![false; num_nodes];
        let mut relaxations = vec![0usize; num_nodes];
        let mut queue = std::collections::VecDeque::new();
        dist[0] = Some(S::zero());
        queue.push_back(0usize);
        in_queue[0] = true;
        while let Some(u) = queue.pop_front() {
            in_queue[u] = false;
            // Nodes are enqueued only after their distance is set; an unset
            // distance (impossible) just skips the node instead of panicking.
            let Some(du) = dist[u].clone() else { continue };
            for (v, weight) in &adjacency[u] {
                let candidate = du.add(weight);
                let better = match &dist[*v] {
                    None => true,
                    Some(existing) => candidate.lt(existing),
                };
                if !better {
                    continue;
                }
                relaxations[*v] += 1;
                if relaxations[*v] > num_nodes {
                    // A node relaxed more than |V| times lies on (or behind) a
                    // negative cycle.
                    return None;
                }
                dist[*v] = Some(candidate);
                if !in_queue[*v] {
                    queue.push_back(*v);
                    in_queue[*v] = true;
                }
            }
        }
        Some(dist)
    };

    // Reverse first: complete cycle detection (see above).
    let Some(reverse) = spfa(false) else {
        return DiffOutcome { infeasible: true, fixes: Vec::new() };
    };
    // Forward: upper bounds for nodes reachable from the zero vertex. A negative
    // cycle here would already have been caught, but the guard stays sound either
    // way (a relaxation blow-up is a negative cycle by the same argument).
    let Some(forward) = spfa(true) else {
        return DiffOutcome { infeasible: true, fixes: Vec::new() };
    };

    let mut fixes = Vec::new();
    let mut infeasible = false;
    for n in 1..num_nodes {
        let Some(upper) = &forward[n] else { continue };
        let Some(to_zero) = &reverse[n] else { continue };
        // Shortest path `col → 0` of weight w means `0 − x ≤ w`, i.e. `x ≥ −w`.
        let lower = to_zero.neg();
        if upper.lt(&lower) {
            // ub < lb is a negative cycle through the zero vertex; defensive only.
            infeasible = true;
            break;
        }
        if upper.sub(&lower).is_exactly_zero() && !upper.is_negative() {
            fixes.push((col_of_node[n - 1], upper.clone()));
        }
    }
    if infeasible {
        return DiffOutcome { infeasible: true, fixes: Vec::new() };
    }
    DiffOutcome { infeasible: false, fixes }
}

fn collect_fixed<S: Scalar>(fixed: &[Option<S>]) -> Vec<(usize, S)> {
    fixed
        .iter()
        .enumerate()
        .filter_map(|(col, value)| value.clone().map(|v| (col, v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca_numeric::Rational;

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(n, d)
    }

    fn form(matrix: Vec<Vec<Rational>>, rhs: Vec<Rational>, costs: Vec<Rational>) -> StandardForm<Rational> {
        StandardForm { matrix, rhs, costs, model_columns: Vec::new() }
    }

    #[test]
    fn singleton_row_fixes_and_substitutes() {
        // 2x = 6 (x = 3), x + y = 5 (y = 2 via cascade's singleton), minimize y.
        let f = form(
            vec![vec![r(2, 1), r(0, 1)], vec![r(1, 1), r(1, 1)]],
            vec![r(6, 1), r(5, 1)],
            vec![r(0, 1), r(1, 1)],
        );
        let pre = presolve(&f);
        assert_eq!(pre.verdict, None);
        assert_eq!(pre.form.matrix.len(), 0, "both rows resolve by substitution");
        let values = pre.restore(&[], 2);
        assert_eq!(values, vec![r(3, 1), r(2, 1)]);
        assert_eq!(pre.rows_removed, 2);
        assert_eq!(pre.cols_removed, 2);
    }

    #[test]
    fn negative_singleton_is_infeasible() {
        // x = -1 contradicts x >= 0.
        let f = form(vec![vec![r(1, 1)]], vec![r(-1, 1)], vec![r(0, 1)]);
        assert_eq!(presolve(&f).verdict, Some(LpStatus::Infeasible));
    }

    #[test]
    fn forcing_row_zeroes_columns() {
        // x + 2y = 0 with x,y >= 0 forces x = y = 0; the second row then decides z.
        let f = form(
            vec![
                vec![r(1, 1), r(2, 1), r(0, 1)],
                vec![r(1, 1), r(0, 1), r(1, 1)],
            ],
            vec![r(0, 1), r(4, 1)],
            vec![r(0, 1), r(0, 1), r(1, 1)],
        );
        let pre = presolve(&f);
        assert_eq!(pre.verdict, None);
        let values = pre.restore(&[], 3);
        assert_eq!(values, vec![Rational::zero(), Rational::zero(), r(4, 1)]);
    }

    #[test]
    fn conflicting_fixes_are_infeasible() {
        // x = 2 and x = 3.
        let f = form(
            vec![vec![r(1, 1)], vec![r(1, 1)]],
            vec![r(2, 1), r(3, 1)],
            vec![r(1, 1)],
        );
        assert_eq!(presolve(&f).verdict, Some(LpStatus::Infeasible));
    }

    #[test]
    fn duplicate_rows_are_dropped() {
        let row = vec![r(1, 1), r(1, 1), r(1, 1)];
        let f = form(
            vec![row.clone(), row.clone(), row],
            vec![r(4, 1), r(4, 1), r(4, 1)],
            vec![r(1, 1), r(1, 1), r(0, 1)],
        );
        let pre = presolve(&f);
        assert_eq!(pre.verdict, None);
        assert_eq!(pre.form.matrix.len(), 1);
        assert_eq!(pre.rows_removed, 2);
    }

    #[test]
    fn empty_column_with_negative_cost_is_kept_for_the_simplex() {
        // The system might be infeasible or unbounded — presolve cannot tell, so the
        // column must survive into the reduced problem with no verdict.
        let f = form(
            vec![vec![r(1, 1), r(1, 1), r(0, 1)]],
            vec![r(1, 1)],
            vec![r(0, 1), r(1, 1), r(-1, 1)],
        );
        let pre = presolve(&f);
        assert_eq!(pre.verdict, None);
        assert!(pre.kept_cols.contains(&2));
    }

    #[test]
    fn empty_column_with_nonnegative_cost_is_fixed_to_zero() {
        // Column 2 appears in no row; with cost ≥ 0 it is fixed to zero.
        let f = form(
            vec![vec![r(1, 1), r(1, 1), r(0, 1)]],
            vec![r(1, 1)],
            vec![r(0, 1), r(1, 1), r(1, 1)],
        );
        let pre = presolve(&f);
        assert_eq!(pre.verdict, None);
        assert_eq!(pre.kept_cols, vec![0, 1]);
        assert_eq!(pre.cols_removed, 1);
        let values = pre.restore(&[r(1, 1), Rational::zero()], 3);
        assert_eq!(values, vec![r(1, 1), Rational::zero(), Rational::zero()]);
    }

    /// Dominated rows with identical (proportional) support: `x + y ≤ 10` (via slack
    /// s1) makes `2x + 2y ≤ 30` (via slack s2) redundant — the looser row must go.
    #[test]
    fn dominated_le_row_is_eliminated() {
        // Columns: x, y, s1, s2. Minimize -x (so neither slack has a cost).
        let f = form(
            vec![
                vec![r(1, 1), r(1, 1), r(1, 1), r(0, 1)],
                vec![r(2, 1), r(2, 1), r(0, 1), r(1, 1)],
            ],
            vec![r(10, 1), r(30, 1)],
            vec![r(-1, 1), r(0, 1), r(0, 1), r(0, 1)],
        );
        let pre = presolve(&f);
        assert_eq!(pre.verdict, None);
        assert_eq!(pre.form.matrix.len(), 1, "the dominated row must be dropped");
        assert_eq!(pre.rows_removed, 1);
        // The orphaned slack s2 is fixed to zero by the column accounting.
        assert!(pre.fixed.iter().any(|(col, v)| *col == 3 && v.is_zero()));
        // The surviving row is the *tight* one (rhs 10, not 30).
        assert_eq!(pre.form.rhs[0], r(10, 1));
    }

    /// The `≥` direction: `x ≥ 2` (surplus −s1) dominates `2x ≥ 2`, i.e. `x ≥ 1`.
    #[test]
    fn dominated_ge_row_is_eliminated_keeping_the_larger_bound() {
        // Columns: x, s1, s2. Minimize x.
        let f = form(
            vec![
                vec![r(1, 1), r(-1, 1), r(0, 1)],
                vec![r(2, 1), r(0, 1), r(-1, 1)],
            ],
            vec![r(2, 1), r(2, 1)],
            vec![r(1, 1), r(0, 1), r(0, 1)],
        );
        let pre = presolve(&f);
        assert_eq!(pre.verdict, None);
        assert_eq!(pre.form.matrix.len(), 1);
        assert_eq!(pre.rows_removed, 1);
        assert_eq!(pre.form.rhs[0], r(2, 1), "the x ≥ 2 row survives");
        // The reduced LP still has the right optimum: x = 2.
        let solution = crate::simplex::solve_standard_form(&f, &crate::deadline::Deadline::unlimited(), None);
        assert_eq!(solution.status, LpStatus::Optimal);
        assert_eq!(solution.values[0], r(2, 1));
    }

    /// Opposite directions (`x ≤ 10` and `x ≥ 2`) must both survive: they bound a
    /// range, neither implies the other.
    #[test]
    fn opposite_direction_rows_are_not_dominated() {
        let f = form(
            vec![
                vec![r(1, 1), r(1, 1), r(0, 1)],
                vec![r(1, 1), r(0, 1), r(-1, 1)],
            ],
            vec![r(10, 1), r(2, 1)],
            vec![r(1, 1), r(0, 1), r(0, 1)],
        );
        let pre = presolve(&f);
        assert_eq!(pre.form.matrix.len(), 2, "a range is not a dominance pair");
    }

    /// A zero-cost *model* variable that occurs in a single row is not a slack: its
    /// value is part of the reported solution, so its row must never be dropped as
    /// dominated (regression: `x + z = 10` with zero-cost `z` once lost `z = 2`,
    /// returning values that violated the equality).
    #[test]
    fn model_columns_never_play_the_slack_role() {
        use crate::problem::{ConstraintOp, LpProblem, VarKind};
        use dca_numeric::Rational as Q;
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", VarKind::NonNegative);
        let z = lp.add_var("z", VarKind::NonNegative);
        lp.add_constraint(vec![(x, r(1, 1)), (z, r(1, 1))], ConstraintOp::Eq, r(10, 1));
        lp.add_constraint(vec![(x, r(2, 1))], ConstraintOp::Le, r(16, 1));
        lp.set_objective(vec![(x, r(-1, 1))]);
        for solution in [lp.solve_exact(), lp.solve_certified()] {
            assert_eq!(solution.status, LpStatus::Optimal);
            assert_eq!(solution.value(x), r(8, 1));
            assert_eq!(solution.value(z), r(2, 1), "z is determined by the equality");
            assert_eq!(
                &solution.value(x) + &solution.value(z),
                Q::from_int(10),
                "the reported values must satisfy x + z = 10"
            );
        }
    }

    /// A slack with a non-zero objective coefficient is not a pure slack; the row it
    /// guards must not be treated as a droppable inequality.
    #[test]
    fn costed_singletons_block_dominated_row_elimination() {
        let f = form(
            vec![
                vec![r(1, 1), r(1, 1), r(0, 1)],
                vec![r(2, 1), r(0, 1), r(1, 1)],
            ],
            vec![r(10, 1), r(30, 1)],
            vec![r(1, 1), r(0, 1), r(5, 1)],
        );
        let pre = presolve(&f);
        assert_eq!(pre.form.matrix.len(), 2, "costed slack keeps its row");
    }

    /// `x − y ≤ −1` and `y − x ≤ −1` form a negative cycle (their sum demands
    /// `0 ≤ −2`): the difference prefilter must conclude infeasibility before any
    /// simplex runs.
    #[test]
    fn difference_negative_cycle_is_infeasible() {
        // Columns: x, y, s1, s2 (zero-cost slacks).
        let f = form(
            vec![
                vec![r(1, 1), r(-1, 1), r(1, 1), r(0, 1)],
                vec![r(-1, 1), r(1, 1), r(0, 1), r(1, 1)],
            ],
            vec![r(-1, 1), r(-1, 1)],
            vec![r(1, 1), r(1, 1), r(0, 1), r(0, 1)],
        );
        assert_eq!(presolve(&f).verdict, Some(LpStatus::Infeasible));
    }

    /// `x ≤ 5` and `x ≥ 5` pin `x = 5`; the prefilter forces the value and the
    /// cascade then resolves both slack rows, leaving nothing for the simplex.
    #[test]
    fn coinciding_difference_bounds_force_the_variable() {
        // Columns: x, s1 (for ≤), s2 (for ≥).
        let f = form(
            vec![
                vec![r(1, 1), r(1, 1), r(0, 1)],
                vec![r(1, 1), r(0, 1), r(-1, 1)],
            ],
            vec![r(5, 1), r(5, 1)],
            vec![r(1, 1), r(0, 1), r(0, 1)],
        );
        let pre = presolve(&f);
        assert_eq!(pre.verdict, None);
        assert_eq!(pre.form.matrix.len(), 0, "the forced value resolves both rows");
        let values = pre.restore(&[], 3);
        assert_eq!(values[0], r(5, 1));
    }

    /// Transitive chains: `x − y ≤ 2`, `y ≤ 3`, `x ≥ 5` force `x = 5` *and* `y = 3`
    /// even though no single row pins either variable — the fix only emerges from
    /// the Bellman–Ford propagation across rows.
    #[test]
    fn difference_chain_forces_transitively() {
        // Columns: x, y, s1, s2, s3.
        let f = form(
            vec![
                vec![r(1, 1), r(-1, 1), r(1, 1), r(0, 1), r(0, 1)],
                vec![r(0, 1), r(1, 1), r(0, 1), r(1, 1), r(0, 1)],
                vec![r(1, 1), r(0, 1), r(0, 1), r(0, 1), r(-1, 1)],
            ],
            vec![r(2, 1), r(3, 1), r(5, 1)],
            vec![r(1, 1), r(1, 1), r(0, 1), r(0, 1), r(0, 1)],
        );
        let pre = presolve(&f);
        assert_eq!(pre.verdict, None);
        let values = pre.restore(&vec![Rational::zero(); pre.kept_cols.len()], 5);
        assert_eq!(values[0], r(5, 1), "x is pinned by x ≥ 5 and x ≤ y + 2 ≤ 5");
        assert_eq!(values[1], r(3, 1), "y is pinned by y ≤ 3 and y ≥ x − 2 = 3");
    }

    /// A satisfiable difference system must pass through untouched: bounds that do
    /// not coincide fix nothing, and no verdict is issued.
    #[test]
    fn slack_difference_bounds_leave_feasible_systems_alone() {
        // x − y ≤ 2, x ≥ 1: feasible with slack, nothing forced.
        let f = form(
            vec![
                vec![r(1, 1), r(-1, 1), r(1, 1), r(0, 1)],
                vec![r(1, 1), r(0, 1), r(0, 1), r(-1, 1)],
            ],
            vec![r(2, 1), r(1, 1)],
            vec![r(1, 1), r(1, 1), r(0, 1), r(0, 1)],
        );
        let pre = presolve(&f);
        assert_eq!(pre.verdict, None);
        assert_eq!(pre.form.matrix.len(), 2, "no row may be dropped");
        // The reduced LP still solves to the true optimum x = 1, y = 0.
        let solution = crate::simplex::solve_standard_form(&f, &crate::deadline::Deadline::unlimited(), None);
        assert_eq!(solution.status, LpStatus::Optimal);
        assert_eq!(solution.values[0], r(1, 1));
    }

    #[test]
    fn map_cols_translates_and_drops() {
        let f = form(
            vec![vec![r(1, 1), r(0, 1), r(2, 1)], vec![r(0, 1), r(1, 1), r(0, 1)]],
            vec![r(1, 1), r(0, 1)],
            vec![r(0, 1), r(0, 1), r(0, 1)],
        );
        // Row 2 is the singleton y = 0, so column 1 is eliminated.
        let pre = presolve(&f);
        assert_eq!(pre.kept_cols, vec![0, 2]);
        assert_eq!(pre.map_cols(&[0, 1, 2]), vec![0, 1]);
    }
}
