//! Markowitz-ordered sparse LU factorization over exact rationals.
//!
//! The basis certifier (see [`crate::certify`]) has to factorize one candidate basis
//! `B` in exact arithmetic per certification round. The revised simplex's own
//! [`Factorization::reinvert`](crate::revised::Factorization) processes columns in a
//! caller-given order and pivots on the largest transformed magnitude — the right call
//! for `f64` stability, but irrelevant (magnitude) and fill-oblivious (order) for
//! rationals, where *fill-in is the entire cost*: every extra non-zero is a gcd-heavy
//! rational multiply in all later eliminations.
//!
//! This module runs a right-looking Gauss–Jordan elimination on a sparse working copy
//! of the basis with the classical **Markowitz pivot rule**: at each step it picks a
//! non-zero entry minimizing `(r_i − 1)(c_j − 1)` (the worst-case fill of that pivot),
//! searching the sparsest active columns first. The pivot column — as transformed by
//! the eliminations so far — is exactly the product-form eta of the existing
//! factorization machinery, so the result is a plain
//! [`Factorization`](crate::revised::Factorization) whose `ftran`/`btran` the
//! certifier reuses unchanged.
//!
//! Rank deficiency is handled the way the simplex does: structural columns whose
//! active entries are exhausted are dropped, and rows left unassigned at the end are
//! covered by artificial identity columns (reported to the caller — a certified
//! solution must carry *zero* in those rows).

use crate::revised::{Columns, Eta, Factorization};
use crate::scalar::Scalar;

/// The result of a Markowitz factorization.
// The diagnostic fields (`artificial_rows`, `dropped_cols`, `fill`) are consumed by
// the unit tests and kept for debug tooling; the certifier reads the padded basis
// directly off `factor.basis`.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) struct LuFactors<S> {
    /// The product-form factorization; `basis[row]` is the column assigned to `row`
    /// (structural index, or `n + row'` for an artificial filler).
    pub factor: Factorization<S>,
    /// Rows that had to fall back to artificial columns (the preferred basis was
    /// rank-deficient there).
    pub artificial_rows: Vec<usize>,
    /// Preferred columns that proved linearly dependent and were dropped.
    pub dropped_cols: Vec<usize>,
    /// Non-zeros of the eta file (the fill the Markowitz ordering was minimizing;
    /// surfaced for diagnostics).
    pub fill: usize,
}

/// How many equally-sparse candidate columns the pivot search examines per step
/// (Suhl-style bounded Markowitz search; beyond a handful the ordering quality gain
/// no longer pays for the scan).
const CANDIDATE_COLS: usize = 8;

/// Growth threshold for the exact backend's incremental eta updates: a full
/// refactorization is worthwhile once the *weighted* eta size appended since the
/// last rebuild (non-zeros scaled by rational bit length, see
/// `crate::revised::Eta::weight`) exceeds this multiple of the basis fill itself,
/// because every FTRAN/BTRAN then spends most of its arithmetic on update debris
/// rather than the factorization proper. Weighting by bit length is what makes the
/// policy react to the dominant exact-arithmetic failure mode — fractions
/// compounding down a long eta chain while plain fill stays flat. The baseline is
/// floored at the row count so tiny near-identity factorizations (fill ≈ a handful
/// of entries) do not trigger rebuilds after every pivot.
const ETA_FILL_FACTOR: usize = 2;

/// Hard cap on etas accumulated between exact rebuilds: an absolute backstop that
/// bounds update-chain length even when the weighted-growth trigger stays quiet.
const ETA_COUNT_CAP: usize = 256;

/// Decides whether the exact backend should replace its incrementally-updated
/// factorization (rank-1 eta appends per pivot) with a fresh Markowitz rebuild.
///
/// Exact arithmetic makes this purely a *cost* policy — the updated factorization is
/// exactly correct regardless (see the eta-update consistency fuzz in this module's
/// tests) — so the trigger is eta-file growth, not numerical drift: rebuild when the
/// appended weighted size exceeds [`ETA_FILL_FACTOR`] × the basis fill (floored at
/// `rows`), or when [`ETA_COUNT_CAP`] etas have accumulated since the last rebuild.
pub(crate) fn should_refactorize(
    etas_since: usize,
    eta_nnz_since: usize,
    base_fill: usize,
    rows: usize,
) -> bool {
    etas_since >= ETA_COUNT_CAP || eta_nnz_since > ETA_FILL_FACTOR * base_fill.max(rows)
}

/// One active column of the working matrix: sorted `(row, value)` non-zeros.
type SparseCol<S> = Vec<(usize, S)>;

/// Factorizes the basis `{columns[j] : j ∈ basis_cols}` (deduplicated, in Markowitz
/// order) and pads uncovered rows with artificials.
pub(crate) fn factorize_markowitz<S: Scalar>(
    columns: &Columns<S>,
    basis_cols: &[usize],
) -> LuFactors<S> {
    let m = columns.rows;
    let n = columns.cols.len();

    // Working copies of the distinct preferred columns.
    let mut work: Vec<SparseCol<S>> = Vec::new();
    let mut work_col_id: Vec<usize> = Vec::new();
    let mut seen = vec![false; n + m];
    for &col in basis_cols {
        if col >= n + m || seen[col] {
            continue;
        }
        seen[col] = true;
        let entries: SparseCol<S> = if col < n {
            columns.cols[col].clone()
        } else {
            vec![(col - n, S::one())]
        };
        work.push(entries);
        work_col_id.push(col);
    }

    let mut factor = Factorization { etas: Vec::new(), basis: vec![usize::MAX; m] };
    let mut assigned = vec![false; m];
    let mut processed = vec![false; work.len()];
    let mut dropped_cols = Vec::new();
    let mut fill = 0usize;

    // Active counts: `col_count[k]` = non-zeros of working column `k` in unassigned
    // rows; `row_count[i]` = non-zeros of row `i` across unprocessed working columns.
    let mut col_count: Vec<usize> = work.iter().map(Vec::len).collect();
    let mut row_count = vec![0usize; m];
    for col in &work {
        for (row, _) in col {
            row_count[*row] += 1;
        }
    }

    for _ in 0..work.len() {
        // Columns with no active entry are dependent on the ones already processed:
        // drop them now so the candidate scan never stalls on them.
        for k in 0..work.len() {
            if !processed[k] && col_count[k] == 0 {
                processed[k] = true;
                for (row, _) in &work[k] {
                    if !assigned[*row] {
                        row_count[*row] -= 1;
                    }
                }
                dropped_cols.push(work_col_id[k]);
            }
        }
        // Bounded Markowitz search: examine the `CANDIDATE_COLS` sparsest active
        // columns; within each, the unassigned row minimizing `row_count − 1`.
        let mut candidates: Vec<usize> = (0..work.len()).filter(|&k| !processed[k]).collect();
        if candidates.is_empty() {
            break;
        }
        candidates.sort_by_key(|&k| (col_count[k], k));
        candidates.truncate(CANDIDATE_COLS);
        let mut best: Option<(usize, usize, usize)> = None; // (cost, col k, row)
        for &k in &candidates {
            for (row, _) in &work[k] {
                if assigned[*row] {
                    continue;
                }
                let cost = (col_count[k] - 1) * (row_count[*row] - 1);
                let better = match best {
                    None => true,
                    Some((c, bk, br)) => {
                        cost < c || (cost == c && (k, *row) < (bk, br))
                    }
                };
                if better {
                    best = Some((cost, k, *row));
                }
                if cost == 0 {
                    break;
                }
            }
            if matches!(best, Some((0, ..))) {
                break;
            }
        }
        let Some((_, k, pivot_row)) = best else { break };

        // Build the eta from the pivot column's current (transformed) state. The
        // pivot was just selected from `work[k]`'s own entries, so the lookup is
        // infallible; a miss is treated like "no usable pivot" (rank deficiency)
        // rather than a panic.
        let pivot_entry = work[k]
            .iter()
            .find(|(row, _)| *row == pivot_row)
            .map(|(_, v)| v.clone());
        let Some(pivot_value) = pivot_entry else { break };
        let others: Vec<(usize, S)> = work[k]
            .iter()
            .filter(|(row, _)| *row != pivot_row)
            .map(|(row, v)| (*row, v.clone()))
            .collect();
        let eta = Eta { pivot: pivot_row, pivot_value, others };
        fill += 1 + eta.others.len();

        // Retire the pivot column and row from the active counts.
        processed[k] = true;
        for (row, _) in &work[k] {
            if !assigned[*row] {
                row_count[*row] -= 1;
            }
        }
        assigned[pivot_row] = true;
        factor.basis[pivot_row] = work_col_id[k];

        // Apply the eta to every other unprocessed column (Jordan elimination):
        // x[pivot] := x[pivot]/p, then x[i] -= others[i] · x[pivot].
        for (j, col) in work.iter_mut().enumerate() {
            if processed[j] {
                continue;
            }
            let Some(position) = col.iter().position(|(row, _)| *row == pivot_row) else {
                continue;
            };
            let t = col[position].1.div(&eta.pivot_value);
            col[position].1 = t.clone();
            // The pivot row is now assigned, so this entry leaves the active counts.
            col_count[j] -= 1;
            if eta.others.is_empty() {
                continue;
            }
            // Merge `col -= t · others` (both sorted by row).
            let mut merged: SparseCol<S> = Vec::with_capacity(col.len() + eta.others.len());
            let (mut a, mut b) = (0usize, 0usize);
            while a < col.len() || b < eta.others.len() {
                let next_a = col.get(a).map(|(row, _)| *row);
                let next_b = eta.others.get(b).map(|(row, _)| *row);
                match (next_a, next_b) {
                    (Some(ra), Some(rb)) if ra == rb => {
                        let value = col[a].1.sub(&eta.others[b].1.mul(&t));
                        if value.is_exactly_zero() {
                            // Exact cancellation: the entry leaves the matrix.
                            if !assigned[ra] {
                                col_count[j] -= 1;
                                row_count[ra] -= 1;
                            }
                        } else {
                            merged.push((ra, value));
                        }
                        a += 1;
                        b += 1;
                    }
                    (Some(ra), Some(rb)) if ra < rb => {
                        merged.push(col[a].clone());
                        a += 1;
                    }
                    (Some(_), None) => {
                        merged.push(col[a].clone());
                        a += 1;
                    }
                    (_, Some(rb)) => {
                        // Fill-in: a brand-new non-zero at row `rb`.
                        let value = eta.others[b].1.mul(&t).neg();
                        if !assigned[rb] {
                            col_count[j] += 1;
                            row_count[rb] += 1;
                        }
                        merged.push((rb, value));
                        b += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
            *col = merged;
        }

        factor.etas.push(eta);
    }

    for (k, done) in processed.iter().enumerate() {
        if !done {
            dropped_cols.push(work_col_id[k]);
        }
    }

    // Artificial padding for uncovered rows, transformed through the accumulated etas
    // exactly like the simplex's reinversion does.
    let mut artificial_rows = Vec::new();
    let mut scratch = vec![S::zero(); m];
    for row in 0..m {
        if assigned[row] {
            continue;
        }
        let col = n + row;
        columns.scatter(col, &mut scratch);
        factor.ftran(&mut scratch);
        let pivot = (0..m).find(|&i| !assigned[i] && !scratch[i].is_exactly_zero());
        let Some(pivot_row) = pivot else {
            // Cannot happen for a genuine identity column, but stay defensive: leave
            // the row to a later artificial.
            continue;
        };
        let others: Vec<(usize, S)> = scratch
            .iter()
            .enumerate()
            .filter(|(i, v)| *i != pivot_row && !v.is_exactly_zero())
            .map(|(i, v)| (i, v.clone()))
            .collect();
        fill += 1 + others.len();
        factor.etas.push(Eta {
            pivot: pivot_row,
            pivot_value: scratch[pivot_row].clone(),
            others,
        });
        factor.basis[pivot_row] = col;
        assigned[pivot_row] = true;
        artificial_rows.push(pivot_row);
    }

    LuFactors { factor, artificial_rows, dropped_cols, fill }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::StandardForm;
    use dca_numeric::Rational;

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(n, d)
    }

    fn columns(matrix: Vec<Vec<Rational>>) -> Columns<Rational> {
        let rows = matrix.len();
        let n = matrix.first().map_or(0, Vec::len);
        let form = StandardForm {
            matrix,
            rhs: vec![Rational::zero(); rows],
            costs: vec![Rational::zero(); n],
            model_columns: Vec::new(),
        };
        Columns::from_form(&form)
    }

    /// `B · ftran(e_i) = e_i` for every basis column: the factorization really is an
    /// inverse of the chosen basis.
    fn check_inverse(cols: &Columns<Rational>, lu: &LuFactors<Rational>) {
        let m = cols.rows;
        let n = cols.cols.len();
        for j in 0..n {
            let mut d = vec![Rational::zero(); m];
            cols.scatter(j, &mut d);
            lu.factor.ftran(&mut d);
            // Reconstruct B · d and compare with the original column.
            let mut reconstructed = vec![Rational::zero(); m];
            for (pos, &col) in lu.factor.basis.iter().enumerate() {
                if d[pos].is_exactly_zero() {
                    continue;
                }
                if col < n {
                    for (row, value) in &cols.cols[col] {
                        reconstructed[*row] = reconstructed[*row].add(&value.mul(&d[pos]));
                    }
                } else {
                    reconstructed[col - n] = reconstructed[col - n].add(&d[pos]);
                }
            }
            let mut original = vec![Rational::zero(); m];
            cols.scatter(j, &mut original);
            assert_eq!(reconstructed, original, "column {j} does not reconstruct");
        }
    }

    #[test]
    fn factorizes_a_full_rank_basis_exactly() {
        let cols = columns(vec![
            vec![r(2, 1), r(1, 1), r(0, 1)],
            vec![r(0, 1), r(1, 1), r(3, 1)],
            vec![r(1, 1), r(0, 1), r(1, 1)],
        ]);
        let lu = factorize_markowitz(&cols, &[0, 1, 2]);
        assert!(lu.artificial_rows.is_empty());
        assert!(lu.dropped_cols.is_empty());
        check_inverse(&cols, &lu);
        // ftran solves B x = b exactly: b = (3, 4, 2) → column sums check.
        let mut x = vec![r(3, 1), r(4, 1), r(2, 1)];
        lu.factor.ftran(&mut x);
        let mut back = vec![Rational::zero(); 3];
        for (pos, &col) in lu.factor.basis.iter().enumerate() {
            for (row, value) in &cols.cols[col] {
                back[*row] = back[*row].add(&value.mul(&x[pos]));
            }
        }
        assert_eq!(back, vec![r(3, 1), r(4, 1), r(2, 1)]);
    }

    #[test]
    fn dependent_columns_drop_and_artificials_pad() {
        // Column 1 = 2 · column 0; only one of them can pivot, the second row falls
        // back to an artificial.
        let cols = columns(vec![
            vec![r(1, 1), r(2, 1)],
            vec![r(2, 1), r(4, 1)],
        ]);
        let lu = factorize_markowitz(&cols, &[0, 1]);
        assert_eq!(lu.dropped_cols.len(), 1);
        assert_eq!(lu.artificial_rows.len(), 1);
        check_inverse(&cols, &lu);
    }

    #[test]
    fn markowitz_prefers_sparse_pivots() {
        // A dense first column and a diagonal tail: the Markowitz order must pivot
        // the singleton columns first, so the dense column contributes exactly one
        // eta and total fill stays linear.
        let mut matrix = Vec::new();
        let size = 12usize;
        for i in 0..size {
            let mut row = vec![Rational::one()]; // dense column 0
            for j in 1..size {
                row.push(if i == j { r(3, 1) } else { Rational::zero() });
            }
            matrix.push(row);
        }
        let cols = columns(matrix);
        let basis: Vec<usize> = (0..size).collect();
        let lu = factorize_markowitz(&cols, &basis);
        assert!(lu.artificial_rows.is_empty());
        check_inverse(&cols, &lu);
        // Singleton pivots produce 1-entry etas; only the dense column's eta is big.
        assert!(
            lu.fill <= 2 * size + size,
            "fill {} should stay linear in the dimension",
            lu.fill
        );
    }

    /// The simplex's incremental eta updates and a fresh Markowitz factorization are
    /// interchangeable: after every simulated pivot (`push_eta` on the transformed
    /// entering column), solving `B·x = b` through the updated eta file gives exactly
    /// the same per-column solution as refactorizing the current basis from scratch.
    /// This is the correctness contract behind [`should_refactorize`] being a pure
    /// *cost* policy — the fuzz drives 120 random pivots across 4 deterministic seeds
    /// and compares both `ftran` (primal) and `btran` (dual pricing) answers exactly.
    #[test]
    fn eta_updates_match_fresh_markowitz_factorization() {
        // xorshift-style LCG: deterministic, no external randomness.
        let mut state = 0x243f_6a88_85a3_08d3u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as i64
        };
        for seed in 0..4 {
            let m = 6 + seed as usize; // 6..=9 rows
            let n = 2 * m;
            // Sparse-ish random matrix with small rational entries.
            let mut matrix = vec![vec![Rational::zero(); n]; m];
            for row in matrix.iter_mut() {
                for value in row.iter_mut() {
                    if next() % 2 == 0 {
                        let num = next() % 7 - 3;
                        let den = next() % 3 + 1;
                        *value = r(num, den);
                    }
                }
            }
            let cols = columns(matrix);
            // Start from the all-artificial basis (always nonsingular) and walk a
            // random pivot sequence, mirroring the simplex's update exactly:
            // d = B⁻¹·A_entering, replace the basis column at a row where d ≠ 0.
            let mut factor = Factorization {
                etas: Vec::new(),
                basis: (n..n + m).collect(),
            };
            let b: Vec<Rational> = (0..m).map(|i| r(next() % 9 - 4, i as i64 + 1)).collect();
            let costs: Vec<Rational> = (0..m).map(|_| r(next() % 5 - 2, 1)).collect();
            let mut pivots = 0;
            let mut attempts = 0;
            while pivots < 30 && attempts < 300 {
                attempts += 1;
                let entering = (next() as usize) % n;
                if factor.basis.contains(&entering) {
                    continue;
                }
                let mut d = vec![Rational::zero(); m];
                cols.scatter(entering, &mut d);
                factor.ftran(&mut d);
                // Any row with d ≠ 0 keeps the basis nonsingular; pick pseudo-randomly.
                let nonzero: Vec<usize> =
                    (0..m).filter(|&row| !d[row].is_exactly_zero()).collect();
                if nonzero.is_empty() {
                    continue; // dependent column: not a legal pivot
                }
                let leaving = nonzero[(next() as usize) % nonzero.len()];
                factor.basis[leaving] = entering;
                factor.push_eta(&d, leaving);
                pivots += 1;

                // Fresh factorization of the same basis set.
                let fresh = factorize_markowitz(&cols, &factor.basis);
                assert!(
                    fresh.artificial_rows.is_empty() && fresh.dropped_cols.is_empty(),
                    "seed {seed}: pivoted basis must stay nonsingular"
                );
                // Primal: B x = b, compared per basis column (the two factorizations
                // may assign columns to different row positions).
                let mut via_eta = b.clone();
                factor.ftran(&mut via_eta);
                let mut via_fresh = b.clone();
                fresh.factor.ftran(&mut via_fresh);
                for (pos, &col) in factor.basis.iter().enumerate() {
                    let fresh_pos = fresh
                        .factor
                        .basis
                        .iter()
                        .position(|&c| c == col)
                        .expect("same basis set");
                    assert_eq!(
                        via_eta[pos], via_fresh[fresh_pos],
                        "seed {seed} pivot {pivots}: primal solutions diverge on column {col}"
                    );
                }
                // Dual: y = c_B B⁻¹ with c permuted to each factorization's own row
                // assignment; the resulting y is basis-intrinsic and must agree.
                let cost_of = |col: usize| -> Rational {
                    // Deterministic per-column phase-2-style cost.
                    if col < n { costs[col % m].clone() } else { Rational::zero() }
                };
                let mut y_eta: Vec<Rational> =
                    factor.basis.iter().map(|&c| cost_of(c)).collect();
                factor.btran(&mut y_eta);
                let mut y_fresh: Vec<Rational> =
                    fresh.factor.basis.iter().map(|&c| cost_of(c)).collect();
                fresh.factor.btran(&mut y_fresh);
                assert_eq!(
                    y_eta, y_fresh,
                    "seed {seed} pivot {pivots}: dual vectors diverge"
                );
            }
            assert!(pivots >= 10, "seed {seed}: fuzz must exercise real pivots");
        }
    }

    #[test]
    fn btran_matches_ftran_duality() {
        let cols = columns(vec![
            vec![r(1, 1), r(1, 1), r(0, 1), r(2, 1)],
            vec![r(0, 1), r(3, 1), r(1, 1), r(0, 1)],
            vec![r(2, 1), r(0, 1), r(0, 1), r(1, 1)],
            vec![r(0, 1), r(1, 1), r(1, 1), r(1, 1)],
        ]);
        let lu = factorize_markowitz(&cols, &[3, 0, 2, 1]);
        check_inverse(&cols, &lu);
        // y·A_j computed via btran equals c_B·(B⁻¹A_j) computed via ftran.
        let costs = vec![r(1, 1), r(-2, 1), r(0, 1), r(5, 1)];
        let mut y = costs.clone();
        lu.factor.btran(&mut y);
        for j in 0..4 {
            let mut d = vec![Rational::zero(); 4];
            cols.scatter(j, &mut d);
            let via_btran = d
                .iter()
                .enumerate()
                .fold(Rational::zero(), |acc, (row, v)| acc.add(&y[row].mul(v)));
            cols.scatter(j, &mut d);
            lu.factor.ftran(&mut d);
            let via_ftran = d
                .iter()
                .enumerate()
                .fold(Rational::zero(), |acc, (pos, v)| acc.add(&costs[pos].mul(v)));
            assert_eq!(via_btran, via_ftran, "duality breaks on column {j}");
        }
    }
}
