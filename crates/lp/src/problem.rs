//! The user-facing LP model: variables, constraints, objective, and solving entry points.

use std::fmt;
use std::time::Duration;

use dca_numeric::Rational;

use crate::deadline::Deadline;
use crate::scalar::Scalar;
use crate::simplex::{solve_standard_form, RawSolution, StandardForm};

/// Identifier of an LP variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LpVar(pub usize);

impl LpVar {
    /// Index as a `usize`.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Sign restriction of an LP variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// The variable is constrained to be `≥ 0`.
    NonNegative,
    /// The variable is unrestricted in sign (internally split into a difference of two
    /// non-negative variables).
    Free,
}

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `Σ aᵢ xᵢ ≤ b`
    Le,
    /// `Σ aᵢ xᵢ ≥ b`
    Ge,
    /// `Σ aᵢ xᵢ = b`
    Eq,
}

/// A linear constraint `Σ aᵢ xᵢ (≤ | ≥ | =) b`.
#[derive(Debug, Clone, PartialEq)]
pub struct LpConstraint {
    /// Terms `(variable, coefficient)`.
    pub terms: Vec<(LpVar, Rational)>,
    /// The comparison operator.
    pub op: ConstraintOp,
    /// The right-hand side.
    pub rhs: Rational,
}

/// Status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// The constraint set is infeasible.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// The iteration limit was hit before convergence (floating-point backend only).
    IterationLimit,
    /// The solve deadline (see [`LpProblem::set_deadline`]) passed before convergence.
    TimedOut,
}

impl fmt::Display for LpStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LpStatus::Optimal => "optimal",
            LpStatus::Infeasible => "infeasible",
            LpStatus::Unbounded => "unbounded",
            LpStatus::IterationLimit => "iteration limit",
            LpStatus::TimedOut => "timed out",
        };
        write!(f, "{s}")
    }
}

/// A reusable warm-start basis: the basic columns of a previous solve, identified by
/// *name* so they survive into a structurally different problem.
///
/// Model-variable columns are named after the variable ([`LpProblem::add_var`]); the
/// negative half of a `Free` variable and the slack/surplus columns carry derived
/// names. When a basis is replayed into a new [`LpProblem`], names that no longer
/// exist are silently dropped and missing rows are covered by artificials, so a stale
/// basis degrades gracefully to a cold start — it can speed a solve up, never make it
/// wrong.
///
/// Name matching alone is safe within one escalation ladder (same program pair,
/// rising degree/tier) but is too weak as a *cross-program* cache key: unrelated
/// programs produce identically named columns. A producer can therefore stamp the
/// basis with a provenance [`fingerprint`](LpBasis::fingerprint); consumers that
/// accept bases from a cache reject stamped bases whose fingerprint names a
/// different origin, and a deliberate near-match reuse (an edited program replayed
/// from its ancestor's basis) must say so explicitly via
/// [`rebadged`](LpBasis::rebadged).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LpBasis {
    names: Vec<String>,
    fingerprint: Option<u64>,
}

impl LpBasis {
    /// Number of recorded basic columns.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if no basis was recorded.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The provenance fingerprint stamped by the producer, if any. `None` means the
    /// basis never left the solve that produced it (pre-stamp or intra-ladder use).
    pub fn fingerprint(&self) -> Option<u64> {
        self.fingerprint
    }

    /// This basis re-stamped with the given provenance fingerprint.
    ///
    /// Stamping is how a producer claims "this basis came from *that* origin", and
    /// `rebadged` is the explicit opt-in for reusing it elsewhere (the serve cache's
    /// near-repeat replay). The opt-in is sound because a warm start can only change
    /// the pivot path, never the verdict — but it must stay explicit so an
    /// *accidental* cross-program replay is refused instead of silently applied.
    pub fn rebadged(mut self, fingerprint: u64) -> LpBasis {
        self.fingerprint = Some(fingerprint);
        self
    }

    /// Serializes to the wire form `fp|name|name|…` where `fp` is the fingerprint in
    /// hex or `-` when unstamped. Column names never contain `|` (they are model
    /// variable names, `…~neg` halves, or `slack#N`).
    pub fn to_wire(&self) -> String {
        let mut wire = match self.fingerprint {
            Some(fp) => format!("{fp:016x}"),
            None => "-".to_string(),
        };
        for name in &self.names {
            wire.push('|');
            wire.push_str(name);
        }
        wire
    }

    /// Parses the [`to_wire`](LpBasis::to_wire) form. `None` on a malformed
    /// fingerprint field.
    pub fn from_wire(wire: &str) -> Option<LpBasis> {
        let mut parts = wire.split('|');
        let fingerprint = match parts.next()? {
            "-" => None,
            hex => Some(u64::from_str_radix(hex, 16).ok()?),
        };
        Some(LpBasis { names: parts.map(str::to_string).collect(), fingerprint })
    }
}

/// Size and effort statistics of one solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LpSolveInfo {
    /// Simplex iterations across both phases and backends (0 when presolve decided
    /// the problem). For the float-first driver this is `float_iterations +
    /// exact_iterations`.
    pub iterations: usize,
    /// Pivots performed by the `f64` simplex (float-first driver only).
    pub float_iterations: usize,
    /// Pivots performed by the exact rational simplex (float-first driver only:
    /// repair rounds plus the uncapped fallback).
    pub exact_iterations: usize,
    /// Constraint rows removed by presolve.
    pub presolve_rows_removed: usize,
    /// Standard-form columns removed by presolve.
    pub presolve_cols_removed: usize,
    /// `true` when the solve hit its deadline during phase 2 and the reported
    /// optimum is the last feasible iterate — a sound but possibly loose bound
    /// (anytime semantics).
    pub truncated: bool,
    /// `true` when the reported result carries an exact-rational certificate: the
    /// answer was produced (or accepted) by exact arithmetic, never by `f64` alone.
    /// Always `true` for [`LpProblem::solve_certified`] and
    /// [`LpProblem::solve_exact`]; `false` for the plain `f64` backend.
    pub certified: bool,
    /// Certification rounds the float-first driver performed (0 when the float phase
    /// produced no candidate and the exact fallback ran directly).
    pub certify_rounds: usize,
    /// Wall-clock spent in presolve (float-first driver only).
    pub presolve_time: Duration,
    /// Wall-clock spent in the `f64` pivot phase (float-first driver only).
    pub float_time: Duration,
    /// Wall-clock spent in exact basis certification (float-first driver only).
    pub certify_time: Duration,
    /// Wall-clock spent in exact repair pivoting (float-first driver only).
    pub repair_time: Duration,
    /// Lazy row-generation candidate columns that survived presolve (certified
    /// driver with a non-empty lazy set only; 0 on the eager path).
    pub products_total: usize,
    /// Lazy candidate columns activated by separation — present in the final
    /// certified solve (0 on the eager path).
    pub products_generated: usize,
    /// Row-generation solve rounds (1 = the initial core already priced out;
    /// 0 = eager solve without row generation).
    pub separation_rounds: usize,
    /// Exact simplex pivots absorbed as incremental rank-1 eta updates of the
    /// rational LU factorization (cheap, O(nnz) each).
    pub lu_updates: usize,
    /// Full Markowitz refactorizations the exact simplex performed mid-run when
    /// the eta file grew past its fill budget (expensive, O(m·nnz) each).
    pub lu_refactorizations: usize,
}

/// Result of an LP solve in the chosen scalar type.
#[derive(Debug, Clone)]
pub struct LpResult<S> {
    /// Solve status.
    pub status: LpStatus,
    /// Objective value (present iff `status == Optimal`).
    pub objective: Option<S>,
    /// Values of the model variables, indexed by [`LpVar`] (present iff optimal).
    pub values: Vec<S>,
    /// The final basis, reusable as a warm start for a related problem (populated for
    /// any terminal status — an infeasible solve's basis still seeds the next rung).
    pub basis: LpBasis,
    /// An exact lower bound on the true optimum, recovered from a dual-feasible
    /// basis seen during certification. Only populated for truncated (anytime)
    /// solves, where `objective` is an upper bound: together they bracket the
    /// optimum (`dual_bound ≤ optimum ≤ objective`).
    pub dual_bound: Option<S>,
    /// Presolve and iteration statistics.
    pub info: LpSolveInfo,
}

impl<S: Scalar> LpResult<S> {
    /// The value of a variable in an optimal solution.
    ///
    /// # Panics
    ///
    /// Panics if the solve was not optimal.
    pub fn value(&self, var: LpVar) -> S {
        self.values[var.index()].clone()
    }

    /// Returns `true` if an optimal solution was found.
    pub fn is_optimal(&self) -> bool {
        self.status == LpStatus::Optimal
    }
}

/// A linear program: minimize a linear objective subject to linear constraints.
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Debug, Clone, Default)]
pub struct LpProblem {
    var_names: Vec<String>,
    var_kinds: Vec<VarKind>,
    constraints: Vec<LpConstraint>,
    objective: Vec<(LpVar, Rational)>,
    deadline: Deadline,
}

impl LpProblem {
    /// Creates an empty problem.
    pub fn new() -> LpProblem {
        LpProblem::default()
    }

    /// Adds a variable with the given display name and sign restriction.
    pub fn add_var(&mut self, name: impl Into<String>, kind: VarKind) -> LpVar {
        let var = LpVar(self.var_names.len());
        self.var_names.push(name.into());
        self.var_kinds.push(kind);
        var
    }

    /// Adds a constraint `Σ terms (op) rhs`.
    pub fn add_constraint(
        &mut self,
        terms: Vec<(LpVar, Rational)>,
        op: ConstraintOp,
        rhs: Rational,
    ) {
        self.constraints.push(LpConstraint { terms, op, rhs });
    }

    /// Sets the objective to *minimize* `Σ terms`.
    pub fn set_objective(&mut self, terms: Vec<(LpVar, Rational)>) {
        self.objective = terms;
    }

    /// Sets the deadline for subsequent solves ([`Deadline::unlimited`] = no limit).
    ///
    /// The simplex loops poll the deadline (clock cutoff *and* shared cancel flag)
    /// and report [`LpStatus::TimedOut`] once it expires, so one pathological
    /// instance cannot stall a batch run and an external [`Deadline::cancel`] stops
    /// the solve within one polling stride.
    pub fn set_deadline(&mut self, deadline: Deadline) {
        self.deadline = deadline;
    }

    /// Number of model variables.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The display name of a variable.
    pub fn var_name(&self, var: LpVar) -> &str {
        &self.var_names[var.index()]
    }

    /// The registered constraints.
    pub fn constraints(&self) -> &[LpConstraint] {
        &self.constraints
    }

    /// Solves with the floating-point backend (mirrors the paper's real-valued LP).
    ///
    /// An `Optimal` answer is only reported after the recovered solution has been
    /// re-checked against the *original* (unscaled) constraints: accumulated tableau
    /// round-off can make the simplex terminate on a basis that is not actually
    /// feasible, and silently accepting it would be unsound. Such solves are downgraded
    /// to [`LpStatus::IterationLimit`] so callers can fall back to the exact backend.
    pub fn solve_f64(&self) -> LpResult<f64> {
        self.solve_f64_warm(None)
    }

    /// Like [`LpProblem::solve_f64`], seeding the simplex with a warm-start basis from
    /// a previous (related) solve. See [`LpBasis`] for the matching semantics.
    pub fn solve_f64_warm(&self, warm: Option<&LpBasis>) -> LpResult<f64> {
        let mut result = self.solve_generic::<f64>(warm);
        if result.status == LpStatus::Optimal && !self.roughly_feasible_f64(&result.values) {
            if std::env::var("DCA_LP_DEBUG").is_ok() {
                eprintln!(
                    "[lp] optimal solution failed the model-level feasibility re-check                      (truncated = {}); downgrading to IterationLimit",
                    result.info.truncated
                );
            }
            result.status = LpStatus::IterationLimit;
            result.objective = None;
            result.values = Vec::new();
        }
        result
    }

    /// Feasibility re-check with a per-constraint relative tolerance (the absolute
    /// magnitudes of Handelman constraints span several orders of magnitude).
    fn roughly_feasible_f64(&self, values: &[f64]) -> bool {
        const REL_TOL: f64 = 1e-6;
        self.constraints.iter().all(|c| {
            let mut lhs = 0.0f64;
            let mut scale = 1.0f64;
            for (v, coef) in &c.terms {
                let term = coef.to_f64() * values[v.index()];
                lhs += term;
                scale = scale.max(term.abs());
            }
            let slack = lhs - c.rhs.to_f64();
            let tol = REL_TOL * scale.max(c.rhs.to_f64().abs());
            match c.op {
                ConstraintOp::Le => slack <= tol,
                ConstraintOp::Ge => slack >= -tol,
                ConstraintOp::Eq => slack.abs() <= tol,
            }
        }) && self
            .var_kinds
            .iter()
            .zip(values)
            .all(|(kind, &v)| *kind == VarKind::Free || v >= -1e-6)
    }

    /// Solves with the exact rational backend (slower; used for cross-checking).
    pub fn solve_exact(&self) -> LpResult<Rational> {
        let mut result = self.solve_generic::<Rational>(None);
        result.info.certified = true;
        result.info.exact_iterations = result.info.iterations;
        result
    }

    /// Solves with the float-first, exact-repair driver: the `f64` revised simplex
    /// proposes a candidate optimal basis, an exact-rational certifier accepts or
    /// rejects it, and rejected candidates are repaired by a warm-started exact
    /// simplex (see the `certify` module docs for the scheme and its soundness
    /// argument).
    ///
    /// The result is exact: every status and optimal value is produced by rational
    /// arithmetic — the floats only choose where the exact machinery looks first.
    /// Expect exact-backend answers at a fraction of exact-backend cost whenever the
    /// `f64` phase lands on (or near) the true optimal basis, which is the common
    /// case for the Handelman synthesis LPs.
    pub fn solve_certified(&self) -> LpResult<Rational> {
        self.solve_certified_warm(None)
    }

    /// Like [`LpProblem::solve_certified`], seeding the float phase (and any exact
    /// repair) with a warm-start basis from a previous related solve.
    pub fn solve_certified_warm(&self, warm: Option<&LpBasis>) -> LpResult<Rational> {
        self.solve_certified_lazy(warm, &[])
    }

    /// Like [`LpProblem::solve_certified_warm`], additionally marking a set of
    /// *lazy* columns the driver may leave out of the initial solve and generate
    /// on demand (delayed column generation).
    ///
    /// `lazy_names` are display names of `NonNegative` model variables (in
    /// practice: Handelman product multipliers of degree ≥ 2). The driver starts
    /// from the non-lazy core plus any lazy column present in `warm`, solves,
    /// then *exactly* prices every excluded column against the exact dual; any
    /// column that could improve the solution is activated and the solve is
    /// repeated warm-started. The accepted verdict therefore carries the same
    /// exact certificate as a full eager solve — excluded columns are proven
    /// non-improving (or, for infeasibility, proven unable to break the exact
    /// Farkas certificate) before anything is reported. Names that are unknown
    /// or not `NonNegative` are ignored (a `Free` variable's split column pair
    /// must never be separated independently). `DCA_LP_NO_ROWGEN=1` disables
    /// the mechanism (A/B switch: full eager solve, identical verdicts).
    ///
    /// The returned basis names any activated lazy columns, so threading it into
    /// the next related solve (as the escalation ladder does) also seeds that
    /// solve's active set — row-generation state travels across rungs for free.
    pub fn solve_certified_lazy(
        &self,
        warm: Option<&LpBasis>,
        lazy_names: &[String],
    ) -> LpResult<Rational> {
        let standard = self.to_standard_form::<Rational>();
        let col_names = self.standard_col_names();
        let warm_cols = self.warm_to_cols(warm, &col_names);
        let lazy_cols: Vec<usize> = if lazy_names.is_empty() {
            Vec::new()
        } else {
            let index_of: std::collections::HashMap<&str, usize> = col_names
                .iter()
                .enumerate()
                .map(|(i, n)| (n.as_str(), i))
                .collect();
            let free_split: std::collections::HashSet<usize> = self
                .var_names
                .iter()
                .zip(&self.var_kinds)
                .filter(|(_, kind)| **kind == VarKind::Free)
                .filter_map(|(name, _)| index_of.get(name.as_str()).copied())
                .collect();
            lazy_names
                .iter()
                .filter_map(|name| index_of.get(name.as_str()).copied())
                .filter(|col| !free_split.contains(col))
                .collect()
        };
        if std::env::var("DCA_LP_DEBUG").is_ok() {
            eprintln!(
                "[lp] certified solve: {} cols, {} lazy names -> {} lazy cols",
                col_names.len(),
                lazy_names.len(),
                lazy_cols.len()
            );
        }
        let raw = crate::certify::solve_float_first(
            &standard,
            &self.deadline,
            warm_cols.as_deref(),
            &lazy_cols,
        );
        self.assemble_result(raw, &col_names)
    }

    /// Checks whether a candidate assignment satisfies every constraint up to `tol`.
    ///
    /// Used by tests and by the verifier to validate solutions independent of the solver.
    pub fn check_feasible_f64(&self, values: &[f64], tol: f64) -> bool {
        self.constraints.iter().all(|c| {
            let lhs: f64 = c
                .terms
                .iter()
                .map(|(v, coef)| coef.to_f64() * values[v.index()])
                .sum();
            let rhs = c.rhs.to_f64();
            match c.op {
                ConstraintOp::Le => lhs <= rhs + tol,
                ConstraintOp::Ge => lhs >= rhs - tol,
                ConstraintOp::Eq => (lhs - rhs).abs() <= tol,
            }
        }) && self
            .var_kinds
            .iter()
            .zip(values)
            .all(|(kind, &v)| *kind == VarKind::Free || v >= -tol)
    }

    /// Stable display names of the standard-form columns, used to translate a basis
    /// into a name-matched warm start (and back).
    fn standard_col_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for (name, kind) in self.var_names.iter().zip(&self.var_kinds) {
            names.push(name.clone());
            if *kind == VarKind::Free {
                names.push(format!("{name}~neg"));
            }
        }
        for (index, constraint) in self.constraints.iter().enumerate() {
            if constraint.op != ConstraintOp::Eq {
                names.push(format!("slack#{index}"));
            }
        }
        names
    }

    /// Translates a name-matched warm basis into standard-form column indices.
    fn warm_to_cols(&self, warm: Option<&LpBasis>, col_names: &[String]) -> Option<Vec<usize>> {
        warm.map(|basis| {
            let index_of: std::collections::HashMap<&str, usize> = col_names
                .iter()
                .enumerate()
                .map(|(i, n)| (n.as_str(), i))
                .collect();
            basis
                .names
                .iter()
                .filter_map(|name| index_of.get(name.as_str()).copied())
                .collect()
        })
    }

    /// Turns a raw standard-form solution into the user-facing [`LpResult`].
    fn assemble_result<S: Scalar>(
        &self,
        raw: RawSolution<S>,
        col_names: &[String],
    ) -> LpResult<S> {
        let basis = LpBasis {
            names: raw
                .basis
                .iter()
                .filter_map(|&col| col_names.get(col).cloned())
                .collect(),
            fingerprint: None,
        };
        let info = LpSolveInfo {
            iterations: raw.iterations,
            float_iterations: raw.phases.float_iterations,
            exact_iterations: raw.phases.exact_iterations,
            presolve_rows_removed: raw.presolve_rows_removed,
            presolve_cols_removed: raw.presolve_cols_removed,
            truncated: raw.truncated,
            certified: raw.phases.certified,
            certify_rounds: raw.phases.certify_rounds,
            presolve_time: raw.phases.presolve_time,
            float_time: raw.phases.float_time,
            certify_time: raw.phases.certify_time,
            repair_time: raw.phases.repair_time,
            products_total: raw.phases.products_total,
            products_generated: raw.phases.products_generated,
            separation_rounds: raw.phases.separation_rounds,
            lu_updates: raw.phases.lu_updates,
            lu_refactorizations: raw.phases.lu_refactorizations,
        };
        match raw.status {
            LpStatus::Optimal => {
                let values = self.recover_values::<S>(&raw.values);
                let objective = self
                    .objective
                    .iter()
                    .fold(S::zero(), |acc, (v, c)| {
                        acc.add(&S::from_rational(c).mul(&values[v.index()]))
                    });
                LpResult {
                    status: LpStatus::Optimal,
                    objective: Some(objective),
                    values,
                    basis,
                    dual_bound: raw.dual_bound,
                    info,
                }
            }
            status => LpResult {
                status,
                objective: None,
                values: Vec::new(),
                basis,
                dual_bound: raw.dual_bound,
                info,
            },
        }
    }

    fn solve_generic<S: Scalar>(&self, warm: Option<&LpBasis>) -> LpResult<S> {
        let standard = self.to_standard_form::<S>();
        let col_names = self.standard_col_names();
        let warm_cols = self.warm_to_cols(warm, &col_names);
        let raw = solve_standard_form(&standard, &self.deadline, warm_cols.as_deref());
        self.assemble_result(raw, &col_names)
    }

    /// Standard form: minimize c'y subject to Ay = b, y >= 0, b >= 0.
    ///
    /// Model variables map to standard-form columns as follows: a `NonNegative` variable
    /// maps to one column, a `Free` variable to a pair of columns (positive and negative
    /// parts). Inequality rows receive one slack/surplus column each.
    fn to_standard_form<S: Scalar>(&self) -> StandardForm<S> {
        // Column layout per model variable.
        let mut columns: Vec<(usize, Option<usize>)> = Vec::with_capacity(self.num_vars());
        let mut num_cols = 0usize;
        for kind in &self.var_kinds {
            match kind {
                VarKind::NonNegative => {
                    columns.push((num_cols, None));
                    num_cols += 1;
                }
                VarKind::Free => {
                    columns.push((num_cols, Some(num_cols + 1)));
                    num_cols += 2;
                }
            }
        }
        let num_slacks = self
            .constraints
            .iter()
            .filter(|c| c.op != ConstraintOp::Eq)
            .count();
        let total_cols = num_cols + num_slacks;

        let mut matrix: Vec<Vec<S>> = Vec::with_capacity(self.constraints.len());
        let mut rhs: Vec<S> = Vec::with_capacity(self.constraints.len());
        let mut slack_idx = num_cols;
        for constraint in &self.constraints {
            let mut row = vec![S::zero(); total_cols];
            for (var, coef) in &constraint.terms {
                let c = S::from_rational(coef);
                let (pos, neg) = columns[var.index()];
                row[pos] = row[pos].add(&c);
                if let Some(neg) = neg {
                    row[neg] = row[neg].sub(&c);
                }
            }
            match constraint.op {
                ConstraintOp::Le => {
                    row[slack_idx] = S::one();
                    slack_idx += 1;
                }
                ConstraintOp::Ge => {
                    row[slack_idx] = S::one().neg();
                    slack_idx += 1;
                }
                ConstraintOp::Eq => {}
            }
            let mut b = S::from_rational(&constraint.rhs);
            // Normalize to b >= 0.
            if b.is_negative() {
                for cell in &mut row {
                    *cell = cell.neg();
                }
                b = b.neg();
            }
            matrix.push(row);
            rhs.push(b);
        }

        let mut costs = vec![S::zero(); total_cols];
        for (var, coef) in &self.objective {
            let c = S::from_rational(coef);
            let (pos, neg) = columns[var.index()];
            costs[pos] = costs[pos].add(&c);
            if let Some(neg) = neg {
                costs[neg] = costs[neg].sub(&c);
            }
        }

        StandardForm { matrix, rhs, costs, model_columns: columns }
    }

    fn recover_values<S: Scalar>(&self, standard_values: &[S]) -> Vec<S> {
        let mut columns: Vec<(usize, Option<usize>)> = Vec::with_capacity(self.num_vars());
        let mut num_cols = 0usize;
        for kind in &self.var_kinds {
            match kind {
                VarKind::NonNegative => {
                    columns.push((num_cols, None));
                    num_cols += 1;
                }
                VarKind::Free => {
                    columns.push((num_cols, Some(num_cols + 1)));
                    num_cols += 2;
                }
            }
        }
        columns
            .iter()
            .map(|&(pos, neg)| match neg {
                None => standard_values[pos].clone(),
                Some(neg) => standard_values[pos].sub(&standard_values[neg]),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }

    /// minimize x + y s.t. x + 2y >= 4, 3x + y >= 6
    fn small_lp() -> (LpProblem, LpVar, LpVar) {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", VarKind::NonNegative);
        let y = lp.add_var("y", VarKind::NonNegative);
        lp.add_constraint(vec![(x, r(1)), (y, r(2))], ConstraintOp::Ge, r(4));
        lp.add_constraint(vec![(x, r(3)), (y, r(1))], ConstraintOp::Ge, r(6));
        lp.set_objective(vec![(x, r(1)), (y, r(1))]);
        (lp, x, y)
    }

    #[test]
    fn exact_solution_of_small_lp() {
        let (lp, x, y) = small_lp();
        let sol = lp.solve_exact();
        assert_eq!(sol.status, LpStatus::Optimal);
        // Optimum at intersection of the two constraints: x = 8/5, y = 6/5, objective 14/5.
        assert_eq!(sol.objective.clone().unwrap(), Rational::new(14, 5));
        assert_eq!(sol.value(x), Rational::new(8, 5));
        assert_eq!(sol.value(y), Rational::new(6, 5));
    }

    #[test]
    fn f64_solution_matches_exact() {
        let (lp, _, _) = small_lp();
        let sol = lp.solve_f64();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective.unwrap() - 2.8).abs() < 1e-6);
        assert!(lp.check_feasible_f64(&sol.values, 1e-6));
    }

    #[test]
    fn equality_constraints() {
        // minimize x - y s.t. x + y = 10, x - y <= 4
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", VarKind::NonNegative);
        let y = lp.add_var("y", VarKind::NonNegative);
        lp.add_constraint(vec![(x, r(1)), (y, r(1))], ConstraintOp::Eq, r(10));
        lp.add_constraint(vec![(x, r(1)), (y, r(-1))], ConstraintOp::Le, r(4));
        lp.set_objective(vec![(x, r(1)), (y, r(-1))]);
        let sol = lp.solve_exact();
        assert_eq!(sol.status, LpStatus::Optimal);
        // x - y minimized: x = 0, y = 10 -> -10.
        assert_eq!(sol.objective.unwrap(), r(-10));
    }

    #[test]
    fn free_variables() {
        // minimize t s.t. t >= x - 5, t >= 5 - x, x = 2  (t is the absolute gap, x fixed)
        let mut lp = LpProblem::new();
        let t = lp.add_var("t", VarKind::Free);
        let x = lp.add_var("x", VarKind::NonNegative);
        lp.add_constraint(vec![(t, r(1)), (x, r(-1))], ConstraintOp::Ge, r(-5));
        lp.add_constraint(vec![(t, r(1)), (x, r(1))], ConstraintOp::Ge, r(5));
        lp.add_constraint(vec![(x, r(1))], ConstraintOp::Eq, r(2));
        lp.set_objective(vec![(t, r(1))]);
        let sol = lp.solve_exact();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.objective.unwrap(), r(3));
    }

    #[test]
    fn free_variable_can_go_negative() {
        // minimize t s.t. t >= -7 has optimum t = -7 when t is free.
        let mut lp = LpProblem::new();
        let t = lp.add_var("t", VarKind::Free);
        lp.add_constraint(vec![(t, r(1))], ConstraintOp::Ge, r(-7));
        lp.set_objective(vec![(t, r(1))]);
        let sol = lp.solve_exact();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.objective.clone().unwrap(), r(-7));
        assert_eq!(sol.value(t), r(-7));
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", VarKind::NonNegative);
        lp.add_constraint(vec![(x, r(1))], ConstraintOp::Ge, r(5));
        lp.add_constraint(vec![(x, r(1))], ConstraintOp::Le, r(3));
        lp.set_objective(vec![(x, r(1))]);
        assert_eq!(lp.solve_exact().status, LpStatus::Infeasible);
        assert_eq!(lp.solve_f64().status, LpStatus::Infeasible);
    }

    /// A variable no constraint mentions, with a negative objective coefficient:
    /// unbounded when the rest is feasible, infeasible when it is not — presolve
    /// must leave the call to the simplex (it cannot prove feasibility itself).
    #[test]
    fn unconstrained_negative_cost_column_resolves_by_feasibility() {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", VarKind::NonNegative);
        let free = lp.add_var("free", VarKind::NonNegative);
        lp.add_constraint(vec![(x, r(1))], ConstraintOp::Eq, r(2));
        lp.set_objective(vec![(free, r(-1))]);
        assert_eq!(lp.solve_exact().status, LpStatus::Unbounded);
        assert_eq!(lp.solve_f64().status, LpStatus::Unbounded);
        // Same column, but the rest of the system is infeasible.
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", VarKind::NonNegative);
        let free = lp.add_var("free", VarKind::NonNegative);
        lp.add_constraint(vec![(x, r(1))], ConstraintOp::Eq, r(2));
        lp.add_constraint(vec![(x, r(1))], ConstraintOp::Eq, r(3));
        lp.set_objective(vec![(free, r(-1))]);
        assert_eq!(lp.solve_exact().status, LpStatus::Infeasible);
        assert_eq!(lp.solve_f64().status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", VarKind::Free);
        lp.add_constraint(vec![(x, r(1))], ConstraintOp::Le, r(100));
        lp.set_objective(vec![(x, r(1))]);
        assert_eq!(lp.solve_exact().status, LpStatus::Unbounded);
        assert_eq!(lp.solve_f64().status, LpStatus::Unbounded);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Multiple redundant constraints meeting at the same vertex.
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", VarKind::NonNegative);
        let y = lp.add_var("y", VarKind::NonNegative);
        for k in 1..=5i64 {
            lp.add_constraint(vec![(x, r(k)), (y, r(k))], ConstraintOp::Ge, r(2 * k));
        }
        lp.set_objective(vec![(x, r(1)), (y, r(2))]);
        let sol = lp.solve_exact();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.objective.unwrap(), r(2));
    }

    #[test]
    fn zero_objective_feasibility_check() {
        let mut lp = LpProblem::new();
        let x = lp.add_var("x", VarKind::NonNegative);
        lp.add_constraint(vec![(x, r(2))], ConstraintOp::Eq, r(6));
        let sol = lp.solve_exact();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.value(x), r(3));
        assert_eq!(sol.objective.unwrap(), Rational::zero());
    }

    #[test]
    fn basis_wire_round_trips_with_and_without_fingerprint() {
        let (lp, _, _) = small_lp();
        let basis = lp.solve_exact().basis;
        assert!(!basis.is_empty());
        assert_eq!(basis.fingerprint(), None, "a fresh solve leaves the basis unstamped");
        assert_eq!(LpBasis::from_wire(&basis.to_wire()), Some(basis.clone()));
        let stamped = basis.rebadged(0xdead_beef_0123_4567);
        assert_eq!(stamped.fingerprint(), Some(0xdead_beef_0123_4567));
        assert_eq!(LpBasis::from_wire(&stamped.to_wire()), Some(stamped));
        // Malformed fingerprint fields are refused, empty bases survive.
        assert_eq!(LpBasis::from_wire("zz|x"), None);
        assert_eq!(LpBasis::from_wire("-"), Some(LpBasis::default()));
    }

    #[test]
    fn names_and_counts() {
        let (lp, x, _) = small_lp();
        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.num_constraints(), 2);
        assert_eq!(lp.var_name(x), "x");
        assert_eq!(lp.constraints().len(), 2);
        assert_eq!(LpStatus::Optimal.to_string(), "optimal");
    }
}
