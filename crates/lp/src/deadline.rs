//! Shared solve deadlines with cooperative cancellation.
//!
//! A [`Deadline`] pairs an optional wall-clock cutoff with an atomic cancel flag that
//! is *shared across clones*: the batch engine hands the same flag to every phase of a
//! solve (invariant analysis, encoding, and each LP loop), so a single [`cancel`]
//! call — or the clock running out — stops all of them within one polling stride.
//! Polling is a relaxed atomic load plus (at most) one `Instant::now()` call, cheap
//! enough for the inner simplex loops to check every few dozen pivots.
//!
//! [`cancel`]: Deadline::cancel

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A wall-clock cutoff plus a shared cancellation flag.
///
/// Clones share the flag but carry the cutoff by value, so a clone can be
/// [tightened](Deadline::tightened) for a sub-task while external cancellation still
/// reaches it. A [scoped](Deadline::scoped) child owns a *fresh* flag but keeps
/// observing its parent's: the batch engine hands each job a scoped child, so
/// cancelling one job's solve leaves its siblings running while a batch-wide cancel
/// still stops everything.
#[derive(Debug, Clone)]
pub struct Deadline {
    at: Option<Instant>,
    cancelled: Arc<AtomicBool>,
    parent: Option<Box<Deadline>>,
}

impl Deadline {
    /// A deadline that never expires on its own (it can still be cancelled).
    pub fn unlimited() -> Deadline {
        Deadline { at: None, cancelled: Arc::new(AtomicBool::new(false)), parent: None }
    }

    /// A deadline expiring at the given instant.
    pub fn at(at: Instant) -> Deadline {
        Deadline { at: Some(at), cancelled: Arc::new(AtomicBool::new(false)), parent: None }
    }

    /// A deadline expiring `budget` from now.
    pub fn after(budget: Duration) -> Deadline {
        Deadline::at(Instant::now() + budget)
    }

    /// This deadline's cutoff instant, if it has one.
    pub fn instant(&self) -> Option<Instant> {
        self.at
    }

    /// A copy sharing this deadline's cancel flag whose cutoff is the *earlier* of
    /// the two (`None` keeps the existing cutoff). The per-attempt time budget of a
    /// batch job tightens the batch-wide deadline this way.
    pub fn tightened(&self, at: Option<Instant>) -> Deadline {
        let at = match (self.at, at) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        Deadline { at, cancelled: Arc::clone(&self.cancelled), parent: self.parent.clone() }
    }

    /// A child with the same cutoff but its *own* cancel flag, still observing this
    /// deadline's cancellation (transitively). Cancelling the child stops only the
    /// work polling it; cancelling `self` stops the child too. The batch engine
    /// scopes its batch-wide deadline per job this way, so one job's cancellation —
    /// fault-injected or otherwise — cannot take down its siblings.
    pub fn scoped(&self) -> Deadline {
        Deadline {
            at: self.at,
            cancelled: Arc::new(AtomicBool::new(false)),
            parent: Some(Box::new(self.clone())),
        }
    }

    /// Requests cooperative cancellation: every clone sharing this flag — and every
    /// [scoped](Deadline::scoped) descendant — reports [`expired`](Deadline::expired)
    /// from now on. Parents and siblings are unaffected.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// `true` once this deadline (or a deadline it is [scoped](Deadline::scoped)
    /// under) was cancelled, or its cutoff has passed. This is the poll the
    /// long-running loops call; the cancel-flag loads come first so a cancelled
    /// solve stops without touching the clock.
    pub fn expired(&self) -> bool {
        self.is_cancelled() || self.at.is_some_and(|at| Instant::now() >= at)
    }

    /// This deadline's flag, or any ancestor's (the chain is at most two deep in
    /// practice: batch deadline → per-job scope).
    fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
            || self.parent.as_ref().is_some_and(|parent| parent.is_cancelled())
    }

    /// Time left until the cutoff (`None` = unlimited; zero once expired or
    /// cancelled).
    pub fn remaining(&self) -> Option<Duration> {
        if self.is_cancelled() {
            return Some(Duration::ZERO);
        }
        self.at.map(|at| at.saturating_duration_since(Instant::now()))
    }
}

impl Default for Deadline {
    fn default() -> Deadline {
        Deadline::unlimited()
    }
}

/// Deadlines compare by cutoff only: the cancel flag is runtime state, not identity.
impl PartialEq for Deadline {
    fn eq(&self, other: &Deadline) -> bool {
        self.at == other.at
    }
}
impl Eq for Deadline {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires_until_cancelled() {
        let deadline = Deadline::unlimited();
        assert!(!deadline.expired());
        assert_eq!(deadline.remaining(), None);
        deadline.cancel();
        assert!(deadline.expired());
        assert_eq!(deadline.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn clones_share_the_cancel_flag() {
        let deadline = Deadline::after(Duration::from_secs(3600));
        let clone = deadline.clone();
        assert!(!clone.expired());
        deadline.cancel();
        assert!(clone.expired(), "cancellation must reach every clone");
    }

    #[test]
    fn past_cutoff_expires() {
        let deadline = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(deadline.expired());
        assert_eq!(deadline.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn scoped_children_isolate_their_cancellation_but_observe_the_parent() {
        let batch = Deadline::unlimited();
        let job_a = batch.scoped();
        let job_b = batch.scoped();
        // Cancelling one job stops that job only.
        job_a.cancel();
        assert!(job_a.expired());
        assert!(!job_b.expired(), "a sibling's cancellation must not leak");
        assert!(!batch.expired(), "a child's cancellation must not reach the parent");
        // Cancelling the batch stops every job, even through a tightened copy.
        let tightened_b = job_b.tightened(Some(Instant::now() + Duration::from_secs(3600)));
        batch.cancel();
        assert!(job_b.expired());
        assert!(tightened_b.expired(), "tightening must preserve the parent link");
        assert_eq!(job_b.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn tightening_keeps_the_earlier_cutoff_and_the_shared_flag() {
        let far = Instant::now() + Duration::from_secs(3600);
        let near = Instant::now() + Duration::from_secs(1);
        let outer = Deadline::at(far);
        let tightened = outer.tightened(Some(near));
        assert_eq!(tightened.instant(), Some(near));
        // Tightening with a *later* cutoff keeps the existing one.
        assert_eq!(outer.tightened(Some(far + Duration::from_secs(1))).instant(), Some(far));
        // `None` leaves the cutoff alone; unlimited adopts the new cutoff.
        assert_eq!(outer.tightened(None).instant(), Some(far));
        assert_eq!(Deadline::unlimited().tightened(Some(near)).instant(), Some(near));
        // The flag is shared through tightening.
        outer.cancel();
        assert!(tightened.expired());
    }
}
