//! Fault injection at solve-phase boundaries.
//!
//! The pipeline calls [`enter`] at the start of every phase (compilation, invariant
//! analysis, encoding, and each LP stage). In production that is one relaxed atomic
//! load and a thread-local store; under `DCA_FAULT=<phase>:<kind>[:<nth>]` the `nth`
//! entry into `<phase>` (1-based, default 1) triggers `<kind>`:
//!
//! * `panic` — panics right there, exercising the batch engine's containment;
//! * `deadline` — reports simulated budget exhaustion, which the caller translates
//!   into cancelling its [`Deadline`](crate::Deadline), exercising the real
//!   cooperative-cancellation path;
//! * `numeric` — reports a forced numeric rejection; the LP driver treats the current
//!   float result as uncertifiable and falls back to exact arithmetic, which must
//!   still produce the fault-free answer.
//!
//! The thread-local phase marker doubles as the crash-site record: when a worker's
//! `catch_unwind` fires, [`current_phase`] names the phase that was running.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{OnceLock, RwLock};

/// The phases of one differential-cost solve, in pipeline order. Used both as fault
/// injection points and as the `phase` of timeout/panic error reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolvePhase {
    /// Parsing and lowering the two program sources.
    Compile,
    /// Numeric invariant analysis over the lowered transition systems.
    Invariants,
    /// Handelman encoding of the potential/anti-potential constraint system.
    Encode,
    /// The `f64` phase of the float-first LP driver.
    LpFloat,
    /// Exact-rational certification of a proposed basis.
    LpCertify,
    /// The pivot-capped exact repair loop.
    LpRepair,
    /// The lazy-column separation (row generation) loop.
    LpRowGen,
}

impl SolvePhase {
    /// All phases, in pipeline order (the fault-injection test matrix iterates this).
    pub const ALL: [SolvePhase; 7] = [
        SolvePhase::Compile,
        SolvePhase::Invariants,
        SolvePhase::Encode,
        SolvePhase::LpFloat,
        SolvePhase::LpCertify,
        SolvePhase::LpRepair,
        SolvePhase::LpRowGen,
    ];

    /// The stable machine-readable name (used in `DCA_FAULT`, JSON rows and errors).
    pub fn as_str(self) -> &'static str {
        match self {
            SolvePhase::Compile => "compile",
            SolvePhase::Invariants => "invariants",
            SolvePhase::Encode => "encode",
            SolvePhase::LpFloat => "lp-float",
            SolvePhase::LpCertify => "lp-certify",
            SolvePhase::LpRepair => "lp-repair",
            SolvePhase::LpRowGen => "lp-rowgen",
        }
    }

    /// Parses a phase name as spelled by [`SolvePhase::as_str`].
    pub fn parse(name: &str) -> Option<SolvePhase> {
        SolvePhase::ALL.into_iter().find(|p| p.as_str() == name)
    }
}

impl std::fmt::Display for SolvePhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What an injected fault simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the phase boundary.
    Panic,
    /// Simulated deadline exhaustion (the caller cancels its `Deadline`).
    Deadline,
    /// Forced numeric rejection (the LP driver discards the float result).
    Numeric,
}

impl FaultKind {
    /// The spelling used in `DCA_FAULT`.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Deadline => "deadline",
            FaultKind::Numeric => "numeric",
        }
    }

    /// Parses a kind name as spelled by [`FaultKind::as_str`].
    pub fn parse(name: &str) -> Option<FaultKind> {
        [FaultKind::Panic, FaultKind::Deadline, FaultKind::Numeric]
            .into_iter()
            .find(|k| k.as_str() == name)
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One parsed `DCA_FAULT` directive: trigger `kind` on the `nth` entry into `phase`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// The phase whose boundary triggers the fault.
    pub phase: SolvePhase,
    /// What to inject.
    pub kind: FaultKind,
    /// Which entry into the phase triggers (1-based; 1 = the first).
    pub nth: usize,
}

impl FaultSpec {
    /// Parses `<phase>:<kind>[:<nth>]` (the `DCA_FAULT` syntax).
    pub fn parse(spec: &str) -> Result<FaultSpec, String> {
        let mut parts = spec.split(':');
        let phase = parts
            .next()
            .and_then(SolvePhase::parse)
            .ok_or_else(|| format!("DCA_FAULT: unknown phase in {spec:?}"))?;
        let kind = parts
            .next()
            .and_then(FaultKind::parse)
            .ok_or_else(|| format!("DCA_FAULT: unknown kind in {spec:?}"))?;
        let nth = match parts.next() {
            None => 1,
            Some(n) => n
                .parse::<usize>()
                .ok()
                .filter(|n| *n >= 1)
                .ok_or_else(|| format!("DCA_FAULT: invalid nth in {spec:?}"))?,
        };
        if parts.next().is_some() {
            return Err(format!("DCA_FAULT: trailing fields in {spec:?}"));
        }
        Ok(FaultSpec { phase, kind, nth })
    }
}

/// The armed fault plus its hit counter (how many times its phase was entered).
struct Armed {
    spec: FaultSpec,
    hits: AtomicUsize,
}

/// The installed fault, if any. Process-global: `DCA_FAULT` is read once on first
/// use; tests overwrite it through [`install`] (serially — the harness's fault
/// matrix runs in one test function).
static ARMED: RwLock<Option<Armed>> = RwLock::new(None);
static ENV_INIT: OnceLock<()> = OnceLock::new();

fn ensure_env_loaded() {
    ENV_INIT.get_or_init(|| {
        if let Ok(value) = std::env::var("DCA_FAULT") {
            match FaultSpec::parse(&value) {
                Ok(spec) => install(Some(spec)),
                // A mistyped injection must not be a silent no-op: the harness
                // would read a green matrix that never injected anything.
                Err(message) => panic!("{message}"),
            }
        }
    });
}

/// Installs (or clears) the armed fault, resetting its hit counter. Public for the
/// fault-matrix tests; production arms itself from `DCA_FAULT` instead.
pub fn install(spec: Option<FaultSpec>) {
    let mut armed = ARMED.write().unwrap_or_else(std::sync::PoisonError::into_inner);
    *armed = spec.map(|spec| Armed { spec, hits: AtomicUsize::new(0) });
}

/// `true` once the armed fault has fired (its phase reached its `nth` entry). The
/// fault-matrix tests use this to tell "the cell passed" apart from "the fault never
/// triggered because the targeted phase was never entered" (e.g. `lp-repair` on an
/// instance whose first basis certifies cleanly).
pub fn triggered() -> bool {
    let armed = ARMED.read().unwrap_or_else(std::sync::PoisonError::into_inner);
    armed
        .as_ref()
        .is_some_and(|armed| armed.hits.load(Ordering::Relaxed) >= armed.spec.nth)
}

thread_local! {
    static CURRENT_PHASE: Cell<SolvePhase> = const { Cell::new(SolvePhase::Compile) };
}

/// The phase this thread most recently entered (the crash site, when a panic is
/// caught). Defaults to [`SolvePhase::Compile`], the first phase of every solve.
pub fn current_phase() -> SolvePhase {
    CURRENT_PHASE.with(Cell::get)
}

/// Marks the start of `phase` on this thread and returns the fault to inject, if the
/// armed `DCA_FAULT` directive names this phase and this is its `nth` entry.
/// [`FaultKind::Panic`] is executed here; the other kinds are returned for the
/// caller to simulate (cancel the deadline / reject the float result).
pub fn enter(phase: SolvePhase) -> Option<FaultKind> {
    CURRENT_PHASE.with(|current| current.set(phase));
    ensure_env_loaded();
    let armed = ARMED.read().unwrap_or_else(std::sync::PoisonError::into_inner);
    let armed = armed.as_ref()?;
    if armed.spec.phase != phase {
        return None;
    }
    let hit = armed.hits.fetch_add(1, Ordering::Relaxed) + 1;
    if hit != armed.spec.nth {
        return None;
    }
    if armed.spec.kind == FaultKind::Panic {
        panic!("injected fault: panic at phase {phase}");
    }
    Some(armed.spec.kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing_round_trips_and_rejects_garbage() {
        assert_eq!(
            FaultSpec::parse("lp-repair:deadline"),
            Ok(FaultSpec {
                phase: SolvePhase::LpRepair,
                kind: FaultKind::Deadline,
                nth: 1
            })
        );
        assert_eq!(
            FaultSpec::parse("encode:panic:3"),
            Ok(FaultSpec { phase: SolvePhase::Encode, kind: FaultKind::Panic, nth: 3 })
        );
        assert!(FaultSpec::parse("bogus:panic").is_err());
        assert!(FaultSpec::parse("encode:bogus").is_err());
        assert!(FaultSpec::parse("encode:panic:0").is_err());
        assert!(FaultSpec::parse("encode:panic:1:extra").is_err());
        for phase in SolvePhase::ALL {
            assert_eq!(SolvePhase::parse(phase.as_str()), Some(phase));
        }
    }

    #[test]
    fn entering_a_phase_records_it_for_the_crash_report() {
        // No fault is installed in the test process, so `enter` is marker-only.
        assert_eq!(enter(SolvePhase::LpCertify), None);
        assert_eq!(current_phase(), SolvePhase::LpCertify);
        assert_eq!(enter(SolvePhase::Compile), None);
        assert_eq!(current_phase(), SolvePhase::Compile);
    }
}
