//! Linear programming for the diffcost analyzer.
//!
//! Step 4 of the paper's algorithm solves a single linear program — "minimize the
//! threshold `t` subject to all collected linear constraints" — with an off-the-shelf
//! solver (the paper uses Gurobi). This crate provides that substrate: a presolve pass
//! (singleton-row substitution, forcing-row and fixed/empty-column elimination,
//! redundant-row drop) followed by a *sparse revised* two-phase simplex that keeps the
//! constraint matrix in column-major form and maintains an eta-file basis
//! factorization with periodic reinversion. Two numeric backends share the algorithm:
//!
//! * the default [`LpProblem::solve_f64`] backend mirrors the paper's real-valued LP
//!   and is fast enough for the full benchmark suite (the crate's original dense
//!   tableau remains as its non-convergence rescue path);
//! * the exact [`LpProblem::solve_exact`] backend runs over
//!   [`Rational`](dca_numeric::Rational) arithmetic with Bland’s rule and is used by
//!   the test-suite to cross-check small instances.
//!
//! Solves can be *warm-started* from the final basis of a previous related problem
//! ([`LpProblem::solve_f64_warm`], [`LpBasis`]): basic columns are matched by name, so
//! the basis survives into a structurally different LP — the escalation ladder in
//! `dca_core` threads it through consecutive `(degree, tier)` attempts. Because name
//! matching alone cannot tell two *programs* apart, a basis can additionally carry a
//! provenance fingerprint ([`LpBasis::fingerprint`]): consumers replaying cached
//! bases refuse a stamped basis from a different origin unless it is explicitly
//! [`rebadged`](LpBasis::rebadged) (warm starts affect only the pivot path, never the
//! verdict, so the opt-in is sound — but it must be an opt-in).
//!
//! # Example
//!
//! ```
//! use dca_lp::{ConstraintOp, LpProblem, LpStatus, VarKind};
//! use dca_numeric::Rational;
//!
//! // minimize x + y  s.t.  x + 2y >= 4,  3x + y >= 6,  x,y >= 0
//! let mut lp = LpProblem::new();
//! let x = lp.add_var("x", VarKind::NonNegative);
//! let y = lp.add_var("y", VarKind::NonNegative);
//! lp.add_constraint(vec![(x, Rational::one()), (y, Rational::from_int(2))],
//!                   ConstraintOp::Ge, Rational::from_int(4));
//! lp.add_constraint(vec![(x, Rational::from_int(3)), (y, Rational::one())],
//!                   ConstraintOp::Ge, Rational::from_int(6));
//! lp.set_objective(vec![(x, Rational::one()), (y, Rational::one())]);
//! let solution = lp.solve_exact();
//! assert_eq!(solution.status, LpStatus::Optimal);
//! assert_eq!(solution.objective.unwrap(), Rational::new(14, 5));
//! ```

// Library paths must not panic on fallible state (a worker panic poisons a whole
// batch); every remaining `unwrap`/`expect` is either test-only or carries a local
// `#[allow]` with a proof of infallibility.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod certify;
mod deadline;
pub mod fault;
mod lu;
mod presolve;
mod problem;
mod revised;
mod scalar;
mod simplex;

pub use deadline::Deadline;
pub use fault::{FaultKind, FaultSpec, SolvePhase};
pub use problem::{
    ConstraintOp, LpBasis, LpConstraint, LpProblem, LpResult, LpSolveInfo, LpStatus, LpVar,
    VarKind,
};
pub use scalar::Scalar;
