//! Dense two-phase primal simplex over a generic scalar.

use std::time::Instant;

use crate::problem::LpStatus;
use crate::scalar::Scalar;

/// A problem in standard form: minimize `costs · y` subject to `matrix · y = rhs`,
/// `y ≥ 0`, with `rhs ≥ 0` componentwise.
#[derive(Debug, Clone)]
pub(crate) struct StandardForm<S> {
    /// Constraint matrix, one row per equality.
    pub matrix: Vec<Vec<S>>,
    /// Right-hand sides (all non-negative).
    pub rhs: Vec<S>,
    /// Objective coefficients.
    pub costs: Vec<S>,
    /// Column layout of the original model variables (positive column, optional negative
    /// column for free variables). Carried along for diagnostics.
    pub model_columns: Vec<(usize, Option<usize>)>,
}

/// Raw solver output over standard-form columns.
#[derive(Debug, Clone)]
pub(crate) struct RawSolution<S> {
    pub status: LpStatus,
    pub values: Vec<S>,
}

/// Internal simplex state: the tableau `B⁻¹A | B⁻¹b` plus the current basis.
struct Tableau<S> {
    rows: Vec<Vec<S>>,
    rhs: Vec<S>,
    basis: Vec<usize>,
    num_cols: usize,
}

impl<S: Scalar> Tableau<S> {
    fn pivot(&mut self, pivot_row: usize, pivot_col: usize) {
        let pivot_value = self.rows[pivot_row][pivot_col].clone();
        debug_assert!(!pivot_value.is_zero());
        // Normalize the pivot row.
        for cell in &mut self.rows[pivot_row] {
            *cell = cell.div(&pivot_value);
        }
        self.rhs[pivot_row] = self.rhs[pivot_row].div(&pivot_value);
        // Eliminate the pivot column from all other rows. The pivot row is taken out of
        // the matrix so every update runs over two independent slices (row-major, no
        // per-element bounds checks); zero entries of the pivot row are skipped, which
        // saves most of the work on the sparse tableaus the Handelman encoding produces.
        let pivot_cells = std::mem::take(&mut self.rows[pivot_row]);
        let pivot_rhs = self.rhs[pivot_row].clone();
        for (row, (cells, rhs)) in self.rows.iter_mut().zip(self.rhs.iter_mut()).enumerate() {
            if row == pivot_row {
                continue;
            }
            let factor = cells[pivot_col].clone();
            if factor.is_zero() {
                continue;
            }
            for (cell, p) in cells.iter_mut().zip(&pivot_cells) {
                if !p.is_exactly_zero() {
                    *cell = cell.sub(&factor.mul(p));
                }
            }
            *rhs = rhs.sub(&factor.mul(&pivot_rhs));
        }
        self.rows[pivot_row] = pivot_cells;
        self.basis[pivot_row] = pivot_col;
    }

    /// Reduced costs `r_j = c_j - c_B · (B⁻¹ A_j)` for all columns, accumulated row by
    /// row so the traversal matches the tableau's memory layout.
    fn reduced_costs(&self, costs: &[S]) -> Vec<S> {
        let mut reduced: Vec<S> = costs[..self.num_cols].to_vec();
        for (row, &basic) in self.basis.iter().enumerate() {
            let bc = &costs[basic];
            if bc.is_zero() {
                continue;
            }
            for (value, cell) in reduced.iter_mut().zip(&self.rows[row]) {
                if !cell.is_exactly_zero() {
                    *value = value.sub(&bc.mul(cell));
                }
            }
        }
        reduced
    }

    fn objective_value(&self, costs: &[S]) -> S {
        let mut value = S::zero();
        for (row, &b) in self.basis.iter().enumerate() {
            value = value.add(&costs[b].mul(&self.rhs[row]));
        }
        value
    }

    /// Runs simplex iterations with the given costs until optimality, unboundedness,
    /// the iteration limit or the deadline. Returns the status.
    ///
    /// Reduced costs are maintained incrementally across pivots (`r' = r − r_e · ρ`
    /// where `ρ` is the post-pivot pivot row), which halves the per-iteration work
    /// compared to recomputing `c_j − c_B · B⁻¹A_j` from scratch. In floating point the
    /// maintained row drifts, so it is refreshed periodically and optimality is only
    /// reported after a confirmation pass over freshly recomputed reduced costs.
    fn optimize(
        &mut self,
        costs: &[S],
        allowed_cols: usize,
        max_iters: usize,
        deadline: Option<Instant>,
    ) -> LpStatus {
        const REFRESH_EVERY: usize = 16;
        const DEADLINE_EVERY: usize = 64;
        let bland_after = max_iters / 2;
        let mut reduced = self.reduced_costs(costs);
        let mut since_refresh = 0usize;
        for iteration in 0..max_iters {
            // Exact-backend pivots over blown-up rationals can take seconds each, so
            // the deadline is polled every iteration there; the cheap f64 iterations
            // amortize the clock read over a small batch.
            if S::IS_EXACT || iteration % DEADLINE_EVERY == 0 {
                if let Some(deadline) = deadline {
                    if Instant::now() >= deadline {
                        return LpStatus::TimedOut;
                    }
                }
            }
            if !S::IS_EXACT && since_refresh >= REFRESH_EVERY {
                reduced = self.reduced_costs(costs);
                since_refresh = 0;
            }
            let use_bland = S::IS_EXACT || iteration >= bland_after;
            // Entering column: negative reduced cost.
            let entering = if use_bland {
                (0..allowed_cols).find(|&j| reduced[j].is_negative())
            } else {
                // Dantzig: most negative reduced cost.
                let mut best: Option<usize> = None;
                for j in 0..allowed_cols {
                    if reduced[j].is_negative()
                        && best.map_or(true, |b| reduced[j].lt(&reduced[b]))
                    {
                        best = Some(j);
                    }
                }
                best
            };
            let Some(entering) = entering else {
                if !S::IS_EXACT && since_refresh != 0 {
                    // Apparent optimality on drifted data: confirm against fresh values.
                    reduced = self.reduced_costs(costs);
                    since_refresh = 0;
                    if (0..allowed_cols).any(|j| reduced[j].is_negative()) {
                        continue;
                    }
                }
                // Round-off in long pivot chains can silently break primal feasibility
                // (negative basic values); report non-convergence instead of a bogus
                // optimum so callers fall back to the exact backend.
                if !S::IS_EXACT && self.rhs.iter().any(Scalar::is_negative) {
                    return LpStatus::IterationLimit;
                }
                return LpStatus::Optimal;
            };
            // Ratio test.
            let mut leaving: Option<usize> = None;
            let mut best_ratio: Option<S> = None;
            for row in 0..self.rows.len() {
                let coeff = &self.rows[row][entering];
                if !coeff.is_positive() {
                    continue;
                }
                let ratio = self.rhs[row].div(coeff);
                let better = match &best_ratio {
                    None => true,
                    Some(best) => {
                        ratio.lt(best)
                            || (!best.lt(&ratio)
                                && leaving.map_or(false, |l| self.basis[row] < self.basis[l]))
                    }
                };
                if better {
                    best_ratio = Some(ratio);
                    leaving = Some(row);
                }
            }
            let Some(leaving) = leaving else {
                return LpStatus::Unbounded;
            };
            self.pivot(leaving, entering);
            // Incremental reduced-cost update from the freshly normalized pivot row.
            let scale = reduced[entering].clone();
            if !scale.is_exactly_zero() {
                for (value, cell) in reduced.iter_mut().zip(&self.rows[leaving]) {
                    if !cell.is_exactly_zero() {
                        *value = value.sub(&scale.mul(cell));
                    }
                }
            }
            since_refresh += 1;
        }
        LpStatus::IterationLimit
    }
}

/// Solves a standard-form problem with the two-phase simplex method.
///
/// When `deadline` is set, the iteration loops poll the clock and bail out with
/// [`LpStatus::TimedOut`] once it passes.
pub(crate) fn solve_standard_form<S: Scalar>(
    form: &StandardForm<S>,
    deadline: Option<Instant>,
) -> RawSolution<S> {
    let num_rows = form.matrix.len();
    let num_structural = form.costs.len();
    let _ = &form.model_columns;

    // Equilibration: scale columns and rows so that tableau entries stay near unit
    // magnitude. This matters for the floating-point backend on problems whose raw
    // coefficients span several orders of magnitude (e.g. invariant products such as
    // (100 - n)^2). Column scaling substitutes y_j = s_j * x_j, so the solution is
    // rescaled at the end; row scaling multiplies an equality by a positive factor and
    // needs no compensation.
    let mut form = form.clone();
    let abs = |value: &S| if value.is_negative() { value.neg() } else { value.clone() };
    let mut column_scales = vec![S::one(); num_structural];
    for (column, scale) in column_scales.iter_mut().enumerate() {
        let mut max_abs = S::zero();
        for row in &form.matrix {
            let a = abs(&row[column]);
            if max_abs.lt(&a) {
                max_abs = a;
            }
        }
        if !max_abs.is_zero() {
            *scale = max_abs.clone();
            for row in &mut form.matrix {
                row[column] = row[column].div(&max_abs);
            }
            form.costs[column] = form.costs[column].div(&max_abs);
        }
    }
    for (row, rhs) in form.matrix.iter_mut().zip(form.rhs.iter_mut()) {
        let mut max_abs = S::zero();
        for cell in row.iter().chain(std::iter::once(&*rhs)) {
            let a = abs(cell);
            if max_abs.lt(&a) {
                max_abs = a;
            }
        }
        if max_abs.is_zero() {
            continue;
        }
        for cell in row.iter_mut() {
            *cell = cell.div(&max_abs);
        }
        *rhs = rhs.div(&max_abs);
    }
    let form = &form;

    if num_rows == 0 {
        // No constraints: the optimum is 0 unless some cost is negative (unbounded).
        let unbounded = form.costs.iter().any(Scalar::is_negative);
        return RawSolution {
            status: if unbounded { LpStatus::Unbounded } else { LpStatus::Optimal },
            values: vec![S::zero(); num_structural],
        };
    }

    // Phase 1: add one artificial variable per row and minimize their sum.
    let num_cols = num_structural + num_rows;
    let mut rows = Vec::with_capacity(num_rows);
    for (i, row) in form.matrix.iter().enumerate() {
        let mut extended = row.clone();
        extended.resize(num_cols, S::zero());
        extended[num_structural + i] = S::one();
        rows.push(extended);
    }
    let mut tableau = Tableau {
        rows,
        rhs: form.rhs.clone(),
        basis: (num_structural..num_cols).collect(),
        num_cols,
    };
    let mut phase1_costs = vec![S::zero(); num_cols];
    for cost in phase1_costs.iter_mut().skip(num_structural) {
        *cost = S::one();
    }
    let max_iters = 200 * (num_rows + num_cols) + 2000;
    let status = tableau.optimize(&phase1_costs, num_cols, max_iters, deadline);
    if status == LpStatus::IterationLimit || status == LpStatus::TimedOut {
        return RawSolution { status, values: Vec::new() };
    }
    let phase1_value = tableau.objective_value(&phase1_costs);
    if phase1_value.is_positive() {
        return RawSolution { status: LpStatus::Infeasible, values: Vec::new() };
    }

    // Drive any remaining artificial variables out of the basis.
    for row in 0..num_rows {
        if tableau.basis[row] >= num_structural {
            // Find a structural column with a non-zero entry to pivot in.
            let pivot_col = (0..num_structural).find(|&j| !tableau.rows[row][j].is_zero());
            match pivot_col {
                Some(col) => tableau.pivot(row, col),
                None => {
                    // Redundant row: every structural coefficient is zero. The artificial
                    // stays basic at value zero, which is harmless for phase 2 as long as
                    // it can never re-enter (we restrict entering columns to structural).
                }
            }
        }
    }

    // Phase 2: original costs (artificial columns are excluded from entering).
    let mut phase2_costs = form.costs.clone();
    phase2_costs.resize(num_cols, S::zero());
    let status = tableau.optimize(&phase2_costs, num_structural, max_iters, deadline);
    if status != LpStatus::Optimal {
        return RawSolution { status, values: Vec::new() };
    }

    let mut values = vec![S::zero(); num_structural];
    for (row, &basic) in tableau.basis.iter().enumerate() {
        if basic < num_structural {
            // Undo the column scaling: x_j = y_j / s_j.
            values[basic] = tableau.rhs[row].div(&column_scales[basic]);
        }
    }
    RawSolution { status: LpStatus::Optimal, values }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca_numeric::Rational;

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(n, d)
    }

    /// minimize -x - y  s.t.  x + y + s = 4  (i.e. x + y <= 4), expects objective -4.
    #[test]
    fn standard_form_direct() {
        let form = StandardForm {
            matrix: vec![vec![r(1, 1), r(1, 1), r(1, 1)]],
            rhs: vec![r(4, 1)],
            costs: vec![r(-1, 1), r(-1, 1), r(0, 1)],
            model_columns: vec![(0, None), (1, None)],
        };
        let sol = solve_standard_form(&form, None);
        assert_eq!(sol.status, LpStatus::Optimal);
        let total = sol.values[0].clone() + sol.values[1].clone();
        assert_eq!(total, r(4, 1));
    }

    #[test]
    fn empty_problem() {
        let form: StandardForm<Rational> = StandardForm {
            matrix: vec![],
            rhs: vec![],
            costs: vec![Rational::one()],
            model_columns: vec![(0, None)],
        };
        let sol = solve_standard_form(&form, None);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.values, vec![Rational::zero()]);
    }

    #[test]
    fn redundant_equality_rows() {
        // x = 2 stated twice; minimize x.
        let form = StandardForm {
            matrix: vec![vec![r(1, 1)], vec![r(1, 1)]],
            rhs: vec![r(2, 1), r(2, 1)],
            costs: vec![r(1, 1)],
            model_columns: vec![(0, None)],
        };
        let sol = solve_standard_form(&form, None);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.values[0], r(2, 1));
    }

    #[test]
    fn infeasible_standard_form() {
        // x = 2 and x = 3 simultaneously.
        let form = StandardForm {
            matrix: vec![vec![r(1, 1)], vec![r(1, 1)]],
            rhs: vec![r(2, 1), r(3, 1)],
            costs: vec![r(1, 1)],
            model_columns: vec![(0, None)],
        };
        let sol = solve_standard_form(&form, None);
        assert_eq!(sol.status, LpStatus::Infeasible);
    }
}
